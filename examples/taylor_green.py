#!/usr/bin/env python3
"""Taylor-Green vortex: the compressible Navier-Stokes showcase.

Eq. (1) of the paper is ``dU/dt + div f(U, grad U) = R`` — the flux
depends on gradients because CMT-nek solves the *Navier-Stokes*
equations.  This example runs the canonical viscous benchmark: the
2-D Taylor-Green vortex at low Mach, whose kinetic energy decays at
the exact rate ``exp(-4 nu k^2 t)`` while the vortex pattern persists.
The measured decay rate is printed against the analytic one.

Run:  python examples/taylor_green.py
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    SolverConfig,
    ViscousModel,
    from_primitives,
)

MESH = BoxMesh(shape=(4, 4, 1), n=7, lengths=(1.0, 1.0, 0.25))
PART = Partition(MESH, proc_shape=(2, 2, 1))
MU = 2e-3            # dynamic viscosity
U0 = 0.02            # vortex amplitude (Mach ~ 0.017: near-incompressible)
K = 2 * np.pi        # wavenumber on the unit box
STEPS = 300
DT = 2.5e-4


def initial_state(comm):
    coords = np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
        axis=1,
    )
    x, y = coords[0], coords[1]
    rho = np.ones_like(x)
    vel = np.zeros((3,) + x.shape)
    vel[0] = U0 * np.sin(K * x) * np.cos(K * y)
    vel[1] = -U0 * np.cos(K * x) * np.sin(K * y)
    # Consistent TGV pressure field (keeps the start near-steady).
    p = 1.0 + (U0**2 / 4.0) * (np.cos(2 * K * x) + np.cos(2 * K * y))
    return from_primitives(rho, vel, p)


def kinetic_energy(comm, solver, state):
    vel = state.velocity()
    ke = 0.5 * state.u[RHO] * np.sum(vel * vel, axis=0)
    return solver.integrate(ke)


def main(comm):
    solver = CMTSolver(
        comm, PART,
        config=SolverConfig(
            gs_method="pairwise",
            viscosity=ViscousModel(mu=MU),
        ),
    )
    state = initial_state(comm)
    ke0 = kinetic_energy(comm, solver, state)
    mass0 = solver.integrate(state.u[RHO])

    if comm.rank == 0:
        nu = MU  # rho = 1
        print(f"Taylor-Green vortex: {MESH.nelgt} elements, N={MESH.n}, "
              f"mu={MU}, U0={U0}")
        print(f"analytic decay rate: 2 nu k^2 = {2 * nu * K * K:.3f} "
              "per unit time (KE rate doubles the velocity rate)")
        print(f"{'step':>5s} {'t':>8s} {'KE/KE0':>9s} "
              f"{'analytic':>9s} {'mass drift':>11s}")

    history = []
    for step in range(1, STEPS + 1):
        state = solver.step(state, DT)
        if step % 60 == 0:
            t = step * DT
            ke = kinetic_energy(comm, solver, state)
            analytic = float(np.exp(-4.0 * MU * K * K * t))
            history.append((t, ke / ke0))
            mass = solver.integrate(state.u[RHO])
            if comm.rank == 0:
                print(f"{step:5d} {t:8.4f} {ke / ke0:9.5f} "
                      f"{analytic:9.5f} {abs(mass - mass0):11.2e}")
    assert state.is_physical()

    if comm.rank == 0 and len(history) >= 2:
        (t1, e1), (t2, e2) = history[0], history[-1]
        measured = -np.log(e2 / e1) / (t2 - t1)
        print(f"\nmeasured KE decay rate: {measured:.3f}  "
              f"(analytic 4 nu k^2 = {4 * MU * K * K:.3f})")
    return ke0


if __name__ == "__main__":
    Runtime(nranks=PART.nranks).run(main)
