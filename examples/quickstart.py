#!/usr/bin/env python3
"""Quickstart: run the CMT-bone mini-app on 8 simulated ranks.

This reproduces, at desktop scale, the full mini-app lifecycle from
the paper: gather-scatter setup with exchange-method auto-tuning, the
timestep pipeline (derivative kernel -> full2face -> gs exchange ->
update), and both profiling views (gprof-style compute regions and
mpiP-style MPI statistics).

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    merge_timelines,
    mpi_fraction_report,
    render_gantt,
    top_calls_report,
)
from repro.core import CMTBoneConfig, cmtbone_profile_report, dominant_region
from repro.core.cmtbone import CMTBone
from repro.gs import timing_table
from repro.mpi import Runtime
from repro.perfmodel import MachineModel


def main() -> None:
    # A small, fully periodic box: 8 ranks as a 2x2x2 grid, each with a
    # 2x2x2 brick of N=8 elements (polynomial order 7).
    config = CMTBoneConfig(
        n=8,
        local_shape=(2, 2, 2),
        proc_shape=(2, 2, 2),
        nsteps=5,
        work_mode="real",          # actually run the numpy kernels
        compute_imbalance=0.1,     # a touch of realism for MPI_Wait
    )
    print("=== CMT-bone quickstart: 8 ranks on the 'compton' model ===\n")
    print(config.build_partition(8).describe(), "\n")

    def app_main(comm):
        app = CMTBone(comm, config)
        result = app.run()
        return result, app.timeline

    runtime = Runtime(nranks=8, machine=MachineModel.preset("compton"))
    pairs = runtime.run(app_main)
    results = [r for r, _ in pairs]
    timelines = [t for _, t in pairs]

    r0 = results[0]
    print("--- gather-scatter auto-tune (setup phase) ---")
    print(timing_table(r0.autotune))
    print(f"\nchosen exchange method: {r0.chosen_method}\n")

    print("--- compute profile (gprof-style, merged over ranks) ---")
    print(cmtbone_profile_report(results))
    print(f"\nhot spot: {dominant_region(results)} "
          "(the paper's Fig. 4 result: derivative kernel dominates)\n")

    profile = runtime.job_profile()
    print("--- MPI profile (mpiP-style) ---")
    print(top_calls_report(profile, 10))
    print()
    print(mpi_fraction_report(profile))

    print("\n--- execution timeline (last stretch of the run) ---")
    intervals = merge_timelines(timelines)
    t_hi = max(iv.t1 for iv in intervals)
    print(render_gantt(
        intervals, width=68, t_range=(0.9 * t_hi, t_hi)
    ))


if __name__ == "__main__":
    main()
