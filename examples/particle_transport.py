#!/usr/bin/env python3
"""Particle-laden flow: tracers riding the DG solver's velocity field.

CMT means *multiphase* turbulence: the paper's introduction is about
"explosive dispersal of particles", and Lagrangian point-particle
tracking is the first item on CMT-nek's roadmap (Section III-A).  This
example runs the two phases the mini-app will eventually proxy
together:

* the carrier gas: the DG Euler solver on a periodic box, seeded with
  a smooth velocity perturbation, and
* the dispersed phase: tracer particles interpolating that velocity
  spectrally, advected with RK2, and migrated between ranks through
  the crystal-router transport whenever they cross a subdomain edge.

Printed diagnostics: global particle count (must stay constant),
migration traffic, and the spread of the particle cloud.

Run:  python examples/particle_transport.py
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import MAX, SUM, Runtime
from repro.solver import (
    CMTSolver,
    ParticleTracker,
    SolverConfig,
    from_primitives,
    seed_particles,
)

MESH = BoxMesh(shape=(4, 4, 1), n=7, lengths=(1.0, 1.0, 0.25))
PART = Partition(MESH, proc_shape=(2, 2, 1))
N_PARTICLES = 400
STEPS = 60


def initial_state(comm):
    """A gentle vortical velocity perturbation, uniform rho/p."""
    coords = np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
        axis=1,
    )
    x, y = coords[0], coords[1]
    rho = np.ones_like(x)
    p = np.ones_like(x)
    vel = np.zeros((3,) + x.shape)
    vel[0] = 0.15 * np.sin(2 * np.pi * y)
    vel[1] = 0.15 * np.sin(2 * np.pi * x)
    return from_primitives(rho, vel, p)


def main(comm):
    solver = CMTSolver(
        comm, PART, config=SolverConfig(gs_method="pairwise", cfl=0.3)
    )
    tracker = ParticleTracker(comm, PART)
    state = initial_state(comm)
    cloud = seed_particles(tracker, N_PARTICLES, seed=7)
    n0 = tracker.global_count(cloud)
    dt = solver.stable_dt(state)

    if comm.rank == 0:
        print(f"ranks={comm.size}  elements={MESH.nelgt}  N={MESH.n}  "
              f"particles={n0}  dt={dt:.2e}")
        print(f"{'step':>5s} {'global n':>9s} {'max local':>10s} "
              f"{'mean speed':>11s}")

    for step in range(1, STEPS + 1):
        state = solver.step(state, dt)
        velocity = state.velocity()
        cloud = tracker.advect(cloud, velocity, dt)
        if step % 15 == 0:
            total = tracker.global_count(cloud)
            local_max = comm.allreduce(len(cloud), op=MAX)
            if len(cloud):
                v = tracker.velocity_at(cloud, velocity)
                speed_sum = float(np.sum(np.linalg.norm(v, axis=1)))
            else:
                speed_sum = 0.0
            mean_speed = comm.allreduce(speed_sum, op=SUM) / max(total, 1)
            if comm.rank == 0:
                print(f"{step:5d} {total:9d} {local_max:10d} "
                      f"{mean_speed:11.4f}")
            assert total == n0, "particles lost or duplicated!"

    # Communication summary for the migration traffic.
    return len(cloud)


if __name__ == "__main__":
    rt = Runtime(nranks=PART.nranks)
    counts = rt.run(main)
    print(f"\nfinal per-rank particle counts: {counts} "
          f"(sum={sum(counts)})")
    prof = rt.job_profile()
    migrate_rows = [
        r for r in prof.aggregates() if "particles:migrate" in r.site
    ]
    if migrate_rows:
        total_bytes = sum(r.bytes_total for r in migrate_rows)
        total_msgs = sum(r.count for r in migrate_rows)
        print(f"migration traffic: {total_msgs} messages, "
              f"{total_bytes / 1024:.1f} KiB through the crystal router")
