#!/usr/bin/env python3
"""Shock capturing: a steepening nonlinear wave with the modal filter.

A finite-amplitude simple wave steepens until characteristics cross —
without stabilization the spectral scheme rings itself into negative
pressures.  The Persson–Peraire sensor spots the troubled elements and
the exponential modal filter (conservative by construction) damps just
enough of their top modes to keep the run alive, foreshadowing the
shock-capturing item on the CMT-nek roadmap.

Run:  python examples/shock_capturing.py
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import MAX, Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    ShockFilter,
    SolverConfig,
    from_primitives,
    smoothness_sensor,
)

MESH = BoxMesh(shape=(8, 1, 1), n=8, lengths=(2.0, 1.0, 1.0))
PART = Partition(MESH, proc_shape=(2, 1, 1))
AMPLITUDE = 0.5
STEPS = 900


def initial_state(comm):
    """Right-moving isentropic simple wave of finite amplitude."""
    coords = np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
        axis=1,
    )
    x = coords[0]
    bump = AMPLITUDE * np.sin(np.pi * x)
    rho = 1.0 + bump
    p = rho**1.4
    vel = np.zeros((3,) + rho.shape)
    # Simple-wave relation: u = 2/(gamma-1) (a - a0).
    vel[0] = (2.0 / 0.4) * (np.sqrt(1.4 * p / rho) - np.sqrt(1.4))
    return from_primitives(rho, vel, p)


def main(comm):
    filt = ShockFilter(n=MESH.n, threshold=-7.0, ramp=3.0)
    solver = CMTSolver(
        comm, PART,
        config=SolverConfig(
            gs_method="pairwise", cfl=0.25, shock_filter=filt
        ),
    )
    state = initial_state(comm)
    mass0 = solver.integrate(state.u[RHO])
    dt = solver.stable_dt(state)

    if comm.rank == 0:
        print(f"steepening wave: amplitude={AMPLITUDE}, N={MESH.n}, "
              f"{MESH.nelgt} elements, dt={dt:.2e}")
        print(f"{'step':>5s} {'max sensor':>11s} {'troubled el':>12s} "
              f"{'min p':>9s} {'mass drift':>11s}")

    for step in range(1, STEPS + 1):
        state = solver.step(state, dt)
        if step % 100 == 0:
            sensor = smoothness_sensor(state.u[RHO])
            troubled = int(np.sum(filt.strength(sensor) > 0))
            s_max = comm.allreduce(float(sensor.max()), op=MAX)
            troubled = comm.allreduce(troubled)
            p_min = -comm.allreduce(-float(state.pressure().min()), op=MAX)
            mass = solver.integrate(state.u[RHO])
            if comm.rank == 0:
                print(f"{step:5d} {s_max:11.2f} {troubled:12d} "
                      f"{p_min:9.4f} {abs(mass - mass0):11.2e}")
            assert state.is_physical(), "filter failed to hold the line"

    if comm.rank == 0:
        print("\nThe wave steepened (sensor rose toward 0, elements "
              "tripped the filter), pressure stayed\npositive, and mass "
              "is conserved to roundoff — the filter damps modes, never "
              "mass.")
    return solver.stats.steps


if __name__ == "__main__":
    Runtime(nranks=PART.nranks).run(main)
