#!/usr/bin/env python3
"""Sod shock tube: shock capturing validated against exact gas dynamics.

The canonical compressible benchmark, run through the full stack this
repository builds: the parallel DG solver (derivative kernels +
gather-scatter face exchange), non-periodic Dirichlet boundaries, the
Persson-Peraire shock filter, and the exact Riemann solver as the
reference.  Prints an ASCII density profile with the exact solution
overlaid and the star-region / shock-position errors.

Run:  python examples/sod_shock_tube.py
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import (
    CMTSolver,
    RHO,
    ShockFilter,
    SolverConfig,
    from_primitives,
)
from repro.solver.boundary import BoundarySpec
from repro.solver.riemann import SOD_LEFT, SOD_RIGHT, exact_riemann

N = 8
MESH = BoxMesh(shape=(16, 1, 1), n=N, periodic=(False, True, True),
               lengths=(1.0, 0.25, 0.25))
PART = Partition(MESH, proc_shape=(2, 1, 1))
T_END = 0.2
X0 = 0.5


def dirichlet(state):
    e = state.p / 0.4 + 0.5 * state.rho * state.u**2
    return BoundarySpec(
        "dirichlet", state=(state.rho, state.rho * state.u, 0.0, 0.0, e)
    )


def main(comm):
    solver = CMTSolver(
        comm, PART,
        config=SolverConfig(
            gs_method="pairwise",
            cfl=0.3,
            shock_filter=ShockFilter(n=N, threshold=-6.0, ramp=2.0),
            boundaries={0: dirichlet(SOD_LEFT), 1: dirichlet(SOD_RIGHT)},
        ),
    )
    coords = np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
        axis=1,
    )
    x = coords[0]
    blend = 0.5 * (1.0 + np.tanh((x - X0) / 0.02))
    rho = SOD_LEFT.rho + (SOD_RIGHT.rho - SOD_LEFT.rho) * blend
    p = SOD_LEFT.p + (SOD_RIGHT.p - SOD_LEFT.p) * blend
    state = from_primitives(rho, np.zeros((3,) + rho.shape), p)

    t, steps = 0.0, 0
    while t < T_END:
        dt = min(solver.stable_dt(state), T_END - t)
        state = solver.step(state, dt)
        t += dt
        steps += 1
        assert state.is_physical()

    xs = x[:, :, 0, 0].ravel()
    rhos = state.u[RHO][:, :, 0, 0].ravel()
    return xs, rhos, steps


def ascii_profile(xs, rhos, exact_rho, height=14):
    """Overlay DG (#) on exact (.) density in a character grid."""
    cols = 72
    grid = [[" "] * cols for _ in range(height)]
    lo, hi = 0.05, 1.1

    def put(xv, rv, ch):
        c = min(int(xv * cols), cols - 1)
        r = height - 1 - min(
            int((rv - lo) / (hi - lo) * height), height - 1
        )
        if grid[r][c] == " " or ch == "#":
            grid[r][c] = ch

    for xv, rv in zip(np.linspace(0, 1, 400),
                      np.interp(np.linspace(0, 1, 400), xs, exact_rho)):
        put(xv, rv, ".")
    for xv, rv in zip(xs, rhos):
        put(xv, rv, "#")
    return "\n".join("|" + "".join(row) + "|" for row in grid)


if __name__ == "__main__":
    results = Runtime(nranks=PART.nranks).run(main)
    xs = np.concatenate([r[0] for r in results])
    rhos = np.concatenate([r[1] for r in results])
    order = np.argsort(xs)
    xs, rhos = xs[order], rhos[order]

    sol = exact_riemann(SOD_LEFT, SOD_RIGHT)
    exact_rho, _u, _p = sol.profile(xs, t=T_END, x0=X0)

    print(f"Sod shock tube at t = {T_END} "
          f"({MESH.nelgt} elements, N={N}, {results[0][2]} steps, "
          f"{PART.nranks} ranks)\n")
    print("density: '#' = DG + shock filter, '.' = exact Riemann\n")
    print(ascii_profile(xs, rhos, exact_rho))
    print(f"\nL1 density error: {np.mean(np.abs(rhos - exact_rho)):.4f}")
    print(f"exact star region: p* = {sol.p_star:.5f}, "
          f"u* = {sol.u_star:.5f}, rho*L = {sol.rho_star_left:.5f}, "
          f"rho*R = {sol.rho_star_right:.5f}")
    x_shock = X0 + sol.shock_speed_right() * T_END
    print(f"exact shock position: x = {x_shock:.4f}")
