#!/usr/bin/env python3
"""Co-design example: weak-scaling and network-sensitivity study.

The paper positions CMT-bone as a tool for evaluating "notional future
systems".  This example does exactly that with the machine models: it
weak-scales the mini-app from 8 to 64 ranks (constant work per rank)
and then re-runs the largest configuration on networks with different
latency/bandwidth to show where the mini-app's communication pattern
becomes the bottleneck.

Run:  python examples/scaling_study.py
"""

from dataclasses import replace

from repro.analysis import render_table, summarize_fractions
from repro.core import CMTBoneConfig, run_cmtbone
from repro.mesh import factor3
from repro.mpi import Runtime
from repro.perfmodel import MachineModel


def run_once(nranks: int, machine: MachineModel, nsteps: int = 4):
    cfg = CMTBoneConfig(
        n=8,
        local_shape=(2, 2, 2),
        proc_shape=factor3(nranks),
        nsteps=nsteps,
        work_mode="proxy",          # modelled compute: fast at any P
        gs_method="pairwise",
        compute_imbalance=0.05,
    )
    rt = Runtime(nranks=nranks, machine=machine)
    results = rt.run(run_cmtbone, args=(cfg,))
    prof = rt.job_profile()
    max_t = max(r.vtime_total for r in results)
    mean_mpi, _, max_mpi, imb = summarize_fractions(prof)
    return max_t, mean_mpi, max_mpi, imb


def weak_scaling():
    print("=== weak scaling (constant 8 elements x N=8 per rank) ===")
    machine = MachineModel.preset("compton")
    rows = []
    base = None
    for p in (1, 8, 27, 64):
        t, mpi_mean, mpi_max, imb = run_once(p, machine)
        base = base or t
        rows.append((p, t, base / t, mpi_mean, mpi_max))
    print(render_table(
        ["ranks", "step time (s)", "efficiency", "MPI % (mean)",
         "MPI % (max)"],
        [(p, t, e, m1, m2) for p, t, e, m1, m2 in rows],
        floatfmt="{:.4g}",
    ))
    print("\nWeak-scaling efficiency stays near 1 because the "
          "nearest-neighbour exchange is surface-local;\nthe slow "
          "erosion comes from the allreduce monitor and setup "
          "collectives growing with log P.\n")


def network_sensitivity():
    print("=== network sensitivity at 64 ranks ===")
    base = MachineModel.preset("compton")
    variants = {
        "compton (QDR IB)": base,
        "10x latency": base.with_network(
            replace(base.network, latency=base.network.latency * 10)
        ),
        "10x less bandwidth": base.with_network(
            replace(base.network, bandwidth=base.network.bandwidth / 10)
        ),
        "dream NIC (0.1x lat, 10x bw)": base.with_network(
            replace(
                base.network,
                latency=base.network.latency / 10,
                bandwidth=base.network.bandwidth * 10,
            )
        ),
    }
    rows = []
    for name, machine in variants.items():
        t, mpi_mean, mpi_max, _ = run_once(64, machine)
        rows.append((name, t, mpi_mean, mpi_max))
    print(render_table(
        ["network", "step time (s)", "MPI % (mean)", "MPI % (max)"],
        rows,
        floatfmt="{:.4g}",
    ))
    print("\nAt this small per-rank size the ~2 KB face messages are "
          "latency-dominated, so the 10x-latency\nnetwork hurts most; "
          "grow N or the local element count and the balance tips "
          "toward bandwidth.\nThis is exactly why the paper measures "
          "message sizes (Fig. 10): the right network model\ndepends "
          "on where the workload sits on that curve.")


if __name__ == "__main__":
    weak_scaling()
    network_sensitivity()
