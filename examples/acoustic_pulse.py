#!/usr/bin/env python3
"""Physics example: an acoustic pulse in the DG Euler solver.

CMT-bone is a *proxy*; this example exercises the real conceptual model
behind it — the parallel discontinuous-Galerkin compressible Euler
solver (repro.solver) — on the classic smoke test: a small Gaussian
pressure/density perturbation in a quiescent periodic box splits into
acoustic waves that travel at the speed of sound while mass, momentum,
and energy are conserved to machine precision.

Run:  python examples/acoustic_pulse.py
"""

import numpy as np

from repro.mesh import BoxMesh, Partition
from repro.mpi import Runtime
from repro.solver import CMTSolver, RHO, SolverConfig, from_primitives

MESH = BoxMesh(shape=(8, 2, 2), n=8, lengths=(4.0, 1.0, 1.0))
PART = Partition(MESH, proc_shape=(4, 1, 1))
EPS = 1e-3           # pulse amplitude (acoustic/linear regime)
X0 = 2.0             # pulse centre
STEPS = 120


def initial_state(comm):
    """Gaussian density/pressure bump, velocity zero."""
    coords = np.stack(
        [MESH.element_nodes(ec) for ec in PART.local_elements(comm.rank)],
        axis=1,
    )  # (3, nel, n, n, n)
    x = coords[0]
    bump = np.exp(-40.0 * (x - X0) ** 2)
    rho = 1.0 + EPS * bump
    p = 1.0 + 1.4 * EPS * bump          # isentropic: dp = c^2 drho
    vel = np.zeros((3,) + rho.shape)
    return from_primitives(rho, vel, p), x


def track_front(state, x):
    """Right-going wave position: argmax of |drho| right of the centre.

    Encoded as (peak value, position) so a cross-rank allreduce(MAX)
    on the tuple-as-pair picks the global peak's position.
    """
    drho = np.abs(state.u[RHO] - 1.0)
    mask = x > X0 + 0.05
    if not mask.any():
        return (-np.inf, -np.inf)
    vals = np.where(mask, drho, -np.inf)
    flat = int(np.argmax(vals))
    return (float(vals.ravel()[flat]), float(x.ravel()[flat]))


def main(comm):
    solver = CMTSolver(
        comm, PART, config=SolverConfig(gs_method="pairwise", cfl=0.3)
    )
    state, x = initial_state(comm)
    totals0 = solver.conserved_totals(state)
    dt = solver.stable_dt(state)

    if comm.rank == 0:
        print(f"ranks={comm.size}  elements={MESH.nelgt}  N={MESH.n}  "
              f"dt={dt:.3e}")
        print(f"{'step':>5s} {'t':>8s} {'front_x':>9s} {'mass drift':>12s}")

    front_positions = []
    for step in range(1, STEPS + 1):
        state = solver.step(state, dt)
        if step % 20 == 0:
            peak, pos = track_front(state, x)
            # Global peak: gather (peak, position) pairs, take max peak.
            pairs = comm.allgather((peak, pos))
            front = max(pairs)[1]
            mass = solver.integrate(state.u[RHO])
            front_positions.append((step * dt, front))
            if comm.rank == 0:
                print(f"{step:5d} {step * dt:8.4f} {front:9.4f} "
                      f"{abs(mass - totals0['rho']):12.2e}")

    totals1 = solver.conserved_totals(state)
    if comm.rank == 0:
        print("\nconservation check (|after - before|):")
        for key in totals0:
            print(f"  {key:6s}: {abs(totals1[key] - totals0[key]):.3e}")
        # Sound speed in this state: a = sqrt(gamma p / rho) = sqrt(1.4).
        if len(front_positions) >= 2:
            (t1, f1), (t2, f2) = front_positions[0], front_positions[-1]
            speed = (f2 - f1) / (t2 - t1)
            print(f"\nmeasured front speed: {speed:.3f} "
                  f"(speed of sound a = {np.sqrt(1.4):.3f})")
    assert state.is_physical()
    return totals1


if __name__ == "__main__":
    Runtime(nranks=PART.nranks).run(main)
