#!/usr/bin/env python3
"""Co-design example: architecture design-space exploration.

"Mini-apps can also serve as a platform for fast algorithm design
space exploration" — this example is the paper's raison d'être in
action.  It sweeps a CMT-bone workload across (a) the named notional
exascale candidates and (b) a factorial knob grid, prints a ranked
speedup table, and computes the cost/performance Pareto front.

Run:  python examples/architecture_dse.py
"""

from repro.analysis import render_table
from repro.codesign import (
    Candidate,
    Explorer,
    bottleneck,
    candidate_grid,
    notional_exascale_candidates,
    pareto_front,
    speedup_table,
)
from repro.core import CMTBoneConfig
from repro.perfmodel import MachineModel

WORKLOAD = CMTBoneConfig(
    n=10,
    local_shape=(2, 2, 2),
    proc_shape=(2, 2, 2),
    nsteps=4,
    work_mode="proxy",
    gs_method="pairwise",
)
NRANKS = 8


def named_candidates_study(explorer):
    print("=== notional exascale candidates (CMT-bone workload, "
          f"{NRANKS} ranks, N={WORKLOAD.n}) ===")
    base = Candidate("baseline", MachineModel.preset("compton"), cost=1.0)
    cands = [base] + notional_exascale_candidates()
    evals = explorer.sweep(cands)
    rows = [
        (name, t, s, f"{100 * frac:.1f}%",
         bottleneck(next(e for e in evals if e.name == name)))
        for name, t, s, frac in speedup_table(evals, "baseline")
    ]
    print(render_table(
        ["candidate", "step time (s)", "speedup", "comm %", "bound by"],
        rows, floatfmt="{:.4g}",
    ))
    print("\nCompute-side upgrades (faster cores, then memory bandwidth) "
          "dominate, while an 8x fatter network\nlink barely moves this "
          "workload — its face messages are small and infrequent.  This "
          "is the kind of\ninsight the paper wants architects to pull "
          "from the mini-app before silicon exists.\n")


def grid_pareto_study(explorer):
    print("=== factorial knob grid + cost/performance Pareto front ===")
    grid = candidate_grid()
    evals = explorer.sweep(grid)
    front = pareto_front(evals)
    rows = [
        (e.name, e.cost, e.step_time, f"{100 * e.comm_fraction:.1f}%")
        for e in front
    ]
    print(render_table(
        ["Pareto candidate", "cost", "step time (s)", "comm %"],
        rows, floatfmt="{:.4g}",
    ))
    dominated = len(evals) - len(front)
    print(f"\n{len(evals)} candidates evaluated, {dominated} dominated, "
          f"{len(front)} on the front.")


if __name__ == "__main__":
    explorer = Explorer(config=WORKLOAD, nranks=NRANKS)
    named_candidates_study(explorer)
    grid_pareto_study(explorer)
