#!/usr/bin/env python3
"""Kernel-tuning example: the Section V derivative-kernel study.

Times the actual numpy implementations of the derivative kernel
(`basic` per-pencil loops vs `fused` batched GEMMs) across polynomial
orders, and prints the paper's modelled PAPI counters next to the
measured wall numbers.  The paper's qualitative result — fusion pays
off hugely for dudt, marginally for dudr, and not at all for duds —
shows up in the modelled columns; the wall-clock columns show the
numpy-specific analogue (batching removes per-call overhead, with duds
limited by its strided middle-index contraction).

Run:  python examples/kernel_tuning.py
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.kernels import derivative_matrix, kernel_cost
from repro.kernels import derivatives as dk


def time_kernel(fn, u, dmat, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(u, dmat)
        best = min(best, time.perf_counter() - t0)
    return best


def wall_study(n=10, nel=128):
    dmat = np.asarray(derivative_matrix(n))
    u = np.random.default_rng(0).standard_normal((nel, n, n, n))
    rows = []
    for direction in "rst":
        t_basic = time_kernel(
            lambda a, b: dk.derivative(a, b, direction, "basic"), u, dmat
        )
        t_fused = time_kernel(
            lambda a, b: dk.derivative(a, b, direction, "fused"), u, dmat
        )
        rows.append(
            (f"dud{direction}", t_basic * 1e3, t_fused * 1e3,
             t_basic / t_fused)
        )
    print(f"--- measured numpy wall time (N={n}, Nel={nel}) ---")
    print(render_table(
        ["kernel", "basic (ms)", "fused (ms)", "speedup"],
        rows, floatfmt="{:.3g}",
    ))


def modelled_study(n=5, nel=1563, steps=1000):
    rows = []
    for direction in ("t", "r", "s"):
        basic = kernel_cost(direction, "basic", n, nel, steps=steps)
        fused = kernel_cost(direction, "fused", n, nel, steps=steps)
        rows.append((
            f"dud{direction}",
            fused.instructions, fused.cycles,
            basic.instructions, basic.cycles,
            basic.seconds / fused.seconds,
        ))
    print(f"\n--- modelled PAPI counters (paper setup: N={n}, "
          f"Nel={nel}, {steps} steps, Opteron 6378) ---")
    print(render_table(
        ["kernel", "fused inst", "fused cycles", "basic inst",
         "basic cycles", "modelled speedup"],
        rows, floatfmt="{:.4g}",
    ))
    print("\npaper (Figs. 5-6): dudt 2.31x, dudr 1.03x, duds ~1.0x")


def sweep_n():
    print("\n--- O(N^4) scaling of the fused kernel (modelled s/step, "
          "Nel=100) ---")
    rows = []
    for n in (5, 10, 15, 20, 25):
        c = sum(
            kernel_cost(d, "fused", n, 100).seconds for d in "rst"
        )
        rows.append((n, c, c / n**4 * 1e9))
    print(render_table(
        ["N", "time (s)", "time/N^4 (ns)"], rows, floatfmt="{:.4g}"
    ))


if __name__ == "__main__":
    wall_study()
    modelled_study()
    sweep_n()
