"""gprof-style call-graph profiling of the mini-app's compute regions.

Fig. 4 of the paper is a partial gprof call graph of CMT-bone showing
that "the majority of application time is spent in derivative
calculation (``ax_`` routine, for flux divergence)".  gprof needs
compiled binaries; this module gives the simulated mini-app the same
observability: code brackets named regions, the profiler tracks
*virtual* time (so reports are deterministic and platform-modelled),
nesting builds the call graph, and :func:`flat_profile` /
:func:`call_graph` render gprof-like reports.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..mpi.clock import VirtualClock


@dataclass
class RegionStats:
    """Aggregate statistics for one named region."""

    name: str
    calls: int = 0
    total: float = 0.0       # inclusive virtual seconds
    child: float = 0.0       # virtual seconds inside nested regions

    @property
    def self_time(self) -> float:
        return self.total - self.child


class CallGraphProfiler:
    """Region-based hierarchical profiler over a virtual clock.

    Usage::

        prof = CallGraphProfiler(comm.clock)
        with prof.region("compute_rhs"):
            with prof.region("ax_"):
                ...  # derivative kernels

    Region entry/exit reads ``clock.now``; anything that advances the
    clock inside (modelled compute charges, communication waits) is
    attributed to the innermost open region.
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self.stats: Dict[str, RegionStats] = {}
        #: (parent, child) -> (calls, inclusive seconds)
        self.edges: Dict[Tuple[str, str], Tuple[int, float]] = {}
        self._stack: List[Tuple[str, float]] = []
        self._t_origin = clock.now

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Bracket a named region; nests to build the call graph."""
        t0 = self._clock.now
        self._stack.append((name, t0))
        try:
            yield
        finally:
            self._stack.pop()
            dt = self._clock.now - t0
            st = self.stats.get(name)
            if st is None:
                st = RegionStats(name=name)
                self.stats[name] = st
            st.calls += 1
            st.total += dt
            if self._stack:
                parent = self._stack[-1][0]
                self.stats.setdefault(
                    parent, RegionStats(name=parent)
                ).child += dt
                calls, secs = self.edges.get((parent, name), (0, 0.0))
                self.edges[(parent, name)] = (calls + 1, secs + dt)

    @property
    def observed_time(self) -> float:
        """Virtual seconds elapsed since the profiler was created."""
        return self._clock.now - self._t_origin


def merge_profiles(profiles: List[CallGraphProfiler]) -> Dict[str, RegionStats]:
    """Merge per-rank region stats (sums counts and times)."""
    merged: Dict[str, RegionStats] = {}
    for p in profiles:
        for name, st in p.stats.items():
            m = merged.get(name)
            if m is None:
                m = RegionStats(name=name)
                merged[name] = m
            m.calls += st.calls
            m.total += st.total
            m.child += st.child
    return merged


def flat_profile(
    stats: Dict[str, RegionStats], total: Optional[float] = None
) -> str:
    """gprof-style flat profile: % time, self seconds, calls, name."""
    rows = sorted(stats.values(), key=lambda s: s.self_time, reverse=True)
    if total is None:
        total = sum(s.self_time for s in rows) or 1.0
    lines = [
        f"{'% time':>7s} {'self s':>12s} {'total s':>12s} {'calls':>10s}  name"
    ]
    for s in rows:
        lines.append(
            f"{100.0 * s.self_time / total:7.2f} {s.self_time:12.6f} "
            f"{s.total:12.6f} {s.calls:10d}  {s.name}"
        )
    return "\n".join(lines)


def call_graph(
    profiles_or_edges,
) -> str:
    """Render the parent -> child call-graph edges (Fig. 4 style)."""
    if isinstance(profiles_or_edges, list):
        edges: Dict[Tuple[str, str], Tuple[int, float]] = {}
        for p in profiles_or_edges:
            for key, (c, t) in p.edges.items():
                c0, t0 = edges.get(key, (0, 0.0))
                edges[key] = (c0 + c, t0 + t)
    else:
        edges = profiles_or_edges
    by_parent: Dict[str, List[Tuple[str, int, float]]] = {}
    for (parent, child), (calls, secs) in edges.items():
        by_parent.setdefault(parent, []).append((child, calls, secs))
    lines = []
    for parent in sorted(by_parent):
        lines.append(parent)
        children = sorted(by_parent[parent], key=lambda x: x[2], reverse=True)
        for child, calls, secs in children:
            lines.append(
                f"    -> {child:<24s} calls={calls:<8d} incl={secs:.6f}s"
            )
    return "\n".join(lines)
