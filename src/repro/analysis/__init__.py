"""``repro.analysis`` — profiling reports (gprof- and mpiP-style).

Turns the runtime's raw profiling data into the views the paper's
evaluation plots: the Fig. 4 call-graph/flat profile and the Figs. 8-10
MPI time/size breakdowns.
"""

from .callgraph import (
    CallGraphProfiler,
    RegionStats,
    call_graph,
    flat_profile,
    merge_profiles,
)
from .mpip import (
    aggregates_by_op,
    fault_report,
    full_report,
    lb_report,
    message_size_report,
    mpi_fraction_report,
    op_share,
    split_phase_report,
    summarize_compute,
    summarize_fractions,
    top_calls_report,
    wait_dominance,
)
from .tables import render_histogram, render_table
from .timeline import (
    Interval,
    TimelineRecorder,
    merge_timelines,
    render_gantt,
    utilization,
)
from .traffic import (
    hop_weighted_bytes,
    injection_timeline,
    neighbor_degree,
    size_histogram,
    traffic_matrix,
    traffic_report,
)

__all__ = [
    "CallGraphProfiler",
    "Interval",
    "RegionStats",
    "TimelineRecorder",
    "aggregates_by_op",
    "call_graph",
    "fault_report",
    "lb_report",
    "flat_profile",
    "full_report",
    "hop_weighted_bytes",
    "injection_timeline",
    "merge_profiles",
    "merge_timelines",
    "message_size_report",
    "mpi_fraction_report",
    "neighbor_degree",
    "render_gantt",
    "render_histogram",
    "render_table",
    "size_histogram",
    "split_phase_report",
    "op_share",
    "summarize_compute",
    "summarize_fractions",
    "top_calls_report",
    "traffic_matrix",
    "traffic_report",
    "utilization",
    "wait_dominance",
]
