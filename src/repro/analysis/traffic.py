"""Traffic analysis of message traces (network-model calibration).

The paper's network-modelling effort needs "data transfer
characteristics for the application" (Section VI).  Given a
:class:`repro.mpi.trace.MessageTrace`, this module computes the three
standard views a network modeller asks for:

* the rank-to-rank **traffic matrix** (bytes and message counts),
* the **message-size histogram** (log-binned, Fig. 10's cousin), and
* the **injection timeline** (bytes per virtual-time bin).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..mpi.trace import MessageTrace
from .tables import render_histogram, render_table


def traffic_matrix(trace: MessageTrace) -> Tuple[np.ndarray, np.ndarray]:
    """(bytes, message counts) as (P, P) arrays indexed [src, dst]."""
    p = trace.nranks
    bytes_m = np.zeros((p, p), dtype=np.int64)
    count_m = np.zeros((p, p), dtype=np.int64)
    for e in trace.events():
        bytes_m[e.src, e.dst] += e.nbytes
        count_m[e.src, e.dst] += 1
    return bytes_m, count_m


def neighbor_degree(trace: MessageTrace) -> np.ndarray:
    """Distinct destinations each rank sends to."""
    _, counts = traffic_matrix(trace)
    return (counts > 0).sum(axis=1)


def size_histogram(
    trace: MessageTrace, n_bins: int = 12
) -> List[Tuple[str, int, int]]:
    """Log2-binned message sizes: (label, count, total bytes) rows."""
    sizes = np.array(
        [e.nbytes for e in trace.events() if e.nbytes > 0], dtype=np.int64
    )
    if len(sizes) == 0:
        return []
    lo = int(np.floor(np.log2(sizes.min())))
    hi = int(np.ceil(np.log2(sizes.max()))) + 1
    edges = 2 ** np.arange(lo, min(hi, lo + n_bins) + 1)
    rows = []
    for a, b in zip(edges[:-1], edges[1:]):
        mask = (sizes >= a) & (sizes < b)
        if mask.any():
            rows.append(
                (f"[{a}, {b}) B", int(mask.sum()), int(sizes[mask].sum()))
            )
    top = sizes >= edges[-1]
    if top.any():
        rows.append(
            (f">= {edges[-1]} B", int(top.sum()), int(sizes[top].sum()))
        )
    return rows


def injection_timeline(
    trace: MessageTrace, n_bins: int = 20
) -> List[Tuple[float, int]]:
    """(bin start vtime, bytes injected) over the run."""
    events = trace.events()
    if not events:
        return []
    t0 = events[0].wire_vtime
    t1 = events[-1].wire_vtime
    span = max(t1 - t0, 1e-30)
    width = span / n_bins
    bins = [0] * n_bins
    for e in events:
        i = min(int((e.wire_vtime - t0) / width), n_bins - 1)
        bins[i] += e.nbytes
    return [(t0 + i * width, b) for i, b in enumerate(bins)]


def hop_weighted_bytes(trace: MessageTrace, topology) -> float:
    """Total bytes x hops — the network-load figure of merit."""
    total = 0.0
    for e in trace.events():
        total += e.nbytes * topology.hops(e.src, e.dst)
    return total


def traffic_report(trace: MessageTrace, max_pairs: int = 10) -> str:
    """Human-readable traffic summary."""
    bytes_m, count_m = traffic_matrix(trace)
    degree = (count_m > 0).sum(axis=1)
    pairs = [
        (int(s), int(d), int(bytes_m[s, d]), int(count_m[s, d]))
        for s, d in zip(*np.nonzero(bytes_m))
    ]
    pairs.sort(key=lambda r: r[2], reverse=True)
    sections = [
        f"messages: {len(trace)}   total bytes: {trace.total_bytes}   "
        f"virtual span: {trace.time_span():.3e}s",
        f"send degree: min={degree.min()} max={degree.max()} "
        f"mean={degree.mean():.1f}",
        "heaviest pairs:\n"
        + render_table(
            ["src", "dst", "bytes", "msgs"],
            pairs[:max_pairs],
        ),
    ]
    hist = size_histogram(trace)
    if hist:
        sections.append(
            "message-size spectrum:\n"
            + render_histogram(
                [r[0] for r in hist], [float(r[1]) for r in hist],
                unit=" msgs",
            )
        )
    return "\n\n".join(sections)
