"""Per-rank execution timelines (text Gantt charts).

Section VI argues that modelling MPI_Wait "is hard to do with
analytical models and may require timing-based simulations".  The
virtual-time runtime *is* such a simulation; this module makes its
timing visible: a :class:`TimelineRecorder` collects (region, t0, t1)
intervals per rank, and :func:`render_gantt` draws the classic
trace-viewer picture in plain text — compute bars interleaved with
communication gaps, rank by rank, so wait chains can be eyeballed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..mpi.clock import VirtualClock


@dataclass(frozen=True)
class Interval:
    """One recorded region occurrence on one rank.

    ``span`` marks an overlappable split-phase interval (recorded via
    :meth:`TimelineRecorder.open_span`/``close_span``) that may coexist
    with ordinary region intervals on the same rank.
    """

    rank: int
    name: str
    t0: float
    t1: float
    span: bool = False

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class TimelineRecorder:
    """Collects top-level region intervals against a virtual clock.

    Only outermost regions are recorded (nested regions belong to the
    call-graph profiler); the timeline answers "what was rank r doing
    at time t", which wants one bar per instant.
    """

    def __init__(self, rank: int, clock: VirtualClock):
        self.rank = rank
        self._clock = clock
        self.intervals: List[Interval] = []
        self._depth = 0

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        t0 = self._clock.now
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0:
                t1 = self._clock.now
                if t1 > t0:
                    self.intervals.append(
                        Interval(rank=self.rank, name=name, t0=t0, t1=t1)
                    )

    # -- split-phase spans ---------------------------------------------------

    def open_span(self, name: str) -> float:
        """Start an *overlappable* span; returns its opening time.

        Unlike :meth:`region`, a span is not a nesting bracket: it
        marks an in-flight split-phase interval (communication posted
        at ``open``, finished at ``close``) that deliberately coexists
        with whatever regions run meanwhile.  Pair with
        :meth:`close_span`; the name is ignored here and repeated at
        close purely for call-site readability.
        """
        return self._clock.now

    def close_span(self, name: str, t0: float) -> None:
        """Record ``[t0, now]`` for ``name`` regardless of nesting depth.

        The resulting interval may overlap region intervals on the same
        rank — :func:`render_gantt` draws such doubly-covered bins in
        uppercase so hidden communication is visible in the chart.
        """
        t1 = self._clock.now
        if t1 > t0:
            self.intervals.append(
                Interval(rank=self.rank, name=name, t0=t0, t1=t1, span=True)
            )

    def mark(self, name: str, t0: float, t1: float) -> None:
        """Record an explicit ``[t0, t1]`` span at known times.

        Event-style annotation for intervals whose bounds come from
        bookkeeping rather than bracketed execution — fault retries,
        lost-work windows, restart overhead (see
        :class:`repro.solver.driver.FaultRunReport`).  Drawn like any
        other span: overlapping bins render UPPERCASE.
        """
        if t1 > t0:
            self.intervals.append(
                Interval(rank=self.rank, name=name, t0=t0, t1=t1, span=True)
            )


def merge_timelines(
    recorders: Sequence[TimelineRecorder],
) -> List[Interval]:
    """All intervals from all ranks, time-ordered."""
    out = [iv for r in recorders for iv in r.intervals]
    out.sort(key=lambda iv: (iv.t0, iv.rank))
    return out


def _symbol_map(intervals: Sequence[Interval]) -> Dict[str, str]:
    """Stable one-character symbols per region name."""
    symbols = "abcdefghijklmnopqrstuvwxyz"
    names: List[str] = []
    for iv in intervals:
        if iv.name not in names:
            names.append(iv.name)
    return {
        name: symbols[i % len(symbols)] for i, name in enumerate(names)
    }


def render_gantt(
    intervals: Sequence[Interval],
    width: int = 72,
    t_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Text Gantt chart: one row per rank, one column per time bin.

    Each cell shows the symbol of the region covering most of that
    bin; ``.`` marks idle/untracked time (usually a blocked wait).
    Bins covered by both a split-phase *span* (an in-flight exchange,
    see :meth:`TimelineRecorder.open_span`) and an ordinary region show
    the dominant symbol in UPPERCASE, so overlapped communication reads
    directly off the chart.
    """
    if not intervals:
        return "(empty timeline)"
    if t_range is None:
        t_lo = min(iv.t0 for iv in intervals)
        t_hi = max(iv.t1 for iv in intervals)
    else:
        t_lo, t_hi = t_range
    span = max(t_hi - t_lo, 1e-30)
    dt = span / width
    ranks = sorted({iv.rank for iv in intervals})
    sym = _symbol_map(intervals)

    rows = []
    for rank in ranks:
        cover: List[Dict[str, float]] = [dict() for _ in range(width)]
        span_cover = [0.0] * width
        region_cover = [0.0] * width
        for iv in intervals:
            if iv.rank != rank:
                continue
            b0 = max(int((iv.t0 - t_lo) / dt), 0)
            b1 = min(int((iv.t1 - t_lo) / dt), width - 1)
            for b in range(b0, b1 + 1):
                bin_lo = t_lo + b * dt
                bin_hi = bin_lo + dt
                overlap = min(iv.t1, bin_hi) - max(iv.t0, bin_lo)
                if overlap > 0:
                    cover[b][iv.name] = cover[b].get(iv.name, 0.0) + overlap
                    if iv.span:
                        span_cover[b] += overlap
                    else:
                        region_cover[b] += overlap
        cells = []
        for b in range(width):
            if not cover[b]:
                cells.append(".")
            else:
                name = max(cover[b], key=cover[b].get)
                cell = sym[name]
                if span_cover[b] > 0 and region_cover[b] > 0:
                    cell = cell.upper()
                cells.append(cell)
        rows.append(f"rank {rank:4d} |{''.join(cells)}|")

    legend = "  ".join(f"{s}={name}" for name, s in sym.items())
    header = (
        f"t = [{t_lo:.3e}, {t_hi:.3e}] s, {width} bins of {dt:.3e} s   "
        "('.' = blocked/idle, UPPERCASE = overlapped regions)"
    )
    return "\n".join([header] + rows + [legend])


def utilization(
    recorders: Sequence[TimelineRecorder], total_time: float
) -> List[float]:
    """Per-rank fraction of time covered by recorded regions."""
    out = []
    for r in sorted(recorders, key=lambda r: r.rank):
        busy = sum(iv.duration for iv in r.intervals)
        out.append(busy / total_time if total_time > 0 else 0.0)
    return out
