"""mpiP-style report rendering (Figs. 8, 9, 10 of the paper).

The raw data comes from :class:`repro.mpi.profiler.JobProfile`; this
module turns it into the three views the paper plots:

* :func:`mpi_fraction_report` — "% time spent in MPI calls across all
  MPI processes", one value per rank (Fig. 8);
* :func:`top_calls_report` — "Time spent in the 20 most expensive MPI
  calls" by (operation, call site) (Fig. 9);
* :func:`message_size_report` — "Total and average size of messages
  sent in the most frequently called MPI calls" (Fig. 10).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..mpi.profiler import JobProfile, SiteAggregate
from .tables import render_histogram, render_table


def mpi_fraction_report(profile: JobProfile, bars: bool = True) -> str:
    """Per-rank percentage of virtual time inside MPI (Fig. 8)."""
    fractions = profile.mpi_fractions()
    header = "% time spent in MPI calls across all MPI processes"
    if bars:
        labels = [f"rank {r:4d}" for r in range(len(fractions))]
        body = render_histogram(
            labels, [100.0 * f for f in fractions], unit="%"
        )
    else:
        body = render_table(
            ["rank", "MPI %"],
            [(r, 100.0 * f) for r, f in enumerate(fractions)],
        )
    agg = summarize_fractions(profile)
    tail = (
        f"mean={agg[0]:.2f}%  min={agg[1]:.2f}%  max={agg[2]:.2f}%  "
        f"(imbalance max/mean = {agg[3]:.2f})"
    )
    # The other side of the same coin: waiting ranks are the *victims*
    # of imbalance, the compute spread names the culprits.  Reporting
    # both shows load balancing shrinking the cause and the symptom.
    cmean, cmin, cmax, cimb = summarize_compute(profile)
    tail += (
        f"\ncompute (non-MPI) per rank: mean={cmean:.6g}s  "
        f"min={cmin:.6g}s  max={cmax:.6g}s  "
        f"(imbalance max/mean = {cimb:.2f})"
    )
    return f"{header}\n{body}\n{tail}"


def summarize_fractions(
    profile: JobProfile,
) -> Tuple[float, float, float, float]:
    """(mean %, min %, max %, max/mean imbalance) of per-rank MPI time."""
    return summarize_values([100.0 * f for f in profile.mpi_fractions()])


def summarize_values(values) -> Tuple[float, float, float, float]:
    """(mean, min, max, max/mean imbalance) of any per-rank series.

    Shared by the executed-profile summaries above and the *modeled*
    per-rank series the virtual scale-out engine produces
    (:mod:`repro.vscale`), which have no :class:`JobProfile` behind
    them — only arrays of modeled seconds or percentages.
    """
    fr = [float(v) for v in values]
    mean = sum(fr) / len(fr) if fr else 0.0
    mx = max(fr, default=0.0)
    mn = min(fr, default=0.0)
    return mean, mn, mx, (mx / mean if mean else 0.0)


def modeled_fraction_report(
    fractions_pct, title: str = "% time in MPI (modeled)"
) -> str:
    """mpiP Fig. 8-style summary for a *modeled* per-rank MPI series.

    At 10^4-10^5 virtual ranks a per-rank histogram is unreadable, so
    the modeled report shows the distribution by percentile instead —
    same headline aggregates as :func:`summarize_fractions`.
    """
    fr = [float(v) for v in fractions_pct]
    if not fr:
        return f"{title}\n(no ranks)"
    fr.sort()
    nr = len(fr)

    def pct(p: float) -> float:
        return fr[min(nr - 1, int(p / 100.0 * nr))]

    rows = [
        ("min", fr[0]),
        ("p25", pct(25.0)),
        ("p50", pct(50.0)),
        ("p75", pct(75.0)),
        ("p95", pct(95.0)),
        ("max", fr[-1]),
    ]
    body = render_table(
        ["percentile", "MPI %"], [(k, round(v, 3)) for k, v in rows]
    )
    mean, mn, mx, imb = summarize_values(fr)
    tail = (
        f"ranks={nr}  mean={mean:.2f}%  min={mn:.2f}%  max={mx:.2f}%  "
        f"(imbalance max/mean = {imb:.2f})"
    )
    return f"{title}\n{body}\n{tail}"


def summarize_compute(
    profile: JobProfile,
) -> Tuple[float, float, float, float]:
    """(mean s, min s, max s, max/mean imbalance) of per-rank *compute*.

    Compute here is everything outside MPI: per-rank app time minus
    MPI time from the profile's rank totals.  This is the quantity
    dynamic load balancing acts on directly — before/after-LB reports
    should show this spread shrinking along with the MPI fractions.
    """
    comp = [
        max(app - mpi, 0.0)
        for app, mpi in profile.rank_totals.values()
    ]
    if not comp:
        return 0.0, 0.0, 0.0, 0.0
    mean = sum(comp) / len(comp)
    mx, mn = max(comp), min(comp)
    return mean, mn, mx, (mx / mean if mean else 0.0)


def op_share(profile: JobProfile, op: str) -> float:
    """One operation's share of total MPI time (e.g. ``"MPI_Wait"``)."""
    by_op = profile.by_op()
    total = sum(by_op.values())
    return by_op.get(op, 0.0) / total if total else 0.0


def top_calls_report(profile: JobProfile, n: int = 20) -> str:
    """The n most expensive (operation, site) pairs (Fig. 9)."""
    rows = profile.top_sites(n)
    table = render_table(
        ["MPI call", "site", "count", "time (s)", "app %", "MPI %"],
        [
            (r.op, r.site, r.count, r.vtime, r.app_pct, r.mpi_pct)
            for r in rows
        ],
    )
    return f"Time spent in the {n} most expensive MPI calls\n{table}"


def message_size_report(
    profile: JobProfile, n: int = 20, ops: Optional[List[str]] = None
) -> str:
    """Total and average message sizes of frequent calls (Fig. 10)."""
    rows = profile.message_size_rows(n, ops=ops)
    table = render_table(
        ["MPI call", "site", "count", "total bytes", "avg bytes"],
        [
            (r.op, r.site, r.count, r.bytes_total, round(r.bytes_avg, 1))
            for r in rows
        ],
    )
    return (
        "Total and average size of messages sent in the most frequently "
        f"called MPI calls\n{table}"
    )


def wait_dominance(profile: JobProfile) -> Tuple[str, float]:
    """(dominant op name, its share of total MPI time).

    The paper's Fig. 9 observation — "a large amount of time is spent
    in MPI_Wait for synchronization" — is checked against this.
    """
    by_op = profile.by_op()
    if not by_op:
        return "", 0.0
    total = sum(by_op.values()) or 1.0
    op, t = max(by_op.items(), key=lambda kv: kv[1])
    return op, t / total


def split_phase_report(profile: JobProfile) -> str:
    """Begin/finish attribution of split-phase gather-scatter sites.

    ``gs_op_begin`` posts under ``<site>:begin`` (isend/irecv overhead)
    and ``gs_op_finish`` waits under ``<site>:finish``, so an
    overlapped run's exchange cost splits into the posting overhead —
    paid unconditionally — and the finishing wait, which is exactly the
    *exposed* (un-hidden) communication.  Sites without the suffix are
    blocking calls and are listed unsplit.
    """
    begin: dict = {}
    finish: dict = {}
    for row in profile.aggregates():
        if row.site.endswith(":begin"):
            base = row.site[: -len(":begin")]
            begin[base] = begin.get(base, 0.0) + row.vtime
        elif row.site.endswith(":finish"):
            base = row.site[: -len(":finish")]
            finish[base] = finish.get(base, 0.0) + row.vtime
    bases = sorted(set(begin) | set(finish))
    if not bases:
        return "Split-phase sites\n(no split-phase gs sites recorded)"
    table = render_table(
        ["site", "begin (post) s", "finish (wait) s", "wait share"],
        [
            (
                b,
                begin.get(b, 0.0),
                finish.get(b, 0.0),
                round(
                    finish.get(b, 0.0)
                    / ((begin.get(b, 0.0) + finish.get(b, 0.0)) or 1.0),
                    3,
                ),
            )
            for b in bases
        ],
    )
    return f"Split-phase sites (post vs exposed wait)\n{table}"


def fault_report(profile: JobProfile) -> str:
    """Fault-injection pseudo-callsites (crashes, retries, checkpoint IO).

    The fault layer records informational rows under the ``FAULT_*``
    and ``IO_*`` pseudo-ops: ``FAULT_Crash`` marks an injected rank
    kill, ``FAULT_Retry`` aggregates retransmission penalties per lossy
    link, ``IO_Checkpoint`` the modelled checkpoint read/write time.
    They render like any other mpiP call site but never contribute to
    the MPI time fraction (their cost already lives inside the
    enclosing operations).
    """
    rows = [
        r for r in profile.aggregates()
        if r.op.startswith("FAULT_") or r.op.startswith("IO_")
    ]
    if not rows:
        return "Fault events\n(no fault or checkpoint events recorded)"
    table = render_table(
        ["event", "site", "count", "time (s)", "bytes"],
        [(r.op, r.site, r.count, r.vtime, r.bytes_total) for r in rows],
    )
    return f"Fault events (injected faults, retries, checkpoint IO)\n{table}"


def lb_report(profile: JobProfile) -> str:
    """Load-balancing call sites and pseudo-events.

    The LB subsystem's traffic is attributed to dedicated mpiP call
    sites — ``LB_monitor`` (cost allgathers), ``LB_migrate`` (element
    envelopes over the crystal router), ``LB_gs_rebuild`` (handle
    re-discovery) — plus informational pseudo-ops: ``LB_Migrate``
    (per-event migration cost/volume), ``LB_Rebuild``, and
    ``PART_Migrate`` (particle tracker exchanges).  Informational rows
    never inflate the MPI fraction.
    """
    rows = [
        r for r in profile.aggregates()
        if r.site.startswith("LB_")
        or r.op.startswith("LB_")
        or r.op.startswith("PART_")
    ]
    if not rows:
        return "Load balancing\n(no load-balancing activity recorded)"
    table = render_table(
        ["op", "site", "count", "time (s)", "bytes"],
        [(r.op, r.site, r.count, r.vtime, r.bytes_total) for r in rows],
    )
    return f"Load balancing (monitoring, migration, rebuild)\n{table}"


def full_report(profile: JobProfile, top_n: int = 20) -> str:
    """All three mpiP-style sections in one string."""
    return "\n\n".join(
        [
            mpi_fraction_report(profile),
            top_calls_report(profile, top_n),
            message_size_report(profile, top_n),
        ]
    )


def aggregates_by_op(profile: JobProfile) -> List[SiteAggregate]:
    """Site aggregates re-merged by op name only (coarse view)."""
    merged = {}
    for row in profile.aggregates():
        cur = merged.get(row.op)
        if cur is None:
            merged[row.op] = SiteAggregate(
                op=row.op,
                site="*",
                count=row.count,
                vtime=row.vtime,
                vtime_mean=0.0,
                vtime_max=row.vtime_max,
                bytes_total=row.bytes_total,
                bytes_avg=0.0,
                app_pct=row.app_pct,
                mpi_pct=row.mpi_pct,
            )
        else:
            merged[row.op] = SiteAggregate(
                op=row.op,
                site="*",
                count=cur.count + row.count,
                vtime=cur.vtime + row.vtime,
                vtime_mean=0.0,
                vtime_max=max(cur.vtime_max, row.vtime_max),
                bytes_total=cur.bytes_total + row.bytes_total,
                bytes_avg=0.0,
                app_pct=cur.app_pct + row.app_pct,
                mpi_pct=cur.mpi_pct + row.mpi_pct,
            )
    out = sorted(merged.values(), key=lambda r: r.vtime, reverse=True)
    return [
        SiteAggregate(
            op=r.op,
            site="*",
            count=r.count,
            vtime=r.vtime,
            vtime_mean=r.vtime / r.count if r.count else 0.0,
            vtime_max=r.vtime_max,
            bytes_total=r.bytes_total,
            bytes_avg=r.bytes_total / r.count if r.count else 0.0,
            app_pct=r.app_pct,
            mpi_pct=r.mpi_pct,
        )
        for r in out
    ]
