"""Fixed-width table rendering for paper-style reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.6g}",
    min_width: int = 8,
) -> str:
    """Render rows as an aligned, pipe-free text table.

    Floats go through ``floatfmt``; everything else through ``str``.
    """
    def fmt(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_histogram(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """ASCII bar chart (used for the Fig. 8-10 style plots in text)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = max(values) if values else 1.0
    vmax = vmax or 1.0
    lwidth = max((len(l) for l in labels), default=0)
    lines = []
    for label, v in zip(labels, values):
        bar = "#" * max(1 if v > 0 else 0, int(round(width * v / vmax)))
        lines.append(f"{label.ljust(lwidth)} |{bar} {v:.6g}{unit}")
    return "\n".join(lines)
