"""``python -m repro.net``: join a sockets job as one rank agent."""

from .agent import _cli

if __name__ == "__main__":
    raise SystemExit(_cli())
