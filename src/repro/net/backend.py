"""SocketBackend: ranks as OS processes connected over sockets.

The third execution backend (after ``threads`` and ``procs``): every
rank is an independent OS process — forked locally, or started on
another machine — and all communication crosses TCP or Unix-domain
stream sockets using the framed wire protocol in :mod:`.wire`.

Topology: the driver binds one *rendezvous* listener.  Each rank agent
dials it (``HELLO``), the driver answers with the full peer address
table (``WELCOME``) once all ranks are in, and the agents then build a
direct all-to-all mesh for envelope traffic.  The control connections
stay up for the life of the job carrying heartbeats (blocked/progress
counters for the distributed deadlock watchdog), abort notifications,
and finally each rank's ``EXIT`` record — result, error, virtual
clock, profile, mailbox snapshot, trace, and fault logs — which the
driver folds back into the :class:`~repro.mpi.runtime.Runtime` exactly
as the procs backend does.

Failure semantics: a rank that raises aborts the job through the
driver (one control round-trip; blocked peers wake within a poll
tick).  A rank that dies *hard* — SIGKILL, ``os._exit``, a lost
machine — is detected by control-connection EOF, process liveness, or
heartbeat timeout, and is marshalled as
:class:`~repro.mpi.errors.RankCrashError` (rank intact), so
:func:`repro.solver.driver.run_with_recovery` restores the last
checkpoint and replays, the same contract injected crashes have.

Virtual time, profiles, and physics are bitwise identical to the
threads and procs backends by construction — see
:mod:`repro.net.agent` for why.
"""

from __future__ import annotations

import hmac
import os
import pickle
import secrets
import selectors
import shutil
import socket as _socket
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..mpi.backend import (
    _WATCHDOG_PERIOD,
    _WATCHDOG_STRIKES,
    Backend,
    ExecutionOutcome,
    marshal_exit_records,
)
from ..mpi.errors import AbortError, MPIError, RankCrashError
from .agent import HEARTBEAT_INTERVAL, run_agent
from .hostfile import agent_argv, is_local_host, ssh_command
from .wire import (
    ABORT,
    AUTH,
    EXIT,
    HEARTBEAT,
    HELLO,
    JOB,
    MAX_FRAME_BYTES,
    SHUTDOWN,
    WELCOME,
    FrameSocket,
    TransportError,
    connect,
    make_listener,
)

#: Monitor loop tick (wall seconds).
_POLL = 0.1


def _forked_agent(runtime, rank, main, args, kwargs, rendezvous, token,
                  family, host_label, hb_interval, max_frame,
                  bind_host, advertise_host) -> None:
    """Child body for a locally forked rank agent.

    The fork snapshot carries the Runtime and the job closure, so —
    like the procs backend — ``main`` needs no pickling.  A loopback
    host label becomes ``REPRO_HOST_ID`` so per-"host" state (the
    autotune cache fingerprint) separates even on one machine.
    ``bind_host``/``advertise_host`` shape the peer listener: when the
    job also spans remote hosts, even local agents must advertise an
    address those remote peers can route to.
    """
    if host_label:
        os.environ["REPRO_HOST_ID"] = host_label
    unix_dir = None
    if family == "unix":
        unix_dir = os.path.dirname(rendezvous[1]) or None
    listener, listen_addr = make_listener(
        family, unix_dir=unix_dir, name=f"peer{rank}",
        bind_host=bind_host, advertise_host=advertise_host,
    )
    ctrl = connect(rendezvous, max_frame=max_frame)
    ctrl.send_frame(AUTH, token.encode("ascii"))
    ctrl.send_frame(HELLO, pickle.dumps({
        "rank": rank,
        "listen": listen_addr,
        "host": host_label or _socket.gethostname(),
        "pid": os.getpid(),
        "external": False,
    }))
    frame = ctrl.recv_frame(timeout=60.0)
    if frame is None or frame[0] == SHUTDOWN:
        return  # job cancelled during rendezvous
    if frame[0] != WELCOME:
        raise TransportError(f"expected WELCOME, got {frame[0]!r}")
    welcome = pickle.loads(frame[1])
    run_agent(
        runtime, rank, main, args, kwargs, ctrl, listener,
        welcome["peers"], token, hb_interval=hb_interval,
        max_frame=max_frame,
    )


class SocketBackend(Backend):
    """One OS process per rank, connected over TCP or Unix sockets.

    With no arguments every rank is forked on this machine and the job
    behaves like a multi-process loopback cluster — the mode
    ``Runtime(backend="sockets")`` gives you.  ``hosts`` (a per-rank
    host-label list, usually expanded from a hostfile by ``repro.cli
    launch``) spreads ranks across machines: local labels fork, remote
    labels start an agent over ssh (``python -m repro.net`` must
    find an installed ``repro`` on the far side, and the job must
    pickle).  ``loopback=True`` treats every label as local — forked,
    but with ``REPRO_HOST_ID`` set to the label, so multi-host
    behaviour (per-host autotune caches, host-tagged records) is
    testable on one machine.

    ``external=True`` forces every rank through the ssh-style
    subprocess path (``python -m repro.net`` locally) — the job
    then must be picklable; used to exercise the remote protocol
    without ssh.

    Failure detection knobs: ``hb_interval`` is the agent heartbeat
    cadence, ``hb_timeout`` the silence after which a rank is declared
    dead (the backstop for remote agents; local processes are also
    liveness-polled every monitor tick, which is much faster).

    Addressing: with only local ranks everything binds and advertises
    loopback.  The moment the layout contains a genuinely remote host,
    the driver's rendezvous listener and every local agent's peer
    listener bind ``0.0.0.0`` and advertise this machine's hostname
    (remote agents advertise their hostfile label) — a loopback
    address handed to a remote host would have it dialing itself.
    ``bind_host``/``advertise_host`` override both choices.
    """

    name = "sockets"

    def __init__(
        self,
        family: str = "tcp",
        hosts: Optional[Sequence[str]] = None,
        loopback: bool = False,
        external: bool = False,
        hb_interval: float = HEARTBEAT_INTERVAL,
        hb_timeout: float = 10.0,
        connect_timeout: float = 60.0,
        join_timeout: float = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
        python: str = "python3",
        ssh: Tuple[str, ...] = ("ssh", "-o", "BatchMode=yes"),
        bind_host: Optional[str] = None,
        advertise_host: Optional[str] = None,
    ):
        if family not in ("tcp", "unix"):
            raise MPIError(
                f"unknown socket family {family!r} "
                "(expected 'tcp' or 'unix')"
            )
        self.family = family
        self.hosts = list(hosts) if hosts is not None else None
        self.loopback = loopback
        self.external = external
        self.hb_interval = hb_interval
        self.hb_timeout = hb_timeout
        self.connect_timeout = connect_timeout
        self.join_timeout = join_timeout
        self.max_frame = max_frame
        self.python = python
        self.ssh = tuple(ssh)
        self.bind_host = bind_host
        self.advertise_host = advertise_host

    # -- spawning ------------------------------------------------------

    @staticmethod
    def _context():
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise MPIError(
                "the sockets backend requires the 'fork' start method "
                "for local ranks (POSIX only)"
            )
        return mp.get_context("fork")

    def _listen_policy(
        self, modes: Sequence[Tuple[str, Optional[str]]]
    ) -> Tuple[str, Optional[str]]:
        """``(bind_host, advertise_host)`` for every listener this
        machine binds — the rendezvous socket and local agents' peer
        listeners.

        Loopback is only safe while every rank lives on this machine;
        any ssh rank means remote processes must dial back here, so
        the default flips to bind-all / advertise-hostname.  Explicit
        ``bind_host``/``advertise_host`` settings always win.
        """
        any_remote = any(m == "ssh" for m, _h in modes)
        bind = self.bind_host or ("0.0.0.0" if any_remote else "127.0.0.1")
        adv = self.advertise_host
        if adv is None and any_remote:
            adv = _socket.gethostname()
        return bind, adv

    def _rank_modes(self, n: int) -> List[Tuple[str, Optional[str]]]:
        """Per-rank ``(mode, host_label)``: fork / popen / ssh."""
        modes: List[Tuple[str, Optional[str]]] = []
        for r in range(n):
            host = self.hosts[r] if self.hosts else None
            if self.external:
                modes.append(("popen", host))
            elif host is None or self.loopback or is_local_host(host):
                label = host if (self.loopback and host) else None
                modes.append(("fork", label))
            else:
                modes.append(("ssh", host))
        return modes

    def _job_payload(self, runtime, main, args, kwargs) -> bytes:
        """The pickled JOB frame external agents receive."""
        job = {
            "main": main,
            "args": args,
            "kwargs": kwargs,
            "machine": runtime.machine,
            "time_policy": runtime.time_policy,
            "trace_messages": runtime.trace is not None,
            "fault_plan": (
                runtime.faults.plan if runtime.faults is not None else None
            ),
            "fault_base_step": (
                runtime.faults.base_step
                if runtime.faults is not None else 0
            ),
            "hb_interval": self.hb_interval,
        }
        try:
            return pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise MPIError(
                "the sockets backend needs a picklable job to reach "
                "remote hosts (module-level main, picklable args); "
                f"pickling failed with: {exc}"
            ) from exc

    def _popen_env(self, host_label: Optional[str]) -> Dict[str, str]:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        if host_label:
            env["REPRO_HOST_ID"] = host_label
        return env

    # -- execution -----------------------------------------------------

    def execute(self, runtime, main, args, kwargs) -> ExecutionOutcome:
        n = runtime.nranks
        if self.hosts is not None and len(self.hosts) < n:
            raise MPIError(
                f"sockets backend has {len(self.hosts)} host slots for "
                f"a {n}-rank job; expand the hostfile layout first"
            )
        modes = self._rank_modes(n)
        token = secrets.token_hex(8)
        bind_host, advertise_host = self._listen_policy(modes)
        unix_dir = None
        if self.family == "unix":
            unix_dir = tempfile.mkdtemp(prefix="repro-net-")
        listener, address = make_listener(
            self.family, unix_dir=unix_dir, name="rendezvous",
            bind_host=bind_host, advertise_host=advertise_host,
        )
        job_bytes = None
        if any(m in ("popen", "ssh") for m, _h in modes):
            job_bytes = self._job_payload(runtime, main, args, kwargs)
        procs: List[Any] = [None] * n
        try:
            ctx = None
            for r, (mode, label) in enumerate(modes):
                if mode == "fork":
                    if ctx is None:
                        ctx = self._context()
                    p = ctx.Process(
                        target=_forked_agent,
                        args=(runtime, r, main, args, kwargs, address,
                              token, self.family, label,
                              self.hb_interval, self.max_frame,
                              bind_host, advertise_host),
                        name=f"sock-rank-{r}",
                        daemon=True,
                    )
                    p.start()
                    procs[r] = p
                elif mode == "popen":
                    cmd = agent_argv(
                        address, token, r, python=sys.executable,
                        bind_host=bind_host,
                        advertise_host=advertise_host,
                    )
                    procs[r] = subprocess.Popen(
                        cmd, env=self._popen_env(label),
                        stdin=subprocess.DEVNULL,
                    )
                else:  # ssh
                    cmd = ssh_command(
                        label, address, token, r,
                        python=self.python, ssh=self.ssh,
                    )
                    procs[r] = subprocess.Popen(
                        cmd, stdin=subprocess.DEVNULL
                    )
            records, fired = self._monitor(
                runtime, listener, token, procs, modes, job_bytes
            )
        finally:
            try:
                listener.close()
            except OSError:
                pass
            self._reap(procs)
            if unix_dir is not None:
                shutil.rmtree(unix_dir, ignore_errors=True)
        return marshal_exit_records(
            runtime, records, fired, n,
            hard_death=lambda r, code: RankCrashError(
                f"rank {r} terminated unexpectedly "
                f"(no exit record; exit code {code})",
                rank=r,
            ),
        )

    def _reap(self, procs) -> None:
        for p in procs:
            if p is None:
                continue
            if hasattr(p, "is_alive"):  # multiprocessing.Process
                p.join(timeout=self.join_timeout)
                if p.is_alive():  # pragma: no cover - hard hang
                    p.terminate()
                    p.join(timeout=5.0)
            else:  # subprocess.Popen
                try:
                    p.wait(timeout=self.join_timeout)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    p.kill()
                    p.wait(timeout=5.0)

    @staticmethod
    def _exitcode(proc) -> Optional[int]:
        if proc is None:
            return None
        if hasattr(proc, "is_alive"):  # multiprocessing.Process
            proc.join(timeout=5.0)  # reap so exitcode is populated
            return proc.exitcode
        return proc.poll()

    @staticmethod
    def _proc_dead(proc) -> bool:
        if proc is None:
            return True
        if hasattr(proc, "is_alive"):
            return not proc.is_alive()
        return proc.poll() is not None

    def _monitor(
        self,
        runtime,
        listener,
        token: str,
        procs,
        modes,
        job_bytes: Optional[bytes],
    ) -> Tuple[Dict[int, dict], bool]:
        """Rendezvous + run-phase control loop.

        Accepts agent control connections, hands out the peer table,
        then tracks heartbeats, aborts, exits, and deaths until every
        rank is resolved (an exit record or a hard death); finally
        broadcasts SHUTDOWN so agents tear their mesh down together.
        Returns ``(records, watchdog_fired)``.
        """
        n = runtime.nranks
        sel = selectors.DefaultSelector()
        listener.setblocking(False)
        sel.register(listener, selectors.EVENT_READ, ("listener", None))
        token_bytes = token.encode("ascii")
        conns: Dict[int, FrameSocket] = {}
        pending: Dict[FrameSocket, bool] = {}  # fs -> AUTH passed
        meta: Dict[int, dict] = {}
        records: Dict[int, dict] = {}
        hb: Dict[int, Tuple[int, int]] = {}
        last_hb: Dict[int, float] = {}
        welcomed = False
        aborted = False
        fired = False
        strikes = 0
        last_progress = -1
        next_watch = time.monotonic() + _WATCHDOG_PERIOD
        deadline = time.monotonic() + self.connect_timeout

        def broadcast_abort() -> None:
            nonlocal aborted
            if aborted:
                return
            aborted = True
            for fs in conns.values():
                try:
                    fs.send_frame(ABORT, pickle.dumps({}))
                except TransportError:
                    pass

        def hard_death(rank: int) -> None:
            if rank in records:
                return
            records[rank] = {
                "rank": rank,
                "hard_exit": True,
                "exitcode": self._exitcode(procs[rank]),
            }
            broadcast_abort()

        def startup_failure(rank: int, why: str) -> None:
            """A rank died before WELCOME: cancel the whole launch."""
            records[rank] = {
                "rank": rank,
                "hard_exit": True,
                "exitcode": self._exitcode(procs[rank]),
            }
            for r in range(n):
                if r not in records:
                    records[r] = {
                        "rank": r,
                        "result": None,
                        "error": AbortError(
                            f"job aborted during startup: {why}"
                        ),
                        "traceback": "",
                    }
            for fs in conns.values():
                try:
                    fs.send_frame(SHUTDOWN, pickle.dumps({}))
                except TransportError:
                    pass

        def handle_frame(rank: Optional[int], fs: FrameSocket,
                         kind: bytes, body: bytes) -> Optional[int]:
            nonlocal welcomed
            if rank is None and not pending.get(fs, False):
                # Unauthenticated connection: the only acceptable frame
                # is AUTH carrying the raw job token.  Nothing else —
                # and in particular nothing pickled — is looked at
                # before this comparison passes.
                if kind != AUTH or not hmac.compare_digest(
                        body, token_bytes):
                    raise TransportError(
                        "connection failed authentication"
                    )
                pending[fs] = True
                return None
            if kind == HELLO:
                hello = pickle.loads(body)
                r = int(hello["rank"])
                if not 0 <= r < n:
                    raise TransportError(f"HELLO for bogus rank {r}")
                conns[r] = fs
                meta[r] = hello
                pending.pop(fs, None)
                sel.modify(fs.sock, selectors.EVENT_READ, ("agent", r))
                return r
            if rank is None:
                raise TransportError(
                    f"control frame {kind!r} before HELLO"
                )
            if kind == HEARTBEAT:
                beat = pickle.loads(body)
                hb[rank] = (int(beat["blocked"]), int(beat["progress"]))
                last_hb[rank] = time.monotonic()
            elif kind == ABORT:
                broadcast_abort()
            elif kind == EXIT:
                records[rank] = pickle.loads(body)
            return rank

        while len(records) < n:
            for key, _ev in sel.select(timeout=_POLL):
                what, rank = key.data
                if what == "listener":
                    while True:
                        try:
                            conn, _addr = listener.accept()
                        except (BlockingIOError, OSError):
                            break
                        fs = FrameSocket(conn, max_frame=self.max_frame)
                        pending[fs] = False
                        sel.register(
                            conn, selectors.EVENT_READ, ("pending", fs)
                        )
                    continue
                if what == "pending":
                    fs = rank  # data slot carries the FrameSocket
                    rank = None
                else:
                    fs = conns[rank]
                try:
                    frames, eof = fs.drain()
                except TransportError:
                    frames, eof = [], True
                for kind, body in frames:
                    try:
                        rank = handle_frame(rank, fs, kind, body)
                    except Exception:
                        # Failed auth, a corrupt/undecodable pickled
                        # body, a protocol violation: drop only this
                        # connection — one stray or malformed client
                        # must never take the whole job down.  A known
                        # rank's connection falls through to the EOF
                        # path below and is handled as a lost agent.
                        eof = True
                        break
                if eof:
                    pending.pop(fs, None)
                    try:
                        sel.unregister(fs.sock)
                    except (KeyError, ValueError):
                        pass
                    fs.close()
                    if rank is not None and rank not in records:
                        if welcomed:
                            hard_death(rank)
                        else:
                            startup_failure(
                                rank, f"rank {rank} dropped its control "
                                "connection before the job started"
                            )

            now = time.monotonic()

            # Rendezvous complete: publish the peer table (and jobs).
            if not welcomed and len(conns) == n:
                peers = {r: meta[r]["listen"] for r in range(n)}
                doc = pickle.dumps({"nranks": n, "peers": peers})
                for r in range(n):
                    conns[r].send_frame(WELCOME, doc)
                    if meta[r].get("external"):
                        conns[r].send_frame(JOB, job_bytes)
                welcomed = True
                # Start every rank's heartbeat clock now: an agent
                # that wedges before its *first* HEARTBEAT must still
                # trip hb_timeout, or a remote hang waits forever.
                for r in range(n):
                    last_hb.setdefault(r, now)

            # Liveness: a dead process with no exit record (its control
            # socket may still look open through inherited fds or ssh
            # buffering) is a hard death.
            for r in range(n):
                if r in records or not self._proc_dead(procs[r]):
                    continue
                fs = conns.get(r)
                if fs is not None:
                    # One last drain: the EXIT frame may already be
                    # buffered even though the process is gone.
                    try:
                        frames, _eof = fs.drain()
                        for kind, body in frames:
                            handle_frame(r, fs, kind, body)
                    except TransportError:
                        pass
                if r in records:
                    continue
                if welcomed:
                    hard_death(r)
                else:
                    startup_failure(
                        r, f"rank {r} agent exited before the job started"
                    )

            # Heartbeat timeout: the backstop for remote agents whose
            # process handle we cannot poll meaningfully (ssh).  Every
            # rank's clock starts at WELCOME, so a rank that never
            # heartbeats at all still times out.
            if welcomed:
                for r in range(n):
                    if r in records:
                        continue
                    if now - last_hb.get(r, now) > self.hb_timeout:
                        hard_death(r)

            if not welcomed and now > deadline:
                # Rendezvous never completed: every missing rank is a
                # hard death; connected agents get SHUTDOWN below.
                for r in range(n):
                    if r not in records:
                        records[r] = {
                            "rank": r,
                            "hard_exit": True,
                            "exitcode": self._exitcode(procs[r]),
                        }
                break

            # Distributed deadlock watchdog: all live ranks blocked and
            # no matching progress across several consecutive looks.
            if (welcomed and runtime.deadlock_detection
                    and now >= next_watch):
                next_watch = now + _WATCHDOG_PERIOD
                live = [r for r in range(n) if r not in records]
                if live:
                    blocked = sum(hb.get(r, (0, 0))[0] for r in live)
                    progress = sum(hb.get(r, (0, 0))[1] for r in range(n))
                    if blocked >= len(live) and progress == last_progress:
                        strikes += 1
                        if strikes >= _WATCHDOG_STRIKES:
                            fired = True
                            broadcast_abort()
                    else:
                        strikes = 0
                    last_progress = progress

        # All ranks resolved: release the mesh everywhere at once.
        for fs in conns.values():
            try:
                fs.send_frame(SHUTDOWN, pickle.dumps({}))
            except TransportError:
                pass
        sel.close()
        for fs in conns.values():
            fs.close()
        for fs in pending:  # stray connections still dangling
            fs.close()
        return records, fired
