"""Rank agent: one OS process carrying one rank over sockets.

The agent's life cycle, whether it was forked by the driver or spawned
on another machine over ssh:

1. bind a *peer listener* (the socket other ranks will connect to);
2. connect to the driver's rendezvous address, authenticate with a
   raw-bytes ``AUTH`` frame (the job token), then send ``HELLO`` with
   its rank and listen address;
3. wait for ``WELCOME`` carrying the full peer address table (an
   external agent also receives a ``JOB`` frame with the pickled work);
4. build the peer mesh — connect to every lower rank, accept from
   every higher rank (each connection opens with ``AUTH`` then
   ``PEER_HELLO``; nothing is unpickled from a peer that has not
   presented the token);
5. patch its private :class:`~repro.mpi.runtime.Runtime` copy exactly
   as the procs backend patches a forked child — remote mailboxes
   become :class:`_PeerMailbox` stubs, the abort event becomes a
   :class:`_RemoteAbort` that also notifies the driver — and run the
   rank under :func:`repro.mpi.backend.run_rank`;
6. ship the exit record (result, error, clock, profile, snapshot,
   trace, fault logs) in an ``EXIT`` frame, then wait for ``SHUTDOWN``
   before closing the mesh, so late sends from slower peers land in
   the unmatched mailbox queue instead of a dead socket — the exact
   semantics a finished rank has under the threads backend.

Virtual-time parity with threads/procs holds by construction: the
envelope (with its ``wire_vtime`` and ``seq``) is pickled whole, the
destination's real :class:`~repro.mpi.transport.Mailbox` does the
matching, and ``ChannelSeq`` stays process-local (each ``(src, dst)``
counter is only ever advanced by ``src``, so local counters reproduce
the shared numbering — which keeps fault-injection drop decisions
identical too).
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import threading
import time
import traceback
from typing import Dict, Optional

from ..mpi.backend import run_rank
from ..mpi.errors import AbortError
from ..mpi.shm import dump_envelope, load_envelope
from ..mpi.transport import BlockTracker, ChannelSeq
from .wire import (
    ABORT,
    AUTH,
    ENVELOPE,
    EXIT,
    FLUSH,
    FLUSH_ACK,
    HEARTBEAT,
    HELLO,
    JOB,
    PEER_HELLO,
    SHUTDOWN,
    WELCOME,
    FrameSocket,
    TransportError,
    connect,
    make_listener,
    parse_address,
)

#: Heartbeat cadence (wall seconds).  Must be comfortably shorter than
#: the driver's watchdog period so blocked/progress samples are fresh.
HEARTBEAT_INTERVAL = 0.2

#: How long a finished agent waits for the driver's SHUTDOWN before
#: giving up and exiting anyway (driver died).
_SHUTDOWN_WAIT = 60.0

#: Peer-mesh accept/connect patience (wall seconds).
_MESH_TIMEOUT = 30.0

#: How long an aborting rank waits for every peer to acknowledge that
#: its in-flight envelopes are delivered before the driver is told of
#: the failure.  Live peers' rx threads answer immediately; the bound
#: only matters when a peer is itself dead or wedged.
_FLUSH_TIMEOUT = 5.0


class _RemoteAbort:
    """The job abort event, distributed.

    Looks like a :class:`threading.Event` to ``wait_event`` and
    ``run_rank``; additionally, the first local ``set()`` notifies the
    driver with an ``ABORT`` frame so every other agent learns of the
    failure within one control round-trip.  ``set_local()`` is the
    no-notify variant used when the abort *came from* the driver.
    """

    def __init__(self, ctrl: FrameSocket):
        self._event = threading.Event()
        self._ctrl = ctrl
        self._notify_lock = threading.Lock()
        self._notified = False
        #: Installed by :func:`run_agent` once the mesh is up; runs the
        #: FLUSH/FLUSH_ACK fence against every peer.
        self.flush_peers = None

    def set(self) -> None:
        self._event.set()
        with self._notify_lock:
            if self._notified:
                return
            self._notified = True
        # Determinism fence: envelopes ride the direct peer
        # connections while the abort rides the control connection —
        # two unordered TCP streams.  Before the driver (and through
        # it every peer) learns of this failure, make every peer
        # acknowledge it has delivered the envelopes this rank already
        # sent; otherwise a survivor could observe the abort before
        # consuming them, and its virtual clock at abort would depend
        # on thread scheduling instead of the fault plan (the
        # completion-wins contract in ``wait_event``).
        if self.flush_peers is not None:
            try:
                self.flush_peers()
            except Exception:
                pass  # best effort; the abort must still go out
        try:
            self._ctrl.send_frame(ABORT, pickle.dumps({}))
        except TransportError:
            pass  # driver gone; local abort already set

    def set_local(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


class _PeerMailbox:
    """Sender-side stand-in for a remote rank's mailbox.

    Exposes the one method senders call on a remote mailbox
    (``deliver``); the envelope is framed onto the direct rank-to-rank
    connection and matched inside the destination process.  A send
    failure means the peer died hard — the local job is aborted so the
    sender never computes on in a half-dead job.
    """

    __slots__ = ("_fs", "_abort", "_closing", "_dst")

    def __init__(self, fs: FrameSocket, abort: _RemoteAbort,
                 closing: threading.Event, dst: int):
        self._fs = fs
        self._abort = abort
        self._closing = closing
        self._dst = dst

    def deliver(self, env) -> None:
        try:
            self._fs.send_frame(ENVELOPE, dump_envelope(env))
        except TransportError:
            if self._closing.is_set():
                return
            self._abort.set()
            raise AbortError(
                f"send to rank {self._dst} failed: peer connection lost"
            ) from None


def _peer_rx(fs: FrameSocket, mailbox, tracker, abort: _RemoteAbort,
             closing: threading.Event, ack: threading.Event) -> None:
    """Drain one peer connection's envelopes into the local mailbox."""
    while True:
        try:
            frame = fs.recv_frame(timeout=None)
        except TransportError:
            frame = None
        if frame is None:
            # Peer hung up: expected during shutdown, a hard death
            # otherwise (the driver notices too; the local abort just
            # wakes this rank's blocked waits sooner).  EOF is ordered
            # after everything the peer sent, so it doubles as the
            # flush acknowledgement.
            ack.set()
            if not closing.is_set():
                abort.set_local()
            return
        kind, body = frame
        if kind == ENVELOPE:
            mailbox.deliver(load_envelope(body))
            tracker.bump()
        elif kind == FLUSH:
            # Every envelope that preceded this marker on the stream
            # has been delivered just above — tell the peer so.
            try:
                fs.send_frame(FLUSH_ACK, b"")
            except TransportError:
                pass
        elif kind == FLUSH_ACK:
            ack.set()


def _ctrl_rx(ctrl: FrameSocket, abort: _RemoteAbort,
             shutdown: threading.Event) -> None:
    """Watch the control connection for ABORT/SHUTDOWN (or driver death)."""
    while True:
        try:
            frame = ctrl.recv_frame(timeout=None)
        except TransportError:
            frame = None
        if frame is None:
            # Driver died: nothing can collect our record; bail out.
            abort.set_local()
            shutdown.set()
            return
        kind, _body = frame
        if kind == ABORT:
            abort.set_local()
        elif kind == SHUTDOWN:
            shutdown.set()
            return


def _heartbeat_loop(ctrl: FrameSocket, tracker: BlockTracker,
                    stop: threading.Event, interval: float) -> None:
    while not stop.wait(interval):
        try:
            ctrl.send_frame(HEARTBEAT, pickle.dumps({
                "blocked": tracker.blocked,
                "progress": tracker.progress_value,
            }))
        except TransportError:
            return


def _build_mesh(rank: int, nranks: int, listener: socket.socket,
                peers: Dict[int, tuple], token: str,
                max_frame: int) -> Dict[int, FrameSocket]:
    """Open one direct connection per peer rank.

    Rank ``i`` dials every rank ``j < i`` and accepts from every
    ``j > i``; each dialing side opens with a raw-bytes ``AUTH`` frame
    (the job token) followed by ``PEER_HELLO`` so the accepting side
    knows who called.  Nothing is unpickled from a connection until
    its token has passed ``hmac.compare_digest``, and a connection
    that fails authentication — a port scanner, a stray client, a
    corrupt stream — is simply dropped while the acceptor keeps
    waiting for the real peers.  The listener backlog covers all
    inbound peers, so the sequential connect-then-accept order cannot
    deadlock.
    """
    socks: Dict[int, FrameSocket] = {}
    errors: list = []
    token_bytes = token.encode("ascii")

    def _auth_one(fs: FrameSocket, timeout: float) -> bool:
        """Authenticate one inbound connection; ``True`` iff it is a
        real peer (now recorded in ``socks``)."""
        try:
            frame = fs.recv_frame(timeout=timeout)
            if (frame is None or frame[0] != AUTH
                    or not hmac.compare_digest(frame[1], token_bytes)):
                raise TransportError("peer failed authentication")
            frame = fs.recv_frame(timeout=timeout)
            if frame is None or frame[0] != PEER_HELLO:
                raise TransportError(
                    "peer connection did not open with PEER_HELLO"
                )
            socks[int(pickle.loads(frame[1])["rank"])] = fs
            return True
        except Exception:  # stray/hostile/corrupt: drop it, keep going
            fs.close()
            return False

    def _accept_loop() -> None:
        deadline = time.monotonic() + _MESH_TIMEOUT
        got = 0
        while got < nranks - 1 - rank:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                errors.append(TransportError(
                    "timed out waiting for inbound peer connections"
                ))
                return
            listener.settimeout(remaining)
            try:
                conn, _addr = listener.accept()
            except (socket.timeout, TimeoutError):
                continue  # deadline check decides
            except OSError as exc:  # listener broken: cannot recover
                errors.append(exc)
                return
            if _auth_one(FrameSocket(conn, max_frame=max_frame),
                         timeout=remaining):
                got += 1

    acceptor = threading.Thread(
        target=_accept_loop, name=f"mesh-accept-{rank}", daemon=True
    )
    acceptor.start()
    for j in range(rank):
        fs = connect(peers[j], timeout=_MESH_TIMEOUT, max_frame=max_frame)
        fs.send_frame(AUTH, token_bytes)
        fs.send_frame(PEER_HELLO, pickle.dumps({"rank": rank}))
        socks[j] = fs
    acceptor.join(timeout=_MESH_TIMEOUT + 5.0)
    if acceptor.is_alive():
        raise TransportError(
            f"rank {rank}: timed out waiting for inbound peer connections"
        )
    if errors:
        raise TransportError(
            f"rank {rank}: peer mesh setup failed: {errors[0]}"
        ) from errors[0]
    return socks


def _exit_conn(ctrl: FrameSocket):
    """Adapt the control socket to the exit-record pipe interface."""

    class _Conn:
        @staticmethod
        def send(record: dict) -> None:
            ctrl.send_frame(EXIT, pickle.dumps(record))

    return _Conn()


def run_agent(runtime, rank: int, main, args, kwargs,
              ctrl: FrameSocket, listener: socket.socket,
              peers: Dict[int, tuple], token: str,
              hb_interval: float = HEARTBEAT_INTERVAL,
              max_frame: int = 0) -> None:
    """Body of one rank agent, from WELCOME to SHUTDOWN.

    ``runtime`` is this process's private copy (fork snapshot or a
    freshly built one for external agents); it is patched in place the
    way :func:`repro.mpi.backend._rank_process` patches a forked
    child.  Always ships an exit record — even on setup failure — and
    always waits for the driver's SHUTDOWN before tearing the mesh
    down.
    """
    from ..mpi.backend import _send_record

    max_frame = max_frame or ctrl.max_frame
    record: dict = {"rank": rank}
    abort = _RemoteAbort(ctrl)
    closing = threading.Event()
    shutdown = threading.Event()
    tracker = BlockTracker()
    local_box = runtime._mailboxes[rank]
    hb_stop = threading.Event()
    peer_socks: Dict[int, FrameSocket] = {}

    ctrl_thread = threading.Thread(
        target=_ctrl_rx, args=(ctrl, abort, shutdown),
        name=f"ctrl-{rank}", daemon=True,
    )
    ctrl_thread.start()
    hb_thread = threading.Thread(
        target=_heartbeat_loop, args=(ctrl, tracker, hb_stop, hb_interval),
        name=f"hb-{rank}", daemon=True,
    )
    hb_thread.start()
    try:
        peer_socks = _build_mesh(
            rank, runtime.nranks, listener, peers, token, max_frame
        )
        acks = {r: threading.Event() for r in peer_socks}

        def flush_peers() -> None:
            for r, fs in peer_socks.items():
                try:
                    fs.send_frame(FLUSH, b"")
                except TransportError:
                    acks[r].set()  # connection gone: nothing in flight
            deadline = time.monotonic() + _FLUSH_TIMEOUT
            for r in peer_socks:
                acks[r].wait(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )

        abort.flush_peers = flush_peers
        runtime.abort_event = abort
        runtime.tracker = tracker
        runtime.seq = ChannelSeq()
        runtime._mailboxes = [
            local_box
            if r == rank
            else _PeerMailbox(peer_socks[r], abort, closing, r)
            for r in range(runtime.nranks)
        ]
        for r, fs in peer_socks.items():
            threading.Thread(
                target=_peer_rx,
                args=(fs, local_box, tracker, abort, closing, acks[r]),
                name=f"rx-{rank}-from-{r}", daemon=True,
            ).start()
        comm = runtime.world_comm(rank)
        result, error, tb = run_rank(main, comm, args, kwargs, abort)
        record.update(result=result, error=error, traceback=tb)
    except BaseException as exc:  # noqa: BLE001 - setup failure
        record.update(
            result=None, error=exc, traceback=traceback.format_exc()
        )
        abort.set()
    finally:
        hb_stop.set()
        record["clock"] = runtime._clocks[rank]
        record["profile"] = runtime._profiles[rank]
        record["snapshot"] = local_box.snapshot()
        record["pid"] = os.getpid()
        if runtime.trace is not None:
            record["trace"] = list(runtime.trace._per_rank[rank])
        if runtime.faults is not None:
            record["crash_log"] = list(runtime.faults.crash_log)
            record["drop_log"] = list(runtime.faults.drop_log)
        try:
            _send_record(_exit_conn(ctrl), record, rank, abort,
                         backend="sockets")
        except TransportError:
            pass  # driver gone; nothing left to report to
        # Keep the mesh open until every rank's record is in: a slower
        # peer may still be sending to this (finished) rank, and those
        # envelopes must land in the unmatched queue, not a RST.
        shutdown.wait(timeout=_SHUTDOWN_WAIT)
        closing.set()
        for fs in peer_socks.values():
            fs.close()
        try:
            listener.close()
        except OSError:
            pass
        ctrl.close()


# -- external (ssh / subprocess) agent entry ---------------------------


def external_agent(connect_to: tuple, token: str, rank: int,
                   family: str = "tcp",
                   bind_host: str = "127.0.0.1",
                   advertise_host: Optional[str] = None) -> int:
    """``python -m repro.net``: join a job from a fresh process.

    Unlike a forked agent this process shares no memory with the
    driver, so the work arrives as a ``JOB`` frame: a pickled bundle of
    ``main``/``args``/``kwargs`` plus the Runtime construction
    parameters (machine model, time policy, fault plan, trace flag).
    The driver refuses unpicklable jobs up front with a clear error.
    ``bind_host``/``advertise_host`` shape the peer listener address
    published in ``HELLO`` — an agent on another machine must bind a
    real interface and advertise a name its peers can route to.
    """
    from ..mpi.runtime import Runtime

    unix_dir = None
    if family == "unix":
        unix_dir = os.path.dirname(connect_to[1]) or None
    listener, listen_addr = make_listener(
        family, unix_dir=unix_dir, name=f"peer{rank}",
        bind_host=bind_host, advertise_host=advertise_host,
    )
    ctrl = connect(connect_to)
    ctrl.send_frame(AUTH, token.encode("ascii"))
    ctrl.send_frame(HELLO, pickle.dumps({
        "rank": rank,
        "listen": listen_addr,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "external": True,
    }))
    frame = ctrl.recv_frame(timeout=_MESH_TIMEOUT)
    if frame is None or frame[0] != WELCOME:
        raise TransportError("rendezvous did not answer with WELCOME")
    welcome = pickle.loads(frame[1])
    frame = ctrl.recv_frame(timeout=_MESH_TIMEOUT)
    if frame is None or frame[0] != JOB:
        raise TransportError("driver did not ship a JOB frame")
    job = pickle.loads(frame[1])

    runtime = Runtime(
        nranks=int(welcome["nranks"]),
        machine=job["machine"],
        time_policy=job["time_policy"],
        trace_messages=job["trace_messages"],
        fault_plan=job["fault_plan"],
        fault_base_step=job["fault_base_step"],
    )
    run_agent(
        runtime, rank, job["main"], job["args"], job["kwargs"],
        ctrl, listener, welcome["peers"], token,
        hb_interval=job.get("hb_interval", HEARTBEAT_INTERVAL),
    )
    return 0


def _cli(argv=None) -> int:
    import argparse

    p = argparse.ArgumentParser(
        prog="repro.net",
        description="join a repro sockets job as one rank agent",
    )
    p.add_argument("--connect", required=True,
                   help="rendezvous address (tcp:host:port or unix:path)")
    p.add_argument("--token", required=True, help="job token")
    p.add_argument("--rank", type=int, required=True,
                   help="world rank this agent carries")
    p.add_argument("--bind-host", default="127.0.0.1",
                   help="interface the peer listener binds "
                        "(0.0.0.0 for all; default loopback)")
    p.add_argument("--advertise-host", default=None,
                   help="host peers are told to dial (default: the "
                        "bind host, or this machine's hostname when "
                        "binding a wildcard)")
    args = p.parse_args(argv)
    address = parse_address(args.connect)
    return external_agent(address, args.token, args.rank,
                          family=address[0],
                          bind_host=args.bind_host,
                          advertise_host=args.advertise_host)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(_cli())
