"""Cross-machine rank execution over sockets.

``repro.net`` moves the simulated MPI job off a single machine: the
:class:`~repro.net.backend.SocketBackend` runs every rank as its own
OS process — forked locally or started over ssh from a hostfile — and
carries envelopes, heartbeats, and exit records over TCP or
Unix-domain sockets using the framed protocol in
:mod:`repro.net.wire`.  Virtual time, profiles, and physics stay
bitwise identical to the in-process backends.
"""

from .backend import SocketBackend
from .hostfile import (
    HostEntry,
    HostfileError,
    parse_hostfile,
    rank_layout,
    read_hostfile,
    total_slots,
)
from .wire import MAX_FRAME_BYTES, FrameSocket, TransportError

__all__ = [
    "SocketBackend",
    "HostEntry",
    "HostfileError",
    "parse_hostfile",
    "rank_layout",
    "read_hostfile",
    "total_slots",
    "MAX_FRAME_BYTES",
    "FrameSocket",
    "TransportError",
]
