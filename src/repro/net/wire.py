"""Length-prefixed framed wire protocol for the sockets backend.

Every byte that crosses a connection — rank-to-rank envelopes and
driver control records alike — travels as one *frame*::

    +-------+------+-----------------+---------------------+
    | magic | kind | length (uint32) | body (length bytes) |
    | 2 B   | 1 B  | big-endian      |                     |
    +-------+------+-----------------+---------------------+

The 7-byte header is ``struct`` packed (``!2ssI``).  ``kind`` selects
the payload interpretation: :data:`ENVELOPE` bodies are pickled
:class:`~repro.mpi.transport.Envelope` records (the same
``dump_envelope`` bytes the shm rings carry), everything else is a
pickled dict.  ``length`` is validated against ``max_frame`` *before*
any body byte is read, so a corrupt or hostile peer cannot make a
receiver allocate unbounded memory.

:class:`FrameSocket` wraps a connected socket with the two properties
the backend needs:

* **Atomic writes.**  ``send_frame`` holds a lock around one
  ``sendall`` of header+body, so concurrent writer threads (the rank's
  sends, its heartbeat thread, an abort notification) can share a
  connection without interleaving partial frames.
* **Resumable reads.**  The receive buffer survives timeouts: a
  partial frame stays buffered and the next ``recv_frame`` call picks
  up where the stream left off, so slow or byte-at-a-time senders cost
  patience, never correctness.  A clean EOF *between* frames returns
  ``None``; an EOF *inside* a frame — or a bad magic, an unknown kind,
  an oversize declared length — raises :class:`TransportError`.
"""

from __future__ import annotations

import os
import socket
import struct
import tempfile
import threading
from typing import List, Optional, Tuple

from ..mpi.errors import MPIError

#: Frame header: magic, kind byte, big-endian uint32 body length.
_HEADER = struct.Struct("!2ssI")
HEADER_BYTES = _HEADER.size

#: Protocol magic — the first two bytes of every frame.
MAGIC = b"Rw"

#: Hard ceiling on one frame's body (1 GiB).  Large solver payloads
#: pickle to tens of MB; anything near this bound is a framing bug or
#: a corrupt stream, not a message.
MAX_FRAME_BYTES = 1 << 30

# -- frame kinds -------------------------------------------------------
#: First frame on every dialed connection: the raw job token.  The
#: body is raw bytes (never pickled) and is compared with
#: ``hmac.compare_digest`` before any pickled frame is accepted on the
#: connection, so an unauthenticated peer can never reach
#: ``pickle.loads``.
AUTH = b"T"
#: Agent -> driver: join the job (rank, peer listen address).
HELLO = b"H"
#: Driver -> agent: job admitted (nranks + the full peer table).
WELCOME = b"W"
#: Driver -> external agent: the pickled job to run (main/args/model).
JOB = b"J"
#: Rank -> rank: one pickled message envelope.
ENVELOPE = b"E"
#: Rank -> rank, first frame on a mesh connection: who is calling.
PEER_HELLO = b"P"
#: Rank -> rank: "acknowledge once every envelope I sent before this
#: marker has been delivered" — the determinism fence an aborting rank
#: runs before the driver broadcasts its failure.
FLUSH = b"F"
#: Rank -> rank: the answer to FLUSH (sent by the receiver's rx thread
#: *after* delivering everything that preceded the marker in-stream).
FLUSH_ACK = b"K"
#: Agent -> driver: liveness + blocked/progress counters.
HEARTBEAT = b"B"
#: Either direction: a rank failed; stop the job.
ABORT = b"A"
#: Agent -> driver: the rank's exit record (result/clock/profile/...).
EXIT = b"X"
#: Driver -> agent: all ranks resolved; tear the mesh down and exit.
SHUTDOWN = b"S"

KNOWN_KINDS = frozenset(
    (AUTH, HELLO, WELCOME, JOB, ENVELOPE, PEER_HELLO, FLUSH, FLUSH_ACK,
     HEARTBEAT, ABORT, EXIT, SHUTDOWN)
)

#: recv() chunk size.
_RECV_CHUNK = 1 << 16


class TransportError(MPIError):
    """The wire protocol was violated or a connection failed.

    Raised for truncated streams (EOF inside a frame), bad magic bytes,
    unknown frame kinds, bodies longer than the receiver's ``max_frame``
    bound, and OS-level connection failures.  Deliberately an
    :class:`~repro.mpi.errors.MPIError` so transport faults surface
    through the same error channel as every other runtime failure.
    """


class FrameSocket:
    """A framed, thread-safe view of one connected stream socket."""

    def __init__(self, sock: socket.socket,
                 max_frame: int = MAX_FRAME_BYTES):
        self.sock = sock
        self.max_frame = max_frame
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._eof = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # unix-domain / already closed

    # -- sending -------------------------------------------------------

    def send_frame(self, kind: bytes, body: bytes = b"") -> None:
        """Write one frame atomically (safe from concurrent threads)."""
        if len(body) > self.max_frame:
            raise TransportError(
                f"refusing to send a {len(body)}-byte frame "
                f"(max_frame={self.max_frame})"
            )
        header = _HEADER.pack(MAGIC, kind, len(body))
        with self._send_lock:
            try:
                # A prior zero-timeout recv (``drain``) leaves the socket
                # non-blocking; sendall must not short-write, so force
                # blocking mode for the write and restore afterwards.
                old = self.sock.gettimeout()
                self.sock.settimeout(None)
                try:
                    self.sock.sendall(header + body)
                finally:
                    self.sock.settimeout(old)
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from exc

    # -- receiving -----------------------------------------------------

    def _parse_one(self) -> Optional[Tuple[bytes, bytes]]:
        """Pop one complete frame off the buffer, or ``None``."""
        if len(self._buf) < HEADER_BYTES:
            return None
        magic, kind, length = _HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            raise TransportError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r}); "
                "stream is corrupt or not a repro wire peer"
            )
        if kind not in KNOWN_KINDS:
            raise TransportError(f"unknown frame kind {kind!r}")
        if length > self.max_frame:
            raise TransportError(
                f"declared frame body of {length} bytes exceeds "
                f"max_frame={self.max_frame}"
            )
        if len(self._buf) < HEADER_BYTES + length:
            return None
        body = bytes(self._buf[HEADER_BYTES:HEADER_BYTES + length])
        del self._buf[:HEADER_BYTES + length]
        return kind, body

    def recv_frame(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[bytes, bytes]]:
        """Read one frame.

        Returns ``(kind, body)``, or ``None`` on a clean EOF at a frame
        boundary.  Raises :class:`TimeoutError` if ``timeout`` elapses
        first — buffered partial data is kept, so the call can simply
        be retried.  Raises :class:`TransportError` on a protocol
        violation or connection failure.
        """
        while True:
            frame = self._parse_one()
            if frame is not None:
                return frame
            if self._eof:
                if self._buf:
                    raise TransportError(
                        f"stream truncated mid-frame "
                        f"({len(self._buf)} dangling bytes)"
                    )
                return None
            try:
                self.sock.settimeout(timeout)
                chunk = self.sock.recv(_RECV_CHUNK)
            except (socket.timeout, BlockingIOError):
                raise TimeoutError("recv_frame timed out") from None
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not chunk:
                self._eof = True
                continue
            self._buf.extend(chunk)

    def drain(self) -> Tuple[List[Tuple[bytes, bytes]], bool]:
        """Non-blocking read of everything currently available.

        Returns ``(frames, eof)`` — used by the driver's ``selectors``
        loop, where readability of the raw socket is known but the
        number of complete frames behind it is not.
        """
        frames: List[Tuple[bytes, bytes]] = []
        while True:
            try:
                frame = self.recv_frame(timeout=0.0)
            except TimeoutError:
                return frames, False
            if frame is None:
                return frames, True
            frames.append(frame)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# -- addresses ---------------------------------------------------------
#
# An address is a plain tuple so it pickles into control frames:
# ``("tcp", host, port)`` or ``("unix", path)``.


#: TCP bind hosts that mean "every interface" — never dialable, so an
#: advertised address must substitute something routable for them.
WILDCARD_HOSTS = frozenset({"0.0.0.0", "::", ""})


def make_listener(family: str = "tcp",
                  unix_dir: Optional[str] = None,
                  name: str = "l",
                  bind_host: str = "127.0.0.1",
                  advertise_host: Optional[str] = None,
                  ) -> Tuple[socket.socket, tuple]:
    """Create a bound, listening socket; returns ``(sock, address)``.

    The returned address is what peers are told to dial, so it must be
    routable *from them*: ``bind_host`` controls which interface the
    socket listens on (``0.0.0.0`` for all), while ``advertise_host``
    overrides the host peers see.  When ``advertise_host`` is omitted
    and the bind host is a wildcard, the machine's hostname is
    advertised — a loopback address would strand any truly remote
    peer dialing its own machine.
    """
    if family == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((bind_host, 0))
        host, port = sock.getsockname()
        if advertise_host is not None:
            host = advertise_host
        elif host in WILDCARD_HOSTS:
            host = socket.gethostname()
        addr = ("tcp", host, port)
    elif family == "unix":
        if unix_dir is None:
            unix_dir = tempfile.mkdtemp(prefix="repro-net-")
        path = os.path.join(unix_dir, f"{name}-{os.getpid()}.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        addr = ("unix", path)
    else:
        raise TransportError(
            f"unknown socket family {family!r} (expected 'tcp' or 'unix')"
        )
    sock.listen(64)
    return sock, addr


def connect(address: tuple, timeout: float = 30.0,
            max_frame: int = MAX_FRAME_BYTES) -> FrameSocket:
    """Connect to a :func:`make_listener` address; returns a FrameSocket."""
    try:
        if address[0] == "tcp":
            sock = socket.create_connection(
                (address[1], address[2]), timeout=timeout
            )
        elif address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address[1])
        else:
            raise TransportError(f"unknown address family {address[0]!r}")
    except OSError as exc:
        raise TransportError(
            f"cannot connect to {format_address(address)}: {exc}"
        ) from exc
    sock.settimeout(None)
    return FrameSocket(sock, max_frame=max_frame)


def format_address(address: tuple) -> str:
    """Render an address for command lines: ``tcp:host:port`` etc."""
    if address[0] == "tcp":
        return f"tcp:{address[1]}:{address[2]}"
    return f"unix:{address[1]}"


def parse_address(text: str) -> tuple:
    """Inverse of :func:`format_address`."""
    kind, _, rest = text.partition(":")
    if kind == "tcp":
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise TransportError(f"malformed tcp address {text!r}")
        return ("tcp", host, int(port))
    if kind == "unix":
        if not rest:
            raise TransportError(f"malformed unix address {text!r}")
        return ("unix", rest)
    raise TransportError(f"unknown address family in {text!r}")
