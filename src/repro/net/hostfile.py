"""mpirun-style hostfile parsing and agent launch commands.

A hostfile names the machines a job spans and how many ranks each one
carries, one host per line::

    # comment lines and blanks are ignored
    node0 slots=4
    node1 slots=4
    node2          # no slots= -> 1 slot

Ranks fill hosts in file order (``node0`` gets ranks 0..3, ``node1``
ranks 4..7, ...), exactly like ``mpirun --hostfile`` without
``--map-by``.  :func:`rank_layout` expands the entries into the
per-rank host list the :class:`~repro.net.backend.SocketBackend`
consumes; if the job asks for more ranks than the file has slots, the
layout wraps around (oversubscription, with a warning left to the
caller).

Hosts that resolve to the local machine are forked; anything else is
reached over ssh with :func:`ssh_command` (``python -m repro.net``
on the far end, pointed back at the driver's rendezvous address).
"""

from __future__ import annotations

import shlex
import socket
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..mpi.errors import MPIError
from .wire import format_address

#: Host names that always mean "this machine".
_LOCAL_NAMES = frozenset({"localhost", "127.0.0.1", "::1"})


class HostfileError(MPIError):
    """A hostfile line could not be parsed."""


@dataclass(frozen=True)
class HostEntry:
    """One hostfile line: a host name and its rank capacity."""

    host: str
    slots: int = 1


def parse_hostfile(text: str, name: str = "<hostfile>") -> List[HostEntry]:
    """Parse hostfile ``text`` into its entries (in file order)."""
    entries: List[HostEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        host, slots = parts[0], 1
        for opt in parts[1:]:
            key, _, value = opt.partition("=")
            if key not in ("slots", "max_slots", "max-slots"):
                raise HostfileError(
                    f"{name}:{lineno}: unknown option {opt!r} "
                    "(expected slots=N)"
                )
            try:
                slots = int(value)
            except ValueError:
                raise HostfileError(
                    f"{name}:{lineno}: slots must be an integer, "
                    f"got {value!r}"
                ) from None
        if slots < 1:
            raise HostfileError(
                f"{name}:{lineno}: slots must be >= 1, got {slots}"
            )
        entries.append(HostEntry(host=host, slots=slots))
    if not entries:
        raise HostfileError(f"{name}: no hosts found")
    return entries


def read_hostfile(path) -> List[HostEntry]:
    with open(path) as fh:
        return parse_hostfile(fh.read(), name=str(path))


def total_slots(entries: Sequence[HostEntry]) -> int:
    return sum(e.slots for e in entries)


def rank_layout(entries: Sequence[HostEntry], nranks: int) -> List[str]:
    """Per-rank host labels: fill each host's slots in file order.

    Wraps around when ``nranks`` exceeds the total slot count
    (oversubscription), matching ``mpirun`` defaults.
    """
    hosts: List[str] = []
    for e in entries:
        hosts.extend([e.host] * e.slots)
    return [hosts[r % len(hosts)] for r in range(nranks)]


def is_local_host(host: str) -> bool:
    """Does ``host`` name the machine this process runs on?"""
    if host in _LOCAL_NAMES:
        return True
    local = socket.gethostname()
    return host == local or host == local.split(".", 1)[0]


def agent_argv(address: tuple, token: str, rank: int,
               python: str = "python3",
               bind_host: Optional[str] = None,
               advertise_host: Optional[str] = None) -> List[str]:
    """The agent command run on the target machine.

    ``bind_host``/``advertise_host`` control the agent's *peer
    listener*: remote agents must bind a real interface and advertise
    an address their peers can route to, never loopback.
    """
    argv = [
        python, "-m", "repro.net",
        "--connect", format_address(address),
        "--token", token,
        "--rank", str(rank),
    ]
    if bind_host is not None:
        argv += ["--bind-host", bind_host]
    if advertise_host is not None:
        argv += ["--advertise-host", advertise_host]
    return argv


def ssh_command(host: str, address: tuple, token: str, rank: int,
                python: str = "python3",
                ssh: Tuple[str, ...] = ("ssh", "-o", "BatchMode=yes"),
                bind_host: str = "0.0.0.0",
                advertise_host: Optional[str] = None) -> List[str]:
    """Full local command that starts rank ``rank``'s agent on ``host``.

    The remote side must have ``repro`` importable by ``python``; the
    agent dials back to the driver's rendezvous ``address``, so only
    the driver needs a listening port.  The remote agent's peer
    listener binds ``bind_host`` (all interfaces by default) and
    advertises ``advertise_host`` — defaulting to the hostfile label
    itself, the one name the driver already knows routes to that
    machine.
    """
    remote = " ".join(
        shlex.quote(part)
        for part in agent_argv(
            address, token, rank, python=python,
            bind_host=bind_host,
            advertise_host=advertise_host or host,
        )
    )
    return list(ssh) + [host, remote]
