"""Analytic gather-scatter schedules for virtually scaled jobs.

CMT-bone's workloads are translation-symmetric by construction: the
global mesh is ``proc_shape * local_shape`` on a periodic box, so every
rank owns an identical element brick and shares identical face-id sets
with its axis neighbours.  That symmetry is what makes cluster-scale
modelling tractable — instead of running ``gs_setup``'s all-to-all
discovery over 10^5 ranks, :func:`build_schedule` derives the exact
per-rank message plan (neighbour ranks, per-neighbour shared-id counts,
posting order) from one rank's DG face numbering and replicates it over
the whole processor grid with vectorized index arithmetic.

The derived plan is *exact*, not approximate: for rank counts small
enough to execute, :func:`schedule_matches_handle` asserts it against
the handle a real ``gs_setup`` discovery produces (see
``tests/test_vscale.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.config import CMTBoneConfig
from ..mesh.numbering import dg_face_numbering, total_faces


@dataclass(frozen=True)
class StepSchedule:
    """Vectorized per-rank exchange plan for one (config, P) pair.

    Attributes
    ----------
    nbr:
        ``(P, K)`` neighbour world ranks, sorted ascending per row —
        the order in which every rank posts its sends and waits
        (``GSHandle.neighbors`` is sorted the same way).
    msg_len:
        ``(P, K)`` shared-id counts aligned with ``nbr``; the pairwise
        payload of column ``j`` is ``msg_len[:, j] * itemsize`` bytes.
    pos:
        ``(P, K)`` reverse index: ``pos[r, j]`` is the column at which
        rank ``r`` appears in the neighbour list of ``nbr[r, j]`` —
        i.e. which of the sender's sequentially posted messages is the
        one addressed to ``r``.
    """

    nranks: int
    proc_shape: Tuple[int, int, int]
    n: int
    nel: int
    n_unique: int
    n_shared: int
    max_gid: int
    global_shared: int
    nbr: np.ndarray
    msg_len: np.ndarray
    pos: np.ndarray

    @property
    def n_neighbors(self) -> int:
        return int(self.nbr.shape[1])

    @property
    def dense_len(self) -> int:
        """Length of the allreduce method's dense global vector."""
        return self.max_gid + 1

    def pairwise_bytes(self, itemsize: int = 8) -> np.ndarray:
        """``(P, K)`` payload bytes per pairwise message."""
        return self.msg_len.astype(np.float64) * float(itemsize)


def _axis_directions(proc_shape: Tuple[int, int, int]) -> list:
    """(axis, offset) pairs producing distinct cross-rank neighbours.

    An axis with one rank wraps onto itself (purely local duplicates,
    no message); an axis with exactly two ranks reaches the *same*
    neighbour in both directions, so only one direction is kept and the
    shared-id intersection below naturally counts both face planes.
    """
    dirs = []
    for axis, p in enumerate(proc_shape):
        if p == 1:
            continue
        dirs.append((axis, 1))
        if p > 2:
            dirs.append((axis, -1))
    return dirs


def build_schedule(
    config: CMTBoneConfig, nranks: int
) -> StepSchedule:
    """Derive the exact exchange plan for ``nranks`` virtual ranks."""
    partition = config.build_partition(nranks)
    px, py, pz = partition.proc_shape
    n = config.n

    ranks = np.arange(nranks, dtype=np.int64)
    cx = ranks % px
    cy = (ranks // px) % py
    cz = ranks // (px * py)

    dirs = _axis_directions((px, py, pz))
    cols = []
    for axis, off in dirs:
        nc = [cx, cy, cz]
        if axis == 0:
            nc[0] = (cx + off) % px
        elif axis == 1:
            nc[1] = (cy + off) % py
        else:
            nc[2] = (cz + off) % pz
        cols.append(nc[0] + px * (nc[1] + py * nc[2]))
    k = len(cols)

    # Per-direction shared-id counts from one representative rank: the
    # grid is vertex-transitive, so rank 0's intersection with its
    # neighbour in each direction holds for every rank.
    u0 = np.unique(dg_face_numbering(partition, 0))
    lens = np.empty(k, dtype=np.int64)
    shared_union = []
    for j, q_col in enumerate(cols):
        uq = np.unique(dg_face_numbering(partition, int(q_col[0])))
        shared = np.intersect1d(u0, uq, assume_unique=True)
        lens[j] = len(shared)
        shared_union.append(shared)
    n_shared = (
        len(np.unique(np.concatenate(shared_union))) if k else 0
    )

    if k:
        nbr_raw = np.stack(cols, axis=1)
        len_raw = np.broadcast_to(lens, (nranks, k))
        order = np.argsort(nbr_raw, axis=1)
        nbr = np.take_along_axis(nbr_raw, order, axis=1)
        msg_len = np.take_along_axis(len_raw, order, axis=1)
        # pos[r, j]: where r sits in the sorted neighbour row of its
        # j-th neighbour (K is at most 6, so the (P, K, K) probe is
        # cheap even at P = 1e5).
        qrows = nbr[nbr]
        pos = np.argmax(
            qrows == ranks[:, None, None], axis=2
        ).astype(np.int64)
    else:
        nbr = np.empty((nranks, 0), dtype=np.int64)
        msg_len = np.empty((nranks, 0), dtype=np.int64)
        pos = np.empty((nranks, 0), dtype=np.int64)

    return StepSchedule(
        nranks=nranks,
        proc_shape=(px, py, pz),
        n=n,
        nel=partition.nel_local,
        n_unique=len(u0),
        n_shared=n_shared,
        max_gid=total_faces(partition.mesh) * n * n - 1,
        global_shared=n_shared * nranks,
        nbr=nbr,
        msg_len=msg_len,
        pos=pos,
    )


def schedule_matches_handle(
    schedule: StepSchedule, handle, rank: int
) -> Optional[str]:
    """Cross-check the analytic plan against a real ``gs_setup`` handle.

    Returns ``None`` when rank ``rank``'s row of the schedule agrees
    with the handle's discovered index sets, else a human-readable
    description of the first mismatch (used by tests and the CLI's
    ``--check`` mode).
    """
    want_nbrs = [int(q) for q in schedule.nbr[rank]]
    have_nbrs = handle.neighbors
    if want_nbrs != have_nbrs:
        return f"neighbors {have_nbrs} != modeled {want_nbrs}"
    for j, q in enumerate(want_nbrs):
        have_len = len(handle.neighbor_send_index[q])
        want_len = int(schedule.msg_len[rank, j])
        if have_len != want_len:
            return (
                f"message to rank {q}: {have_len} shared ids "
                f"!= modeled {want_len}"
            )
    checks = [
        ("n_unique", handle.n_unique, schedule.n_unique),
        ("max_gid", handle.max_gid, schedule.max_gid),
        ("global_shared", handle.global_shared, schedule.global_shared),
        (
            "n_shared",
            handle.setup_stats.get("n_shared"),
            schedule.n_shared,
        ),
    ]
    for name, have, want in checks:
        if have != want:
            return f"{name}: {have} != modeled {want}"
    return None
