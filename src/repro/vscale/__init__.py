"""``repro.vscale`` — virtual scale-out to 10^4-10^5 ranks.

Executes a small *sample* of ranks for physics/profile fidelity and
models the comm/compute timeline of every other rank analytically with
numpy-vectorized per-step timelines over the LogGP network model (see
docs/virtual-scale.md).
"""

from .engine import (
    Agreement,
    DEFAULT_TOLERANCES,
    FaultExtrapolation,
    GS_METHODS,
    ModeledTimeline,
    SampleExecution,
    VirtualScaleEngine,
    VscaleError,
)
from .schedule import StepSchedule, build_schedule, schedule_matches_handle

__all__ = [
    "Agreement",
    "DEFAULT_TOLERANCES",
    "FaultExtrapolation",
    "GS_METHODS",
    "ModeledTimeline",
    "SampleExecution",
    "StepSchedule",
    "VirtualScaleEngine",
    "VscaleError",
    "build_schedule",
    "schedule_matches_handle",
]
