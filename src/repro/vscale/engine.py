"""Virtual scale-out engine: sampled execution + vectorized timelines.

The paper's scaling questions ("which gather-scatter method wins at
P ranks?", "what MPI fraction does the monitor reach at 10^5 ranks?")
need rank counts far beyond what the simulated runtime can execute as
live threads or processes.  :class:`VirtualScaleEngine` answers them by
splitting the job in two:

* a small *sample* of ranks is executed for real through
  :class:`repro.mpi.Runtime` (any backend) — full physics, profiling
  and bitwise-reproducible field evolution; and
* the step timeline of **every** rank — 10^4-10^5 of them — is modeled
  analytically: per-rank compute charges from the kernel roofline and
  vectorized LogGP message schedules (pairwise / crystal-router /
  allreduce) evaluated as numpy array recurrences over the
  rank-symmetric exchange plan of :mod:`repro.vscale.schedule`.

The model is written to mirror the executed runtime's virtual-clock
arithmetic *operation by operation* (same IEEE adds in the same order),
so for the pairwise and allreduce methods the modeled per-rank step
time agrees with an executed run at the same rank count to within
floating-point noise; the crystal router's pickled routing dicts leave
a documented few-bytes-per-message envelope gap (see
``docs/virtual-scale.md`` and :data:`DEFAULT_TOLERANCES`).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cmtbone import CMTBone
from ..core.config import CMTBoneConfig
from ..kernels import counters
from ..perfmodel import MachineModel
from ..solver.surface import full2face_flops
from .schedule import StepSchedule, build_schedule

#: The three exchange strategies of the paper's Fig. 7 study.
GS_METHODS = ("pairwise", "crystal", "allreduce")

#: Per-method modeled-vs-executed agreement tolerances (relative error
#: on per-rank step time).  Pairwise and allreduce schedules are priced
#: from exact integer byte counts, so the model reproduces the executed
#: clock arithmetic to float rounding; the crystal router ships pickled
#: record dicts whose envelope bytes the model approximates affinely
#: (int-key encoding widths jitter by a few bytes per message).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "pairwise": 1e-9,
    "allreduce": 1e-9,
    "crystal": 2e-2,
}


class VscaleError(ValueError):
    """A workload shape the virtual scale-out engine cannot model."""


# ---------------------------------------------------------------------------
# result containers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModeledTimeline:
    """Per-rank modeled step timeline at one (method, P) point."""

    method: str
    nranks: int
    nsteps: int
    #: Per-rank total virtual seconds of the step loop (+ monitor).
    total: np.ndarray
    #: Per-rank virtual seconds attributed to communication.
    comm: np.ndarray
    #: Per-rank comm seconds hidden under compute (overlap schedule).
    hidden_comm: np.ndarray
    #: Per-rank checkpoint IO seconds (0 unless checkpoint_every set).
    io: np.ndarray
    #: Messages and advertised wire bytes across the whole job.
    messages: int
    wire_bytes: float
    #: Wall seconds the vectorized model itself took to evaluate.
    model_wall_seconds: float

    @property
    def compute(self) -> np.ndarray:
        return self.total - self.comm

    @property
    def step_seconds(self) -> float:
        """Job step time: the slowest rank's per-step virtual time."""
        return float(self.total.max()) / self.nsteps

    @property
    def mpi_fraction_pct(self) -> np.ndarray:
        """Per-rank modeled '% time in MPI' (mpiP Fig. 8 analogue)."""
        return 100.0 * self.comm / self.total


@dataclass(frozen=True)
class SampleExecution:
    """Results of really executing the sampled ranks."""

    nranks: int
    method: str
    backend: str
    #: Per-rank executed step-loop virtual seconds (setup excluded).
    step_totals: np.ndarray
    hidden_comm: np.ndarray
    #: blake2b digests of each rank's final conserved fields.
    digests: List[str]
    setup_stats: dict
    wall_seconds: float


@dataclass(frozen=True)
class Agreement:
    """Modeled-vs-executed comparison at the sampled rank count."""

    method: str
    nranks: int
    nsteps: int
    tolerance: float
    modeled: np.ndarray
    executed: np.ndarray
    modeled_hidden: np.ndarray
    executed_hidden: np.ndarray
    digests: List[str]
    schedule_mismatch: Optional[str]

    @property
    def rel_err(self) -> float:
        """Worst per-rank relative error of the modeled step total."""
        return float(
            np.max(np.abs(self.modeled - self.executed) / self.executed)
        )

    @property
    def hidden_err(self) -> float:
        """Hidden-comm error, normalized by the executed step total."""
        scale = float(self.executed.max())
        if scale <= 0.0:
            return 0.0
        return float(
            np.max(np.abs(self.modeled_hidden - self.executed_hidden))
            / scale
        )

    @property
    def ok(self) -> bool:
        return (
            self.schedule_mismatch is None
            and self.rel_err <= self.tolerance
            and self.hidden_err <= self.tolerance
        )

    def describe(self) -> str:
        state = "OK" if self.ok else "FAIL"
        msg = (
            f"[{state}] {self.method} P={self.nranks}: "
            f"rel_err={self.rel_err:.3e} "
            f"hidden_err={self.hidden_err:.3e} "
            f"(tolerance {self.tolerance:.1e})"
        )
        if self.schedule_mismatch:
            msg += f"; schedule mismatch: {self.schedule_mismatch}"
        return msg


@dataclass(frozen=True)
class FaultExtrapolation:
    """Young/Daly checkpoint economics at the modeled scale."""

    method: str
    nranks: int
    rank_mtbf_hours: float
    job_mtbf_seconds: float
    checkpoint_seconds: float
    interval_seconds: float
    interval_steps: int
    overhead_fraction: float
    step_seconds: float

    @property
    def effective_step_seconds(self) -> float:
        return self.step_seconds * (1.0 + self.overhead_fraction)


# ---------------------------------------------------------------------------
# internal: timeline state and static message plans
# ---------------------------------------------------------------------------


class _Timeline:
    """Mutable per-rank clock arrays while a model is being evaluated."""

    __slots__ = ("t", "comm", "hidden", "io", "messages", "wire_bytes")

    def __init__(self, nranks: int):
        self.t = np.zeros(nranks)
        self.comm = np.zeros(nranks)
        self.hidden = np.zeros(nranks)
        self.io = np.zeros(nranks)
        self.messages = 0
        self.wire_bytes = 0.0


@dataclass(frozen=True)
class _Wave:
    """One send/receive wave: aligned sender/receiver rank arrays.

    Receiver ``i`` gets one message from ``senders[i]``; overheads and
    transits are precomputed (they depend only on the static schedule,
    never on the evolving clock).  ``compute_after`` is an optional
    post-wave compute charge on the senders (the crystal router's
    pack/unpack memory pass).
    """

    senders: np.ndarray
    receivers: np.ndarray
    send_ovh: np.ndarray
    transit: np.ndarray
    nbytes: np.ndarray
    compute_after: Optional[np.ndarray] = None


def _replay_wave(tl: _Timeline, wave: _Wave, o_recv: float) -> None:
    """Advance the timeline through one wave, executed-clock style.

    Every sender charges its injection overhead first (comm kind); a
    message's wire time is the sender's clock right after that charge.
    Each receiver then waits to ``max(own clock, arrival)`` and pays
    the drain overhead — the exact sequence of
    ``Comm._send_raw`` / ``Comm._complete_recv``.
    """
    tl.t[wave.senders] += wave.send_ovh
    tl.comm[wave.senders] += wave.send_ovh
    arrival = tl.t[wave.senders] + wave.transit
    t0 = tl.t[wave.receivers]
    end = np.maximum(t0, arrival) + o_recv
    tl.comm[wave.receivers] += end - t0
    tl.t[wave.receivers] = end
    if wave.compute_after is not None:
        tl.t[wave.senders] += wave.compute_after
    tl.messages += int(wave.senders.size)
    tl.wire_bytes += float(wave.nbytes.sum())


def _coalesce(
    holder: np.ndarray, dest: np.ndarray, raw: np.ndarray, nranks: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge routing records sharing a (holder, destination) pair."""
    key = holder * nranks + dest
    uniq, inverse = np.unique(key, return_inverse=True)
    raw2 = np.bincount(inverse, weights=raw, minlength=len(uniq))
    return uniq // nranks, uniq % nranks, raw2


class _DictWireModel:
    """Affine model of ``pickle.dumps`` sizes for routing-record dicts.

    The crystal router ships ``{dest: (gids, vals)}`` dicts whose wire
    size is their pickle length.  That length decomposes into the empty
    -dict envelope, a near-constant per-entry framing cost, and the raw
    array payload (16 bytes per routed id).  The constants are measured
    once at engine construction from freshly allocated arrays — pickle
    memoizes repeated objects, so calibrating with aliased arrays would
    undercount.  Integer-key encoding widths make real sizes jitter by
    a few bytes per entry; that is the crystal method's agreement
    tolerance (see :data:`DEFAULT_TOLERANCES`).
    """

    _CAL_LEN = 64

    def __init__(self) -> None:
        proto = pickle.HIGHEST_PROTOCOL

        def fresh(keys: List[int]) -> bytes:
            payload = {
                k: (
                    np.arange(self._CAL_LEN, dtype=np.int64),
                    np.arange(self._CAL_LEN, dtype=np.float64),
                )
                for k in keys
            }
            return pickle.dumps(payload, protocol=proto)

        raw = 16.0 * self._CAL_LEN
        self.empty = float(len(pickle.dumps({}, protocol=proto)))
        one = float(len(fresh([5])))
        two = float(len(fresh([5, 6])))
        self.first_entry = one - self.empty - raw
        self.per_entry = two - one - raw

    def nbytes(self, entries: np.ndarray, raw: np.ndarray) -> np.ndarray:
        """Modeled pickle bytes for dicts with the given entry counts."""
        entries = np.asarray(entries, dtype=np.float64)
        sized = (
            self.empty
            + self.first_entry
            + np.maximum(entries - 1.0, 0.0) * self.per_entry
            + raw
        )
        return np.where(entries > 0, sized, self.empty)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _sample_rank_main(comm, config: CMTBoneConfig) -> dict:
    """SPMD main for the sampled ranks (module-level: picklable).

    ``gs_setup`` discovery leaves every rank's clock at a slightly
    different time; the engine's model starts all virtual ranks from a
    *common* origin, so the sample run fences to the slowest rank's
    post-setup time (an uncharged shadow allreduce) before stepping —
    the same deterministic baseline, measured from ``t_start``.
    """
    from ..mpi import MAX

    bone = CMTBone(comm, config)
    with comm.shadow():
        t_start = comm.allreduce(comm.clock.now, op=MAX)
    comm.clock.synchronize(t_start, kind="comm")
    result = bone.run()
    digest = hashlib.blake2b(
        bone.u.tobytes(), digest_size=16
    ).hexdigest()
    return {
        "step_total": result.vtime_total - t_start,
        "hidden": result.vtime_hidden_comm,
        "digest": digest,
        "setup_stats": result.setup_stats,
    }


class VirtualScaleEngine:
    """Model a CMT-bone job at rank counts far beyond execution.

    Parameters
    ----------
    config:
        Workload description.  ``proc_shape`` may be left ``None`` (the
        partitioner factors any rank count) or set explicitly for the
        full virtual rank count.
    nranks:
        Virtual job size — up to 10^5 ranks.
    sample:
        How many ranks to *execute* for validation and physics
        fidelity (capped at ``nranks``).
    backend:
        Execution backend for the sample run (``"threads"``/``"procs"``
        /``"sockets"``).
    """

    def __init__(
        self,
        config: Optional[CMTBoneConfig] = None,
        nranks: int = 1024,
        machine: Optional[MachineModel] = None,
        sample: int = 16,
        backend: str = "threads",
    ):
        self.config = config or CMTBoneConfig()
        if self.config.pack_fields:
            raise VscaleError(
                "pack_fields uses gs_op_many, which has no vectorized "
                "timeline model; run with pack_fields=False"
            )
        if self.config.lb_policy().enabled:
            raise VscaleError(
                "dynamic load balancing breaks the rank symmetry the "
                "schedule model needs; run with lb_mode='off'"
            )
        if self.config.nsteps < 1:
            raise VscaleError("nsteps must be >= 1")
        if nranks < 1:
            raise VscaleError("nranks must be >= 1")
        if sample < 1:
            raise VscaleError("sample must be >= 1")
        self.nranks = int(nranks)
        self.machine = machine or MachineModel.default()
        self.sample_nranks = min(int(sample), self.nranks)
        self.backend = backend
        self._dict_model = _DictWireModel()
        self._schedules: Dict[int, StepSchedule] = {}
        self._models: Dict[tuple, ModeledTimeline] = {}
        self._samples: Dict[str, SampleExecution] = {}

    # -- configuration plumbing -----------------------------------------

    def _config_for(self, nranks: int, method: str) -> CMTBoneConfig:
        """The workload pinned to ``method`` and runnable at ``nranks``.

        An explicit ``proc_shape`` sized for the full virtual job
        cannot partition the (smaller) sample, so it falls back to the
        automatic factorization — identical to what the executed sample
        run uses, keeping model and execution comparable.
        """
        cfg = self.config
        if cfg.proc_shape is not None:
            px, py, pz = cfg.proc_shape
            if px * py * pz != nranks:
                cfg = cfg.with_(proc_shape=None)
        return cfg.with_(gs_method=method)

    def schedule(self, nranks: Optional[int] = None) -> StepSchedule:
        """The (cached) analytic exchange plan at ``nranks``."""
        p = self.nranks if nranks is None else int(nranks)
        if p not in self._schedules:
            self._schedules[p] = build_schedule(
                self._config_for(p, "pairwise"), p
            )
        return self._schedules[p]

    # -- the vectorized timeline model ----------------------------------

    def model(
        self,
        method: str,
        nranks: Optional[int] = None,
        checkpoint_every: int = 0,
    ) -> ModeledTimeline:
        """Modeled per-rank step timelines for ``method`` at ``nranks``."""
        if method not in GS_METHODS:
            raise VscaleError(
                f"unknown gs method {method!r}; choose from {GS_METHODS}"
            )
        p = self.nranks if nranks is None else int(nranks)
        key = (method, p, checkpoint_every)
        if key not in self._models:
            self._models[key] = self._evaluate(
                method, p, checkpoint_every
            )
        return self._models[key]

    def _evaluate(
        self, method: str, nranks: int, checkpoint_every: int
    ) -> ModeledTimeline:
        wall0 = time.perf_counter()
        cfg = self._config_for(nranks, method)
        sched = self.schedule(nranks)
        machine = self.machine
        net = machine.network
        o_recv = net.o_recv
        p = nranks
        ranks = np.arange(p, dtype=np.int64)

        # Per-rank deterministic load factors — same hash as CMTBone.
        h = (ranks * 2654435761) % (2**32) / 2**32
        lf = 1.0 + cfg.compute_imbalance * h

        # Compute charges (seconds), identical formulas to the phases
        # in repro.core.cmtbone.
        n, nel, neq = cfg.n, sched.nel, cfg.neq
        deriv = neq * counters.roofline_seconds(
            n, nel, machine, variant=cfg.kernel_variant
        )
        surface = machine.compute_seconds(
            flops=full2face_flops(n, nel, neq),
            mem_bytes=16.0 * neq * nel * 6 * n**2,
        )
        npts = neq * nel * n**3
        update = machine.compute_seconds(
            flops=2.0 * npts, mem_bytes=24.0 * npts
        )
        field_size = nel * 6 * n * n
        gs_local = machine.compute_seconds(
            flops=float(field_size),
            mem_bytes=2.0 * 8 * (field_size + sched.n_unique),
        )
        deriv_lf = deriv * lf
        surface_lf = surface * lf
        update_lf = update * lf

        nfields = cfg.exchange_fields or neq
        overlap = cfg.overlap  # pack_fields rejected at construction

        # Static message plans (clock-independent, reused every stage).
        pw_bytes = sched.pairwise_bytes()
        pw_ovh = net.send_overhead_batch(pw_bytes)
        k = sched.n_neighbors
        pw_transit = np.empty_like(pw_bytes)
        for j in range(k):
            pw_transit[:, j] = net.transit_batch(
                sched.nbr[:, j], ranks, pw_bytes[:, j]
            )
        crystal_waves = (
            self._crystal_waves(sched) if method == "crystal" else None
        )
        ar_waves_gs = (
            self._allreduce_waves(p, sched.dense_len * 8)
            if method == "allreduce"
            else None
        )
        ar_waves_mon = self._allreduce_waves(p, 8)

        def exchange_once(tl: _Timeline) -> None:
            if p == 1:
                return
            if method == "pairwise":
                self._replay_pairwise(
                    tl, sched, pw_ovh, pw_transit, pw_bytes, o_recv
                )
            elif method == "crystal":
                for wave in crystal_waves:
                    _replay_wave(tl, wave, o_recv)
            else:
                for wave in ar_waves_gs:
                    _replay_wave(tl, wave, o_recv)

        tl = _Timeline(p)
        ck_seconds = 0.0
        if checkpoint_every:
            state_bytes = 8.0 * neq * nel * n**3
            ck_seconds = machine.checkpoint_seconds(state_bytes)
        for istep in range(cfg.nsteps):
            for _stage in range(cfg.rk_stages):
                tl.t += deriv_lf
                tl.t += surface_lf
                if overlap and method == "pairwise" and p > 1:
                    self._replay_pairwise_overlap(
                        tl,
                        sched,
                        pw_ovh,
                        pw_transit,
                        pw_bytes,
                        o_recv,
                        nfields,
                        update_lf,
                        gs_local,
                    )
                elif overlap:
                    # Synchronous fallback: begin posts nothing, the
                    # update runs, and every field's blocking exchange
                    # happens at finish time.
                    tl.t += update_lf
                    for _ in range(nfields):
                        exchange_once(tl)
                        tl.t += gs_local
                else:
                    for _ in range(nfields):
                        exchange_once(tl)
                        tl.t += gs_local
                    tl.t += update_lf
            me = cfg.monitor_every
            if me and (istep + 1) % me == 0:
                for wave in ar_waves_mon:
                    _replay_wave(tl, wave, o_recv)
            if checkpoint_every and (istep + 1) % checkpoint_every == 0:
                # Extrapolation-only term (never part of validation):
                # all ranks sync at a checkpoint barrier, then write.
                tl.t[:] = tl.t.max()
                tl.t += ck_seconds
                tl.io += ck_seconds
        return ModeledTimeline(
            method=method,
            nranks=p,
            nsteps=cfg.nsteps,
            total=tl.t,
            comm=tl.comm,
            hidden_comm=tl.hidden,
            io=tl.io,
            messages=tl.messages,
            wire_bytes=tl.wire_bytes,
            model_wall_seconds=time.perf_counter() - wall0,
        )

    # -- per-method message schedules -----------------------------------

    @staticmethod
    def _replay_pairwise(
        tl: _Timeline,
        sched: StepSchedule,
        ovh: np.ndarray,
        transit: np.ndarray,
        nbytes: np.ndarray,
        o_recv: float,
    ) -> None:
        """Blocking pairwise exchange, every rank simultaneously.

        Sends are charged column-by-column (per-rank neighbour order),
        accumulating wire times with *sequential* adds — not a cumsum —
        so the float rounding matches the executed per-message charges
        exactly.  Waits fold in the same sorted-neighbour order.
        """
        p, k = sched.nbr.shape
        wire = np.empty((p, k))
        for j in range(k):
            col = ovh[:, j]
            tl.t += col
            tl.comm += col
            wire[:, j] = tl.t
        for j in range(k):
            q = sched.nbr[:, j]
            arrival = wire[q, sched.pos[:, j]] + transit[:, j]
            end = np.maximum(tl.t, arrival) + o_recv
            tl.comm += end - tl.t
            tl.t = end
        tl.messages += p * k
        tl.wire_bytes += float(nbytes.sum())

    @staticmethod
    def _replay_pairwise_overlap(
        tl: _Timeline,
        sched: StepSchedule,
        ovh: np.ndarray,
        transit: np.ndarray,
        nbytes: np.ndarray,
        o_recv: float,
        nfields: int,
        update_lf: np.ndarray,
        gs_local: float,
    ) -> None:
        """Split-phase schedule: post all fields, update, then finish.

        Mirrors ``gs_op_begin``/``gs_op_finish``: every field's sends
        are posted back-to-back (each opening its overlap window after
        its own posts), the update compute runs under the in-flight
        messages, and each finish charges only the still-exposed wait
        while crediting the hidden remainder.
        """
        p, k = sched.nbr.shape
        wires = np.empty((nfields, p, k))
        opens = np.empty((nfields, p))
        for f in range(nfields):
            for j in range(k):
                col = ovh[:, j]
                tl.t += col
                tl.comm += col
                wires[f, :, j] = tl.t
            opens[f] = tl.t
        tl.t += update_lf
        for f in range(nfields):
            wait_start = tl.t.copy()
            completion = np.full(p, -np.inf)
            for j in range(k):
                q = sched.nbr[:, j]
                arrival = wires[f][q, sched.pos[:, j]] + transit[:, j]
                end = np.maximum(tl.t, arrival) + o_recv
                tl.comm += end - tl.t
                tl.t = end
                completion = np.maximum(completion, arrival)
            tl.hidden += np.maximum(completion - opens[f], 0.0)
            tl.hidden -= np.maximum(completion - wait_start, 0.0)
            tl.t += gs_local
        tl.messages += nfields * p * k
        tl.wire_bytes += nfields * float(nbytes.sum())

    def _crystal_waves(self, sched: StepSchedule) -> List[_Wave]:
        """Static wave plan of one crystal-router exchange.

        Replays gslib's fold / hypercube-stage / unfold structure over
        flat (holder, destination, bytes) record arrays; dict wire
        sizes come from the affine pickle model.  The plan depends only
        on the schedule, so it is built once and replayed for every
        field of every stage.
        """
        p = sched.nranks
        net = self.machine.network
        pof2 = 1
        while pof2 * 2 <= p:
            pof2 *= 2
        rem = p - pof2
        k = sched.n_neighbors
        holder = np.repeat(np.arange(p, dtype=np.int64), k)
        dest = sched.nbr.ravel().astype(np.int64)
        raw = 16.0 * sched.msg_len.ravel().astype(np.float64)
        # Self-addressed records never travel; DG neighbours exclude
        # self already, so no filtering is needed here.
        waves: List[_Wave] = []
        if rem:
            high = holder >= pof2
            entries = np.bincount(
                holder[high] - pof2, minlength=rem
            )
            raw_out = np.bincount(
                holder[high] - pof2, weights=raw[high], minlength=rem
            )
            nbytes = self._dict_model.nbytes(entries, raw_out)
            senders = np.arange(pof2, p, dtype=np.int64)
            receivers = np.arange(rem, dtype=np.int64)
            waves.append(
                _Wave(
                    senders=senders,
                    receivers=receivers,
                    send_ovh=net.send_overhead_batch(nbytes),
                    transit=net.transit_batch(
                        senders, receivers, nbytes
                    ),
                    nbytes=nbytes,
                )
            )
            holder = np.where(high, holder - pof2, holder)
            holder, dest, raw = _coalesce(holder, dest, raw, p)
        idx = np.arange(pof2, dtype=np.int64)
        bit = pof2 >> 1
        while bit:
            eff = np.where(dest >= pof2, dest - pof2, dest)
            mover = ((eff ^ holder) & bit) != 0
            entries = np.bincount(holder[mover], minlength=pof2)
            raw_out = np.bincount(
                holder[mover], weights=raw[mover], minlength=pof2
            )
            nbytes = self._dict_model.nbytes(entries, raw_out)
            partner = idx ^ bit
            moved = raw_out + raw_out[partner]
            waves.append(
                _Wave(
                    senders=partner,
                    receivers=idx,
                    send_ovh=net.send_overhead_batch(nbytes)[partner],
                    transit=net.transit_batch(
                        partner, idx, nbytes[partner]
                    ),
                    nbytes=nbytes,
                    # Per-stage pack/unpack memory pass on every
                    # participant: comm.compute(mem_bytes=2*moved).
                    compute_after=(2.0 * moved[partner])
                    / self.machine.cpu.mem_bandwidth,
                )
            )
            holder = np.where(mover, holder ^ bit, holder)
            holder, dest, raw = _coalesce(holder, dest, raw, p)
            bit >>= 1
        if rem:
            high_dest = dest >= pof2
            entries = np.bincount(
                holder[high_dest], minlength=rem
            )
            raw_out = np.bincount(
                holder[high_dest], weights=raw[high_dest], minlength=rem
            )
            nbytes = self._dict_model.nbytes(entries, raw_out)
            senders = np.arange(rem, dtype=np.int64)
            receivers = np.arange(pof2, p, dtype=np.int64)
            waves.append(
                _Wave(
                    senders=senders,
                    receivers=receivers,
                    send_ovh=net.send_overhead_batch(nbytes),
                    transit=net.transit_batch(
                        senders, receivers, nbytes
                    ),
                    nbytes=nbytes,
                )
            )
        return waves

    def _allreduce_waves(self, p: int, nbytes: int) -> List[_Wave]:
        """Static wave plan of one recursive-doubling allreduce.

        Mirrors ``Comm._allreduce_raw``: non-power-of-two fold onto
        ``pof2`` survivors, log2 doubling rounds (each survivor sends
        then receives from its partner), and the unfold push-back.
        Every message advertises the same payload size.
        """
        if p == 1:
            return []
        net = self.machine.network
        pof2 = 1
        while pof2 * 2 <= p:
            pof2 *= 2
        rem = p - pof2
        size = np.full(1, float(nbytes))
        waves: List[_Wave] = []

        def wave(senders: np.ndarray, receivers: np.ndarray) -> _Wave:
            nb = np.broadcast_to(size, senders.shape)
            return _Wave(
                senders=senders,
                receivers=receivers,
                send_ovh=net.send_overhead_batch(nb),
                transit=net.transit_batch(senders, receivers, nb),
                nbytes=nb,
            )

        if rem:
            even = np.arange(0, 2 * rem, 2, dtype=np.int64)
            odd = even + 1
            waves.append(wave(even, odd))
        newrank = np.arange(pof2, dtype=np.int64)
        world = np.where(newrank < rem, newrank * 2 + 1, newrank + rem)
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = np.where(
                partner_new < rem, partner_new * 2 + 1, partner_new + rem
            )
            waves.append(wave(partner, world))
            mask <<= 1
        if rem:
            even = np.arange(0, 2 * rem, 2, dtype=np.int64)
            odd = even + 1
            waves.append(wave(odd, even))
        return waves

    # -- sampled execution and validation -------------------------------

    def execute_sample(self, method: str) -> SampleExecution:
        """Really run the sampled ranks (cached per method)."""
        if method not in GS_METHODS:
            raise VscaleError(
                f"unknown gs method {method!r}; choose from {GS_METHODS}"
            )
        if method not in self._samples:
            from ..mpi import Runtime, TimePolicy

            cfg = self._config_for(self.sample_nranks, method)
            wall0 = time.perf_counter()
            rt = Runtime(
                nranks=self.sample_nranks,
                machine=self.machine,
                time_policy=TimePolicy.MODELED,
                backend=self.backend,
            )
            outs = rt.run(_sample_rank_main, args=(cfg,))
            wall = time.perf_counter() - wall0
            self._samples[method] = SampleExecution(
                nranks=self.sample_nranks,
                method=method,
                backend=self.backend,
                step_totals=np.array([o["step_total"] for o in outs]),
                hidden_comm=np.array([o["hidden"] for o in outs]),
                digests=[o["digest"] for o in outs],
                setup_stats=outs[0]["setup_stats"],
                wall_seconds=wall,
            )
        return self._samples[method]

    def _check_schedule(self, setup_stats: dict) -> Optional[str]:
        """Compare the analytic schedule with an executed ``gs_setup``."""
        sched = self.schedule(self.sample_nranks)
        checks = [
            ("n_unique", sched.n_unique),
            ("n_shared", sched.n_shared),
            ("n_neighbors", sched.n_neighbors),
            ("max_gid", sched.max_gid),
            ("global_shared", sched.global_shared),
        ]
        for name, want in checks:
            have = setup_stats.get(name)
            if have != want:
                return f"{name}: executed {have} != modeled {want}"
        return None

    def validate(
        self, method: str, tolerance: Optional[float] = None
    ) -> Agreement:
        """Model vs executed agreement at the sampled rank count."""
        tol = (
            DEFAULT_TOLERANCES[method] if tolerance is None else tolerance
        )
        sample = self.execute_sample(method)
        timeline = self.model(method, nranks=self.sample_nranks)
        return Agreement(
            method=method,
            nranks=self.sample_nranks,
            nsteps=self.config.nsteps,
            tolerance=tol,
            modeled=timeline.total,
            executed=sample.step_totals,
            modeled_hidden=timeline.hidden_comm,
            executed_hidden=sample.hidden_comm,
            digests=sample.digests,
            schedule_mismatch=self._check_schedule(sample.setup_stats),
        )

    # -- sweeps, faults, reporting --------------------------------------

    def sweep(
        self,
        methods: Tuple[str, ...] = GS_METHODS,
        nranks_list: Optional[List[int]] = None,
    ) -> Dict[int, Dict[str, ModeledTimeline]]:
        """Model every (P, method) point of a what-if scaling study."""
        points = nranks_list or [self.nranks]
        return {
            p: {m: self.model(m, nranks=p) for m in methods}
            for p in points
        }

    def best_method(
        self, methods: Tuple[str, ...] = GS_METHODS
    ) -> Tuple[str, ModeledTimeline]:
        """The fastest exchange method at the full virtual rank count."""
        ranked = sorted(
            ((self.model(m).step_seconds, m) for m in methods),
        )
        method = ranked[0][1]
        return method, self.model(method)

    def extrapolate_faults(
        self,
        method: str,
        rank_mtbf_hours: float = 5000.0,
    ) -> FaultExtrapolation:
        """Young/Daly checkpoint economics at the virtual scale.

        ``rank_mtbf_hours`` is the per-rank mean time between failures;
        the job-level MTBF shrinks with P, which is exactly why the
        checkpoint question only becomes interesting at vscale counts.
        """
        timeline = self.model(method)
        step = timeline.step_seconds
        cfg = self.config
        sched = self.schedule(self.nranks)
        state_bytes = 8.0 * cfg.neq * sched.nel * cfg.n**3
        ck = self.machine.checkpoint_seconds(state_bytes)
        job_mtbf = rank_mtbf_hours * 3600.0 / self.nranks
        tau = MachineModel.young_daly_interval(ck, job_mtbf)
        overhead = ck / tau + tau / (2.0 * job_mtbf)
        return FaultExtrapolation(
            method=method,
            nranks=self.nranks,
            rank_mtbf_hours=rank_mtbf_hours,
            job_mtbf_seconds=job_mtbf,
            checkpoint_seconds=ck,
            interval_seconds=tau,
            interval_steps=max(1, int(round(tau / step))),
            overhead_fraction=overhead,
            step_seconds=step,
        )

    def report(
        self,
        methods: Tuple[str, ...] = GS_METHODS,
        validate: bool = True,
        rank_mtbf_hours: Optional[float] = None,
    ) -> str:
        """Human-readable scale-out study (CLI ``vscale`` body)."""
        from ..analysis.mpip import modeled_fraction_report

        lines = [
            f"virtual scale-out: P={self.nranks} "
            f"(sample executed: {self.sample_nranks} ranks, "
            f"backend={self.backend})",
            f"machine: {self.machine.name}  "
            f"network: {self.machine.network.describe()}",
            "",
        ]
        best: Tuple[float, str] = (float("inf"), "")
        for m in methods:
            timeline = self.model(m)
            step = timeline.step_seconds
            if step < best[0]:
                best = (step, m)
            frac = timeline.mpi_fraction_pct
            lines.append(
                f"  {m:<10s} step={step * 1e3:9.4f} ms  "
                f"MPI% mean={frac.mean():5.1f} max={frac.max():5.1f}  "
                f"msgs/step={timeline.messages // timeline.nsteps}  "
                f"model_wall={timeline.model_wall_seconds:.2f}s"
            )
        lines.append(f"  fastest: {best[1]}")
        if validate:
            lines.append("")
            lines.append(
                f"agreement at P={self.sample_nranks} "
                "(modeled vs executed):"
            )
            for m in methods:
                lines.append("  " + self.validate(m).describe())
        winner = best[1] or methods[0]
        lines.append("")
        lines.append(
            modeled_fraction_report(
                self.model(winner).mpi_fraction_pct,
                title=f"% time in MPI (modeled, {winner})",
            )
        )
        if rank_mtbf_hours:
            fx = self.extrapolate_faults(
                winner, rank_mtbf_hours=rank_mtbf_hours
            )
            lines.append("")
            lines.append(
                f"faults: job MTBF {fx.job_mtbf_seconds:.1f}s at "
                f"P={fx.nranks}; checkpoint {fx.checkpoint_seconds:.3f}s "
                f"every {fx.interval_steps} steps "
                f"(Young/Daly tau={fx.interval_seconds:.1f}s); "
                f"overhead {100 * fx.overhead_fraction:.1f}% -> "
                f"effective step {fx.effective_step_seconds * 1e3:.4f} ms"
            )
        return "\n".join(lines)
