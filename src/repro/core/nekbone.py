"""Nekbone — the reference mini-app CMT-bone is compared against.

Fig. 7 times the gather-scatter candidates "for both CMT-bone and
Nekbone mini-apps for the same problem setup".  Nekbone (Mantevo/CESAR)
distills Nek5000's pressure solve: unpreconditioned conjugate gradients
on a spectral-element Helmholtz system, whose matvec is

    w = h1 * A u + h2 * B u,        A = sum_d J j_d^2 D_d^T W D_d,
                                    B = J W   (diagonal mass),

followed by direct-stiffness summation (``gs_op(add)`` over the C0
*continuous* numbering) and two allreduce dot products per iteration.

The continuous numbering couples faces, edges, *and* corners, so a
rank talks to up to 26 neighbours with many tiny messages — the
communication structure that makes the crystal router competitive for
Nekbone while CMT-bone (6 fat face messages) prefers pairwise
exchange.  That contrast is the Fig. 7 reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.callgraph import CallGraphProfiler
from ..analysis.timeline import TimelineRecorder
from ..gs import GSHandle, MethodTiming, choose_method, gs_op, gs_setup
from ..kernels import counters, derivative_matrix, gll_weights
from ..kernels import derivatives as dkernels
from ..mesh import Partition, continuous_numbering
from ..mpi import SUM, Comm
from .config import NekboneConfig

R_SETUP = "gs_setup"
R_AX = "ax_local"
R_GSOP = "gs_op_"
R_DOT = "glsc3"          # nek's weighted dot product
R_CG = "cg_iteration"


@dataclass
class NekboneResult:
    """Outputs of one Nekbone run."""

    rank: int
    config: NekboneConfig
    autotune: Optional[Dict[str, MethodTiming]]
    chosen_method: str
    profiler: CallGraphProfiler
    iterations: int
    residual_history: List[float]
    solution_error: Optional[float]
    vtime_total: float
    vtime_comm: float


class Nekbone:
    """One rank's Nekbone instance (construct inside the SPMD main)."""

    def __init__(self, comm: Comm, config: Optional[NekboneConfig] = None):
        self.comm = comm
        self.config = config or NekboneConfig()
        self.partition: Partition = self.config.build_partition(comm.size)
        self.n = self.config.n
        self.nel = self.partition.nel_local
        self.dmat = np.asarray(derivative_matrix(self.n))
        self.profiler = CallGraphProfiler(comm.clock)
        #: Per-phase interval recording for Gantt rendering.
        self.timeline = TimelineRecorder(comm.rank, comm.clock)
        self.autotune: Optional[Dict[str, MethodTiming]] = None

        with self.profiler.region(R_SETUP):
            gids = continuous_numbering(self.partition, comm.rank)
            self.handle: GSHandle = gs_setup(gids, comm, site=R_SETUP)
            if self.config.gs_method is not None:
                self.handle.method = self.config.gs_method
            elif comm.size > 1:
                self.autotune = choose_method(
                    self.handle, trials=self.config.autotune_trials
                )
            else:
                self.handle.method = "pairwise"

        # Geometric factors on the affine brick mesh.
        self._dmat_t = np.ascontiguousarray(self.dmat.T)
        mesh = self.partition.mesh
        jx, jy, jz = mesh.jacobian
        jvol = 1.0 / (jx * jy * jz)        # volume Jacobian
        self._stiff_scale = (jvol * jx * jx, jvol * jy * jy, jvol * jz * jz)
        w = np.asarray(gll_weights(self.n))
        self._w3d = (
            w[:, None, None] * w[None, :, None] * w[None, None, :]
        )[None]  # (1, N, N, N) broadcast over elements
        self._bmass = jvol * self._w3d
        # Assembly weight: 1 / global multiplicity (counts shared
        # points once in dot products).
        ones = np.ones(self.handle.shape)
        mult = gs_op(self.handle, ones, op=SUM, site=R_SETUP)
        self._inv_mult = 1.0 / mult
        self._machine = comm.machine

    # -- operator ----------------------------------------------------------

    def ax_local(self, u: np.ndarray) -> np.ndarray:
        """Element-local Helmholtz matvec (no assembly)."""
        cfg = self.config
        h1, h2 = cfg.h1, cfg.h2
        sx, sy, sz = self._stiff_scale
        var = cfg.kernel_variant
        d = self.dmat
        w3 = self._w3d
        ur = dkernels.dudr(u, d, variant=var)
        us = dkernels.duds(u, d, variant=var)
        ut = dkernels.dudt(u, d, variant=var)
        dt = self._dmat_t
        w = dkernels.dudr(sx * w3 * ur, dt, variant=var)
        w += dkernels.duds(sy * w3 * us, dt, variant=var)
        w += dkernels.dudt(sz * w3 * ut, dt, variant=var)
        w *= h1
        if h2 != 0.0:
            w += h2 * self._bmass * u
        return w

    def ax(self, u: np.ndarray) -> np.ndarray:
        """Assembled matvec: local ax + direct-stiffness summation."""
        with self.timeline.region(R_AX), self.profiler.region(R_AX):
            if self.config.work_mode == "real":
                w = self.ax_local(u)
            else:
                w = u
            self.comm.compute(
                seconds=2.0
                * counters.roofline_seconds(
                    self.n, self.nel, self._machine,
                    variant=self.config.kernel_variant,
                )
            )
        with self.timeline.region(R_GSOP), self.profiler.region(R_GSOP):
            w = gs_op(self.handle, w, op=SUM, site=R_GSOP)
        return w

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Multiplicity-weighted global inner product (one allreduce)."""
        with self.timeline.region(R_DOT), self.profiler.region(R_DOT):
            local = float(np.sum(a * b * self._inv_mult))
            npts = a.size
            self.comm.compute(
                seconds=self._machine.compute_seconds(
                    flops=3.0 * npts, mem_bytes=24.0 * npts
                )
            )
            return self.comm.allreduce(local, op=SUM, site=R_DOT)

    # -- CG solve -----------------------------------------------------------

    def solve(
        self,
        rhs: np.ndarray,
        tol: float = 1e-8,
        maxiter: Optional[int] = None,
    ) -> tuple:
        """Unpreconditioned CG; returns (x, iterations, residual history)."""
        maxiter = self.config.cg_iterations if maxiter is None else maxiter
        x = np.zeros_like(rhs)
        r = rhs.copy()
        p = r.copy()
        rtr = self.dot(r, r)
        history = [np.sqrt(max(rtr, 0.0))]
        it = 0
        for it in range(1, maxiter + 1):
            with self.profiler.region(R_CG):
                w = self.ax(p)
                pap = self.dot(p, w)
                if pap <= 0:
                    break
                alpha = rtr / pap
                x += alpha * p
                r -= alpha * w
                rtr_new = self.dot(r, r)
                history.append(np.sqrt(max(rtr_new, 0.0)))
                if history[-1] < tol:
                    rtr = rtr_new
                    break
                p = r + (rtr_new / rtr) * p
                rtr = rtr_new
        return x, it, history

    def run(self) -> NekboneResult:
        """Manufactured-solution solve: recover a known continuous field."""
        rng = np.random.default_rng(self.config.seed + 7)
        shape = (self.nel, self.n, self.n, self.n)
        raw = rng.standard_normal(shape)
        # Make the exact solution continuous (gs-average).
        x_exact = gs_op(self.handle, raw * self._inv_mult, op=SUM,
                        site=R_SETUP)
        if self.config.work_mode == "real":
            rhs = self.ax(x_exact)
            x, iters, hist = self.solve(rhs, tol=1e-10)
            err = float(np.max(np.abs(x - x_exact)))
        else:
            rhs = x_exact
            x, iters, hist = self.solve(rhs, tol=0.0,
                                        maxiter=self.config.cg_iterations)
            err = None
        clock = self.comm.clock
        return NekboneResult(
            rank=self.comm.rank,
            config=self.config,
            autotune=self.autotune,
            chosen_method=self.handle.method or "pairwise",
            profiler=self.profiler,
            iterations=iters,
            residual_history=hist,
            solution_error=err,
            vtime_total=clock.now,
            vtime_comm=clock.comm_time,
        )


def run_nekbone(comm: Comm, config: Optional[NekboneConfig] = None
                ) -> NekboneResult:
    """SPMD entry point for Nekbone."""
    return Nekbone(comm, config).run()


def launch_nekbone(
    config: Optional[NekboneConfig] = None,
    nranks: int = 8,
    machine=None,
    backend="threads",
):
    """Run Nekbone over a fresh Runtime on the chosen backend.

    Counterpart of :func:`repro.core.cmtbone.launch_cmtbone`; returns
    ``(per_rank_results, runtime)``.
    """
    from ..mpi import Runtime

    cfg = config if config is not None else NekboneConfig()
    rt = Runtime(nranks=nranks, machine=machine, backend=backend)
    return rt.run(run_nekbone, args=(cfg,)), rt
