"""CMT-bone — the mini-app itself.

"The current version of CMT-bone abstracts CMT-nek behavior as
matrix-multiplication and nearest neighbor surface data exchanges to
represent the flux divergence term and the numerical flux term
respectively" (Section IV).  Accordingly a CMT-bone timestep is *not*
the physics solver (that lives in :mod:`repro.solver`): per RK stage it

1. runs the derivative kernel over all ``neq`` synthetic fields
   (``ax_`` in Fig. 4's call graph),
2. extracts surface data (``full2face_cmt``),
3. exchanges it with nearest neighbours through the gather-scatter
   library (``gs_op_``), and
4. applies a pointwise axpy update (``add2s2``),

with periodic vector reductions (``MPI_Allreduce``) as the monitor.
Setup performs ``gs_setup`` discovery and the three-way exchange-method
auto-tune exactly as the paper describes.

Every phase is bracketed by the gprof-style region profiler (Fig. 4)
and all communication flows through the mpiP-style profiler
(Figs. 8-10).  Compute is charged to the virtual clock via the
machine-model roofline; in ``work_mode="real"`` the numpy kernels also
actually execute on the synthetic fields so the data dependencies are
genuine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.callgraph import CallGraphProfiler
from ..analysis.timeline import TimelineRecorder
from ..gs import (
    MethodTiming,
    choose_method,
    gs_op,
    gs_op_begin,
    gs_op_finish,
    gs_setup,
)
from ..gs.pairwise import TAG_PAIRWISE
from ..kernels import Workspace, counters, derivative_matrix
from ..kernels import derivatives as dkernels
from ..mesh import Partition, dg_face_numbering
from ..mpi import MAX, SUM, Comm
from ..solver.surface import full2face, full2face_flops
from .config import CMTBoneConfig

#: Region names mirror the Fortran routine names in Fig. 4.
R_SETUP = "gs_setup"
R_STEP = "cmt_timestep"
R_AX = "ax_"                 # derivative computation (flux divergence)
R_FULL2FACE = "full2face_cmt"
R_GSOP = "gs_op_"
R_GSOP_BEGIN = "gs_op_begin"   # split-phase post (overlap schedule)
R_GSOP_FINISH = "gs_op_finish" # split-phase wait (overlap schedule)
R_INFLIGHT = "gs_inflight"     # timeline span: messages under compute
R_UPDATE = "add2s2"          # nek's axpy
R_MONITOR = "monitor"
R_LB = "lb_rebalance"        # dynamic load balancing (migration + rebuild)


@dataclass
class CMTBoneResult:
    """Everything a CMT-bone run reports back."""

    rank: int
    config: CMTBoneConfig
    autotune: Optional[Dict[str, MethodTiming]]
    chosen_method: str
    profiler: CallGraphProfiler
    setup_stats: dict
    vtime_total: float
    vtime_comm: float
    monitor_values: List[float] = field(default_factory=list)
    #: Communication hidden under compute by the overlapped schedule
    #: (0.0 for blocking runs; never part of ``vtime_total``).
    vtime_hidden_comm: float = 0.0
    #: Rebalances committed by the load balancer (0 when LB is off).
    lb_rebalances: int = 0
    #: Final local element count (differs from the brick's after LB).
    final_nel: int = 0
    #: Per-step compute cost of the *final* measurement window — the
    #: steady-state cost after the last rebalance (whole run when no
    #: rebalance happened; 0.0 with LB off).
    lb_window_cost: float = 0.0
    #: Load-balancer summary text ("" with LB off).
    lb_summary: str = ""

    @property
    def vtime_compute(self) -> float:
        return self.vtime_total - self.vtime_comm


class CMTBone:
    """One rank's CMT-bone instance (construct inside the SPMD main)."""

    def __init__(
        self,
        comm: Comm,
        config: Optional[CMTBoneConfig] = None,
        setup_artifact=None,
        setup_sink=None,
    ):
        self.comm = comm
        self.config = config or CMTBoneConfig()
        self.partition: Partition = self.config.build_partition(comm.size)
        self.n = self.config.n
        self.nel = self.partition.nel_local
        self.neq = self.config.neq
        self.dmat = np.asarray(derivative_matrix(self.n))
        self.profiler = CallGraphProfiler(comm.clock)
        #: Per-phase interval recording for Gantt rendering
        #: (:func:`repro.analysis.render_gantt`).
        self.timeline = TimelineRecorder(comm.rank, comm.clock)
        self.autotune: Optional[Dict[str, MethodTiming]] = None
        self.monitor_values: List[float] = []

        if setup_artifact is not None:
            # A cached post-setup snapshot replaces the whole setup
            # region — handle, method choice, clock and profiler state
            # (see :class:`repro.service.artifacts.SetupArtifact`).
            setup_artifact.apply(self, comm)
        else:
            with self.profiler.region(R_SETUP):
                gids = dg_face_numbering(self.partition, comm.rank)
                self.handle = gs_setup(gids, comm, site=R_SETUP)
                if self.config.gs_method is not None:
                    self.handle.method = self.config.gs_method
                elif comm.size > 1:
                    self.autotune = choose_method(
                        self.handle, trials=self.config.autotune_trials
                    )
                else:
                    self.handle.method = "pairwise"
            if setup_sink is not None:
                setup_sink(self, comm)

        rng = np.random.default_rng(self.config.seed + comm.rank)
        #: Synthetic conserved fields: (neq, nel, N, N, N).
        self.u = rng.standard_normal(
            (self.neq, self.nel, self.n, self.n, self.n)
        )
        self._faces = np.zeros(
            (self.neq, self.nel, 6, self.n, self.n)
        )
        self._machine = comm.machine
        #: Reusable scratch for the derivative/update hot phases: the
        #: gradient results are thrown away every stage, so recycling
        #: their buffers removes 3 x neq large allocations per stage.
        self._work = Workspace()
        # Deterministic per-rank load factor: a hash of the rank mapped
        # to [0, 1) scales compute charges by 1 + imbalance * h(rank).
        h = (comm.rank * 2654435761) % (2**32) / 2**32
        self._load_factor = 1.0 + self.config.compute_imbalance * h
        #: Dynamic load balancer (None with ``lb_mode="off"``).
        self.lb = None
        policy = self.config.lb_policy()
        if policy.enabled:
            from ..lb import ElementAssignment, LoadBalancer

            self.lb = LoadBalancer(
                comm,
                ElementAssignment.from_partition(self.partition),
                policy,
            )

    # -- phases -------------------------------------------------------------

    def _charge(self, seconds: float) -> None:
        self.comm.compute(seconds=seconds * self._load_factor)

    def _derivative_phase(self) -> None:
        """The ``ax_`` hot spot: grad of every field via the kernel."""
        cfg = self.config
        with (
            self.timeline.region(R_AX),
            self.profiler.region(R_AX),
        ):
            if cfg.work_mode == "real":
                for c in range(self.neq):
                    dkernels.grad(
                        self.u[c], self.dmat, variant=cfg.kernel_variant,
                        out=dkernels.grad_workspace(self._work, self.u[c]),
                    )
            self._charge(
                self.neq
                * counters.roofline_seconds(
                    self.n, self.nel, self._machine, variant=cfg.kernel_variant
                )
            )

    def _surface_phase(self) -> None:
        """``full2face_cmt``: build the surface arrays."""
        with (
            self.timeline.region(R_FULL2FACE),
            self.profiler.region(R_FULL2FACE),
        ):
            if self.config.work_mode == "real":
                for c in range(self.neq):
                    self._faces[c] = full2face(self.u[c])
            # In proxy mode the face buffers keep their previous (live)
            # contents; the exchange still moves real arrays.
            self._charge(
                self._machine.compute_seconds(
                    flops=full2face_flops(self.n, self.nel, self.neq),
                    mem_bytes=16.0 * self.neq * self.nel * 6 * self.n**2,
                )
            )

    def _exchange_phase(self) -> None:
        """``gs_op_``: nearest-neighbour exchange of the face traces."""
        nfields = self.config.exchange_fields or self.neq
        with (
            self.timeline.region(R_GSOP),
            self.profiler.region(R_GSOP),
        ):
            if self.config.pack_fields:
                from ..gs import gs_op_many

                fields = [
                    self._faces[c % self.neq] for c in range(nfields)
                ]
                out = gs_op_many(self.handle, fields, op=SUM, site=R_GSOP)
                for c in range(self.neq):
                    self._faces[c] = out[c]
            else:
                for c in range(nfields):
                    result = gs_op(
                        self.handle, self._faces[c % self.neq], op=SUM,
                        site=R_GSOP,
                    )
                    if c < self.neq:
                        self._faces[c] = result

    def _exchange_begin_phase(self) -> list:
        """Split-phase post: ``gs_op_begin`` for every exchanged field.

        The face buffers are complete after ``full2face_cmt``, so every
        field's condense is snapshotted and its messages posted here;
        the update phase then runs while they are in flight.  With
        ``exchange_fields > neq`` the extra proxy exchanges reuse the
        *pre-stage* buffer contents (the blocking loop re-exchanges the
        just-combined buffers sequentially) — acceptable for the
        calibration knob, whose role is traffic volume, not values.
        """
        nfields = self.config.exchange_fields or self.neq
        with (
            self.timeline.region(R_GSOP_BEGIN),
            self.profiler.region(R_GSOP_BEGIN),
        ):
            exchanges = [
                gs_op_begin(
                    self.handle, self._faces[c % self.neq], op=SUM,
                    site=R_GSOP, tag=TAG_PAIRWISE + c,
                )
                for c in range(nfields)
            ]
        self._inflight_t0 = self.timeline.open_span(R_INFLIGHT)
        return exchanges

    def _exchange_finish_phase(self, exchanges: list) -> None:
        """Split-phase wait: fold whatever communication is still exposed."""
        with (
            self.timeline.region(R_GSOP_FINISH),
            self.profiler.region(R_GSOP_FINISH),
        ):
            for c, exchange in enumerate(exchanges):
                result = gs_op_finish(exchange)
                if c < self.neq:
                    self._faces[c] = result
        self.timeline.close_span(R_INFLIGHT, self._inflight_t0)

    def _update_phase(self) -> None:
        """``add2s2``-style pointwise RK update."""
        with (
            self.timeline.region(R_UPDATE),
            self.profiler.region(R_UPDATE),
        ):
            if self.config.work_mode == "real":
                self.u *= 0.75
                t = self._work.like(self.u, key="upd:t")
                np.multiply(self.u, 0.25, out=t)
                self.u += t
            npts = self.neq * self.nel * self.n**3
            self._charge(
                self._machine.compute_seconds(
                    flops=2.0 * npts, mem_bytes=24.0 * npts
                )
            )

    def _monitor_phase(self) -> None:
        """Vector reduction: the residual/CFL allreduce."""
        with (
            self.timeline.region(R_MONITOR),
            self.profiler.region(R_MONITOR),
        ):
            if self.config.work_mode == "real":
                local = float(np.max(np.abs(self._faces)))
            else:
                local = float(self.comm.rank)
            self.monitor_values.append(
                self.comm.allreduce(local, op=MAX, site=R_MONITOR)
            )

    # -- dynamic load balancing ----------------------------------------------

    def _maybe_rebalance(self, istep: int) -> None:
        """Policy check + live migration between timesteps (collective)."""
        new = self.lb.propose(istep)
        if new is None:
            return
        from ..lb import SITE_LB_REBUILD, migrate_elements

        with self.timeline.region(R_LB), self.profiler.region(R_LB):
            old_ids = self.lb.assignment.element_ids_of(self.comm.rank)
            out, stats = migrate_elements(
                self.comm, old_ids, new,
                [("u", self.u, 1), ("faces", self._faces, 1)],
            )
            self.u = out["u"]
            self._faces = out["faces"]
            self.nel = new.nel_of(self.comm.rank)
            self._work.clear()  # local element count (and shapes) changed
            method = self.handle.method
            gids = dg_face_numbering(new, self.comm.rank)
            self.handle = gs_setup(gids, self.comm, site=SITE_LB_REBUILD)
            self.handle.method = method
        self.lb.commit(new, istep, stats=stats)

    # -- driver ---------------------------------------------------------------

    def timestep(self) -> None:
        """One explicit step: ``rk_stages`` x (ax, full2face, gs, update).

        Under ``config.overlap`` the exchange is split: posted right
        after ``full2face_cmt`` and finished after ``add2s2``, whose
        pointwise compute (which touches only the volume fields, never
        the in-flight face buffers) hides the message flight time.
        ``pack_fields`` has no split-phase form and takes precedence.
        """
        overlap = self.config.overlap and not self.config.pack_fields
        with self.profiler.region(R_STEP):
            for _stage in range(self.config.rk_stages):
                self._derivative_phase()
                self._surface_phase()
                if overlap:
                    exchanges = self._exchange_begin_phase()
                    self._update_phase()
                    self._exchange_finish_phase(exchanges)
                else:
                    self._exchange_phase()
                    self._update_phase()

    def run(self, nsteps: Optional[int] = None) -> CMTBoneResult:
        """Run the configured number of steps and collect results."""
        nsteps = self.config.nsteps if nsteps is None else nsteps
        for istep in range(nsteps):
            if self.lb is not None:
                self.lb.monitor.begin_step()
            self.timestep()
            if self.lb is not None:
                self.lb.monitor.end_step(nel=self.nel)
            me = self.config.monitor_every
            if me and (istep + 1) % me == 0:
                self._monitor_phase()
            if self.lb is not None:
                self._maybe_rebalance(istep)
        clock = self.comm.clock
        return CMTBoneResult(
            rank=self.comm.rank,
            config=self.config,
            autotune=self.autotune,
            chosen_method=self.handle.method or "pairwise",
            profiler=self.profiler,
            setup_stats=dict(self.handle.setup_stats),
            vtime_total=clock.now,
            vtime_comm=clock.comm_time,
            monitor_values=list(self.monitor_values),
            vtime_hidden_comm=clock.hidden_comm_time,
            lb_rebalances=self.lb.rebalances if self.lb else 0,
            final_nel=self.nel,
            lb_window_cost=(
                self.lb.monitor.window_cost(self.comm.rank).total_seconds
                / max(self.lb.monitor.window_steps, 1)
                if self.lb else 0.0
            ),
            lb_summary=self.lb.describe() if self.lb else "",
        )


def run_cmtbone(comm: Comm, config: Optional[CMTBoneConfig] = None
                ) -> CMTBoneResult:
    """SPMD entry point: ``Runtime(nranks=P).run(run_cmtbone, args=(cfg,))``."""
    return CMTBone(comm, config).run()


def launch_cmtbone(
    config: Optional[CMTBoneConfig] = None,
    nranks: int = 8,
    machine=None,
    backend="threads",
    time_policy=None,
):
    """Build a Runtime on the chosen execution backend and run CMT-bone.

    Convenience wrapper used by the CLI and the bench registry:
    returns ``(per_rank_results, runtime)`` so callers can reach both
    the :class:`CMTBoneResult` list and the post-run reporting
    (``clock_stats``/``job_profile``).  With ``backend="procs"`` the ranks run
    as forked OS processes and real kernel work executes in parallel
    across cores; virtual-time results are identical either way (see
    ``docs/backends.md``).
    """
    from ..mpi import Runtime, TimePolicy

    cfg = config if config is not None else CMTBoneConfig()
    rt = Runtime(
        nranks=nranks,
        machine=machine,
        time_policy=time_policy if time_policy is not None else TimePolicy.MODELED,
        backend=backend,
    )
    return rt.run(run_cmtbone, args=(cfg,)), rt
