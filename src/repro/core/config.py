"""Mini-app configurations, including the paper's exact workloads.

The paper parameterizes CMT-bone by three knobs (Section IV): "degree
of the polynomial N - 1, number of elements per processor Nel, and the
number of MPI processes P".  :class:`CMTBoneConfig` captures those plus
the implementation choices under study (kernel variant, gs method), and
:meth:`CMTBoneConfig.fig7` reproduces the Fig. 7 problem setup
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..mesh import BoxMesh, Partition, factor3

Coord = Tuple[int, int, int]


def _as_coord(v, name: str) -> Coord:
    if isinstance(v, int):
        return factor3(v)
    t = tuple(int(x) for x in v)
    if len(t) != 3 or any(x < 1 for x in t):
        raise ValueError(f"{name} must be an int or 3 positive ints, got {v}")
    return t  # type: ignore[return-value]


@dataclass(frozen=True)
class CMTBoneConfig:
    """Configuration of one CMT-bone run.

    ``local_shape`` is the per-rank element brick (the paper's "Local
    Element Distribution"); the global mesh is ``proc_shape *
    local_shape`` so every rank is identically loaded, exactly as in
    the paper's setups.
    """

    #: GLL points per direction (polynomial order + 1); paper: 5..25.
    n: int = 10
    #: Elements per rank as a 3-D brick (or an int to auto-factor).
    local_shape: Coord = (5, 5, 4)
    #: Processor grid (or None to factor the communicator size).
    proc_shape: Optional[Coord] = None
    #: Conserved components carried through the pipeline (CMT: 5).
    neq: int = 5
    #: Timesteps for :meth:`repro.core.cmtbone.CMTBone.run`.
    nsteps: int = 10
    #: RK stages per step (CMT-nek: 3-stage SSP).
    rk_stages: int = 3
    #: Derivative-kernel variant ("fused" is what CMT-bone inherits;
    #: "generated"/"auto" route through the repro.kir generated tier).
    kernel_variant: str = "fused"
    #: gs exchange method; None runs the setup-time auto-tuner.
    gs_method: Optional[str] = None
    #: Auto-tune trial count.
    autotune_trials: int = 2
    #: "real" executes the numpy kernels on synthetic data; "proxy"
    #: skips array math and only charges modelled time (for large P).
    work_mode: str = "real"
    #: Exchange all neq fields in one packed message per neighbour
    #: (gslib's gs_op_many) instead of one gs_op per field.
    pack_fields: bool = False
    #: Split-phase overlapped schedule: the gather-scatter exchange is
    #: posted right after ``full2face_cmt`` and finished *after* the
    #: ``add2s2`` update, so the update's compute hides the message
    #: flight time (see docs/virtual-time.md, "Overlap accounting").
    #: Mutually exclusive with ``pack_fields`` (the packed many-field
    #: exchange has no split-phase form and wins if both are set).
    overlap: bool = False
    #: Face-trace fields exchanged per RK stage.  Defaults to ``neq``
    #: (5); the validation study (repro.validation) shows the parent
    #: application exchanges 2*neq+1 = 11 traces (state + normal flux
    #: + wavespeed), so calibrated runs set 11 here.
    exchange_fields: Optional[int] = None
    #: Vector-reduction (allreduce) cadence in steps; 0 disables.
    monitor_every: int = 1
    #: Random seed for the synthetic fields.
    seed: int = 2015
    #: Fractional compute-load jitter across ranks (0 = perfectly
    #: balanced).  Real CMT-nek ranks are *not* balanced (particles,
    #: boundary work, OS noise); a nonzero value here produces the
    #: MPI_Wait-dominated profile of Figs. 8-9.
    compute_imbalance: float = 0.0
    #: Dynamic load balancing mode: "off", "auto" (threshold on the
    #: measured max/mean cost imbalance), "every" (fixed cadence), or
    #: "manual".  See :mod:`repro.lb` and docs/load-balancing.md.
    lb_mode: str = "off"
    #: Imbalance trigger for ``lb_mode="auto"``.
    lb_threshold: float = 1.10
    #: Rebalance cadence (steps) for ``lb_mode="every"``.
    lb_every: int = 0
    #: Minimum steps between rebalances (``auto`` hysteresis).
    lb_min_interval: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "local_shape", _as_coord(self.local_shape, "local_shape")
        )
        if self.proc_shape is not None:
            object.__setattr__(
                self, "proc_shape", _as_coord(self.proc_shape, "proc_shape")
            )
        if self.work_mode not in ("real", "proxy"):
            raise ValueError(f"work_mode must be real|proxy, got {self.work_mode}")
        if self.rk_stages < 1 or self.nsteps < 0 or self.neq < 1:
            raise ValueError("rk_stages/nsteps/neq out of range")
        if self.lb_mode not in ("off", "auto", "every", "manual"):
            raise ValueError(
                f"lb_mode must be off|auto|every|manual, got {self.lb_mode}"
            )
        if self.lb_mode == "every" and self.lb_every < 1:
            raise ValueError("lb_mode='every' needs lb_every >= 1")

    @property
    def nel_local(self) -> int:
        lx, ly, lz = self.local_shape
        return lx * ly * lz

    def resolve_proc_shape(self, nranks: int) -> Coord:
        shape = self.proc_shape if self.proc_shape is not None else factor3(nranks)
        px, py, pz = shape
        if px * py * pz != nranks:
            raise ValueError(
                f"processor grid {shape} does not match {nranks} ranks"
            )
        return shape

    def build_partition(self, nranks: int) -> Partition:
        """Mesh + decomposition for ``nranks`` identically loaded ranks."""
        proc = self.resolve_proc_shape(nranks)
        global_shape = tuple(
            p * l for p, l in zip(proc, self.local_shape)
        )
        mesh = BoxMesh(shape=global_shape, n=self.n)  # periodic box
        return Partition(mesh=mesh, proc_shape=proc)

    def with_(self, **kw) -> "CMTBoneConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kw)

    def lb_policy(self):
        """The :class:`repro.lb.RebalancePolicy` these knobs describe."""
        from ..lb import RebalancePolicy

        if self.lb_mode == "off":
            return RebalancePolicy(mode="off")
        return RebalancePolicy(
            mode=self.lb_mode,
            threshold=self.lb_threshold,
            every=self.lb_every,
            min_interval=self.lb_min_interval,
        )

    # -- paper workloads ---------------------------------------------------

    @classmethod
    def fig7(cls, **overrides) -> "CMTBoneConfig":
        """The Fig. 7 setup: P=256 as 8x8x4, 100 el/rank as 5x5x4, N=10."""
        base = cls(
            n=10,
            local_shape=(5, 5, 4),
            proc_shape=(8, 8, 4),
            nsteps=1,
            work_mode="proxy",
        )
        return base.with_(**overrides) if overrides else base

    @classmethod
    def fig4(cls, **overrides) -> "CMTBoneConfig":
        """The Fig. 4 profile host: 8 MPI processes on a desktop."""
        base = cls(
            n=10,
            local_shape=(2, 2, 2),
            proc_shape=(2, 2, 2),
            nsteps=20,
            work_mode="proxy",
        )
        return base.with_(**overrides) if overrides else base


@dataclass(frozen=True)
class NekboneConfig:
    """Configuration of the Nekbone comparator mini-app.

    Nekbone solves a Helmholtz-type SEM system with unpreconditioned
    conjugate gradients; its gather-scatter runs over the *continuous*
    (C0) numbering, so the same problem size produces a different
    communication structure than CMT-bone — the point of Fig. 7.
    """

    n: int = 10
    local_shape: Coord = (5, 5, 4)
    proc_shape: Optional[Coord] = None
    #: CG iterations per solve (nekbone default region).
    cg_iterations: int = 100
    #: Helmholtz coefficients: h1 * stiffness + h2 * mass.
    h1: float = 1.0
    h2: float = 1.0
    gs_method: Optional[str] = None
    autotune_trials: int = 2
    kernel_variant: str = "fused"
    work_mode: str = "real"
    seed: int = 1999

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "local_shape", _as_coord(self.local_shape, "local_shape")
        )
        if self.proc_shape is not None:
            object.__setattr__(
                self, "proc_shape", _as_coord(self.proc_shape, "proc_shape")
            )
        if self.work_mode not in ("real", "proxy"):
            raise ValueError(f"work_mode must be real|proxy, got {self.work_mode}")

    @property
    def nel_local(self) -> int:
        lx, ly, lz = self.local_shape
        return lx * ly * lz

    def resolve_proc_shape(self, nranks: int) -> Coord:
        shape = self.proc_shape if self.proc_shape is not None else factor3(nranks)
        px, py, pz = shape
        if px * py * pz != nranks:
            raise ValueError(
                f"processor grid {shape} does not match {nranks} ranks"
            )
        return shape

    def build_partition(self, nranks: int) -> Partition:
        proc = self.resolve_proc_shape(nranks)
        global_shape = tuple(p * l for p, l in zip(proc, self.local_shape))
        mesh = BoxMesh(shape=global_shape, n=self.n)
        return Partition(mesh=mesh, proc_shape=proc)

    def with_(self, **kw) -> "NekboneConfig":
        return replace(self, **kw)

    @classmethod
    def fig7(cls, **overrides) -> "NekboneConfig":
        """Same problem setup as CMT-bone's Fig. 7 run."""
        base = cls(
            n=10,
            local_shape=(5, 5, 4),
            proc_shape=(8, 8, 4),
            work_mode="proxy",
        )
        return base.with_(**overrides) if overrides else base
