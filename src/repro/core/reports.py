"""Run-level reporting: Fig. 7 tables and Fig. 4 profiles from results."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.callgraph import flat_profile, merge_profiles
from ..analysis.tables import render_table
from ..gs import MethodTiming
from .cmtbone import CMTBoneResult
from .nekbone import NekboneResult


def fig7_rows(
    label: str, timings: Dict[str, MethodTiming],
    methods: Sequence[str] = ("pairwise", "crystal"),
) -> List[tuple]:
    """Rows of the Fig. 7 table for one mini-app."""
    from ..gs.ops import METHOD_LABELS

    return [
        (
            label,
            METHOD_LABELS[m],
            timings[m].avg,
            timings[m].mn,
            timings[m].mx,
        )
        for m in methods
        if m in timings
    ]


def fig7_table(
    cmtbone: Dict[str, MethodTiming],
    nekbone: Dict[str, MethodTiming],
    methods: Sequence[str] = ("pairwise", "crystal"),
) -> str:
    """The Fig. 7 comparison table (both mini-apps, avg/min/max)."""
    rows = fig7_rows("CMT-bone", cmtbone, methods) + fig7_rows(
        "Nekbone", nekbone, methods
    )
    return render_table(
        ["Mini-app", "All-to-all method", "Time (avg) s", "Time (min) s",
         "Time (max) s"],
        rows,
        floatfmt="{:.9f}",
    )


def cmtbone_profile_report(results: Sequence[CMTBoneResult]) -> str:
    """Merged Fig. 4-style flat profile over all ranks of a run."""
    merged = merge_profiles([r.profiler for r in results])
    return flat_profile(merged)


def nekbone_profile_report(results: Sequence[NekboneResult]) -> str:
    merged = merge_profiles([r.profiler for r in results])
    return flat_profile(merged)


def dominant_region(results: Sequence[CMTBoneResult]) -> str:
    """Name of the region with the largest merged self-time."""
    merged = merge_profiles([r.profiler for r in results])
    return max(merged.values(), key=lambda s: s.self_time).name


def comm_fraction(results: Sequence[CMTBoneResult]) -> List[float]:
    """Per-rank fraction of virtual time spent in communication."""
    out = []
    for r in sorted(results, key=lambda r: r.rank):
        out.append(r.vtime_comm / r.vtime_total if r.vtime_total else 0.0)
    return out


def autotune_of(results: Sequence, rank: int = 0
                ) -> Optional[Dict[str, MethodTiming]]:
    """The autotune table from a given rank's result (identical on all)."""
    for r in results:
        if r.rank == rank:
            return r.autotune
    return None
