"""``repro.core`` — the mini-apps: CMT-bone and its Nekbone comparator.

:class:`CMTBone` is the paper's primary contribution: a performance
proxy whose timestep is derivative kernels + ``full2face`` +
gather-scatter exchange + pointwise update, with setup-time gs
auto-tuning and built-in gprof/mpiP-style profiling.  :class:`Nekbone`
is the CG mini-app used as the comparison baseline in Fig. 7.
"""

from .cmtbone import CMTBone, CMTBoneResult, launch_cmtbone, run_cmtbone
from .config import CMTBoneConfig, NekboneConfig
from .nekbone import Nekbone, NekboneResult, launch_nekbone, run_nekbone
from .reports import (
    autotune_of,
    cmtbone_profile_report,
    comm_fraction,
    dominant_region,
    fig7_rows,
    fig7_table,
    nekbone_profile_report,
)

__all__ = [
    "CMTBone",
    "CMTBoneConfig",
    "CMTBoneResult",
    "Nekbone",
    "NekboneConfig",
    "NekboneResult",
    "autotune_of",
    "cmtbone_profile_report",
    "comm_fraction",
    "dominant_region",
    "fig7_rows",
    "fig7_table",
    "launch_cmtbone",
    "launch_nekbone",
    "nekbone_profile_report",
    "run_cmtbone",
    "run_nekbone",
]
