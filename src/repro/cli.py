"""Command-line mini-app runner: ``python -m repro.cli <command>``.

Mirrors how the Fortran CMT-bone/Nekbone are driven (a parameter deck
plus ``mpiexec -n P``): one process simulates all ranks.

Commands
--------
``cmtbone``
    Run the CMT-bone mini-app, print the gs auto-tune table, the
    gprof-style compute profile, and the mpiP-style MPI report.
``nekbone``
    Run the Nekbone comparator (CG solve) and print its profile.
``fig7``
    Reproduce the paper's Fig. 7 exchange-method comparison.
``vscale``
    Virtual scale-out study: execute a small rank sample, model
    10^4-10^5 ranks analytically, and gate on modeled-vs-executed
    agreement (see docs/virtual-scale.md).
``sod``
    Run a small Sod shock-tube campaign on the real DG solver, with
    optional fault injection (``--fault-spec``), checkpointing, and
    crash recovery; ``--verify`` proves the recovered fields bitwise
    identical to a fault-free run.
``machines``
    List the available machine-model presets.

Examples
--------
::

    python -m repro.cli cmtbone --ranks 8 -N 10 --local 2,2,2 --steps 10
    python -m repro.cli nekbone --ranks 8 --iterations 50
    python -m repro.cli fig7 --ranks 64 --machine compton
    python -m repro.cli vscale --ranks 65536 --sample 32 --mtbf 5000
    python -m repro.cli sod --ranks 2 --steps 12 --checkpoint-every 3 \
        --fault-spec "crash:rank=1,step=5" --verify
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import full_report, mpi_fraction_report
from .core import (
    CMTBoneConfig,
    NekboneConfig,
    cmtbone_profile_report,
    fig7_table,
    nekbone_profile_report,
    run_nekbone,
)
from .gs import timing_table
from .mpi import Runtime
from .perfmodel import MachineModel


def _coord(text: str):
    parts = [int(p) for p in text.split(",")]
    if len(parts) == 1:
        return parts[0]
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected N or X,Y,Z, got {text!r}"
        )
    return tuple(parts)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ranks", type=int, default=8,
                   help="simulated MPI ranks (default 8)")
    p.add_argument("-N", "--points", type=int, default=10,
                   help="GLL points per direction (default 10)")
    p.add_argument("--local", type=_coord, default=(2, 2, 2),
                   help="elements per rank, X,Y,Z or total (default 2,2,2)")
    p.add_argument("--proc", type=_coord, default=None,
                   help="processor grid X,Y,Z (default: auto-factor)")
    p.add_argument("--machine", default="compton",
                   choices=MachineModel.available_presets(),
                   help="machine-model preset (default compton)")
    p.add_argument("--gs-method", default=None,
                   choices=["pairwise", "crystal", "allreduce"],
                   help="exchange method (default: auto-tune)")
    p.add_argument("--proxy", action="store_true",
                   help="skip real array math; model compute time only")
    _add_backend(p)


def _add_backend(p: argparse.ArgumentParser) -> None:
    from .mpi import available_backends

    p.add_argument("--backend", default="threads",
                   choices=available_backends(),
                   help="execution backend: threads (default), procs "
                        "(one OS process per rank; escapes the GIL), or "
                        "sockets (processes over TCP/Unix sockets; see "
                        "the launch subcommand and docs/backends.md)")


def _add_lb_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--lb", default="off",
                   choices=["off", "auto", "every", "manual"],
                   help="dynamic load balancing: off, auto (threshold "
                        "trigger), every (fixed cadence), or manual "
                        "(monitor only; see docs/load-balancing.md)")
    p.add_argument("--lb-threshold", type=float, default=1.10,
                   help="max/mean cost-imbalance trigger for --lb auto "
                        "(default 1.10)")
    p.add_argument("--lb-every", type=int, default=0,
                   help="rebalance cadence in steps for --lb every")


def _lb_policy(args):
    """The RebalancePolicy the --lb* flags describe, or None for off."""
    if args.lb == "off":
        return None
    from .lb import RebalancePolicy

    return RebalancePolicy(
        mode=args.lb,
        threshold=args.lb_threshold,
        every=args.lb_every,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CMT-bone mini-app reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cmt = sub.add_parser("cmtbone", help="run the CMT-bone mini-app")
    _add_common(p_cmt)
    p_cmt.add_argument("--steps", type=int, default=10,
                       help="timesteps (default 10)")
    p_cmt.add_argument("--imbalance", type=float, default=0.0,
                       help="compute-load jitter fraction (default 0)")
    p_cmt.add_argument("--pack", action="store_true",
                       help="use gs_op_many packed exchanges")
    p_cmt.add_argument("--overlap", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="split-phase schedule: overlap the gs "
                            "exchange with the update compute")
    p_cmt.add_argument("--kernel-variant", "--variant", dest="variant",
                       default="fused",
                       choices=["auto", "basic", "fused", "einsum",
                                "generated"],
                       help="derivative-kernel variant (default fused); "
                            "'generated' compiles from the contraction "
                            "IR, 'auto' additionally autotunes the "
                            "schedule per host (see docs/kernel-ir.md)")
    p_cmt.add_argument("--gantt", action="store_true",
                       help="render a per-rank execution timeline")
    _add_lb_flags(p_cmt)

    p_nek = sub.add_parser("nekbone", help="run the Nekbone comparator")
    _add_common(p_nek)
    p_nek.add_argument("--iterations", type=int, default=50,
                       help="CG iteration budget (default 50)")

    p_f7 = sub.add_parser("fig7", help="exchange-method comparison table")
    _add_common(p_f7)

    p_vs = sub.add_parser(
        "vscale",
        help="virtual scale-out study: model 10^4-10^5 ranks from a "
             "small executed sample (see docs/virtual-scale.md)",
    )
    p_vs.add_argument("--ranks", type=int, default=65536,
                      help="virtual rank count to model (default 65536)")
    p_vs.add_argument("--sample", type=int, default=16,
                      help="ranks to actually execute for the "
                           "modeled-vs-executed agreement gate "
                           "(default 16)")
    p_vs.add_argument("-N", "--points", type=int, default=8,
                      help="GLL points per direction (default 8)")
    p_vs.add_argument("--local", type=_coord, default=(3, 3, 2),
                      help="elements per rank, X,Y,Z or total "
                           "(default 3,3,2)")
    p_vs.add_argument("--proc", type=_coord, default=None,
                      help="processor grid for the virtual job "
                           "(default: auto-factor)")
    p_vs.add_argument("--machine", default="compton",
                      choices=MachineModel.available_presets(),
                      help="machine-model preset (default compton)")
    p_vs.add_argument("--steps", type=int, default=2,
                      help="timesteps (default 2)")
    p_vs.add_argument("--gs-method", action="append", dest="methods",
                      choices=["pairwise", "crystal", "allreduce"],
                      help="exchange method to model (repeatable; "
                           "default: all three)")
    p_vs.add_argument("--overlap", action=argparse.BooleanOptionalAction,
                      default=False,
                      help="model the split-phase overlapped schedule")
    p_vs.add_argument("--imbalance", type=float, default=0.0,
                      help="compute-load jitter fraction (default 0)")
    p_vs.add_argument("--proxy", action="store_true",
                      help="proxy compute in the executed sample "
                           "(skip real array math)")
    p_vs.add_argument("--no-execute", action="store_true",
                      help="model only: skip the executed sample and "
                           "the agreement gate")
    p_vs.add_argument("--tolerance", type=float, default=None,
                      help="override the per-method agreement "
                           "tolerance (default: per-method, see "
                           "docs/virtual-scale.md)")
    p_vs.add_argument("--mtbf", type=float, default=None,
                      help="per-rank MTBF in hours: extrapolate "
                           "Young/Daly checkpoint economics at the "
                           "virtual scale")
    p_vs.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON document "
                           "instead of the text report")
    _add_backend(p_vs)

    p_val = sub.add_parser(
        "validate",
        help="mini-app vs parent-application validation study",
    )
    _add_common(p_val)
    p_val.add_argument("--steps", type=int, default=4,
                       help="timesteps for both apps (default 4)")
    p_val.add_argument("--calibrated", action="store_true",
                       help="use the exchange_fields=11 calibration")
    p_val.add_argument("--overlap", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="overlapped split-phase schedule in both "
                            "the mini-app and the parent solver")

    p_k = sub.add_parser(
        "kernels", help="Fig. 5/6 derivative-kernel counter tables"
    )
    p_k.add_argument("-N", "--points", type=int, default=5,
                     help="GLL points per direction (paper: 5)")
    p_k.add_argument("--elements", type=int, default=1563,
                     help="element count (paper: 1563)")
    p_k.add_argument("--steps", type=int, default=1000,
                     help="timesteps (paper: 1000)")

    p_sod = sub.add_parser(
        "sod",
        help="Sod shock tube with fault injection + crash recovery",
    )
    p_sod.add_argument("--ranks", type=int, default=2,
                       help="simulated MPI ranks (default 2)")
    p_sod.add_argument("-N", "--points", type=int, default=6,
                       help="GLL points per direction (default 6)")
    p_sod.add_argument("--elements", type=int, default=16,
                       help="elements along the tube (default 16; must "
                            "divide by --ranks)")
    p_sod.add_argument("--steps", type=int, default=12,
                       help="timesteps (default 12)")
    p_sod.add_argument("--dt", type=float, default=2e-4,
                       help="fixed timestep, s (default 2e-4; fixed so "
                            "recovered runs are bitwise comparable)")
    p_sod.add_argument("--machine", default="compton",
                       choices=MachineModel.available_presets(),
                       help="machine-model preset (default compton)")
    p_sod.add_argument("--gs-method", default="pairwise",
                       choices=["pairwise", "crystal", "allreduce"],
                       help="exchange method (default pairwise)")
    p_sod.add_argument("--fault-spec", default=None,
                       help="fault plan, e.g. 'crash:rank=1,step=5;"
                            "drop:p=0.01' (see docs/fault-injection.md)")
    p_sod.add_argument("--fault-seed", type=int, default=0,
                       help="seed for probabilistic fault decisions")
    p_sod.add_argument("--checkpoint-every", type=int, default=0,
                       help="write a checkpoint every N steps (0 = off)")
    p_sod.add_argument("--checkpoint-dir", default=None,
                       help="checkpoint base directory (default: a tempdir);"
                            " checkpoints live in a job-<id> subdirectory")
    p_sod.add_argument("--job-id", default=None,
                       help="job identity for checkpoint namespacing "
                            "(default: a generated unique id)")
    p_sod.add_argument("--gantt", action="store_true",
                       help="render the campaign recovery timeline")
    p_sod.add_argument("--verify", action="store_true",
                       help="also run fault-free and require bitwise-"
                            "identical final fields (exit 1 otherwise)")
    p_sod.add_argument("--imbalance", type=float, default=0.0,
                       help="compute-load jitter fraction (default 0)")
    p_sod.add_argument("--kernel-variant", dest="kernel_variant",
                       default="fused",
                       choices=["auto", "basic", "fused", "einsum",
                                "generated"],
                       help="derivative-kernel variant (default fused)")
    _add_backend(p_sod)
    _add_lb_flags(p_sod)

    from .bench.schema import GROUPS as BENCH_GROUPS

    p_bench = sub.add_parser(
        "bench",
        help="performance benchmark runner with baseline comparison",
    )
    p_bench.add_argument(
        "--group", action="append", dest="groups",
        choices=list(BENCH_GROUPS),
        help="restrict to a scenario group (repeatable; default all)",
    )
    p_bench.add_argument(
        "--fast", action="store_true",
        help="fast scenarios only (the PR perf-gate tier)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=None,
        help="override every scenario's repeat count",
    )
    p_bench.add_argument(
        "--out", default=".",
        help="directory for the BENCH_*.json results (default: cwd)",
    )
    p_bench.add_argument(
        "--compare", metavar="BASELINE_DIR", default=None,
        help="diff the run against committed baselines; exit 1 on "
             "any metric regression beyond tolerance",
    )
    p_bench.add_argument(
        "--update-baselines", action="store_true",
        help="write this run's results into the baseline directory "
             "(--compare dir if given, else benchmarks/baselines)",
    )
    p_bench.add_argument(
        "--gate-wall", choices=["auto", "on", "off"], default="auto",
        help="gate wall-clock metrics: auto = only when the host "
             "fingerprint matches the baseline (default)",
    )
    p_bench.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit",
    )
    p_bench.add_argument(
        "--verbose", action="store_true",
        help="print every compared metric, not just deviations",
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the job service over a spool directory",
    )
    p_srv.add_argument("--spool", required=True,
                       help="spool directory (queue/ and results/ live "
                            "under it)")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="persistent pool workers (default 2)")
    p_srv.add_argument("--quota", type=int, default=None,
                       help="max running jobs per submitter "
                            "(default unlimited)")
    p_srv.add_argument("--batch-max", type=int, default=4,
                       help="max small jobs per worker dispatch "
                            "(default 4)")
    p_srv.add_argument("--poll", type=float, default=0.2,
                       help="spool poll interval seconds (default 0.2)")
    p_srv.add_argument("--drain", action="store_true",
                       help="exit once the spool is empty and all "
                            "accepted jobs finished")
    p_srv.add_argument("--artifact-dir", default=None,
                       help="disk-spill directory for the setup-artifact "
                            "cache; warm hits survive service restarts "
                            "(default: in-memory only)")

    p_sub = sub.add_parser(
        "submit",
        help="submit one job to a running service's spool",
    )
    p_sub.add_argument("--spool", required=True,
                       help="spool directory of the target service")
    p_sub.add_argument("--kind", choices=["cmtbone", "sod"],
                       default="cmtbone", help="job kind")
    p_sub.add_argument("--name", default="", help="display name")
    p_sub.add_argument("--submitter", default="anon",
                       help="submitter identity for quota accounting")
    p_sub.add_argument("--priority", type=int, default=0,
                       help="higher dispatches first (default 0)")
    p_sub.add_argument("--ranks", type=int, default=2,
                       help="simulated MPI ranks (default 2)")
    p_sub.add_argument("--machine", default="compton",
                       help="machine-model preset (default compton)")
    p_sub.add_argument("--params", default=None,
                       help='kind-specific params as JSON, e.g. '
                            '\'{"n": 5, "nel": 8, "nsteps": 4}\'')
    p_sub.add_argument("--timeout-seconds", type=float, default=0.0,
                       help="per-attempt execution budget; overrunning "
                            "attempts are killed (default 0 = unlimited)")
    p_sub.add_argument("--max-retries", type=int, default=0,
                       help="re-admissions allowed after a timeout or "
                            "worker death (default 0)")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the result arrives and print it")
    p_sub.add_argument("--timeout", type=float, default=300.0,
                       help="--wait timeout seconds (default 300)")

    p_camp = sub.add_parser(
        "campaign",
        help="run a batch of jobs through an in-process service",
    )
    p_camp.add_argument("--jobs", default=None,
                        help="JSON file with a list of job spec objects")
    p_camp.add_argument("--count", type=int, default=None,
                        help="instead of --jobs: run COUNT copies of one "
                             "spec built from the flags below")
    p_camp.add_argument("--matrix", default=None,
                        help="instead of --jobs/--count: JSON file with "
                             "a scenario matrix (axes crossed into one "
                             "cell per combination; comparative report "
                             "with a winner per row — see "
                             "docs/service.md)")
    p_camp.add_argument("--kind", choices=["cmtbone", "sod"],
                        default="cmtbone")
    p_camp.add_argument("--ranks", type=int, default=2)
    p_camp.add_argument("--machine", default="compton")
    p_camp.add_argument("--params", default=None,
                        help="kind-specific params as JSON")
    p_camp.add_argument("--workers", type=int, default=2,
                        help="persistent pool workers (default 2)")
    p_camp.add_argument("--quota", type=int, default=None)
    p_camp.add_argument("--batch-max", type=int, default=4)
    p_camp.add_argument("--artifact-dir", default=None,
                        help="disk-spill directory for the setup-"
                             "artifact cache (default: in-memory only)")
    p_camp.add_argument("--json", dest="json_out", default=None,
                        help="also write the full per-job results here")

    p_launch = sub.add_parser(
        "launch",
        help="run a subcommand across hosts from a hostfile "
             "(sockets backend)",
        description="Expand an mpirun-style hostfile into a per-rank "
                    "host layout and run another repro subcommand on "
                    "the sockets backend: local hosts fork agents, "
                    "remote hosts are reached over ssh, and "
                    "--loopback fakes the multi-host layout on this "
                    "machine for testing.  Example: "
                    "repro launch --hostfile hosts.txt -- "
                    "sod --ranks 4 --verify",
    )
    p_launch.add_argument("--hostfile", required=True,
                          help="hostfile: one 'host [slots=N]' per line")
    p_launch.add_argument("--loopback", action="store_true",
                          help="treat every host as local (forked, with "
                               "REPRO_HOST_ID set to the host label) — "
                               "multi-'host' testing on one machine")
    p_launch.add_argument("--family", default="tcp",
                          choices=["tcp", "unix"],
                          help="socket family (default tcp)")
    p_launch.add_argument("--agent-python", default="python3",
                          help="python executable for remote agents "
                               "(default python3)")
    p_launch.add_argument("--hb-timeout", type=float, default=10.0,
                          help="declare a silent rank dead after this "
                               "many seconds (default 10)")
    p_launch.add_argument("--bind-host", default=None,
                          help="interface the driver's listeners bind "
                               "(default: loopback for all-local "
                               "layouts, 0.0.0.0 when the hostfile "
                               "has remote hosts)")
    p_launch.add_argument("--advertise-host", default=None,
                          help="address agents are told to dial back "
                               "(default: this machine's hostname "
                               "when remote hosts are present)")
    p_launch.add_argument("rest", nargs=argparse.REMAINDER,
                          metavar="-- subcommand ...",
                          help="the repro subcommand to run, e.g. "
                               "'-- sod --ranks 4 --verify'")

    sub.add_parser("machines", help="list machine presets")
    return parser


def cmd_cmtbone(args) -> int:
    config = CMTBoneConfig(
        n=args.points,
        local_shape=args.local,
        proc_shape=args.proc,
        nsteps=args.steps,
        kernel_variant=args.variant,
        gs_method=args.gs_method,
        work_mode="proxy" if args.proxy else "real",
        compute_imbalance=args.imbalance,
        pack_fields=args.pack,
        overlap=args.overlap,
        lb_mode=args.lb,
        lb_threshold=args.lb_threshold,
        lb_every=args.lb_every,
    )
    runtime = Runtime(
        nranks=args.ranks, machine=MachineModel.preset(args.machine),
        backend=args.backend,
    )

    def app_main(comm):
        from .core.cmtbone import CMTBone

        app = CMTBone(comm, config)
        return app.run(), app.timeline

    pairs = runtime.run(app_main)
    results = [r for r, _t in pairs]
    timelines = [t for _r, t in pairs]
    r0 = results[0]
    print(config.build_partition(args.ranks).describe())
    if r0.autotune:
        print("\n" + timing_table(r0.autotune, "gs auto-tune:"))
    print(f"\nchosen gs method: {r0.chosen_method}")
    # pack_fields has no split-phase form and takes precedence over overlap.
    overlapping = config.overlap and not config.pack_fields
    if config.overlap and config.pack_fields:
        schedule = "blocking (--pack overrides --overlap)"
    elif overlapping:
        schedule = "overlapped (split-phase)"
    else:
        schedule = "blocking"
    print(f"exchange schedule: {schedule}")
    if overlapping:
        hidden = max(r.vtime_hidden_comm for r in results)
        print(f"hidden communication (max over ranks): {hidden:.3e} s")
    print("\n=== compute profile (merged over ranks) ===")
    print(cmtbone_profile_report(results))
    print("\n=== MPI profile ===")
    print(full_report(runtime.job_profile(), top_n=12))
    if args.lb != "off":
        from .analysis import lb_report

        print("\n=== load balancing ===")
        if r0.lb_summary:
            print(r0.lb_summary)
        print(f"rebalances: {r0.lb_rebalances}  "
              f"final elements on rank 0: {r0.final_nel}")
        print(lb_report(runtime.job_profile()))
    if args.gantt:
        from .analysis import merge_timelines, render_gantt

        print("\n=== execution timeline ===")
        print(render_gantt(merge_timelines(timelines), width=68))
    return 0


def cmd_nekbone(args) -> int:
    config = NekboneConfig(
        n=args.points,
        local_shape=args.local,
        proc_shape=args.proc,
        cg_iterations=args.iterations,
        gs_method=args.gs_method,
        work_mode="proxy" if args.proxy else "real",
    )
    runtime = Runtime(
        nranks=args.ranks, machine=MachineModel.preset(args.machine),
        backend=args.backend,
    )
    results = runtime.run(run_nekbone, args=(config,))
    r0 = results[0]
    print(f"CG iterations: {r0.iterations}")
    if r0.residual_history:
        print(f"residual: {r0.residual_history[0]:.3e} -> "
              f"{r0.residual_history[-1]:.3e}")
    if r0.solution_error is not None:
        print(f"solution max error: {r0.solution_error:.3e}")
    if r0.autotune:
        print("\n" + timing_table(r0.autotune, "gs auto-tune:"))
    print(f"chosen gs method: {r0.chosen_method}")
    print("\n=== compute profile (merged over ranks) ===")
    print(nekbone_profile_report(results))
    print("\n=== MPI time per rank ===")
    print(mpi_fraction_report(runtime.job_profile()))
    return 0


def cmd_fig7(args) -> int:
    from .core.cmtbone import CMTBone
    from .core.nekbone import Nekbone

    cmt_cfg = CMTBoneConfig(
        n=args.points, local_shape=args.local, proc_shape=args.proc,
        work_mode="proxy", nsteps=0,
    )
    nek_cfg = NekboneConfig(
        n=args.points, local_shape=args.local, proc_shape=args.proc,
        work_mode="proxy", cg_iterations=0,
    )

    def main(comm):
        cmt = CMTBone(comm, cmt_cfg)
        nek = Nekbone(comm, nek_cfg)
        return cmt.autotune, nek.autotune

    runtime = Runtime(
        nranks=args.ranks, machine=MachineModel.preset(args.machine),
        backend=args.backend,
    )
    cmt_t, nek_t = runtime.run(main)[0]
    print(cmt_cfg.build_partition(args.ranks).describe())
    print()
    print(fig7_table(cmt_t, nek_t,
                     methods=("pairwise", "crystal", "allreduce")))
    return 0


def cmd_vscale(args) -> int:
    from .vscale import GS_METHODS, VirtualScaleEngine, VscaleError

    methods = tuple(args.methods) if args.methods else GS_METHODS
    config = CMTBoneConfig(
        n=args.points,
        local_shape=args.local,
        proc_shape=args.proc,
        nsteps=args.steps,
        work_mode="proxy" if args.proxy else "real",
        compute_imbalance=args.imbalance,
        overlap=args.overlap,
    )
    try:
        engine = VirtualScaleEngine(
            config,
            nranks=args.ranks,
            machine=MachineModel.preset(args.machine),
            sample=args.sample,
            backend=args.backend,
        )
    except VscaleError as exc:
        print(f"vscale: {exc}", file=sys.stderr)
        return 2

    agreements = []
    if not args.no_execute:
        agreements = [
            engine.validate(m, tolerance=args.tolerance) for m in methods
        ]

    if args.json:
        import json as _json

        doc: dict = {
            "nranks": engine.nranks,
            "sample": engine.sample_nranks,
            "machine": engine.machine.name,
            "methods": {},
        }
        for m in methods:
            t = engine.model(m)
            doc["methods"][m] = {
                "step_seconds": t.step_seconds,
                "mpi_pct_mean": float(t.mpi_fraction_pct.mean()),
                "mpi_pct_max": float(t.mpi_fraction_pct.max()),
                "messages": int(t.messages),
                "wire_bytes": int(t.wire_bytes),
                "model_wall_seconds": t.model_wall_seconds,
            }
        doc["fastest"] = min(
            methods, key=lambda m: engine.model(m).step_seconds
        )
        if agreements:
            doc["agreement"] = {
                a.method: {
                    "ok": a.ok,
                    "rel_err": a.rel_err,
                    "hidden_err": a.hidden_err,
                    "tolerance": a.tolerance,
                    "schedule_mismatch": a.schedule_mismatch,
                }
                for a in agreements
            }
        if args.mtbf:
            fx = engine.extrapolate_faults(
                doc["fastest"], rank_mtbf_hours=args.mtbf
            )
            doc["faults"] = {
                "rank_mtbf_hours": fx.rank_mtbf_hours,
                "job_mtbf_seconds": fx.job_mtbf_seconds,
                "checkpoint_seconds": fx.checkpoint_seconds,
                "interval_seconds": fx.interval_seconds,
                "interval_steps": fx.interval_steps,
                "overhead_fraction": fx.overhead_fraction,
                "effective_step_seconds": fx.effective_step_seconds,
            }
        print(_json.dumps(doc, indent=2))
    else:
        # Agreements above are cached, so report() re-validates for free.
        print(
            engine.report(
                methods,
                validate=not args.no_execute,
                rank_mtbf_hours=args.mtbf,
            )
        )

    failed = [a for a in agreements if not a.ok]
    if failed:
        for a in failed:
            print(f"vscale: agreement FAILED: {a.describe()}",
                  file=sys.stderr)
        return 1
    return 0


def cmd_validate(args) -> int:
    from .validation import (
        cmtbone_signature,
        score,
        solver_signature,
        validation_report,
    )

    config = CMTBoneConfig(
        n=args.points,
        local_shape=args.local,
        proc_shape=args.proc,
        nsteps=args.steps,
        gs_method=args.gs_method or "pairwise",
        work_mode="proxy" if args.proxy else "real",
        monitor_every=1,
        exchange_fields=11 if args.calibrated else None,
        overlap=args.overlap,
    )
    machine = MachineModel.preset(args.machine)
    mini = cmtbone_signature(config, args.ranks, machine=machine,
                             backend=args.backend)
    parent = solver_signature(config, args.ranks, machine=machine,
                              backend=args.backend)
    s = score(mini, parent)
    label = "calibrated" if args.calibrated else "uncalibrated"
    print(f"=== mini-app validation ({label}, {args.ranks} ranks, "
          f"N={args.points}) ===\n")
    print(validation_report(mini, parent, s))
    return 0


def cmd_kernels(args) -> int:
    from .analysis import render_table
    from .kernels import kernel_cost, speedup

    machine = MachineModel.preset("opteron6378")
    rows = []
    for variant in ("fused", "basic"):
        for d in ("t", "r", "s"):
            c = kernel_cost(d, variant, args.points, args.elements,
                            steps=args.steps, machine=machine)
            rows.append((f"dud{d}", variant, c.seconds,
                         c.instructions, c.cycles))
    print(f"Derivative-kernel counters (N={args.points}, "
          f"Nel={args.elements}, {args.steps} steps, Opteron 6378 "
          "model)\n")
    print(render_table(
        ["kernel", "variant", "model s", "instructions", "cycles"],
        rows, floatfmt="{:.4g}",
    ))
    print("\nloop-fusion speedups (basic/fused):")
    for d in ("t", "r", "s"):
        print(f"  dud{d}: "
              f"{speedup(d, args.points, args.elements, machine=machine):.2f}x")
    print("paper (Figs. 5-6): dudt 2.31x, dudr 1.03x, duds ~1.0x")
    return 0


def _sod_setup(nranks: int, n: int, nelx: int, gs_method: str,
               imbalance: float = 0.0, lb_policy=None,
               reuse_workspace: bool = True,
               kernel_variant: str = "fused"):
    """Build the ``setup(comm)`` factory for the Sod campaign."""
    import numpy as np

    from .mesh import BoxMesh, Partition
    from .solver import (
        CMTSolver,
        ShockFilter,
        SolverConfig,
        from_primitives,
    )
    from .solver.boundary import BoundarySpec
    from .solver.riemann import SOD_LEFT, SOD_RIGHT

    mesh = BoxMesh(shape=(nelx, 1, 1), n=n, periodic=(False, True, True),
                   lengths=(1.0, 0.25, 0.25))
    part = Partition(mesh, proc_shape=(nranks, 1, 1))

    def _dirichlet(s):
        e = s.p / 0.4 + 0.5 * s.rho * s.u**2
        return BoundarySpec(
            "dirichlet", state=(s.rho, s.rho * s.u, 0.0, 0.0, e)
        )

    def setup(comm):
        bc = {0: _dirichlet(SOD_LEFT), 1: _dirichlet(SOD_RIGHT)}
        solver = CMTSolver(
            comm, part,
            config=SolverConfig(
                gs_method=gs_method,
                cfl=0.3,
                shock_filter=ShockFilter(n=n, threshold=-6.0, ramp=2.0),
                boundaries=bc,
                compute_imbalance=imbalance,
                lb=lb_policy,
                reuse_workspace=reuse_workspace,
                kernel_variant=kernel_variant,
            ),
        )
        coords = np.stack(
            [mesh.element_nodes(ec)
             for ec in part.local_elements(comm.rank)],
            axis=1,
        )
        x = coords[0]
        blend = 0.5 * (1.0 + np.tanh((x - 0.5) / 0.02))
        rho = SOD_LEFT.rho + (SOD_RIGHT.rho - SOD_LEFT.rho) * blend
        p = SOD_LEFT.p + (SOD_RIGHT.p - SOD_LEFT.p) * blend
        st = from_primitives(rho, np.zeros((3,) + rho.shape), p)
        return solver, st

    return setup


def cmd_sod(args) -> int:
    import tempfile

    import numpy as np

    from .analysis import fault_report, render_gantt
    from .faults import FaultPlan
    from .solver import run_with_recovery

    if args.elements % args.ranks:
        print(f"--elements {args.elements} must divide by "
              f"--ranks {args.ranks}", file=sys.stderr)
        return 2
    plan = None
    if args.fault_spec:
        try:
            plan = FaultPlan.parse(args.fault_spec, seed=args.fault_seed)
        except ValueError as exc:
            print(f"--fault-spec: {exc}", file=sys.stderr)
            return 2
        print(plan.describe())
    ckpt_dir = args.checkpoint_dir
    if args.checkpoint_every and ckpt_dir is None:
        ckpt_dir = tempfile.mkdtemp(prefix="repro-sod-ckpt-")
        print(f"checkpoint dir: {ckpt_dir}")
    machine = MachineModel.preset(args.machine)
    setup = _sod_setup(args.ranks, args.points, args.elements,
                       args.gs_method, imbalance=args.imbalance,
                       lb_policy=_lb_policy(args),
                       kernel_variant=args.kernel_variant)

    results, report = run_with_recovery(
        setup,
        nranks=args.ranks,
        nsteps=args.steps,
        dt=args.dt,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=ckpt_dir,
        fault_plan=plan,
        machine=machine,
        backend=args.backend,
        job_id=args.job_id,
    )
    print()
    print(report.summary())
    if report.attempt_profiles:
        print()
        print(fault_report(report.campaign_profile()))
        if args.lb != "off":
            from .analysis import lb_report

            print()
            print(lb_report(report.campaign_profile()))
    if args.gantt:
        print("\n=== campaign timeline ===")
        print(render_gantt(report.gantt_intervals, width=68))

    if args.verify:
        clean, _ = run_with_recovery(
            setup, nranks=args.ranks, nsteps=args.steps, dt=args.dt,
            machine=machine, backend=args.backend,
        )
        for r, (a, b) in enumerate(zip(clean, results)):
            if not np.array_equal(a.u, b.u):
                print(f"\nVERIFY FAILED: rank {r} final fields differ "
                      "from the fault-free run", file=sys.stderr)
                return 1
        print("\nVERIFY OK: final fields bitwise identical to the "
              "fault-free run")
    return 0


def cmd_bench(args) -> int:
    from pathlib import Path

    from .bench import (
        RunOptions,
        compare_dirs,
        run_suites,
        select_scenarios,
        write_suites,
    )
    from .bench.schema import GROUPS

    groups = tuple(args.groups) if args.groups else GROUPS

    if args.list:
        for s in select_scenarios(groups, fast_only=args.fast):
            tier = "fast" if s.fast else "slow"
            params = " ".join(f"{k}={v}" for k, v in s.params.items())
            print(f"{s.id:<28s} [{tier}] x{s.repeats}  {params}")
        return 0

    opts = RunOptions(
        groups=groups,
        fast_only=args.fast,
        repeats=args.repeats,
        progress=lambda msg: print(msg, flush=True),
    )
    suites = run_suites(opts)
    paths = write_suites(suites, args.out)
    for p in paths:
        print(f"wrote {p}")

    status = 0
    if args.compare is not None:
        gate_wall = {"auto": None, "on": True, "off": False}[args.gate_wall]
        report = compare_dirs(
            suites, args.compare, groups=groups, gate_wall=gate_wall
        )
        print(report.render(verbose=args.verbose))
        if not report.ok:
            print("PERF GATE: FAIL")
            status = 1
        else:
            print("PERF GATE: PASS")

    if args.update_baselines:
        baseline_dir = Path(
            args.compare if args.compare is not None
            else "benchmarks/baselines"
        )
        for p in write_suites(suites, baseline_dir):
            print(f"updated baseline {p}")

    return status


def _spool_dirs(spool):
    """(queue_dir, results_dir) under the spool root, created."""
    import pathlib

    root = pathlib.Path(spool)
    queue = root / "queue"
    results = root / "results"
    queue.mkdir(parents=True, exist_ok=True)
    results.mkdir(parents=True, exist_ok=True)
    return queue, results


def _write_json_atomic(path, doc) -> None:
    import json
    import os

    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
    os.replace(tmp, path)


def cmd_serve(args) -> int:
    import asyncio
    import json

    from .service import JobSpec, Service

    queue_dir, results_dir = _spool_dirs(args.spool)

    async def _serve() -> int:
        accepted = 0
        finished = 0
        pending = {}
        async with Service(
            nworkers=args.workers, quota=args.quota,
            batch_max=args.batch_max, artifact_dir=args.artifact_dir,
        ) as svc:
            print(f"serving spool {args.spool} with {args.workers} "
                  f"workers (pids {svc.pool.worker_pids()})", flush=True)
            while True:
                for path in sorted(queue_dir.glob("*.json")):
                    try:
                        spec = JobSpec.from_json(
                            json.loads(path.read_text())
                        )
                    except (ValueError, KeyError) as exc:
                        print(f"rejecting {path.name}: {exc}",
                              file=sys.stderr, flush=True)
                        path.unlink()
                        continue
                    path.unlink()  # claimed
                    pending[spec.job_id] = svc.submit(spec)
                    accepted += 1
                    print(f"accepted {spec.job_id} ({spec.kind} "
                          f"{spec.name or '-'})", flush=True)
                for job_id in [j for j, f in pending.items() if f.done()]:
                    result = pending.pop(job_id).result()
                    _write_json_atomic(
                        results_dir / f"{job_id}.json", result.to_json()
                    )
                    finished += 1
                    print(f"finished {job_id}: {result.status} "
                          f"({result.exec_seconds:.3f}s on pid "
                          f"{result.worker_pid})", flush=True)
                if (args.drain and not pending
                        and not list(queue_dir.glob("*.json"))):
                    break
                await asyncio.sleep(args.poll)
        print(f"drained: {finished}/{accepted} jobs", flush=True)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 130


def cmd_submit(args) -> int:
    import json
    import time as _time

    from .service import JobSpec

    queue_dir, results_dir = _spool_dirs(args.spool)
    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        print(f"--params: {exc}", file=sys.stderr)
        return 2
    spec = JobSpec(
        kind=args.kind, name=args.name, submitter=args.submitter,
        priority=args.priority, nranks=args.ranks,
        machine=args.machine, timeout_seconds=args.timeout_seconds,
        max_retries=args.max_retries, params=params,
    )
    _write_json_atomic(queue_dir / f"{spec.job_id}.json", spec.to_json())
    print(spec.job_id)
    if not args.wait:
        return 0
    result_path = results_dir / f"{spec.job_id}.json"
    deadline = _time.monotonic() + args.timeout
    while not result_path.exists():
        if _time.monotonic() > deadline:
            print(f"timed out waiting for {spec.job_id}",
                  file=sys.stderr)
            return 1
        _time.sleep(0.1)
    doc = json.loads(result_path.read_text())
    print(f"{doc['status']}: vtime {doc['vtime_total']:.6g}s "
          f"digest {doc['digest']} (worker pid {doc['worker_pid']})")
    if doc.get("error"):
        print(doc["error"], file=sys.stderr)
    return 0 if doc["status"] == "done" else 1


def cmd_campaign(args) -> int:
    import json
    import pathlib

    from .service import JobSpec, run_campaign

    sources = [s for s in (args.jobs, args.count, args.matrix)
               if s is not None]
    if len(sources) != 1:
        print("campaign needs exactly one of --jobs, --count, "
              "or --matrix", file=sys.stderr)
        return 2
    if args.matrix is not None:
        return _campaign_matrix(args)
    if args.jobs is not None:
        with open(args.jobs) as fh:
            docs = json.load(fh)
        if not isinstance(docs, list):
            print("--jobs file must hold a JSON list of job specs",
                  file=sys.stderr)
            return 2
        specs = [JobSpec.from_json(d) for d in docs]
    else:
        try:
            params = json.loads(args.params) if args.params else {}
        except json.JSONDecodeError as exc:
            print(f"--params: {exc}", file=sys.stderr)
            return 2
        specs = [
            JobSpec(kind=args.kind, name=f"{args.kind}-{i}",
                    nranks=args.ranks, machine=args.machine,
                    params=dict(params))
            for i in range(args.count)
        ]
    report = run_campaign(
        specs, nworkers=args.workers, quota=args.quota,
        batch_max=args.batch_max, artifact_dir=args.artifact_dir,
    )
    print(report.summary())
    if args.json_out:
        _write_json_atomic(
            pathlib.Path(args.json_out),
            {
                "wall_seconds": report.wall_seconds,
                "jobs_per_second": report.jobs_per_second,
                "p50_seconds": report.p50,
                "p99_seconds": report.p99,
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
                "cache_disk_hits": report.cache_disk_hits,
                "retries": report.retries,
                "queue": report.queue_stats,
                "results": [r.to_json() for r in report.results],
            },
        )
        print(f"wrote {args.json_out}")
    return 1 if report.failed else 0


def _campaign_matrix(args) -> int:
    import json
    import pathlib

    from .service.matrix import MatrixSpec, run_matrix

    with open(args.matrix) as fh:
        doc = json.load(fh)
    try:
        matrix = MatrixSpec.from_doc(doc)
    except (ValueError, TypeError) as exc:
        print(f"--matrix {args.matrix}: {exc}", file=sys.stderr)
        return 2
    report = run_matrix(
        matrix, nworkers=args.workers, quota=args.quota,
        batch_max=args.batch_max, artifact_dir=args.artifact_dir,
    )
    print(report.summary())
    if args.json_out:
        _write_json_atomic(pathlib.Path(args.json_out), report.to_json())
        print(f"wrote {args.json_out}")
    return 1 if report.failed else 0


def cmd_machines(_args) -> int:
    for name in MachineModel.available_presets():
        m = MachineModel.preset(name)
        print(f"{name:<14s} cpu={m.cpu.ghz / 1e9:.1f}GHz "
              f"peak={m.cpu.peak_flops / 1e9:.0f}GF/s  "
              f"net[{m.network.describe()}]")
    return 0


def cmd_launch(args) -> int:
    from .net import (
        SocketBackend,
        rank_layout,
        read_hostfile,
        total_slots,
    )

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("launch: missing subcommand "
              "(e.g. launch --hostfile hosts.txt -- sod --ranks 4)",
              file=sys.stderr)
        return 2
    if rest[0] == "launch":
        print("launch: cannot nest launch inside launch",
              file=sys.stderr)
        return 2
    inner = build_parser().parse_args(rest)
    if not hasattr(inner, "backend") or not hasattr(inner, "ranks"):
        print(f"launch: subcommand {rest[0]!r} does not take "
              "--backend/--ranks and cannot be launched across hosts",
              file=sys.stderr)
        return 2
    entries = read_hostfile(args.hostfile)
    hosts = rank_layout(entries, inner.ranks)
    slots = total_slots(entries)
    if slots < inner.ranks:
        print(f"launch: oversubscribing — {inner.ranks} ranks on "
              f"{slots} slots (layout wraps around)", file=sys.stderr)
    by_host: dict = {}
    for r, h in enumerate(hosts):
        by_host.setdefault(h, []).append(r)
    layout = "  ".join(
        f"{h}:{','.join(map(str, rs))}" for h, rs in by_host.items()
    )
    print(f"launch: {inner.ranks} ranks over {len(by_host)} host(s)  "
          f"[{layout}]")
    inner.backend = SocketBackend(
        family=args.family,
        hosts=hosts,
        loopback=args.loopback,
        hb_timeout=args.hb_timeout,
        python=args.agent_python,
        bind_host=args.bind_host,
        advertise_host=args.advertise_host,
    )
    return _COMMANDS[inner.command](inner)


_COMMANDS = {
    "cmtbone": cmd_cmtbone,
    "nekbone": cmd_nekbone,
    "fig7": cmd_fig7,
    "vscale": cmd_vscale,
    "validate": cmd_validate,
    "kernels": cmd_kernels,
    "sod": cmd_sod,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "campaign": cmd_campaign,
    "machines": cmd_machines,
    "launch": cmd_launch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
