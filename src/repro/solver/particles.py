"""Lagrangian point-particle tracking (the CMT-nek roadmap feature).

Section III-A: "In the following years complete multiphase coupling,
shock capturing, lagrangian point particle tracking, and real gas
models will be added."  This module implements the tracking substrate
ahead of that roadmap: tracer particles advected through the
spectral-element velocity field, with cross-rank migration running
over the crystal-router transport (:func:`repro.gs.crystal.route`) —
the same machinery gslib uses for its sparse all-to-all traffic.

The pieces:

* :class:`ParticleCloud` — positions + persistent ids on one rank;
* spectral interpolation of an element field at arbitrary points
  (tensor-product Lagrange basis, exact for the polynomial space);
* :class:`ParticleTracker` — locate / interpolate / advect (RK2) /
  migrate, on a periodic box partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..gs.crystal import route
from ..kernels.gll import gll_points, lagrange_basis_at
from ..mesh import Partition
from ..mpi import Comm, SUM

#: Call-site label for migration traffic.
SITE_MIGRATE = "particles:migrate"


@dataclass
class ParticleCloud:
    """Particles owned by one rank.

    ``ids`` are globally unique and persistent across migrations;
    ``pos`` is ``(n, 3)`` in physical coordinates.
    """

    ids: np.ndarray
    pos: np.ndarray

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64).reshape(-1)
        self.pos = np.asarray(self.pos, dtype=np.float64).reshape(-1, 3)
        if len(self.ids) != len(self.pos):
            raise ValueError(
                f"ids ({len(self.ids)}) and positions ({len(self.pos)}) "
                "must align"
            )

    def __len__(self) -> int:
        return len(self.ids)

    @staticmethod
    def empty() -> "ParticleCloud":
        return ParticleCloud(
            ids=np.empty(0, dtype=np.int64), pos=np.empty((0, 3))
        )

    @staticmethod
    def concatenate(clouds) -> "ParticleCloud":
        clouds = [c for c in clouds if len(c)]
        if not clouds:
            return ParticleCloud.empty()
        return ParticleCloud(
            ids=np.concatenate([c.ids for c in clouds]),
            pos=np.concatenate([c.pos for c in clouds]),
        )

    def select(self, mask: np.ndarray) -> "ParticleCloud":
        return ParticleCloud(ids=self.ids[mask], pos=self.pos[mask])


def interpolate_at(
    field: np.ndarray,
    ref_coords: np.ndarray,
    elements: np.ndarray,
) -> np.ndarray:
    """Evaluate element fields at reference-space points.

    ``field`` is ``(nel, N, N, N)``; ``ref_coords`` is ``(np, 3)`` in
    [-1, 1]^3; ``elements`` gives each point's local element.  Exact
    for polynomials of degree < N (the SEM basis property).
    """
    n = field.shape[1]
    lr = lagrange_basis_at(n, ref_coords[:, 0])   # (np, n)
    ls = lagrange_basis_at(n, ref_coords[:, 1])
    lt = lagrange_basis_at(n, ref_coords[:, 2])
    vals = field[elements]                        # (np, n, n, n)
    # Contract one axis at a time: cheap and cache-friendly.
    vals = np.einsum("pijk,pi->pjk", vals, lr)
    vals = np.einsum("pjk,pj->pk", vals, ls)
    return np.einsum("pk,pk->p", vals, lt)


class ParticleTracker:
    """Advect and migrate tracer particles on a partitioned box.

    ``partition`` may be the static brick :class:`Partition` or a
    load-balancer :class:`repro.lb.ElementAssignment` — anything with
    the vectorized ``owner_ranks`` / ``local_indices`` ownership
    surface.  :meth:`rebind` swaps the domain after a rebalance.
    """

    def __init__(self, comm: Comm, partition: Partition):
        mesh = partition.mesh
        if not all(mesh.periodic):
            raise NotImplementedError(
                "particle tracking currently requires a periodic box"
            )
        if partition.nranks != comm.size:
            raise ValueError(
                f"partition has {partition.nranks} ranks, comm has "
                f"{comm.size}"
            )
        self.comm = comm
        self.partition = partition
        self.mesh = mesh
        self._h = np.array(mesh.element_lengths)
        self._lengths = np.array(mesh.lengths)
        self._gll = np.asarray(gll_points(mesh.n))
        #: Cumulative count of particles shipped off-rank by
        #: :meth:`migrate` (this rank's sends).
        self.migrated_total = 0
        #: Number of collective :meth:`migrate` calls.
        self.migrate_calls = 0

    def rebind(self, domain) -> None:
        """Adopt a new ownership domain (after a rebalance).

        Only ownership changes; the mesh geometry must be identical.
        Callers migrate the particles afterwards (:meth:`migrate`
        reroutes everyone to their new owners).
        """
        if tuple(domain.mesh.shape) != tuple(self.mesh.shape):
            raise ValueError("rebind requires the same mesh")
        self.partition = domain

    # -- geometry ------------------------------------------------------

    def wrap(self, pos: np.ndarray) -> np.ndarray:
        """Apply periodic wrapping to physical positions."""
        return np.mod(pos, self._lengths[None, :])

    def locate(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Positions -> (global element coords (np,3), ref coords).

        Reference coordinates lie in [-1, 1] within the element.
        """
        pos = self.wrap(pos)
        ecoords = np.floor(pos / self._h[None, :]).astype(np.int64)
        shape = np.array(self.mesh.shape)
        ecoords = np.minimum(ecoords, shape[None, :] - 1)  # x == L edge
        local = pos - ecoords * self._h[None, :]
        ref = 2.0 * local / self._h[None, :] - 1.0
        return ecoords, np.clip(ref, -1.0, 1.0)

    def owner_ranks(self, ecoords: np.ndarray) -> np.ndarray:
        """Owning rank of each element coordinate triple (vectorized)."""
        return self.partition.owner_ranks(ecoords)

    def local_indices(self, ecoords: np.ndarray) -> np.ndarray:
        """Local element index of each (locally owned) coordinate."""
        return self.partition.local_indices(self.comm.rank, ecoords)

    # -- field sampling ---------------------------------------------------

    def velocity_at(
        self, cloud: ParticleCloud, velocity: np.ndarray
    ) -> np.ndarray:
        """Interpolate a local velocity field at particle positions.

        ``velocity`` is ``(3, nel_local, N, N, N)``; every particle
        must currently be owned by this rank.
        """
        if len(cloud) == 0:
            return np.empty((0, 3))
        ecoords, ref = self.locate(cloud.pos)
        lidx = self.local_indices(ecoords)
        out = np.empty((len(cloud), 3))
        for c in range(3):
            out[:, c] = interpolate_at(velocity[c], ref, lidx)
        return out

    # -- advance ------------------------------------------------------------

    def advect(
        self,
        cloud: ParticleCloud,
        velocity: np.ndarray,
        dt: float,
    ) -> ParticleCloud:
        """One RK2 (midpoint) advection step, then migrate owners.

        The midpoint evaluation uses the local field: with a CFL-sane
        ``dt`` a particle moves well under one element per step, and
        the velocity field extends smoothly to the element boundary.
        Positions are wrapped periodically; particles that left this
        rank's brick travel to their new owner through the crystal
        router.  Collective.
        """
        if len(cloud):
            v1 = self.velocity_at(cloud, velocity)
            mid = ParticleCloud(
                ids=cloud.ids, pos=self.wrap(cloud.pos + 0.5 * dt * v1)
            )
            # Midpoint may cross the brick edge; clamp sampling to the
            # local field by wrapping only (owners change after the
            # full step).  Sample what we can locally:
            ecoords, _ = self.locate(mid.pos)
            owners = self.owner_ranks(ecoords)
            local_mask = owners == self.comm.rank
            v2 = np.empty_like(v1)
            if np.any(local_mask):
                v2[local_mask] = self.velocity_at(
                    mid.select(local_mask), velocity
                )
            # For midpoints that stepped off-rank, fall back to v1
            # (first-order locally; rare for CFL-sane dt).
            v2[~local_mask] = v1[~local_mask]
            new_pos = self.wrap(cloud.pos + dt * v2)
            moved = ParticleCloud(ids=cloud.ids, pos=new_pos)
        else:
            moved = ParticleCloud.empty()
        return self.migrate(moved)

    def migrate(self, cloud: ParticleCloud) -> ParticleCloud:
        """Send every particle to the rank owning its element.

        Traffic is attributed to the dedicated ``particles:migrate``
        call site, and each collective call records an informational
        ``PART_Migrate`` row (particles shipped off-rank as the count's
        bytes-free analogue, virtual seconds spent routing) so particle
        exchange cost is visible next to the ``LB_*`` sites in mpiP
        reports.
        """
        comm = self.comm
        if comm.size == 1:
            return cloud
        t0 = comm.clock.now
        if len(cloud):
            ecoords, _ = self.locate(cloud.pos)
            owners = self.owner_ranks(ecoords)
        else:
            owners = np.empty(0, dtype=np.int64)
        moved = int(np.count_nonzero(owners != comm.rank))
        records = {}
        sent_bytes = 0
        for dest in np.unique(owners):
            mask = owners == dest
            sub = cloud.select(mask)
            # The router carries (gids, values) pairs; pack positions
            # as the "values" with ids as the record keys.
            records[int(dest)] = (sub.ids, sub.pos.reshape(-1))
            if dest != comm.rank:
                sent_bytes += int(sub.ids.nbytes + sub.pos.nbytes)
        arrived = route(records, comm, site=SITE_MIGRATE)
        clouds = []
        for _dest, (ids, flat) in arrived.items():
            clouds.append(
                ParticleCloud(ids=ids, pos=np.asarray(flat).reshape(-1, 3))
            )
        self.migrated_total += moved
        self.migrate_calls += 1
        comm.profile.record(
            "PART_Migrate", SITE_MIGRATE, comm.clock.now - t0, sent_bytes,
            informational=True,
        )
        return ParticleCloud.concatenate(clouds)

    # -- diagnostics -----------------------------------------------------------

    def global_count(self, cloud: ParticleCloud) -> int:
        """Total particles across all ranks (one allreduce)."""
        return int(
            self.comm.allreduce(len(cloud), op=SUM, site="particles:count")
        )


def seed_particles(
    tracker: ParticleTracker,
    n_global: int,
    seed: int = 0,
) -> ParticleCloud:
    """Uniformly random particles, deterministically sharded by owner.

    Every rank draws the same global sample (same seed) and keeps the
    particles that land in its own brick, so ids are globally unique
    with no communication.
    """
    rng = np.random.default_rng(seed)
    pos = rng.random((n_global, 3)) * tracker._lengths[None, :]
    ids = np.arange(n_global, dtype=np.int64)
    ecoords, _ = tracker.locate(pos)
    owners = tracker.owner_ranks(ecoords)
    mask = owners == tracker.comm.rank
    return ParticleCloud(ids=ids[mask], pos=pos[mask])
