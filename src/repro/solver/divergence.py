"""Flux divergence: the derivative-kernel consumer.

The paper's abstraction: "the flux divergence can be abstracted into
matrix multiplication operations where the derivative matrix of size
(N, N) operates over a 3D data (N, N, N, Nel)".  On the affine box
mesh the physical divergence of the directional fluxes is::

    div F = jx * dFx/dr + jy * dFy/ds + jz * dFz/dt

with ``(jx, jy, jz)`` the constant reference-to-physical Jacobian
scales.  This is where the mini-app spends its time (Fig. 4's ``ax_``
family = these batched small matrix products).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernels import derivatives


def flux_divergence(
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    dmat: np.ndarray,
    jac: Tuple[float, float, float],
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
    work: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Divergence of one conserved component's flux triple.

    Each of ``fx``/``fy``/``fz`` is a ``(nel, N, N, N)`` batch; the
    result has the same shape.  Three derivative-kernel calls.

    ``out`` receives the result in place; ``work`` is a same-shape
    scratch array for the ``duds``/``dudt`` terms.  Supplying both
    makes the call allocation-free; the accumulation order (and hence
    every bit of the result) is unchanged.
    """
    jx, jy, jz = jac
    out = derivatives.dudr(fx, dmat, variant=variant, out=out)
    out *= jx
    tmp = derivatives.duds(fy, dmat, variant=variant, out=work)
    tmp *= jy
    out += tmp
    tmp = derivatives.dudt(fz, dmat, variant=variant, out=work)
    tmp *= jz
    out += tmp
    return out


def flux_divergence_multi(
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    dmat: np.ndarray,
    jac: Tuple[float, float, float],
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
    work: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Divergence for all ``NEQ`` components: inputs ``(5, nel, N, N, N)``.

    ``out``, when given, is the ``(neq, nel, N, N, N)`` result buffer;
    ``work`` a single ``(nel, N, N, N)`` scratch shared by every
    component (each component's contraction completes before the next
    begins, so one scratch suffices).
    """
    if fx.ndim != 5:
        raise ValueError(f"expected (neq, nel, N, N, N), got {fx.shape}")
    if out is None:
        out = np.empty_like(fx)
    elif out.shape != fx.shape or out.dtype != fx.dtype:
        raise ValueError(
            f"out has shape {out.shape}, fluxes have {fx.shape}"
        )
    for c in range(fx.shape[0]):
        flux_divergence(
            fx[c], fy[c], fz[c], dmat, jac, variant=variant,
            out=out[c], work=work,
        )
    return out


def gradient_physical(
    u: np.ndarray,
    dmat: np.ndarray,
    jac: Tuple[float, float, float],
    variant: str = "fused",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Physical-space gradient of a scalar element batch."""
    jx, jy, jz = jac
    return (
        jx * derivatives.dudr(u, dmat, variant=variant),
        jy * derivatives.duds(u, dmat, variant=variant),
        jz * derivatives.dudt(u, dmat, variant=variant),
    )


def divergence_flops(n: int, nel: int, neq: int = 5) -> float:
    """Flops for the full multi-component divergence (3 derivs/comp)."""
    return derivatives.flops(n, nel, ndirections=3) * neq
