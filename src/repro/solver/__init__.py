"""``repro.solver`` — the conceptual CMT-nek: a parallel DG Euler solver.

Implements the paper's conceptual model (Section III-B): the
conservation law for ``U = (rho, momentum, energy)`` discretized with
discontinuous-Galerkin spectral elements — volume flux divergence via
the derivative kernels, ``full2face`` trace extraction, gather-scatter
face exchange, numerical flux, and explicit SSP-RK time stepping.
"""

from .boundary import (
    BoundaryHandler,
    BoundarySpec,
    outflow_everywhere,
    walls_everywhere,
)
from .riemann import (
    PrimitiveState,
    RiemannSolution,
    SOD_LEFT,
    SOD_RIGHT,
    exact_riemann,
)
from .checkpoint import (
    CheckpointError,
    CheckpointInfo,
    checkpoint_namespace,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)
from .divergence import (
    divergence_flops,
    flux_divergence,
    flux_divergence_multi,
    gradient_physical,
)
from .driver import (
    AttemptRecord,
    CMTSolver,
    FaultRunReport,
    SolverConfig,
    StepStats,
    run_with_recovery,
)
from .eos import IdealGas, StiffenedGas
from .flux import euler_flux, euler_fluxes, flux_flops, wavespeed
from .multiphase import (
    InertialCloud,
    TwoWayCoupling,
    deposit_at,
    deposit_uniform,
    seed_inertial,
)
from .numflux import SCHEMES, central, get_scheme, lax_friedrichs
from .particles import (
    ParticleCloud,
    ParticleTracker,
    interpolate_at,
    seed_particles,
)
from .shock import (
    ShockFilter,
    exponential_sigma,
    modal_to_nodal,
    nodal_to_modal,
    smoothness_sensor,
)
from .sources import (
    combine_sources,
    gaussian_bed,
    make_body_force,
    make_nozzling_source,
)
from .rk import cfl_dt, get_stepper, step_euler, step_ssprk2, step_ssprk3
from .state import (
    COMPONENT_NAMES,
    ENERGY,
    MX,
    MY,
    MZ,
    NEQ,
    RHO,
    FlowState,
    from_primitives,
    uniform_state,
)
from .viscous import (
    ViscousModel,
    velocity_and_temperature,
    viscous_dt_limit,
    viscous_fluxes,
)
from .surface import (
    FACE_NORMAL_AXIS,
    FACE_NORMAL_SIGN,
    face2full_add,
    face_bytes,
    full2face,
    full2face_multi,
)

__all__ = [
    "AttemptRecord",
    "BoundaryHandler",
    "BoundarySpec",
    "CMTSolver",
    "CheckpointError",
    "CheckpointInfo",
    "FaultRunReport",
    "COMPONENT_NAMES",
    "ENERGY",
    "FACE_NORMAL_AXIS",
    "FACE_NORMAL_SIGN",
    "FlowState",
    "IdealGas",
    "InertialCloud",
    "MX",
    "MY",
    "MZ",
    "NEQ",
    "ParticleCloud",
    "PrimitiveState",
    "ParticleTracker",
    "RHO",
    "RiemannSolution",
    "SOD_LEFT",
    "SOD_RIGHT",
    "SCHEMES",
    "ShockFilter",
    "SolverConfig",
    "StiffenedGas",
    "ViscousModel",
    "StepStats",
    "TwoWayCoupling",
    "central",
    "cfl_dt",
    "deposit_at",
    "deposit_uniform",
    "combine_sources",
    "divergence_flops",
    "euler_flux",
    "exact_riemann",
    "exponential_sigma",
    "euler_fluxes",
    "face2full_add",
    "face_bytes",
    "flux_divergence",
    "flux_divergence_multi",
    "flux_flops",
    "from_primitives",
    "full2face",
    "full2face_multi",
    "gaussian_bed",
    "get_scheme",
    "get_stepper",
    "gradient_physical",
    "interpolate_at",
    "lax_friedrichs",
    "checkpoint_namespace",
    "load_checkpoint",
    "make_body_force",
    "make_nozzling_source",
    "modal_to_nodal",
    "nodal_to_modal",
    "outflow_everywhere",
    "read_manifest",
    "run_with_recovery",
    "save_checkpoint",
    "seed_inertial",
    "seed_particles",
    "smoothness_sensor",
    "step_euler",
    "step_ssprk2",
    "step_ssprk3",
    "uniform_state",
    "velocity_and_temperature",
    "viscous_dt_limit",
    "viscous_fluxes",
    "walls_everywhere",
    "wavespeed",
]
