"""Exact Riemann solver for the 1-D Euler equations (Toro's method).

The reference solution generator for shock-tube validation: given left
and right states, the star-region pressure is found by Newton
iteration on Toro's pressure function, and :meth:`RiemannSolution.sample`
evaluates the exact self-similar solution at any ``x/t`` — rarefaction
fans, contacts, and shocks included.  Used to validate the DG solver's
shock-capturing pipeline on the Sod problem (the canonical compressible
benchmark) without trusting any discretized code as "truth".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class PrimitiveState:
    """1-D primitive state (density, velocity, pressure)."""

    rho: float
    u: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise ValueError(
                f"need positive density/pressure, got rho={self.rho}, "
                f"p={self.p}"
            )

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


#: The classic Sod (1978) initial states.
SOD_LEFT = PrimitiveState(rho=1.0, u=0.0, p=1.0)
SOD_RIGHT = PrimitiveState(rho=0.125, u=0.0, p=0.1)


def _pressure_function(
    p: float, state: PrimitiveState, gamma: float
) -> Tuple[float, float]:
    """Toro's f_K(p) and its derivative for one side."""
    a = state.sound_speed(gamma)
    if p > state.p:  # shock branch
        ak = 2.0 / ((gamma + 1.0) * state.rho)
        bk = (gamma - 1.0) / (gamma + 1.0) * state.p
        sq = np.sqrt(ak / (p + bk))
        f = (p - state.p) * sq
        df = sq * (1.0 - 0.5 * (p - state.p) / (p + bk))
    else:  # rarefaction branch
        exponent = (gamma - 1.0) / (2.0 * gamma)
        f = (2.0 * a / (gamma - 1.0)) * ((p / state.p) ** exponent - 1.0)
        df = (1.0 / (state.rho * a)) * (p / state.p) ** (-(gamma + 1.0)
                                                         / (2.0 * gamma))
    return float(f), float(df)


@dataclass(frozen=True)
class RiemannSolution:
    """The exact solution of one Riemann problem."""

    left: PrimitiveState
    right: PrimitiveState
    gamma: float
    p_star: float
    u_star: float

    # -- star densities -----------------------------------------------

    def _star_density(self, side: PrimitiveState) -> float:
        g = self.gamma
        ratio = self.p_star / side.p
        if self.p_star > side.p:  # shock
            gm = (g - 1.0) / (g + 1.0)
            return side.rho * (ratio + gm) / (gm * ratio + 1.0)
        return side.rho * ratio ** (1.0 / g)  # isentropic

    @property
    def rho_star_left(self) -> float:
        return self._star_density(self.left)

    @property
    def rho_star_right(self) -> float:
        return self._star_density(self.right)

    # -- wave speeds ------------------------------------------------------

    def shock_speed_right(self) -> float:
        """Speed of the right wave if it is a shock."""
        g = self.gamma
        a = self.right.sound_speed(g)
        return self.right.u + a * np.sqrt(
            (g + 1.0) / (2.0 * g) * self.p_star / self.right.p
            + (g - 1.0) / (2.0 * g)
        )

    def shock_speed_left(self) -> float:
        g = self.gamma
        a = self.left.sound_speed(g)
        return self.left.u - a * np.sqrt(
            (g + 1.0) / (2.0 * g) * self.p_star / self.left.p
            + (g - 1.0) / (2.0 * g)
        )

    # -- sampling ------------------------------------------------------------

    def sample(self, xi: float) -> PrimitiveState:
        """Exact state at similarity coordinate ``xi = x / t``."""
        g = self.gamma
        if xi <= self.u_star:
            return self._sample_left(xi)
        return self._sample_right(xi)

    def _sample_left(self, xi: float) -> PrimitiveState:
        g = self.gamma
        s = self.left
        a = s.sound_speed(g)
        if self.p_star > s.p:  # left shock
            if xi <= self.shock_speed_left():
                return s
            return PrimitiveState(self.rho_star_left, self.u_star,
                                  self.p_star)
        # left rarefaction
        a_star = a * (self.p_star / s.p) ** ((g - 1.0) / (2.0 * g))
        head = s.u - a
        tail = self.u_star - a_star
        if xi <= head:
            return s
        if xi >= tail:
            return PrimitiveState(self.rho_star_left, self.u_star,
                                  self.p_star)
        # inside the fan
        u = (2.0 / (g + 1.0)) * (a + (g - 1.0) / 2.0 * s.u + xi)
        a_loc = a - (g - 1.0) / 2.0 * (u - s.u)
        rho = s.rho * (a_loc / a) ** (2.0 / (g - 1.0))
        p = s.p * (a_loc / a) ** (2.0 * g / (g - 1.0))
        return PrimitiveState(rho, u, p)

    def _sample_right(self, xi: float) -> PrimitiveState:
        g = self.gamma
        s = self.right
        a = s.sound_speed(g)
        if self.p_star > s.p:  # right shock
            if xi >= self.shock_speed_right():
                return s
            return PrimitiveState(self.rho_star_right, self.u_star,
                                  self.p_star)
        # right rarefaction
        a_star = a * (self.p_star / s.p) ** ((g - 1.0) / (2.0 * g))
        head = s.u + a
        tail = self.u_star + a_star
        if xi >= head:
            return s
        if xi <= tail:
            return PrimitiveState(self.rho_star_right, self.u_star,
                                  self.p_star)
        u = (2.0 / (g + 1.0)) * (-a + (g - 1.0) / 2.0 * s.u + xi)
        a_loc = a + (g - 1.0) / 2.0 * (u - s.u)
        rho = s.rho * (a_loc / a) ** (2.0 / (g - 1.0))
        p = s.p * (a_loc / a) ** (2.0 * g / (g - 1.0))
        return PrimitiveState(rho, u, p)

    def profile(
        self, x: np.ndarray, t: float, x0: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rho, u, p) arrays for positions ``x`` at time ``t > 0``."""
        if t <= 0:
            raise ValueError("profile needs t > 0")
        rho = np.empty_like(np.asarray(x, dtype=float))
        u = np.empty_like(rho)
        p = np.empty_like(rho)
        for i, xi in enumerate((np.asarray(x) - x0) / t):
            st = self.sample(float(xi))
            rho[i], u[i], p[i] = st.rho, st.u, st.p
        return rho, u, p


def exact_riemann(
    left: PrimitiveState,
    right: PrimitiveState,
    gamma: float = 1.4,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> RiemannSolution:
    """Solve the Riemann problem exactly (Newton on the star pressure).

    Raises if the data would produce vacuum
    (``2 a_L/(g-1) + 2 a_R/(g-1) <= u_R - u_L``).
    """
    g = gamma
    a_l = left.sound_speed(g)
    a_r = right.sound_speed(g)
    du = right.u - left.u
    if 2.0 * (a_l + a_r) / (g - 1.0) <= du:
        raise ValueError("initial states lead to vacuum")
    # Two-rarefaction initial guess (robust and positive).
    z = (g - 1.0) / (2.0 * g)
    p0 = (
        (a_l + a_r - 0.5 * (g - 1.0) * du)
        / (a_l / left.p**z + a_r / right.p**z)
    ) ** (1.0 / z)
    p = max(p0, tol)
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, g)
        f_r, df_r = _pressure_function(p, right, g)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = p - delta
        if p_new <= 0:
            p_new = 0.5 * p
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, g)
    f_r, _ = _pressure_function(p, right, g)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return RiemannSolution(
        left=left, right=right, gamma=g, p_star=float(p),
        u_star=float(u_star),
    )
