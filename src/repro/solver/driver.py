"""The parallel DG compressible-flow solver (conceptual CMT-nek).

Assembles every substrate into the timestep the paper's conceptual
model describes: per Runge-Kutta stage,

1. evaluate the Euler fluxes pointwise (volume work),
2. flux divergence via the derivative kernels (the ``ax_`` hot spot),
3. ``full2face`` extraction of state/flux/wavespeed traces,
4. nearest-neighbour exchange of the traces through the gather-scatter
   library (``gs_op`` over the DG face numbering),
5. numerical flux + SAT surface correction,
6. the RK update,

with source terms "set to zero" exactly as the current CMT-nek version
does (a hook is provided for the nozzling term that will follow).

The stage is organised as an explicit phase pipeline with two
schedules over the same phases:

* **blocking** (default): volume -> traces -> exchange -> correction,
  the textbook order above;
* **overlapped** (``SolverConfig(overlap=True)``): the elements are
  split into *boundary* (touching a cut face of the processor grid)
  and *interior* sets.  Boundary fluxes and traces are computed first
  and the gather-scatter exchange is *posted* (``gs_op_begin``); the
  interior volume work — the bulk of the stage — then runs while the
  messages are in flight; ``gs_op_finish`` waits only for whatever
  communication is still exposed.  Physics is bitwise identical to the
  blocking schedule (same elementwise kernels over subsets, same fold
  order), only the modelled timeline changes: communication hidden
  under interior compute is credited to the clock's
  ``hidden_comm_time`` instead of extending the step.

The solver runs on the simulated MPI: physics arrays are computed for
real in numpy; virtual time is charged per phase through the machine
model so the communication/computation balance matches the modelled
platform rather than Python's own speed.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..gs import choose_method, gs_op, gs_op_begin, gs_op_finish, gs_setup
from ..gs.pairwise import TAG_PAIRWISE
from ..kernels import Workspace, derivative_matrix, gll_weights
from ..kernels import derivatives as dkernels
from ..mesh import Partition, dg_face_numbering
from ..mpi import MAX, SUM, Comm
from .divergence import divergence_flops, flux_divergence_multi
from .eos import IdealGas
from .flux import euler_fluxes, flux_flops
from .numflux import get_scheme, numflux_flops
from .rk import cfl_dt, get_stepper
from .state import ENERGY, MX, NEQ, RHO, FlowState
from .surface import (
    FACE_NORMAL_AXIS,
    FACE_NORMAL_SIGN,
    face2full_add,
    full2face_elements,
    full2face_multi,
    full2face_flops,
)

#: Profiler call-site label for the face exchange.
SITE_FACE_EXCHANGE = "cmt:face_exchange"


@dataclass
class SolverConfig:
    """Tunable knobs of :class:`CMTSolver`."""

    flux_scheme: str = "lax_friedrichs"
    time_stepper: str = "ssprk3"
    #: "basic"/"fused"/"einsum" (hand-written) or "generated"/"auto"
    #: (compiled from the contraction IR; "auto" autotunes per host).
    kernel_variant: str = "fused"
    gs_method: Optional[str] = None     # None -> autotune at setup
    autotune_trials: int = 2
    cfl: float = 0.4
    #: Evaluate the nonlinear fluxes on a 3/2-rule fine grid and
    #: project back (over-integration dealiasing) — the second use of
    #: the small-matrix kernel named in the paper's Section V.
    dealias: bool = False
    #: Adaptive modal shock filter (a :class:`repro.solver.shock.ShockFilter`);
    #: ``None`` disables capturing.  Applied after every full RK step.
    shock_filter: Optional[object] = None
    #: Viscous model (a :class:`repro.solver.viscous.ViscousModel`);
    #: ``None`` solves the Euler equations, as the mini-app snapshot
    #: does; set to get the full compressible Navier-Stokes of Eq. (1).
    viscosity: Optional[object] = None
    #: Boundary-condition table (face index -> BoundarySpec) for
    #: non-periodic mesh directions; see :mod:`repro.solver.boundary`.
    boundaries: Optional[dict] = None
    #: Split-phase overlapped schedule: post the face exchange from the
    #: boundary-element traces, run interior volume work under the
    #: in-flight messages, finish last.  Bitwise identical physics to
    #: the blocking schedule; only the modelled timeline changes (see
    #: module docstring and docs/virtual-time.md, "Overlap accounting").
    overlap: bool = False
    charge_model_time: bool = True
    #: Optional source-term hook S(u) -> (5, nel, N, N, N); the current
    #: CMT-nek sets sources to zero (paper, Section IV).
    source: Optional[Callable[[np.ndarray], np.ndarray]] = None
    #: Injected per-rank compute jitter: each rank's charged kernel
    #: time is scaled by ``1 + compute_imbalance * h(rank)`` with
    #: ``h`` a deterministic hash in [0, 1) — the same load model
    #: :class:`repro.core.cmtbone.CMTBone` uses, so the solver can
    #: reproduce the paper's Fig. 9 imbalance study (and the LB
    #: subsystem can correct it).  Physics is unaffected.
    compute_imbalance: float = 0.0
    #: Dynamic load balancing (:class:`repro.lb.RebalancePolicy`);
    #: ``None`` or mode ``"off"`` disables it.  When active, the
    #: solver monitors per-step cost, repartitions the mesh along the
    #: SFC when the policy fires, and live-migrates element state
    #: between RK steps (see docs/load-balancing.md).
    lb: Optional[object] = None
    #: Reuse preallocated workspace buffers for the flux, divergence,
    #: trace, and RK-stage arrays instead of allocating fresh
    #: ``(nel, N, N, N)``-sized batches every stage.  Bitwise identical
    #: to the allocating path (tests enforce it); off exists for A/B
    #: measurement (the ``solver/workspace`` benchmark scenario).
    reuse_workspace: bool = True


@dataclass
class StepStats:
    """Per-run diagnostics collected by :meth:`CMTSolver.run`."""

    steps: int = 0
    dt_history: List[float] = field(default_factory=list)
    mass_history: List[float] = field(default_factory=list)
    energy_history: List[float] = field(default_factory=list)


class CMTSolver:
    """Distributed explicit DG Euler solver on a periodic box."""

    def __init__(
        self,
        comm: Comm,
        partition: Partition,
        eos: Optional[IdealGas] = None,
        config: Optional[SolverConfig] = None,
    ):
        mesh = partition.mesh
        self.config = config or SolverConfig()
        if not all(mesh.periodic) and self.config.boundaries is None:
            raise ValueError(
                "mesh has non-periodic directions: pass "
                "SolverConfig(boundaries=...) with a boundary table "
                "(see repro.solver.boundary)"
            )
        if partition.nranks != comm.size:
            raise ValueError(
                f"partition has {partition.nranks} ranks but communicator "
                f"has {comm.size}"
            )
        self.comm = comm
        self.partition = partition
        #: Ownership view the solver actually runs on: the static brick
        #: partition until the load balancer commits an
        #: :class:`repro.lb.ElementAssignment`, that assignment after.
        self.domain = partition
        self.mesh = mesh
        self.eos = eos or IdealGas()
        self.n = mesh.n
        self.nel = partition.nel_local
        # Injected heterogeneity (same hash-based model as CMTBone).
        h = (comm.rank * 2654435761) % (2**32) / 2**32
        self._load_factor = 1.0 + self.config.compute_imbalance * h
        self.dmat = np.asarray(derivative_matrix(self.n))
        self.weights = np.asarray(gll_weights(self.n))
        self.jac = mesh.jacobian
        self._numflux = get_scheme(self.config.flux_scheme)
        self._stepper = get_stepper(self.config.time_stepper)

        # Gather-scatter handle over the DG face-pair numbering.
        gids = dg_face_numbering(partition, comm.rank)
        self.face_handle = gs_setup(gids, comm)
        if self.config.gs_method is not None:
            self.face_handle.method = self.config.gs_method
        elif comm.size > 1:
            choose_method(
                self.face_handle, trials=self.config.autotune_trials
            )
        else:
            self.face_handle.method = "pairwise"
        self.stats = StepStats()
        # Boundary/interior element split for the overlapped schedule:
        # only boundary elements contribute to cross-rank face messages,
        # so their traces suffice to post the exchange.
        self._bnd_elements = partition.boundary_local_indices(comm.rank)
        self._int_elements = partition.interior_local_indices(comm.rank)
        # Physical boundary handler (None on fully periodic boxes).
        self.boundary = None
        if self.config.boundaries is not None:
            from .boundary import BoundaryHandler

            self.boundary = BoundaryHandler(
                partition, comm.rank, self.config.boundaries
            )
        #: Optional phase profiler (e.g. a CallGraphProfiler); when
        #: set, rhs/step bracket their phases with the taxonomy names
        #: "derivative", "surface", "exchange", "update" — the same
        #: taxonomy the validation methodology maps CMT-bone onto.
        self.profiler = None
        #: Dynamic load balancer (:class:`repro.lb.LoadBalancer`);
        #: ``None`` unless ``config.lb`` enables a policy.
        self.lb = None
        if self.config.lb is not None and getattr(
            self.config.lb, "enabled", False
        ):
            from ..lb import ElementAssignment, LoadBalancer

            self.lb = LoadBalancer(
                comm,
                ElementAssignment.from_partition(partition),
                self.config.lb,
            )

        #: Reusable scratch pool for the RHS/RK hot path (``None``
        #: disables reuse; see ``SolverConfig.reuse_workspace``).
        self._work: Optional[Workspace] = (
            Workspace() if self.config.reuse_workspace else None
        )

        # Constant per-face SAT scale: -sign * jac_axis / w_endpoint.
        w_end = float(self.weights[0])  # == weights[-1] by symmetry
        self._sat_scale = np.array(
            [
                -FACE_NORMAL_SIGN[f] * self.jac[FACE_NORMAL_AXIS[f]] / w_end
                for f in range(6)
            ]
        )

    # -- cost charging ---------------------------------------------------

    def _charge(self, flops: float, mem_bytes: float = 0.0,
                efficiency: float = 0.7) -> None:
        if self.config.charge_model_time:
            seconds = self.comm.machine.compute_seconds(
                flops=flops, mem_bytes=mem_bytes, efficiency=efficiency
            )
            self.comm.compute(seconds=seconds * self._load_factor)

    def _region(self, name: str):
        """Phase bracket: profiler region when attached, else no-op."""
        if self.profiler is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.profiler.region(name)

    # -- spatial operator ---------------------------------------------------

    def rhs(
        self, u: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Semi-discrete right-hand side ``du/dt = L(u)``.

        Dispatches to one of two schedules over the same phase pipeline
        (see module docstring); both produce bitwise-identical arrays.
        ``out``, when given, receives the result in place (the RK loop
        passes a workspace buffer here so stages stop allocating).
        """
        if self.config.overlap and self.comm.size > 1:
            rhs = self._rhs_overlapped(u, out=out)
        else:
            rhs = self._rhs_blocking(u, out=out)
        if self.config.source is not None:
            rhs += self.config.source(u)
        return rhs

    def _rhs_into(self, u: np.ndarray) -> np.ndarray:
        """:meth:`rhs` into a reusable workspace buffer.

        The RK steppers consume each stage's RHS before requesting the
        next, so one buffer serves all stages of a step.  Only the
        stepper uses this entry point — external callers get fresh
        arrays from :meth:`rhs`.
        """
        return self.rhs(u, out=self._work.like(u, key="rhs:out"))

    def _rhs_blocking(
        self, u: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Textbook phase order: every phase completes before the next."""
        # (1)+(2) volume terms: pointwise fluxes, then flux divergence.
        with self._region("derivative"):
            fx, fy, fz = self._pointwise_fluxes(u)
            div = self._flux_divergence(fx, fy, fz)

        # (3) full2face_cmt: state, normal flux, and wavespeed traces.
        with self._region("surface"):
            uf, ff, lam = self._surface_traces(u, fx, fy, fz)

        # (4) nearest-neighbour exchange via the gs library.
        with self._region("exchange"):
            usum, fsum, lam_max = self._exchange_traces(uf, ff, lam)

        # (5) numerical flux + SAT correction.
        with self._region("surface"):
            return self._surface_correction(
                div, uf, ff, usum, fsum, lam_max, out=out
            )

    def _rhs_overlapped(
        self, u: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Split-phase schedule: exchange in flight under interior work.

        Boundary elements — the only ones whose faces carry cross-rank
        shared ids — are evaluated first so the exchange can be posted
        immediately; the interior volume terms (and the *full* flux
        divergence, once the flux arrays are assembled) then run while
        the messages travel.  ``gs_op_finish`` re-condenses the fully
        populated traces, so the folded result is bitwise identical to
        the blocking exchange.
        """
        n, nel = self.n, self.nel
        bnd, intr = self._bnd_elements, self._int_elements

        # Phase 1: boundary volume fluxes + traces.  The flux and trace
        # arrays are allocated full-size and filled subset-by-subset;
        # zeros elsewhere are never *sent* (only cross-rank shared ids
        # are, and those live on boundary faces filled right here).
        with self._region("derivative"):
            fshape = (NEQ,) + u.shape[1:]
            if self._work is not None:
                fx = self._work.zeros(fshape, dtype=u.dtype, key="ovl:fx")
                fy = self._work.zeros(fshape, dtype=u.dtype, key="ovl:fy")
                fz = self._work.zeros(fshape, dtype=u.dtype, key="ovl:fz")
            else:
                fx = np.zeros(fshape, dtype=u.dtype)
                fy = np.zeros_like(fx)
                fz = np.zeros_like(fx)
            self._pointwise_fluxes_into(u, bnd, fx, fy, fz)
        with self._region("surface"):
            tshape = (NEQ, nel, 6, n, n)
            if self._work is not None:
                uf = self._work.zeros(tshape, dtype=u.dtype, key="tr:uf")
                ff = self._work.zeros(tshape, dtype=u.dtype, key="tr:ff")
                lam = self._work.zeros(
                    tshape[1:], dtype=u.dtype, key="tr:lam"
                )
            else:
                uf = np.zeros(tshape, dtype=u.dtype)
                ff = np.zeros_like(uf)
                lam = np.zeros((nel, 6, n, n), dtype=u.dtype)
            self._surface_traces_into(u, fx, fy, fz, bnd, uf, ff, lam)

        # Phase 2: post the exchange (gs_op_begin; nothing waits yet).
        with self._region("exchange"):
            exchanges = self._begin_exchanges(uf, ff, lam)

        # Phase 3: interior volume work overlapped with the in-flight
        # messages — the ``ax_`` hot spot hides the communication.
        with self._region("derivative"):
            self._pointwise_fluxes_into(u, intr, fx, fy, fz)
            div = self._flux_divergence(fx, fy, fz)
        with self._region("surface"):
            self._surface_traces_into(u, fx, fy, fz, intr, uf, ff, lam)

        # Phase 4: finish the exchange (waits only for exposed comm).
        with self._region("exchange"):
            usum, fsum, lam_max = self._finish_exchanges(
                exchanges, uf, ff, lam
            )

        # Phase 5: numerical flux + SAT correction.
        with self._region("surface"):
            return self._surface_correction(
                div, uf, ff, usum, fsum, lam_max, out=out
            )

    # -- phase implementations ----------------------------------------------

    def _pointwise_fluxes(self, u: np.ndarray):
        """Elementwise volume fluxes of an element batch ``(NEQ, k, N^3)``.

        Handles dealiasing and the viscous contribution; charges model
        time linear in the batch size ``k``, so evaluating disjoint
        subsets charges exactly what one full-batch evaluation would.
        With dealiasing on, the nonlinear products are evaluated on the
        3/2-rule fine grid and projected back ("an element is first
        mapped to a finer mesh and later mapped back", Sec. V).
        """
        n = self.n
        nel_b = u.shape[1]
        eos = self.eos
        if self.config.dealias:
            from ..kernels.dealias import (
                dealias_flops,
                dealias_order,
                to_coarse,
                to_fine,
            )

            variant = self.config.kernel_variant
            dvariant = variant if variant in ("generated", "auto") else "fused"
            m = dealias_order(n)
            work = self._work
            if work is not None:
                uf_fine = work.buffer(
                    (NEQ, nel_b, m, m, m), u.dtype, key="dealias:uf"
                )
                fout = (
                    work.like(uf_fine, key="dealias:ffx"),
                    work.like(uf_fine, key="dealias:ffy"),
                    work.like(uf_fine, key="dealias:ffz"),
                )
                fx = work.like(u, key="flux:x")
                fy = work.like(u, key="flux:y")
                fz = work.like(u, key="flux:z")
            else:
                uf_fine = np.empty((NEQ, nel_b, m, m, m), dtype=u.dtype)
                fout = None
                fx = np.empty_like(u)
                fy = np.empty_like(u)
                fz = np.empty_like(u)
            for c in range(NEQ):
                to_fine(
                    u[c], n, m, out=uf_fine[c], work=work, variant=dvariant
                )
            ffx, ffy, ffz = euler_fluxes(uf_fine, eos, out=fout)
            for c in range(NEQ):
                to_coarse(
                    ffx[c], n, m, out=fx[c], work=work, variant=dvariant
                )
                to_coarse(
                    ffy[c], n, m, out=fy[c], work=work, variant=dvariant
                )
                to_coarse(
                    ffz[c], n, m, out=fz[c], work=work, variant=dvariant
                )
            # NEQ fields up + 3*NEQ flux components down = 2*NEQ
            # roundtrip-pair equivalents.
            self._charge(
                flux_flops(m, nel_b) + 2 * NEQ * dealias_flops(n, nel=nel_b)
            )
        else:
            fout = None
            if self._work is not None:
                fout = (
                    self._work.like(u, key="flux:x"),
                    self._work.like(u, key="flux:y"),
                    self._work.like(u, key="flux:z"),
                )
            fx, fy, fz = euler_fluxes(u, eos, out=fout)
            self._charge(flux_flops(n, nel_b))
        if self.config.viscosity is not None:
            from .viscous import viscous_flops, viscous_fluxes

            fvx, fvy, fvz = viscous_fluxes(
                u, eos, self.config.viscosity, self.dmat, self.jac,
                variant=self.config.kernel_variant,
            )
            # fx/fy/fz are owned (fresh or workspace), so subtracting
            # in place performs the same elementwise op as `fx - fvx`.
            fx -= fvx
            fy -= fvy
            fz -= fvz
            self._charge(viscous_flops(n, nel_b))
        return fx, fy, fz

    def _pointwise_fluxes_into(self, u, elements, fx, fy, fz) -> None:
        """:meth:`_pointwise_fluxes` of a subset, assembled in place.

        All flux kernels are element-local (elementwise products, or
        per-element tensor contractions batched over the element axis),
        so subset evaluation + assembly is bitwise identical to one
        full-batch call.
        """
        if len(elements) == 0:
            return
        bx, by, bz = self._pointwise_fluxes(u[:, elements])
        fx[:, elements] = bx
        fy[:, elements] = by
        fz[:, elements] = bz

    def _flux_divergence(self, fx, fy, fz) -> np.ndarray:
        """Full flux divergence (the ``ax_`` derivative hot spot)."""
        n, nel = self.n, self.nel
        out = work = None
        if self._work is not None:
            out = self._work.like(fx, key="div:out")
            work = self._work.buffer(fx.shape[1:], fx.dtype, key="div:tmp")
        div = flux_divergence_multi(
            fx, fy, fz, self.dmat, self.jac,
            variant=self.config.kernel_variant, out=out, work=work,
        )
        self._charge(
            divergence_flops(n, nel, NEQ),
            mem_bytes=NEQ * dkernels.mem_bytes(n, nel, 3),
        )
        return div

    def _trace_buffers(self, uf_template: np.ndarray):
        """Reusable (usum, fsum) result pair for the trace exchange."""
        if self._work is None:
            return np.empty_like(uf_template), np.empty_like(uf_template)
        return (
            self._work.like(uf_template, key="tr:usum"),
            self._work.like(uf_template, key="tr:fsum"),
        )

    def _surface_traces(self, u, fx, fy, fz):
        """full2face_cmt: state, normal-flux, and wavespeed traces."""
        n, nel = self.n, self.nel
        ws = self._work
        if ws is None:
            uf = full2face_multi(u)
            fxf = full2face_multi(fx)
            fyf = full2face_multi(fy)
            fzf = full2face_multi(fz)
            ff = np.empty_like(uf)
        else:
            tshape = (NEQ, nel, 6, n, n)
            uf = full2face_multi(
                u, out=ws.buffer(tshape, u.dtype, key="tr:uf")
            )
            fxf = full2face_multi(
                fx, out=ws.buffer(tshape, u.dtype, key="tr:fxf")
            )
            fyf = full2face_multi(
                fy, out=ws.buffer(tshape, u.dtype, key="tr:fyf")
            )
            fzf = full2face_multi(
                fz, out=ws.buffer(tshape, u.dtype, key="tr:fzf")
            )
            ff = ws.buffer(tshape, u.dtype, key="tr:ff")
        ff[:, :, 0:2] = fxf[:, :, 0:2]
        ff[:, :, 2:4] = fyf[:, :, 2:4]
        ff[:, :, 4:6] = fzf[:, :, 4:6]
        lam = self._face_wavespeed(uf)
        self._charge(full2face_flops(n, nel, ncomp=4 * NEQ + 1))
        return uf, ff, lam

    def _surface_traces_into(self, u, fx, fy, fz, elements, uf, ff, lam):
        """:meth:`_surface_traces` of a subset, written into full arrays."""
        k = len(elements)
        if k == 0:
            return
        ufb = full2face_elements(u, elements)
        fxf = full2face_elements(fx, elements)
        fyf = full2face_elements(fy, elements)
        fzf = full2face_elements(fz, elements)
        ffb = np.empty_like(ufb)
        ffb[:, :, 0:2] = fxf[:, :, 0:2]
        ffb[:, :, 2:4] = fyf[:, :, 2:4]
        ffb[:, :, 4:6] = fzf[:, :, 4:6]
        uf[:, elements] = ufb
        ff[:, elements] = ffb
        lam[elements] = self._face_wavespeed(ufb)
        self._charge(full2face_flops(self.n, k, ncomp=4 * NEQ + 1))

    def _exchange_traces(self, uf, ff, lam):
        """Nearest-neighbour trace exchange via the gs library."""
        h = self.face_handle
        usum, fsum = self._trace_buffers(uf)
        for c in range(NEQ):
            usum[c] = gs_op(h, uf[c], op=SUM, site=SITE_FACE_EXCHANGE)
            fsum[c] = gs_op(h, ff[c], op=SUM, site=SITE_FACE_EXCHANGE)
        lam_max = gs_op(h, lam, op=MAX, site=SITE_FACE_EXCHANGE)
        return self._fold_ghost_traces(uf, ff, lam, usum, fsum, lam_max)

    def _begin_exchanges(self, uf, ff, lam) -> list:
        """Post the 11 trace exchanges (5 state + 5 flux SUM, 1 MAX).

        Posting order matches the blocking loop so per-neighbour fold
        order — and hence floating point — is identical.  Each in-flight
        exchange gets a distinct tag; the per-channel FIFO would keep
        same-tag messages ordered anyway, but distinct tags make the
        matching robust and the traces legible.
        """
        h = self.face_handle
        exchanges = []
        tag = TAG_PAIRWISE
        for c in range(NEQ):
            exchanges.append(gs_op_begin(
                h, uf[c], op=SUM, site=SITE_FACE_EXCHANGE, tag=tag
            ))
            exchanges.append(gs_op_begin(
                h, ff[c], op=SUM, site=SITE_FACE_EXCHANGE, tag=tag + 1
            ))
            tag += 2
        exchanges.append(gs_op_begin(
            h, lam, op=MAX, site=SITE_FACE_EXCHANGE, tag=tag
        ))
        return exchanges

    def _finish_exchanges(self, exchanges, uf, ff, lam):
        """Finish the posted exchanges against the *completed* traces."""
        usum, fsum = self._trace_buffers(uf)
        it = iter(exchanges)
        for c in range(NEQ):
            usum[c] = gs_op_finish(next(it), uf[c])
            fsum[c] = gs_op_finish(next(it), ff[c])
        lam_max = gs_op_finish(next(it), lam)
        return self._fold_ghost_traces(uf, ff, lam, usum, fsum, lam_max)

    def _fold_ghost_traces(self, uf, ff, lam, usum, fsum, lam_max):
        """Add physical-boundary ghost contributions (if any)."""
        if self.boundary is not None and self.boundary.has_boundaries:
            du, df, dlam = self.boundary.ghost_traces(uf, ff, lam, self.eos)
            usum = usum + du
            fsum = fsum + df
            lam_max = lam_max + dlam
        return usum, fsum, lam_max

    def _surface_correction(
        self, div, uf, ff, usum, fsum, lam_max, out=None
    ):
        """Numerical flux + SAT correction.  Neighbour traces are
        (sum - mine); the dissipation sign folds the face orientation."""
        n, nel = self.n, self.nel
        sign = np.array(FACE_NORMAL_SIGN).reshape(1, 6, 1, 1)
        fstar = self._numflux(
            u_minus=uf,
            u_plus=usum - uf,
            f_minus=ff,
            f_plus=fsum - ff,
            lam=sign[None] * lam_max[None],
        )
        sat_faces = self._sat_scale.reshape(1, 1, 6, 1, 1) * (fstar - ff)
        rhs = np.negative(div, out=out)
        for c in range(NEQ):
            face2full_add(rhs[c], sat_faces[c])
        self._charge(numflux_flops(n, nel, ncomp=NEQ))
        return rhs

    def _face_wavespeed(self, uf: np.ndarray) -> np.ndarray:
        """Pointwise |v_n| + a on every face trace: (nel, 6, N, N)."""
        rho = uf[RHO]
        mom = uf[MX : MX + 3]
        p = self.eos.pressure(rho, mom, uf[ENERGY])
        a = self.eos.sound_speed(rho, p)
        axis_pick = np.array(FACE_NORMAL_AXIS)
        vn = np.take_along_axis(
            mom, axis_pick.reshape(1, 1, 6, 1, 1), axis=0
        )[0] / rho
        return np.abs(vn) + a

    # -- dynamic load balancing ----------------------------------------------

    def local_element_ids(self) -> np.ndarray:
        """Global lex ids of this rank's elements, local order.

        For both the brick partition and an assignment the local order
        is ascending global id, so this array is always sorted and
        always matches the element axis of the live field arrays.
        """
        from ..lb.sfc import element_ids

        dom = self.domain
        if hasattr(dom, "element_ids_of"):
            return dom.element_ids_of(self.comm.rank)
        return element_ids(
            self.mesh.shape, np.asarray(dom.local_elements(self.comm.rank))
        )

    def apply_assignment(self, assignment) -> None:
        """Adopt a new element layout: rebuild everything derived from it.

        The gather-scatter handle is rebuilt from the new DG face
        numbering (``LB_gs_rebuild`` call site — setup discovery is
        collective), keeping the previously chosen exchange method; the
        boundary/interior overlap split and the physical-boundary mask
        are recomputed from ownership adjacency.  Does **not** move any
        data — callers migrate first (or load a checkpoint already in
        the new layout).
        """
        from ..lb import OP_LB_REBUILD, SITE_LB_REBUILD

        rank = self.comm.rank
        t0 = self.comm.clock.now
        method = self.face_handle.method
        self.domain = assignment
        self.nel = assignment.nel_of(rank)
        gids = dg_face_numbering(assignment, rank)
        self.face_handle = gs_setup(gids, self.comm, site=SITE_LB_REBUILD)
        self.face_handle.method = method
        self._bnd_elements = assignment.boundary_local_indices(rank)
        self._int_elements = assignment.interior_local_indices(rank)
        if self._work is not None:
            # The local element count changed: every cached buffer
            # shape is stale, so drop the pool and let it regrow.
            self._work.clear()
        if self.boundary is not None:
            from .boundary import BoundaryHandler

            self.boundary = BoundaryHandler(
                assignment, rank, self.config.boundaries
            )
        self.comm.profile.record(
            OP_LB_REBUILD, SITE_LB_REBUILD,
            self.comm.clock.now - t0, 0, informational=True,
        )

    def restore_assignment(self, assignment, step: int) -> None:
        """Restore a rebalanced layout from a checkpoint manifest.

        Rebuilds the numbering without migrating (the restored rank
        files already hold the rebalanced layout) and primes the load
        balancer's hysteresis without counting a rebalance event.
        """
        self.apply_assignment(assignment)
        if self.lb is not None:
            self.lb.commit(assignment, step, count=False)

    def _maybe_rebalance(self, gstep: int, state: FlowState) -> FlowState:
        """Policy check + live migration between RK steps (collective)."""
        new = self.lb.propose(gstep)
        if new is None:
            return state
        from ..lb import migrate_elements

        with self._region("lb_migrate"):
            out, stats = migrate_elements(
                self.comm, self.local_element_ids(), new,
                [("u", state.u, 1)],
            )
            self.apply_assignment(new)
        self.lb.commit(new, gstep, stats=stats)
        return FlowState(u=out["u"], eos=state.eos)

    # -- time stepping -------------------------------------------------------

    def stable_dt(self, state: FlowState) -> float:
        """Globally CFL-limited timestep (one allreduce)."""
        local = state.max_wavespeed()
        speed = self.comm.allreduce(local, op=MAX, site="cmt:cfl")
        dx = min(self.mesh.element_lengths)
        return cfl_dt(speed, dx, self.n, cfl=self.config.cfl)

    def step(self, state: FlowState, dt: float) -> FlowState:
        """Advance one explicit RK step (+ adaptive shock filter)."""
        with self._region("update"):
            if self._work is not None:
                unew = self._stepper(
                    state.u, self._rhs_into, dt, work=self._work
                )
            else:
                unew = self._stepper(state.u, self.rhs, dt)
            # RK axpy arithmetic: ~2 flops and one read-modify-write
            # per point per stage.
            from .rk import STAGES

            stages = STAGES.get(self.config.time_stepper, 3)
            self._charge(
                2.0 * stages * float(unew.size),
                mem_bytes=32.0 * stages * float(unew.size),
            )
        filt = self.config.shock_filter
        if filt is not None:
            unew = filt.apply_state(unew)
            self._charge(
                10.0 * float(unew.size)  # three tensor transforms-ish
            )
        return FlowState(u=unew, eos=state.eos)

    def run(
        self,
        state: FlowState,
        nsteps: int,
        dt: Optional[float] = None,
        monitor_every: int = 0,
        callback: Optional[Callable[[int, FlowState], None]] = None,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        step_offset: int = 0,
        time_offset: float = 0.0,
        checkpoint_job_id: Optional[str] = None,
    ) -> FlowState:
        """Advance ``nsteps``; optionally re-evaluate dt and conservation.

        ``monitor_every > 0`` triggers a conserved-integral reduction
        every so many steps (the vector-reduction traffic the paper
        lists among CMT-bone's communication operations).

        ``checkpoint_every > 0`` (with ``checkpoint_dir``) writes a
        complete checkpoint after every so many *global* steps.  Global
        step numbering is ``step_offset + istep`` — a restarted run
        passes the restored step/time as offsets so checkpoint cadence,
        step-triggered fault events, and the accumulated solution time
        all line up with the plan's original numbering (see
        :func:`run_with_recovery`).
        """
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs checkpoint_dir")
        sim_time = time_offset
        for istep in range(nsteps):
            gstep = step_offset + istep
            if self.comm.faults is not None:
                self.comm.faults.check_step_crash(self.comm, gstep)
            if self.lb is not None:
                self.lb.monitor.begin_step()
            step_dt = dt if dt is not None else self.stable_dt(state)
            state = self.step(state, step_dt)
            if self.lb is not None:
                self.lb.monitor.end_step(nel=self.nel)
            sim_time += step_dt
            self.stats.steps += 1
            self.stats.dt_history.append(step_dt)
            if monitor_every and (istep + 1) % monitor_every == 0:
                mass = self.integrate(state.u[RHO])
                energy = self.integrate(state.u[ENERGY])
                self.stats.mass_history.append(mass)
                self.stats.energy_history.append(energy)
            if callback is not None:
                callback(istep, state)
            if checkpoint_every and (gstep + 1) % checkpoint_every == 0:
                from .checkpoint import save_checkpoint

                save_checkpoint(
                    checkpoint_dir, self.comm, self.partition, state,
                    step=gstep + 1, time=sim_time,
                    assignment=(
                        self.domain
                        if self.domain is not self.partition else None
                    ),
                    job_id=checkpoint_job_id,
                )
            if self.lb is not None:
                state = self._maybe_rebalance(gstep, state)
        return state

    # -- diagnostics -----------------------------------------------------------

    def integrate(self, field_: np.ndarray) -> float:
        """Global integral of a scalar field (quadrature + allreduce)."""
        w = self.weights
        wx = w.reshape(1, -1, 1, 1)
        wy = w.reshape(1, 1, -1, 1)
        wz = w.reshape(1, 1, 1, -1)
        jx, jy, jz = self.jac
        local = float(np.sum(field_ * wx * wy * wz) / (jx * jy * jz))
        return self.comm.allreduce(local, op=SUM, site="cmt:integrate")

    def conserved_totals(self, state: FlowState) -> Dict[str, float]:
        """Global integrals of all five conserved components."""
        from .state import COMPONENT_NAMES

        return {
            name: self.integrate(state.u[c])
            for c, name in enumerate(COMPONENT_NAMES)
        }


# ---------------------------------------------------------------------------
# crash-recovery restart loop
# ---------------------------------------------------------------------------


@dataclass
class AttemptRecord:
    """One launch of the job inside :func:`run_with_recovery`."""

    index: int
    start_step: int
    crashed: bool
    makespan: float
    crash: str = ""
    crash_step: Optional[int] = None
    restored_step: int = 0
    lost_work_seconds: float = 0.0


@dataclass
class FaultRunReport:
    """Lost-work / restart accounting for a fault-injected campaign.

    All times are virtual seconds.  *Campaign time* concatenates the
    attempts: each launch contributes its makespan (slowest rank), plus
    a fixed restart overhead per relaunch; ``gantt_intervals`` places
    every attempt's per-rank run bars — with retry, lost-work, and
    restart spans — on that shared campaign axis, ready for
    :func:`repro.analysis.render_gantt`.
    """

    nranks: int
    nsteps: int
    checkpoint_every: int
    attempts: List[AttemptRecord] = field(default_factory=list)
    restarts: int = 0
    crashes: List[str] = field(default_factory=list)
    steps_lost: int = 0
    lost_work_seconds: float = 0.0
    restart_overhead_seconds: float = 0.0
    messages_dropped: int = 0
    retry_penalty_seconds: float = 0.0
    total_virtual_seconds: float = 0.0
    #: Campaign-time intervals for the text gantt (see class docstring).
    gantt_intervals: List[object] = field(default_factory=list)
    #: mpiP-style profile of the final (successful) attempt.
    final_profile: Optional[object] = None
    #: One profile per attempt, crashed ones included — the FAULT_Crash
    #: pseudo-callsite lives in the attempt that died.
    attempt_profiles: List[object] = field(default_factory=list)

    def campaign_profile(self):
        """All attempts merged into one mpiP-style profile.

        Per-rank totals sum across attempts, so a rank's "app time"
        here is its whole-campaign virtual time (replays included) —
        the right denominator when asking what the faults cost.
        """
        from ..mpi.profiler import JobProfile

        prof = JobProfile(nranks=self.nranks)
        for p in self.attempt_profiles:
            prof.rank_profiles.extend(p.rank_profiles)
            for r, (app, mpi) in p.rank_totals.items():
                a0, m0 = prof.rank_totals.get(r, (0.0, 0.0))
                prof.rank_totals[r] = (a0 + app, m0 + mpi)
        return prof

    def summary(self) -> str:
        """Human-readable recovery report for CLI output."""
        lines = [
            f"fault campaign: {self.nsteps} steps on {self.nranks} ranks, "
            f"checkpoint every "
            f"{self.checkpoint_every if self.checkpoint_every else 'never'}"
            f"{' steps' if self.checkpoint_every else ''}",
            f"  attempts: {len(self.attempts)} "
            f"({self.restarts} restart{'s' if self.restarts != 1 else ''})",
        ]
        for a in self.attempts:
            if a.crashed:
                lines.append(
                    f"  attempt {a.index}: from step {a.start_step}, "
                    f"CRASHED ({a.crash}) after {a.makespan:.6g} s; "
                    f"restored step {a.restored_step}, "
                    f"lost {a.lost_work_seconds:.6g} s of work"
                )
            else:
                lines.append(
                    f"  attempt {a.index}: from step {a.start_step}, "
                    f"completed in {a.makespan:.6g} s"
                )
        lines.append(
            f"  lost work: {self.lost_work_seconds:.6g} s over "
            f"{self.steps_lost} replayed step"
            f"{'s' if self.steps_lost != 1 else ''}"
        )
        lines.append(
            f"  restart overhead: {self.restart_overhead_seconds:.6g} s"
        )
        if self.messages_dropped:
            lines.append(
                f"  dropped messages: {self.messages_dropped} "
                f"(retry penalty {self.retry_penalty_seconds:.6g} s)"
            )
        lines.append(
            f"  total campaign virtual time: "
            f"{self.total_virtual_seconds:.6g} s"
        )
        return "\n".join(lines)


def run_with_recovery(
    setup: Callable[..., tuple],
    nranks: int,
    nsteps: int,
    dt: Optional[float] = None,
    checkpoint_every: int = 0,
    checkpoint_dir=None,
    fault_plan=None,
    machine=None,
    max_restarts: int = 8,
    monitor_every: int = 0,
    backend: str = "threads",
    job_id: Optional[str] = None,
) -> tuple:
    """Run a solver campaign to completion through injected crashes.

    ``setup(comm)`` must build the per-rank ``(solver, initial_state)``
    pair — it is called afresh on every attempt, exactly like a
    resubmitted job re-reads its input deck.  The loop launches the job
    on a fresh :class:`~repro.mpi.Runtime` (the runtime is single-shot);
    when an injected crash (:class:`~repro.mpi.RankCrashError`) kills
    it, the loop restores the last *complete* checkpoint — the atomic
    manifest guarantees completeness — disarms the crash events that
    already fired, charges a restart overhead, and replays from the
    restored step.  Fault-free runs take this same path with a single
    attempt and an empty accounting.

    Returns ``(per_rank_final_states, FaultRunReport)``.  The replayed
    physics is bitwise identical to a fault-free run: checkpoints
    round-trip the state exactly and global step numbering (and hence
    dt sequencing and checkpoint cadence) is preserved across restarts.

    ``backend`` selects the execution backend (``"threads"`` or
    ``"procs"``) for every attempt's Runtime; crash marshalling,
    checkpoint commit protocol and fault accounting are
    backend-transparent (see ``docs/backends.md``).

    ``checkpoint_dir`` names a *base* directory: the campaign's
    checkpoints actually live in a ``job-<id>`` subdirectory of it
    (``job_id`` when given, else a generated unique id), and every
    manifest read verifies the id.  Concurrent campaigns can therefore
    share a base directory without clobbering — or silently adopting —
    each other's checkpoints.
    """
    from ..mpi import RankCrashError, Runtime
    from ..perfmodel.machine import MachineModel
    from .checkpoint import (
        checkpoint_namespace,
        load_checkpoint,
        read_manifest,
    )

    if checkpoint_every and checkpoint_dir is None:
        raise ValueError("checkpoint_every needs checkpoint_dir")
    if job_id is None:
        job_id = secrets.token_hex(8)
    if checkpoint_dir is not None:
        checkpoint_dir = checkpoint_namespace(checkpoint_dir, job_id)
    machine_ = machine if machine is not None else MachineModel.default()
    report = FaultRunReport(
        nranks=nranks, nsteps=nsteps, checkpoint_every=checkpoint_every
    )
    plan = fault_plan
    campaign_t = 0.0
    attempt = 0

    while True:
        start_step, start_time, have_ckpt = 0, 0.0, False
        if checkpoint_dir is not None:
            try:
                info = read_manifest(checkpoint_dir, expect_job_id=job_id)
                start_step, start_time = info.step, info.time
                have_ckpt = True
            except FileNotFoundError:
                pass

        def main(comm):
            solver, state = setup(comm)
            if have_ckpt:
                from .checkpoint import assignment_from_info

                minfo = read_manifest(checkpoint_dir, expect_job_id=job_id)
                asg = assignment_from_info(minfo, solver.partition)
                if asg is not None:
                    # Rebuild the rebalanced layout *before* loading:
                    # the rank files hold per-rank element counts of
                    # the assignment, not the brick partition.
                    solver.restore_assignment(asg, minfo.step)
                state, _ = load_checkpoint(
                    checkpoint_dir, comm, solver.partition,
                    expect_job_id=job_id,
                )
            return solver.run(
                state,
                nsteps - start_step,
                dt=dt,
                monitor_every=monitor_every,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                step_offset=start_step,
                time_offset=start_time,
                checkpoint_job_id=job_id,
            )

        rt = Runtime(
            nranks=nranks,
            machine=machine_,
            fault_plan=plan,
            fault_base_step=start_step,
            backend=backend,
        )
        try:
            results = rt.run(main)
        except RankCrashError as crash:
            stats = rt.clock_stats()
            makespan = max(s.total for s in stats)
            restored_step, ckpt_vtime = start_step, None
            if checkpoint_dir is not None:
                try:
                    m = read_manifest(checkpoint_dir, expect_job_id=job_id)
                    restored_step = m.step
                    if m.step > start_step:
                        # Checkpoint written *this* attempt: its vtime
                        # is on this attempt's clock, so the work lost
                        # is everything past the commit point.
                        ckpt_vtime = m.vtime
                except FileNotFoundError:
                    pass
            lost = makespan - ckpt_vtime if ckpt_vtime is not None else makespan
            lost = max(lost, 0.0)
            crash_step = crash.step
            steps_lost = max((crash_step or restored_step) - restored_step, 0)
            report.attempts.append(AttemptRecord(
                index=attempt,
                start_step=start_step,
                crashed=True,
                makespan=makespan,
                crash=str(crash),
                crash_step=crash_step,
                restored_step=restored_step,
                lost_work_seconds=lost,
            ))
            report.crashes.append(str(crash))
            report.steps_lost += steps_lost
            report.lost_work_seconds += lost
            _campaign_intervals(
                report, stats, campaign_t, attempt,
                lost_from=(ckpt_vtime if ckpt_vtime is not None else 0.0),
            )
            campaign_t += makespan
            _restart_interval(
                report, nranks, campaign_t, machine_.restart_latency
            )
            campaign_t += machine_.restart_latency
            report.restarts += 1
            report.restart_overhead_seconds += machine_.restart_latency
            report.attempt_profiles.append(rt.job_profile())
            _merge_fault_stats(report, rt)
            if rt.faults is not None and plan is not None:
                plan = plan.without(*rt.faults.fired_crashes)
            attempt += 1
            if attempt > max_restarts:
                report.total_virtual_seconds = campaign_t
                raise
            continue

        stats = rt.clock_stats()
        makespan = max(s.total for s in stats)
        report.attempts.append(AttemptRecord(
            index=attempt,
            start_step=start_step,
            crashed=False,
            makespan=makespan,
        ))
        _campaign_intervals(report, stats, campaign_t, attempt)
        campaign_t += makespan
        _merge_fault_stats(report, rt)
        report.total_virtual_seconds = campaign_t
        report.final_profile = rt.job_profile()
        report.attempt_profiles.append(report.final_profile)
        return results, report


def _merge_fault_stats(report: FaultRunReport, rt) -> None:
    if rt.faults is None:
        return
    s = rt.faults.summary()
    report.messages_dropped += s["messages_dropped"]
    report.retry_penalty_seconds += s["retry_penalty_seconds"]


def _campaign_intervals(
    report: FaultRunReport,
    stats,
    campaign_t: float,
    attempt: int,
    lost_from: Optional[float] = None,
) -> None:
    """Place one attempt's per-rank bars on the campaign time axis.

    Each rank gets a ``run`` bar for its clock span; retry time (if
    any) is drawn as a span at the tail of the bar — schematic
    placement, the clock records only totals; on crashed attempts the
    work past the last checkpoint commit is overlaid as a ``lost-work``
    span so replayed time is visible in the chart.
    """
    from ..analysis.timeline import Interval

    for s in stats:
        if s.total <= 0:
            continue
        name = f"run#{attempt}" if attempt else "run"
        report.gantt_intervals.append(Interval(
            rank=s.rank, name=name,
            t0=campaign_t, t1=campaign_t + s.total,
        ))
        retry = s.extra.get("retry_time", 0.0)
        if retry > 0:
            report.gantt_intervals.append(Interval(
                rank=s.rank, name="retry",
                t0=campaign_t + s.total - retry,
                t1=campaign_t + s.total,
                span=True,
            ))
        if lost_from is not None and s.total > lost_from:
            report.gantt_intervals.append(Interval(
                rank=s.rank, name="lost-work",
                t0=campaign_t + lost_from, t1=campaign_t + s.total,
                span=True,
            ))


def _restart_interval(
    report: FaultRunReport, nranks: int, campaign_t: float, overhead: float
) -> None:
    from ..analysis.timeline import Interval

    if overhead <= 0:
        return
    for r in range(nranks):
        report.gantt_intervals.append(Interval(
            rank=r, name="restart",
            t0=campaign_t, t1=campaign_t + overhead,
        ))
