"""``full2face_cmt`` / ``face2full`` — volume/surface data movement.

The paper names ``full2face_cmt`` as one of CMT-bone's key kernels:
"creates an array of surface data, that needs to be transferred to the
neighbors, from the volume data for each element".  Face ordering and
face-local coordinates follow :mod:`repro.mesh.topology` exactly, so
the extracted arrays line up with the DG face numbering and gs handle.
"""

from __future__ import annotations

import numpy as np

from ..mesh.topology import FACE_AXIS_SIDE, NFACES

#: For each face, the axis of its outward normal (0=x, 1=y, 2=z).
FACE_NORMAL_AXIS = tuple(axis for axis, _ in FACE_AXIS_SIDE)
#: Outward-normal sign per face (-1 for low faces, +1 for high faces).
FACE_NORMAL_SIGN = tuple(-1.0 if side == 0 else 1.0 for _, side in FACE_AXIS_SIDE)


def full2face(u: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
    """Extract all six face traces of element volume data.

    ``u`` is ``(nel, N, N, N)``; the result is ``(nel, 6, N, N)`` with
    the face-local coordinates of the topology table (so both elements
    adjacent to a geometric face index its points identically).
    ``out``, when given, receives the traces in place.
    """
    if u.ndim != 4:
        raise ValueError(f"expected (nel, N, N, N), got {u.shape}")
    nel, n = u.shape[0], u.shape[1]
    if out is None:
        out = np.empty((nel, NFACES, n, n), dtype=u.dtype)
    elif out.shape != (nel, NFACES, n, n):
        raise ValueError(
            f"out has shape {out.shape}, need {(nel, NFACES, n, n)}"
        )
    out[:, 0] = u[:, 0, :, :]
    out[:, 1] = u[:, -1, :, :]
    out[:, 2] = u[:, :, 0, :]
    out[:, 3] = u[:, :, -1, :]
    out[:, 4] = u[:, :, :, 0]
    out[:, 5] = u[:, :, :, -1]
    return out


def face2full_add(resid: np.ndarray, faces: np.ndarray) -> None:
    """Accumulate per-face values back onto the volume boundary nodes.

    In-place: ``resid`` is ``(nel, N, N, N)``, ``faces`` is
    ``(nel, 6, N, N)``.  Edge/corner volume nodes belong to several
    faces and receive every contribution (+=), which is exactly what
    the tensor-product SAT correction requires.
    """
    if resid.ndim != 4 or faces.shape != (
        resid.shape[0], NFACES, resid.shape[1], resid.shape[1]
    ):
        raise ValueError(
            f"shape mismatch: resid {resid.shape}, faces {faces.shape}"
        )
    resid[:, 0, :, :] += faces[:, 0]
    resid[:, -1, :, :] += faces[:, 1]
    resid[:, :, 0, :] += faces[:, 2]
    resid[:, :, -1, :] += faces[:, 3]
    resid[:, :, :, 0] += faces[:, 4]
    resid[:, :, :, -1] += faces[:, 5]


def full2face_multi(
    u: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Vectorized :func:`full2face` over a leading component axis.

    ``u`` is ``(ncomp, nel, N, N, N)`` -> ``(ncomp, nel, 6, N, N)``.
    ``out``, when given, receives the traces in place (same stores per
    component as the allocating call, so results are bitwise identical).
    """
    if u.ndim != 5:
        raise ValueError(f"expected (ncomp, nel, N, N, N), got {u.shape}")
    if out is None:
        return np.stack(
            [full2face(u[c]) for c in range(u.shape[0])], axis=0
        )
    for c in range(u.shape[0]):
        full2face(u[c], out=out[c])
    return out


def full2face_elements(u: np.ndarray, elements: np.ndarray) -> np.ndarray:
    """:func:`full2face_multi` restricted to an element subset.

    ``u`` is ``(ncomp, nel, N, N, N)`` and ``elements`` an index array
    into the element axis; the result is ``(ncomp, k, 6, N, N)``.  Face
    extraction is element-local pure data movement, so a subset trace
    is bitwise identical to slicing the full-batch trace — which is
    what lets the overlapped solver extract boundary-element traces
    before the interior fluxes even exist.
    """
    return full2face_multi(u[:, elements])


def face_bytes(nel: int, n: int, ncomp: int = 1, itemsize: int = 8) -> int:
    """Size of one rank's full face data set (all six faces)."""
    return ncomp * nel * NFACES * n * n * itemsize


def full2face_flops(n: int, nel: int, ncomp: int = 1) -> float:
    """Cost model: pure data movement, ~1 'flop-equivalent' per point."""
    return float(ncomp * nel * NFACES * n * n)
