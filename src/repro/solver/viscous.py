"""Viscous (Navier-Stokes) fluxes — the ``grad U`` part of Eq. (1).

The paper's conservation law is ``dU/dt + div f(U, grad U) = R`` and
CMT-nek is "an explicit solver for compressible *Navier-Stokes*
equations" (Section III-A).  This module supplies the gradient-
dependent part of the flux:

* Newtonian stress ``tau = mu (grad v + grad v^T) - 2/3 mu (div v) I``
  (Stokes hypothesis, optional bulk viscosity),
* Fourier heat flux ``q = -kappa grad T`` with
  ``kappa = mu c_p / Pr``,

assembled into the three directional viscous fluxes

    Fv_a = (0, tau_a0, tau_a1, tau_a2, v . tau_a - q_a).

The solver subtracts them from the inviscid fluxes *before* the
divergence and the face-trace extraction, so the whole DG pipeline
(derivative kernels, full2face, gs exchange, SAT) is reused unchanged;
the shared interface flux then averages the two sides' viscous fluxes
— the standard central treatment, consistent for smooth solutions.
Velocity/temperature gradients are evaluated element-locally with the
same derivative kernels (12 more gradient evaluations per rhs — the
reason the paper's N^4 kernel dominates even harder in the viscous
branch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .divergence import gradient_physical
from .state import ENERGY, MX, RHO


@dataclass(frozen=True)
class ViscousModel:
    """Constant-coefficient Newtonian viscosity + Fourier conduction.

    ``mu`` is the dynamic viscosity, ``prandtl`` the Prandtl number
    (kappa = mu c_p / Pr), ``bulk`` an optional bulk viscosity added
    to the Stokes -2/3 factor.
    """

    mu: float
    prandtl: float = 0.72
    bulk: float = 0.0

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError(f"viscosity must be non-negative, got {self.mu}")
        if self.prandtl <= 0:
            raise ValueError(f"Prandtl number must be positive")
        if self.bulk < 0:
            raise ValueError(f"bulk viscosity must be non-negative")

    def kappa(self, eos) -> float:
        """Thermal conductivity for the given gas model."""
        cp = eos.gamma * eos.r_gas / (eos.gamma - 1.0)
        return self.mu * cp / self.prandtl


def velocity_and_temperature(
    u: np.ndarray, eos
) -> Tuple[np.ndarray, np.ndarray]:
    """Primitive (velocity(3,...), temperature) from conserved vars."""
    rho = u[RHO]
    vel = u[MX : MX + 3] / rho
    p = eos.pressure(rho, u[MX : MX + 3], u[ENERGY])
    return vel, eos.temperature(rho, p)


def viscous_fluxes(
    u: np.ndarray,
    eos,
    model: ViscousModel,
    dmat: np.ndarray,
    jac: Tuple[float, float, float],
    variant: str = "fused",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three directional viscous fluxes ``(Fv_x, Fv_y, Fv_z)``.

    Gradients are element-local (collocation derivatives); each output
    has shape ``(5, nel, N, N, N)``.
    """
    vel, temp = velocity_and_temperature(u, eos)
    # grad_v[i][a] = d v_i / d x_a
    grad_v = [
        gradient_physical(vel[i], dmat, jac, variant=variant)
        for i in range(3)
    ]
    grad_t = gradient_physical(temp, dmat, jac, variant=variant)
    mu = model.mu
    kappa = model.kappa(eos)
    div_v = grad_v[0][0] + grad_v[1][1] + grad_v[2][2]
    lam = (model.bulk - 2.0 / 3.0 * mu)

    # Stress tensor tau[i][a].
    tau = [[None] * 3 for _ in range(3)]
    for i in range(3):
        for a in range(3):
            t = mu * (grad_v[i][a] + grad_v[a][i])
            if i == a:
                t = t + lam * div_v
            tau[i][a] = t

    out = []
    for a in range(3):
        f = np.zeros_like(u)
        for i in range(3):
            f[MX + i] = tau[i][a]
        work = sum(vel[i] * tau[i][a] for i in range(3))
        f[ENERGY] = work + kappa * grad_t[a]
        out.append(f)
    return tuple(out)  # type: ignore[return-value]


def viscous_flops(n: int, nel: int) -> float:
    """Work estimate: 12 gradient evaluations + pointwise assembly."""
    from ..kernels import derivatives

    return 4.0 * derivatives.flops(n, nel, ndirections=3) + 120.0 * nel * n**3


def viscous_dt_limit(
    model: ViscousModel, rho_min: float, dx_min: float, n: int,
    safety: float = 0.25,
) -> float:
    """Explicit diffusive stability bound: dt <~ h^2 / (nu N^4)."""
    if model.mu == 0:
        return np.inf
    nu = model.mu / rho_min
    h_eff = dx_min / (n * n)
    return safety * h_eff * h_eff / nu
