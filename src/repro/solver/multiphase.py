"""Two-way coupled particles — "complete multiphase coupling".

The first item of the CMT-nek roadmap (Section III-A) and the physics
in the project's name: momentum exchange between the carrier gas and a
dispersed particle phase.  The model is the standard point-particle
one:

* each computational particle carries mass ``m_p`` and velocity
  ``v_p`` and feels Stokes drag with response time ``tau_p``:
  ``dv_p/dt = (u_gas(x_p) - v_p) / tau_p`` (integrated exactly over a
  step, so stiff ``tau_p`` is unconditionally stable);
* the reaction force is deposited back onto the gas momentum (and its
  work onto the energy) over the particle's containing element
  (PSI-cell deposition — integral-exact, so the gas receives *exactly*
  the momentum the particles lose; conservation tested to roundoff;
  the pointwise exact-transpose deposit is also provided but is too
  stiff for direct forcing);
* particles migrate between ranks through the crystal router.

Gas-side application uses first-order operator splitting: advance the
gas with the DG solver, then apply the accumulated particle sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..kernels.gll import gll_weights, lagrange_basis_at
from ..mpi import SUM, Comm
from .particles import ParticleCloud, ParticleTracker
from .state import ENERGY, MX, FlowState


@dataclass
class InertialCloud:
    """Particles with velocity state (positions + ids via ParticleCloud)."""

    ids: np.ndarray
    pos: np.ndarray
    vel: np.ndarray

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64).reshape(-1)
        self.pos = np.asarray(self.pos, dtype=np.float64).reshape(-1, 3)
        self.vel = np.asarray(self.vel, dtype=np.float64).reshape(-1, 3)
        if not (len(self.ids) == len(self.pos) == len(self.vel)):
            raise ValueError("ids/pos/vel must align")

    def __len__(self) -> int:
        return len(self.ids)

    @staticmethod
    def empty() -> "InertialCloud":
        return InertialCloud(
            np.empty(0, dtype=np.int64), np.empty((0, 3)), np.empty((0, 3))
        )

    def as_tracer(self) -> ParticleCloud:
        return ParticleCloud(ids=self.ids, pos=self.pos)


def deposit_at(
    field: np.ndarray,
    values: np.ndarray,
    ref_coords: np.ndarray,
    elements: np.ndarray,
    weights3: np.ndarray,
    jvol: float,
) -> None:
    """Deposit point values as a density field (transpose of interp).

    In-place: ``field`` is ``(nel, N, N, N)``; each point contributes
    ``values[p] * l_i l_j l_k / (w_i w_j w_k J)`` to its element so the
    quadrature integral of the added density equals ``values[p]``
    exactly (partition of unity).

    Note: the ``1 / w`` factors make contributions near element
    corners very peaked — the classic point-deposition stiffness.  The
    two-way coupling uses :func:`deposit_uniform` (PSI-cell style)
    instead; this exact transpose is kept for adjoint-consistency uses.
    """
    n = field.shape[1]
    lr = lagrange_basis_at(n, ref_coords[:, 0])
    ls = lagrange_basis_at(n, ref_coords[:, 1])
    lt = lagrange_basis_at(n, ref_coords[:, 2])
    basis = np.einsum("pi,pj,pk->pijk", lr, ls, lt)
    contrib = values[:, None, None, None] * basis / (weights3[None] * jvol)
    np.add.at(field, elements, contrib)


def deposit_uniform(
    field: np.ndarray,
    values: np.ndarray,
    elements: np.ndarray,
    jvol: float,
) -> None:
    """Deposit point values uniformly over their containing element.

    PSI-cell (particle-source-in-cell) deposition: the density added to
    element ``e`` is ``sum(values in e) / element volume``, so the
    quadrature integral again equals the deposited total exactly, but
    without the corner-weight spikes of the exact transpose.
    """
    volume = 8.0 * jvol  # reference volume 8 x physical-per-reference J
    per_element = np.zeros(field.shape[0])
    np.add.at(per_element, elements, values)
    field += (per_element / volume)[:, None, None, None]


@dataclass
class CouplingStats:
    """Diagnostics accumulated by :meth:`TwoWayCoupling.step`."""

    momentum_to_gas: np.ndarray = None  # (3,)
    work_to_gas: float = 0.0

    def __post_init__(self):
        if self.momentum_to_gas is None:
            self.momentum_to_gas = np.zeros(3)


class TwoWayCoupling:
    """Drag-coupled particle phase for a :class:`CMTSolver` run."""

    def __init__(
        self,
        comm: Comm,
        tracker: ParticleTracker,
        tau_p: float,
        particle_mass: float,
    ):
        if tau_p <= 0 or particle_mass <= 0:
            raise ValueError("tau_p and particle_mass must be positive")
        self.comm = comm
        self.tracker = tracker
        self.tau_p = tau_p
        self.m_p = particle_mass
        mesh = tracker.mesh
        n = mesh.n
        w = np.asarray(gll_weights(n))
        self._w3 = (
            w[:, None, None] * w[None, :, None] * w[None, None, :]
        )
        jx, jy, jz = mesh.jacobian
        self._jvol = 1.0 / (jx * jy * jz)

    # -- particle kinematics --------------------------------------------

    def _gas_velocity_at(self, cloud: InertialCloud, velocity: np.ndarray
                         ) -> np.ndarray:
        return self.tracker.velocity_at(cloud.as_tracer(), velocity)

    def step(
        self,
        state: FlowState,
        cloud: InertialCloud,
        dt: float,
    ) -> Tuple[FlowState, InertialCloud, CouplingStats]:
        """One coupled step (call after the gas solver's own step).

        Exact drag relaxation, conservative force deposition, advection
        by the *particle* velocity, and rank migration.  Returns the
        updated gas state, the migrated cloud, and exchange stats.
        """
        stats = CouplingStats()
        unew = state.u.copy()
        if len(cloud):
            tracker = self.tracker
            u_gas = self._gas_velocity_at(cloud, state.velocity())
            decay = np.exp(-dt / self.tau_p)
            v_new = u_gas + (cloud.vel - u_gas) * decay
            dp = self.m_p * (v_new - cloud.vel)       # gained by particles
            # Deposit the reaction impulse on the gas momentum density
            # (PSI-cell: uniform over the containing element).
            ecoords, _ref = tracker.locate(cloud.pos)
            lidx = tracker.local_indices(ecoords)
            for c in range(3):
                deposit_uniform(unew[MX + c], -dp[:, c], lidx, self._jvol)
            # Work done on the gas by the drag reaction (use the mean
            # particle velocity over the step for 2nd-order energy).
            v_mid = 0.5 * (cloud.vel + v_new)
            work = -np.sum(dp * v_mid, axis=1)
            deposit_uniform(unew[ENERGY], work, lidx, self._jvol)
            stats.momentum_to_gas = -dp.sum(axis=0)
            stats.work_to_gas = float(work.sum())
            # Advect with the midpoint particle velocity.
            new_pos = tracker.wrap(cloud.pos + dt * v_mid)
            cloud = InertialCloud(ids=cloud.ids, pos=new_pos, vel=v_new)
        cloud = self.migrate(cloud)
        return FlowState(u=unew, eos=state.eos), cloud, stats

    def migrate(self, cloud: InertialCloud) -> InertialCloud:
        """Send particles (with velocity state) to their owner ranks."""
        comm = self.comm
        if comm.size == 1:
            return cloud
        from ..gs.crystal import route

        tracker = self.tracker
        if len(cloud):
            ecoords, _ = tracker.locate(cloud.pos)
            owners = tracker.owner_ranks(ecoords)
        else:
            owners = np.empty(0, dtype=np.int64)
        records = {}
        for dest in np.unique(owners):
            mask = owners == dest
            payload = np.concatenate(
                [cloud.pos[mask], cloud.vel[mask]], axis=1
            ).reshape(-1)
            records[int(dest)] = (cloud.ids[mask], payload)
        arrived = route(records, comm, site="particles:migrate")
        parts = []
        for _d, (ids, flat) in arrived.items():
            data = np.asarray(flat).reshape(-1, 6)
            parts.append(
                InertialCloud(ids=ids, pos=data[:, :3], vel=data[:, 3:])
            )
        if not parts:
            return InertialCloud.empty()
        return InertialCloud(
            ids=np.concatenate([p.ids for p in parts]),
            pos=np.concatenate([p.pos for p in parts]),
            vel=np.concatenate([p.vel for p in parts]),
        )

    # -- diagnostics -----------------------------------------------------

    def total_particle_momentum(self, cloud: InertialCloud) -> np.ndarray:
        """Global particle momentum (3,) via allreduce."""
        local = self.m_p * cloud.vel.sum(axis=0) if len(cloud) else (
            np.zeros(3)
        )
        return np.asarray(self.comm.allreduce(local, op=SUM))

    def global_count(self, cloud: InertialCloud) -> int:
        return int(self.comm.allreduce(len(cloud), op=SUM))


def seed_inertial(
    tracker: ParticleTracker,
    n_global: int,
    vel: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    seed: int = 0,
) -> InertialCloud:
    """Uniformly random inertial particles with a common initial velocity."""
    from .particles import seed_particles

    tracer = seed_particles(tracker, n_global, seed=seed)
    v = np.tile(np.asarray(vel, dtype=np.float64), (len(tracer), 1))
    return InertialCloud(ids=tracer.ids, pos=tracer.pos, vel=v)
