"""Shock capturing: modal smoothness sensing + spectral filtering.

Second item on the CMT-nek roadmap (Section III-A): "complete
multiphase coupling, **shock capturing**, lagrangian point particle
tracking, and real gas models will be added".  This module implements
the standard spectral-element approach:

* a **Persson-Peraire modal smoothness sensor**: transform each
  element to the Legendre modal basis and measure how much energy sits
  in the highest mode — smooth solutions decay spectrally, shocks
  don't;
* an **exponential modal filter** (spectral-vanishing-viscosity style)
  applied adaptively where the sensor fires.

Filtering is element-local and *conservative*: GLL quadrature
integrates Legendre modes exactly up to degree ``2N-3``, and
``integral(P_k) = 0`` for ``k >= 1``, so damping the non-constant
modes leaves every element's mass/momentum/energy integral untouched
(tested to roundoff).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..kernels.gll import gll_points, gll_weights, legendre_and_derivative

__all__ = [
    "ShockFilter",
    "exponential_sigma",
    "modal_energy_fraction",
    "modal_to_nodal",
    "nodal_to_modal",
    "smoothness_sensor",
    "vandermonde",
]


@lru_cache(maxsize=None)
def vandermonde(n: int) -> np.ndarray:
    """Legendre Vandermonde on the GLL grid: ``V[i, k] = P_k(x_i)``."""
    x = np.asarray(gll_points(n))
    v = np.empty((n, n))
    for k in range(n):
        v[:, k], _ = legendre_and_derivative(k, x)
    v.flags.writeable = False
    return v


@lru_cache(maxsize=None)
def inverse_vandermonde(n: int) -> np.ndarray:
    """Nodal -> modal transform (inverse of :func:`vandermonde`).

    Computed via the discrete orthogonality of Legendre polynomials
    under GLL quadrature (exact for ``j + k <= 2n - 3``); the closed
    form is better conditioned than a direct matrix inverse for the
    highest mode, so we simply invert — n <= 64 keeps this benign.
    """
    vinv = np.linalg.inv(vandermonde(n))
    vinv.flags.writeable = False
    return vinv


def _apply_tensor3(op: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Apply a square 1-D operator along all three axes of (nel,N,N,N)."""
    nel, n = u.shape[0], u.shape[1]
    v = np.matmul(op, u.reshape(nel, n, n * n)).reshape(u.shape)
    v = np.matmul(op, v.reshape(nel * n, n, n)).reshape(u.shape)
    v = np.matmul(v.reshape(nel, n * n, n), op.T).reshape(u.shape)
    return v


def nodal_to_modal(u: np.ndarray) -> np.ndarray:
    """Element fields (nel, N, N, N) -> Legendre modal coefficients."""
    if u.ndim != 4:
        raise ValueError(f"expected (nel, N, N, N), got {u.shape}")
    return _apply_tensor3(np.asarray(inverse_vandermonde(u.shape[1])), u)


def modal_to_nodal(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`nodal_to_modal`."""
    if c.ndim != 4:
        raise ValueError(f"expected (nel, N, N, N), got {c.shape}")
    return _apply_tensor3(np.asarray(vandermonde(c.shape[1])), c)


def modal_energy_fraction(u: np.ndarray) -> np.ndarray:
    """Fraction of each element's modal energy in the top shell.

    The "top shell" is every coefficient with max(i, j, k) = N-1.
    Returns shape ``(nel,)`` values in [0, 1].
    """
    c = nodal_to_modal(u)
    n = u.shape[1]
    # Legendre L2 norms: ||P_k||^2 = 2/(2k+1) per direction.
    norm1d = 2.0 / (2.0 * np.arange(n) + 1.0)
    w3 = (
        norm1d[:, None, None]
        * norm1d[None, :, None]
        * norm1d[None, None, :]
    )
    energy = c * c * w3[None]
    total = energy.sum(axis=(1, 2, 3))
    inner = energy[:, : n - 1, : n - 1, : n - 1].sum(axis=(1, 2, 3))
    top = total - inner
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(total > 0, top / total, 0.0)
    return np.clip(frac, 0.0, 1.0)


def smoothness_sensor(u: np.ndarray, floor: float = -16.0) -> np.ndarray:
    """Persson-Peraire sensor: ``log10`` of the top-shell energy share.

    Smooth (spectrally resolved) data gives strongly negative values;
    under-resolved/shocked elements approach 0.  ``floor`` bounds the
    result for numerically zero top shells.
    """
    frac = modal_energy_fraction(u)
    with np.errstate(divide="ignore"):
        s = np.log10(np.maximum(frac, 10.0**floor))
    return s


def exponential_sigma(
    n: int, alpha: float = 36.0, cutoff: int = 1, order: int = 8
) -> np.ndarray:
    """Per-mode damping factors of the exponential filter.

    ``sigma_k = 1`` for ``k <= cutoff``; above the cutoff it decays as
    ``exp(-alpha ((k - kc) / (N - 1 - kc))^order)``, reaching
    ``exp(-alpha)`` (machine-epsilon for the default 36) at the top
    mode.  Mode 0 is always untouched — that is what makes the filter
    conservative.
    """
    if not (0 <= cutoff < n):
        raise ValueError(f"cutoff must be in [0, {n - 1}), got {cutoff}")
    k = np.arange(n, dtype=np.float64)
    sigma = np.ones(n)
    span = max(n - 1 - cutoff, 1)
    hi = k > cutoff
    sigma[hi] = np.exp(-alpha * (((k[hi] - cutoff) / span) ** order))
    return sigma


@dataclass
class ShockFilter:
    """Adaptive exponential modal filter for the DG solver.

    Parameters mirror the usual SEM filter controls.  ``threshold`` is
    the sensor level above which an element is treated as troubled;
    the filter strength ramps linearly from 0 at ``threshold`` to 1 at
    ``threshold + ramp``.
    """

    n: int
    alpha: float = 36.0
    cutoff: int = 1
    order: int = 8
    threshold: float = -4.0
    ramp: float = 2.0

    def __post_init__(self) -> None:
        self._sigma = exponential_sigma(
            self.n, self.alpha, self.cutoff, self.order
        )
        s = self._sigma
        self._sigma3 = (
            s[:, None, None] * s[None, :, None] * s[None, None, :]
        )

    def strength(self, sensor: np.ndarray) -> np.ndarray:
        """Per-element filter strength in [0, 1] from sensor values."""
        return np.clip((sensor - self.threshold) / self.ramp, 0.0, 1.0)

    def apply(self, u: np.ndarray, sensor_field: np.ndarray | None = None
              ) -> np.ndarray:
        """Filter element fields adaptively.

        ``u`` is ``(nel, N, N, N)``.  The sensor is evaluated on
        ``sensor_field`` (default: ``u`` itself — CMT-nek senses on
        density); elements below threshold pass through untouched.
        """
        if u.shape[1] != self.n:
            raise ValueError(
                f"filter built for N={self.n}, got field N={u.shape[1]}"
            )
        sensor = smoothness_sensor(
            u if sensor_field is None else sensor_field
        )
        theta = self.strength(sensor)
        if not np.any(theta > 0):
            return u
        c = nodal_to_modal(u)
        t = theta[:, None, None, None]
        damped = c * (1.0 + t * (self._sigma3[None] - 1.0))
        out = modal_to_nodal(damped)
        # Elements with theta == 0 keep their bits (no transform noise).
        untouched = theta == 0.0
        if np.any(untouched):
            out[untouched] = u[untouched]
        return out

    def apply_state(self, state_u: np.ndarray) -> np.ndarray:
        """Filter all conserved components, sensing on density."""
        if state_u.ndim != 5:
            raise ValueError(
                f"expected (neq, nel, N, N, N), got {state_u.shape}"
            )
        sensor_field = state_u[0]
        return np.stack(
            [
                self.apply(state_u[c], sensor_field=sensor_field)
                for c in range(state_u.shape[0])
            ],
            axis=0,
        )


def element_integrals(u: np.ndarray) -> np.ndarray:
    """GLL-quadrature integral of each element field (conservation aid)."""
    n = u.shape[1]
    w = np.asarray(gll_weights(n))
    return np.einsum(
        "eijk,i,j,k->e", u, w, w, w
    )
