"""Checkpoint / restart for distributed solver state.

Nek-family production runs live and die by restart files; a mini-app
ecosystem needs the same plumbing for long campaigns.  Checkpoints are
one ``.npz`` per rank plus a small JSON manifest that pins the mesh,
partition, and step metadata so restarts onto mismatched setups fail
loudly instead of silently corrupting physics.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..mesh import BoxMesh, Partition
from ..mpi import Comm
from .eos import IdealGas, StiffenedGas
from .state import FlowState

#: Manifest schema version.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata stored in (and read back from) a checkpoint manifest."""

    step: int
    time: float
    nranks: int
    mesh_shape: Tuple[int, int, int]
    n: int
    proc_shape: Tuple[int, int, int]
    eos: dict


def _eos_to_dict(eos) -> dict:
    if isinstance(eos, IdealGas):
        return {"kind": "ideal", "gamma": eos.gamma, "r_gas": eos.r_gas}
    if isinstance(eos, StiffenedGas):
        return {
            "kind": "stiffened", "gamma": eos.gamma,
            "p_inf": eos.p_inf, "r_gas": eos.r_gas,
        }
    raise TypeError(f"cannot serialize EOS of type {type(eos).__name__}")


def _eos_from_dict(d: dict):
    kind = d.get("kind")
    if kind == "ideal":
        return IdealGas(gamma=d["gamma"], r_gas=d["r_gas"])
    if kind == "stiffened":
        return StiffenedGas(
            gamma=d["gamma"], p_inf=d["p_inf"], r_gas=d["r_gas"]
        )
    raise ValueError(f"unknown EOS kind {kind!r} in checkpoint")


def _rank_file(directory: pathlib.Path, rank: int) -> pathlib.Path:
    return directory / f"state.{rank:05d}.npz"


def _manifest_file(directory: pathlib.Path) -> pathlib.Path:
    return directory / "manifest.json"


def save_checkpoint(
    directory,
    comm: Comm,
    partition: Partition,
    state: FlowState,
    step: int = 0,
    time: float = 0.0,
) -> CheckpointInfo:
    """Collectively write one checkpoint (rank files + manifest).

    Rank 0 writes the manifest; every rank writes its own state file.
    Returns the manifest metadata.
    """
    directory = pathlib.Path(directory)
    if comm.rank == 0:
        directory.mkdir(parents=True, exist_ok=True)
    comm.barrier(site="checkpoint")
    np.savez_compressed(
        _rank_file(directory, comm.rank),
        u=state.u,
        rank=comm.rank,
        step=step,
        time=time,
    )
    info = CheckpointInfo(
        step=step,
        time=time,
        nranks=comm.size,
        mesh_shape=tuple(partition.mesh.shape),
        n=partition.mesh.n,
        proc_shape=tuple(partition.proc_shape),
        eos=_eos_to_dict(state.eos),
    )
    if comm.rank == 0:
        manifest = {
            "format_version": FORMAT_VERSION,
            "step": info.step,
            "time": info.time,
            "nranks": info.nranks,
            "mesh_shape": list(info.mesh_shape),
            "n": info.n,
            "proc_shape": list(info.proc_shape),
            "eos": info.eos,
        }
        _manifest_file(directory).write_text(
            json.dumps(manifest, indent=2)
        )
    comm.barrier(site="checkpoint")
    return info


def read_manifest(directory) -> CheckpointInfo:
    """Read and validate a checkpoint manifest."""
    directory = pathlib.Path(directory)
    path = _manifest_file(directory)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint manifest at {path}")
    m = json.loads(path.read_text())
    if m.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {m.get('format_version')} != "
            f"{FORMAT_VERSION}"
        )
    return CheckpointInfo(
        step=m["step"],
        time=m["time"],
        nranks=m["nranks"],
        mesh_shape=tuple(m["mesh_shape"]),
        n=m["n"],
        proc_shape=tuple(m["proc_shape"]),
        eos=m["eos"],
    )


def load_checkpoint(
    directory,
    comm: Comm,
    partition: Partition,
) -> Tuple[FlowState, CheckpointInfo]:
    """Collectively restore a checkpoint written by :func:`save_checkpoint`.

    The partition must match the one the checkpoint was written with
    (same mesh, same processor grid, same rank count) — restart onto a
    different decomposition is refused explicitly.
    """
    directory = pathlib.Path(directory)
    info = read_manifest(directory)
    if info.nranks != comm.size:
        raise ValueError(
            f"checkpoint has {info.nranks} ranks, communicator has "
            f"{comm.size}"
        )
    if info.mesh_shape != tuple(partition.mesh.shape) or info.n != (
        partition.mesh.n
    ):
        raise ValueError(
            f"checkpoint mesh {info.mesh_shape}/N={info.n} does not match "
            f"partition mesh {partition.mesh.shape}/N={partition.mesh.n}"
        )
    if info.proc_shape != tuple(partition.proc_shape):
        raise ValueError(
            f"checkpoint processor grid {info.proc_shape} != "
            f"{partition.proc_shape}"
        )
    with np.load(_rank_file(directory, comm.rank)) as data:
        if int(data["rank"]) != comm.rank:
            raise ValueError("rank file does not belong to this rank")
        u = np.array(data["u"])
    state = FlowState(u=u, eos=_eos_from_dict(info.eos))
    comm.barrier(site="checkpoint")
    return state, info
