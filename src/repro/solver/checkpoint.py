"""Checkpoint / restart for distributed solver state.

Nek-family production runs live and die by restart files; a mini-app
ecosystem needs the same plumbing for long campaigns.  Checkpoints are
one ``.npz`` per rank plus a small JSON manifest that pins the mesh,
partition, and step metadata so restarts onto mismatched setups fail
loudly instead of silently corrupting physics.

Crash safety contract (relied on by the fault-injection recovery loop
in :func:`repro.solver.driver.run_with_recovery`): **the manifest's
existence certifies a complete checkpoint.**  Every rank file is
written to a temporary name and atomically renamed into place, all
ranks barrier after their files land, and only then does rank 0 write
the manifest — itself via temp file + atomic rename.  A crash at any
point during :func:`save_checkpoint` therefore leaves either the
previous complete checkpoint (old manifest, possibly some orphaned
``.tmp`` files) or the new complete one, never a manifest pointing at
missing or stale rank files.  Corrupt or inconsistent rank files at
load time raise :class:`CheckpointError` naming the offending file.
"""

from __future__ import annotations

import json
import os
import pathlib
import zipfile
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..mesh import Partition
from ..mpi import Comm
from .eos import IdealGas, StiffenedGas
from .state import FlowState

#: Manifest schema version.  (``vtime`` was added as an optional field
#: without bumping: old manifests read back with ``vtime=0.0``.)
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or inconsistent.

    Raised with the offending file named in the message, instead of the
    raw ``FileNotFoundError``/``KeyError``/``BadZipFile`` that a torn or
    tampered checkpoint directory used to surface.
    """


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata stored in (and read back from) a checkpoint manifest."""

    step: int
    time: float
    nranks: int
    mesh_shape: Tuple[int, int, int]
    n: int
    proc_shape: Tuple[int, int, int]
    eos: dict
    #: Rank 0's virtual clock when the manifest was committed.  Used by
    #: the recovery loop to account lost work after a crash; 0.0 for
    #: checkpoints written before the field existed.
    vtime: float = 0.0
    #: Load-balancer element assignment active when the checkpoint was
    #: written (the raw ``ElementAssignment.to_dict()`` payload), or
    #: ``None`` for the static brick layout.  Restart restores the
    #: rebalanced layout before loading rank files (whose element
    #: counts reflect it).  Optional field; no format bump.
    assignment: Optional[dict] = None
    #: Identity of the job that wrote this checkpoint, or ``None`` for
    #: anonymous (pre-field) checkpoints.  Restarts pass the expected
    #: id so one job can never silently recover another job's state
    #: out of a shared directory.  Optional field; no format bump.
    job_id: Optional[str] = None


def _eos_to_dict(eos) -> dict:
    if isinstance(eos, IdealGas):
        return {"kind": "ideal", "gamma": eos.gamma, "r_gas": eos.r_gas}
    if isinstance(eos, StiffenedGas):
        return {
            "kind": "stiffened", "gamma": eos.gamma,
            "p_inf": eos.p_inf, "r_gas": eos.r_gas,
        }
    raise TypeError(f"cannot serialize EOS of type {type(eos).__name__}")


def _eos_from_dict(d: dict):
    kind = d.get("kind")
    if kind == "ideal":
        return IdealGas(gamma=d["gamma"], r_gas=d["r_gas"])
    if kind == "stiffened":
        return StiffenedGas(
            gamma=d["gamma"], p_inf=d["p_inf"], r_gas=d["r_gas"]
        )
    raise ValueError(f"unknown EOS kind {kind!r} in checkpoint")


def _rank_file(directory: pathlib.Path, rank: int) -> pathlib.Path:
    return directory / f"state.{rank:05d}.npz"


def _manifest_file(directory: pathlib.Path) -> pathlib.Path:
    return directory / "manifest.json"


def _charge_io(comm: Comm, nbytes: int, site: str) -> None:
    """Charge modelled checkpoint I/O time to the rank's virtual clock."""
    seconds = comm.machine.checkpoint_seconds(nbytes)
    comm.compute(seconds=seconds)
    # Informational row: shows up in mpiP-style reports next to the
    # FAULT_* pseudo-ops without inflating the MPI time fraction.
    comm.profile.record("IO_Checkpoint", site, seconds, nbytes,
                        informational=True)


def checkpoint_namespace(directory, job_id: str) -> pathlib.Path:
    """Job-private checkpoint directory under a shared base directory.

    Two concurrent jobs recovering into one base directory would
    clobber each other's rank files and manifest; namespacing by job
    id keeps every job's checkpoint stream isolated.
    """
    return pathlib.Path(directory) / f"job-{job_id}"


def save_checkpoint(
    directory,
    comm: Comm,
    partition: Partition,
    state: FlowState,
    step: int = 0,
    time: float = 0.0,
    assignment=None,
    job_id: Optional[str] = None,
) -> CheckpointInfo:
    """Collectively write one checkpoint (rank files + manifest).

    Every rank writes its own state file atomically (temp + rename);
    after a barrier confirms *all* rank files are in place, rank 0
    commits the manifest, also atomically.  See the module docstring
    for the crash-safety contract.  Returns the manifest metadata.
    """
    directory = pathlib.Path(directory)
    if comm.rank == 0:
        directory.mkdir(parents=True, exist_ok=True)
    comm.barrier(site="checkpoint:enter")
    path = _rank_file(directory, comm.rank)
    tmp = path.with_suffix(path.suffix + ".tmp")
    # np.savez_compressed appends ".npz" to bare paths; an open file
    # handle keeps the temp name exact so the rename below is atomic.
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            u=state.u,
            rank=comm.rank,
            step=step,
            time=time,
        )
    os.replace(tmp, path)
    _charge_io(comm, state.u.nbytes, site="checkpoint:write")
    info = CheckpointInfo(
        step=step,
        time=time,
        nranks=comm.size,
        mesh_shape=tuple(partition.mesh.shape),
        n=partition.mesh.n,
        proc_shape=tuple(partition.proc_shape),
        eos=_eos_to_dict(state.eos),
        vtime=comm.time(),
        assignment=(
            assignment.to_dict() if assignment is not None else None
        ),
        job_id=job_id,
    )
    # All rank files must be durable before the manifest certifies them.
    comm.barrier(site="checkpoint:files")
    if comm.rank == 0:
        manifest = {
            "format_version": FORMAT_VERSION,
            "step": info.step,
            "time": info.time,
            "nranks": info.nranks,
            "mesh_shape": list(info.mesh_shape),
            "n": info.n,
            "proc_shape": list(info.proc_shape),
            "eos": info.eos,
            "vtime": info.vtime,
        }
        if info.assignment is not None:
            manifest["assignment"] = info.assignment
        if info.job_id is not None:
            manifest["job_id"] = info.job_id
        mpath = _manifest_file(directory)
        mtmp = mpath.with_suffix(".json.tmp")
        mtmp.write_text(json.dumps(manifest, indent=2))
        os.replace(mtmp, mpath)
    comm.barrier(site="checkpoint:commit")
    return info


def read_manifest(
    directory, expect_job_id: Optional[str] = None
) -> CheckpointInfo:
    """Read and validate a checkpoint manifest.

    When ``expect_job_id`` is given, a manifest written *by a
    different job* is rejected with :class:`CheckpointError` — a job
    must never silently recover another job's state out of a shared
    directory.  Manifests with no job id (written before the field
    existed, or by anonymous runs) are accepted unconditionally.
    """
    directory = pathlib.Path(directory)
    path = _manifest_file(directory)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint manifest at {path}")
    m = json.loads(path.read_text())
    if m.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {m.get('format_version')} != "
            f"{FORMAT_VERSION}"
        )
    found = m.get("job_id")
    if (
        expect_job_id is not None
        and found is not None
        and found != expect_job_id
    ):
        raise CheckpointError(
            f"checkpoint at {directory} belongs to job {found!r}, "
            f"not job {expect_job_id!r}"
        )
    return CheckpointInfo(
        step=m["step"],
        time=m["time"],
        nranks=m["nranks"],
        mesh_shape=tuple(m["mesh_shape"]),
        n=m["n"],
        proc_shape=tuple(m["proc_shape"]),
        eos=m["eos"],
        vtime=m.get("vtime", 0.0),
        assignment=m.get("assignment"),
        job_id=found,
    )


def assignment_from_info(info: CheckpointInfo, partition: Partition):
    """Rebuild the manifest's element assignment, or ``None`` (brick).

    Restarting a rebalanced run must restore the layout the rank files
    were written in; callers hand the result to
    :meth:`repro.solver.driver.CMTSolver.restore_assignment`.
    """
    if info.assignment is None:
        return None
    from ..lb import ElementAssignment

    return ElementAssignment.from_dict(partition.mesh, info.assignment)


def load_checkpoint(
    directory,
    comm: Comm,
    partition: Partition,
    expect_job_id: Optional[str] = None,
) -> Tuple[FlowState, CheckpointInfo]:
    """Collectively restore a checkpoint written by :func:`save_checkpoint`.

    The partition must match the one the checkpoint was written with
    (same mesh, same processor grid, same rank count) — restart onto a
    different decomposition is refused explicitly, as is a manifest
    belonging to a different job (see :func:`read_manifest`).
    """
    directory = pathlib.Path(directory)
    info = read_manifest(directory, expect_job_id=expect_job_id)
    if info.nranks != comm.size:
        raise ValueError(
            f"checkpoint has {info.nranks} ranks, communicator has "
            f"{comm.size}"
        )
    if info.mesh_shape != tuple(partition.mesh.shape) or info.n != (
        partition.mesh.n
    ):
        raise ValueError(
            f"checkpoint mesh {info.mesh_shape}/N={info.n} does not match "
            f"partition mesh {partition.mesh.shape}/N={partition.mesh.n}"
        )
    if info.proc_shape != tuple(partition.proc_shape):
        raise ValueError(
            f"checkpoint processor grid {info.proc_shape} != "
            f"{partition.proc_shape}"
        )
    path = _rank_file(directory, comm.rank)
    if not path.exists():
        raise CheckpointError(
            f"checkpoint at {directory} is incomplete: manifest names "
            f"{info.nranks} ranks but rank file {path} is missing"
        )
    try:
        with np.load(path) as data:
            try:
                rank = int(data["rank"])
                step = int(data["step"])
                time = float(data["time"])
                u = np.array(data["u"])
            except KeyError as exc:
                raise CheckpointError(
                    f"rank file {path} is malformed: missing array "
                    f"{exc.args[0]!r}"
                ) from exc
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise CheckpointError(
            f"rank file {path} is unreadable or corrupt: {exc}"
        ) from exc
    if rank != comm.rank:
        raise CheckpointError(
            f"rank file {path} belongs to rank {rank}, "
            f"not rank {comm.rank}"
        )
    if step != info.step or time != info.time:
        raise CheckpointError(
            f"rank file {path} is stale: it holds step {step} / "
            f"time {time!r} but the manifest certifies step "
            f"{info.step} / time {info.time!r} (torn checkpoint?)"
        )
    asg = assignment_from_info(info, partition)
    nel_expect = (
        asg.nel_of(comm.rank) if asg is not None else partition.nel_local
    )
    if u.ndim != 5 or u.shape[1] != nel_expect:
        raise CheckpointError(
            f"rank file {path} holds {u.shape[1] if u.ndim == 5 else '?'} "
            f"elements but the manifest's layout assigns {nel_expect} "
            f"to rank {comm.rank}"
        )
    _charge_io(comm, u.nbytes, site="checkpoint:read")
    state = FlowState(u=u, eos=_eos_from_dict(info.eos))
    comm.barrier(site="checkpoint")
    return state, info
