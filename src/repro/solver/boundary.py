"""Physical boundary conditions for non-periodic box directions.

The mini-app snapshot runs periodic boxes, but CMT-nek's target
problems (explosive particle dispersal, shock-particle interaction)
live in walled and open domains.  The DG face machinery extends
naturally: a boundary face has no gs partner (its ids are unshared, so
the exchanged sum equals the local trace), and the numerical flux is
evaluated against a synthesized *ghost state* instead:

``wall``
    Inviscid slip wall: ghost = interior with the normal momentum
    reflected.  The resulting interface mass/energy fluxes vanish
    identically, so a closed box conserves mass and energy exactly
    while walls exert (physical) pressure forces.
``outflow``
    Transmissive/zero-gradient: ghost = interior; waves leave.  Only
    well-posed for supersonic exit; in long subsonic runs nothing
    anchors the exterior state and the box slowly drains (the classic
    extrapolation-BC "suck-out") — use a ``dirichlet`` ambient far
    field when long-time absorption is needed.
``dirichlet``
    Fixed exterior state (farfield/inflow): ghost = a prescribed
    constant state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..mesh import Partition, RankTopology
from ..mesh.topology import FACE_AXIS_SIDE, NFACES
from .flux import euler_flux
from .state import ENERGY, MX, NEQ, RHO

#: Supported boundary kinds.
KINDS = ("wall", "outflow", "dirichlet")


@dataclass(frozen=True)
class BoundarySpec:
    """Boundary condition for one side of one axis."""

    kind: str
    #: For ``dirichlet``: the exterior state as a 5-vector of conserved
    #: variables (rho, mx, my, mz, E).
    state: Optional[Tuple[float, float, float, float, float]] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown boundary kind {self.kind!r}; choose from {KINDS}"
            )
        if self.kind == "dirichlet":
            if self.state is None or len(self.state) != NEQ:
                raise ValueError(
                    "dirichlet boundaries need a 5-component state"
                )
        elif self.state is not None:
            raise ValueError(f"{self.kind} boundaries take no state")


#: Per-face boundary table: face index (0..5) -> BoundarySpec.
BoundaryTable = Dict[int, BoundarySpec]


def walls_everywhere() -> BoundaryTable:
    """Closed box: slip walls on every non-periodic face."""
    return {f: BoundarySpec("wall") for f in range(NFACES)}


def outflow_everywhere() -> BoundaryTable:
    """Open box: transmissive on every non-periodic face."""
    return {f: BoundarySpec("outflow") for f in range(NFACES)}


class BoundaryHandler:
    """Applies ghost-state corrections to exchanged face traces."""

    def __init__(
        self,
        partition: Partition,
        rank: int,
        table: BoundaryTable,
    ):
        mesh = partition.mesh
        self.table = dict(table)
        topo = RankTopology(partition, rank)
        nel = len(partition.local_elements(rank))
        n = mesh.n
        #: (nel, 6) — True where the face is a physical boundary.
        self.mask = np.zeros((nel, NFACES), dtype=bool)
        for link in topo.boundary_links():
            self.mask[link.local_element, link.face] = True
        for f in range(NFACES):
            axis, _side = FACE_AXIS_SIDE[f]
            if np.any(self.mask[:, f]) and f not in self.table:
                raise ValueError(
                    f"mesh has physical boundaries on face {f} "
                    f"(axis {axis}) but no boundary condition was given"
                )
        self.n = n
        self.has_boundaries = bool(self.mask.any())

    def ghost_traces(
        self,
        uf: np.ndarray,
        ff: np.ndarray,
        lam: np.ndarray,
        eos,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exchanged-sum corrections for boundary faces.

        Inputs are the local traces ``uf``/``ff`` (5, nel, 6, N, N) and
        ``lam`` (nel, 6, N, N).  Returns (usum, fsum, lam_max)
        *increments*: arrays shaped like the exchanged sums containing
        the ghost contribution on boundary entries and zero elsewhere,
        to be added to the gs results (which, for unshared boundary
        ids, already equal the local trace).
        """
        du = np.zeros_like(uf)
        df = np.zeros_like(ff)
        dlam = np.zeros_like(lam)
        if not self.has_boundaries:
            return du, df, dlam
        for f, spec in self.table.items():
            sel = self.mask[:, f]
            if not np.any(sel):
                continue
            axis, _side = FACE_AXIS_SIDE[f]
            u_in = uf[:, sel, f]          # (5, nb, N, N)
            if spec.kind == "outflow":
                ghost = u_in
            elif spec.kind == "wall":
                ghost = u_in.copy()
                ghost[MX + axis] = -ghost[MX + axis]
            else:  # dirichlet
                ghost = np.empty_like(u_in)
                for c in range(NEQ):
                    ghost[c] = spec.state[c]
            gflux = euler_flux(ghost, eos, axis)
            # Ghost wavespeed along the face's axis.
            rho = ghost[RHO]
            p = eos.pressure(rho, ghost[MX : MX + 3], ghost[ENERGY])
            glam = np.abs(ghost[MX + axis] / rho) + eos.sound_speed(rho, p)
            du[:, sel, f] = ghost
            df[:, sel, f] = gflux
            # lam exchange is MAX; emulate with an increment that lifts
            # the local value where the ghost is faster.
            local = lam[sel, f]
            dlam[sel, f] = np.maximum(glam, local) - local
        return du, df, dlam
