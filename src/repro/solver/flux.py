"""Inviscid (Euler) flux functions for the conserved vector.

The flux of ``U = (rho, m_x, m_y, m_z, E)`` along axis ``a`` with
velocity ``v = m / rho`` and pressure ``p``::

    F_a = (m_a,
           m_x v_a + p delta_{xa},
           m_y v_a + p delta_{ya},
           m_z v_a + p delta_{za},
           (E + p) v_a)

These are the volume-term ingredients of the paper's conceptual model:
"CMT-nek involves computing the (1) source terms, (2) flux divergence,
and (3) numerical flux for all the elements."
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .eos import IdealGas
from .state import ENERGY, MX, NEQ, RHO


def euler_flux(
    u: np.ndarray, eos: IdealGas, axis: int
) -> np.ndarray:
    """Euler flux of conserved array ``u`` (5, ...) along ``axis`` (0..2)."""
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    rho = u[RHO]
    mom = u[MX : MX + 3]
    energy = u[ENERGY]
    p = eos.pressure(rho, mom, energy)
    va = mom[axis] / rho
    f = np.empty_like(u)
    f[RHO] = mom[axis]
    for c in range(3):
        f[MX + c] = mom[c] * va
    f[MX + axis] += p
    f[ENERGY] = (energy + p) * va
    return f


def euler_fluxes(
    u: np.ndarray,
    eos: IdealGas,
    out: "Tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All three directional fluxes, sharing one pressure evaluation.

    ``out``, when given, is a triple of preallocated ``(5, ...)``
    result arrays (one per direction) that receive the fluxes in
    place — same stores, bitwise-identical values.
    """
    rho = u[RHO]
    mom = u[MX : MX + 3]
    energy = u[ENERGY]
    p = eos.pressure(rho, mom, energy)
    h = energy + p
    fluxes = []
    for axis in range(3):
        va = mom[axis] / rho
        f = np.empty_like(u) if out is None else out[axis]
        if f.shape != u.shape:
            raise ValueError(
                f"out[{axis}] has shape {f.shape}, field has {u.shape}"
            )
        f[RHO] = mom[axis]
        for c in range(3):
            f[MX + c] = mom[c] * va
        f[MX + axis] += p
        f[ENERGY] = h * va
        fluxes.append(f)
    return tuple(fluxes)  # type: ignore[return-value]


def wavespeed(u: np.ndarray, eos: IdealGas, axis: int) -> np.ndarray:
    """Pointwise maximal signal speed |v_a| + a along ``axis``."""
    rho = u[RHO]
    mom = u[MX : MX + 3]
    p = eos.pressure(rho, mom, u[ENERGY])
    a = eos.sound_speed(rho, p)
    return np.abs(mom[axis] / rho) + a


def flux_flops(n: int, nel: int) -> float:
    """Approximate flop count for one 3-direction flux evaluation.

    Pointwise arithmetic: ~60 flops per grid point covers pressure,
    three velocities, and the 15 flux components.
    """
    return 60.0 * nel * n**3


FLUX_COMPONENTS = NEQ
