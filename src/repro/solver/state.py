"""Conserved-variable state for the compressible flow solver.

The conservation law (paper Eq. 1) is solved for the vector
``U = (rho, rho u, rho v, rho w, E)`` — five components, stored as one
array of shape ``(5, nel, N, N, N)`` so each component is directly a
batch of element fields the derivative kernels accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .eos import IdealGas

#: Number of conserved components (Nek's ``toteq``).
NEQ = 5
#: Component indices.
RHO, MX, MY, MZ, ENERGY = range(NEQ)
#: Component names for reports.
COMPONENT_NAMES = ("rho", "rho_u", "rho_v", "rho_w", "E")


@dataclass
class FlowState:
    """One rank's conserved variables plus the gas model.

    ``u`` has shape ``(5, nel, N, N, N)``.
    """

    u: np.ndarray
    eos: IdealGas

    def __post_init__(self) -> None:
        if self.u.ndim != 5 or self.u.shape[0] != NEQ:
            raise ValueError(
                f"state must be (5, nel, N, N, N), got {self.u.shape}"
            )

    @property
    def nel(self) -> int:
        return self.u.shape[1]

    @property
    def n(self) -> int:
        return self.u.shape[2]

    # -- primitive variables -------------------------------------------

    def density(self) -> np.ndarray:
        return self.u[RHO]

    def velocity(self) -> np.ndarray:
        """(3, nel, N, N, N) velocity components."""
        return self.u[MX:ENERGY] / self.u[RHO]

    def pressure(self) -> np.ndarray:
        return self.eos.pressure(self.u[RHO], self.u[MX:ENERGY], self.u[ENERGY])

    def sound_speed(self) -> np.ndarray:
        return self.eos.sound_speed(self.u[RHO], self.pressure())

    def max_wavespeed(self) -> float:
        """Largest |v_axis| + a over all points and axes (CFL speed)."""
        vel = self.velocity()
        a = self.sound_speed()
        return float(np.max(np.abs(vel) + a[None]))

    def is_physical(self) -> bool:
        """Positive density and pressure everywhere."""
        return bool(np.all(self.u[RHO] > 0.0) and np.all(self.pressure() > 0.0))

    def copy(self) -> "FlowState":
        return FlowState(u=self.u.copy(), eos=self.eos)


def uniform_state(
    nel: int,
    n: int,
    rho: float = 1.0,
    vel: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    p: float = 1.0,
    eos: IdealGas | None = None,
) -> FlowState:
    """A constant (freestream) state — the exactness test for any DG code."""
    eos = eos or IdealGas()
    u = np.empty((NEQ, nel, n, n, n))
    u[RHO] = rho
    for c, v in enumerate(vel):
        u[MX + c] = rho * v
    v3 = np.array(vel).reshape(3, 1, 1, 1, 1)
    u[ENERGY] = eos.total_energy(
        np.full((nel, n, n, n), rho), np.broadcast_to(v3, (3, nel, n, n, n)), p
    )
    return FlowState(u=u, eos=eos)


def from_primitives(
    rho: np.ndarray, vel: np.ndarray, p: np.ndarray, eos: IdealGas | None = None
) -> FlowState:
    """Build conserved state from (rho, velocity(3,...), pressure)."""
    eos = eos or IdealGas()
    u = np.empty((NEQ,) + rho.shape)
    u[RHO] = rho
    for c in range(3):
        u[MX + c] = rho * vel[c]
    u[ENERGY] = eos.total_energy(rho, vel, p)
    return FlowState(u=u, eos=eos)
