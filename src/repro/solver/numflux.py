"""Numerical (interface) fluxes for the DG surface term.

The variational formulation (paper Eq. 2) carries a surface integral of
``(f - f*) . n`` where ``f*`` is "the numerical flux which is informed
by the physics of compressible flow".  Two standard choices are
provided; both are *symmetric* in the two trace states, which is what
makes the scheme conservative (the two elements sharing a face agree on
``f*`` exactly, including floating-point).
"""

from __future__ import annotations

import numpy as np

#: Available interface flux schemes.
SCHEMES = ("lax_friedrichs", "central")


def central(
    u_minus: np.ndarray,
    u_plus: np.ndarray,
    f_minus: np.ndarray,
    f_plus: np.ndarray,
    lam: np.ndarray | None = None,
) -> np.ndarray:
    """Central (average) flux: f* = (f- + f+) / 2.

    Energy-neutral but dispersive; used in tests as the zero-dissipation
    reference.
    """
    return 0.5 * (f_minus + f_plus)


def lax_friedrichs(
    u_minus: np.ndarray,
    u_plus: np.ndarray,
    f_minus: np.ndarray,
    f_plus: np.ndarray,
    lam: np.ndarray,
) -> np.ndarray:
    """Local Lax-Friedrichs (Rusanov) flux.

    ``f* = (f- + f+)/2 - lam/2 * (u+ - u-)`` with ``lam`` the pointwise
    maximum signal speed of the two traces.  ``u±``/``f±`` are ordered
    along the *axis* direction (not outward normals), so both sides
    compute identical values.
    """
    return 0.5 * (f_minus + f_plus) - 0.5 * lam * (u_plus - u_minus)


def numflux_flops(n: int, nel: int, ncomp: int = 5) -> float:
    """Cost model for the interface flux + SAT correction.

    ~30 flop-equivalents per face point per component: the Rusanov
    average/dissipation arithmetic, the SAT scaling, and the
    ``face2full`` accumulation.  Linear in ``nel`` so the overlapped
    schedule's subset charges sum to the blocking charge.
    """
    return 30.0 * ncomp * nel * 6 * n * n


def get_scheme(name: str):
    """Look up a numerical flux by name."""
    table = {"lax_friedrichs": lax_friedrichs, "central": central}
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown numerical flux {name!r}; choose from {SCHEMES}"
        ) from None
