"""Source terms: the right-hand side R of the conservation law.

Paper, Eq. (1): ``dU/dt + div f(U, grad U) = R``, where "the term on
the right hand side represents the source term which captures the
multiphase coupling".  The current CMT-nek carries "limited multiphase
coupling in the form of a nozzling term in the momentum equation"
(Section III-A); the mini-app sets R = 0.  This module provides that
nozzling term (and a body-force source for testing) so the solver can
exercise the Eq. (1) pipeline end to end.

The nozzling term follows the two-phase model of Powers [12]: with a
prescribed dispersed-phase volume fraction ``phi_p(x)`` (gas fraction
``alpha = 1 - phi_p``), the non-conservative coupling in the gas
momentum equation is ``+ p * grad(alpha) = - p * grad(phi_p)`` — the
gas feels the particle bed like a converging/diverging nozzle.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..kernels import derivative_matrix
from .divergence import gradient_physical
from .eos import IdealGas
from .state import ENERGY, MX, RHO

SourceFn = Callable[[np.ndarray], np.ndarray]


def make_nozzling_source(
    phi: np.ndarray,
    jac: tuple,
    eos: IdealGas,
    kernel_variant: str = "fused",
) -> SourceFn:
    """Build the nozzling momentum source for a static volume fraction.

    Parameters
    ----------
    phi:
        Dispersed-phase volume fraction at the GLL nodes,
        ``(nel, N, N, N)``, values in [0, 1).
    jac:
        Reference-to-physical Jacobian scales ``(jx, jy, jz)``.
    eos:
        Gas model (supplies the pressure).

    Returns a callable ``S(u) -> (5, nel, N, N, N)`` adding
    ``-p * d(phi)/dx_d`` to each momentum component.  Mass and energy
    receive nothing — exactly the "momentum equation only" coupling of
    the paper's CMT-nek snapshot.
    """
    phi = np.asarray(phi)
    if phi.ndim != 4:
        raise ValueError(f"phi must be (nel, N, N, N), got {phi.shape}")
    if np.any(phi < 0.0) or np.any(phi >= 1.0):
        raise ValueError("volume fraction must lie in [0, 1)")
    n = phi.shape[1]
    dmat = np.asarray(derivative_matrix(n))
    grad_phi = gradient_physical(phi, dmat, jac, variant=kernel_variant)

    def source(u: np.ndarray) -> np.ndarray:
        p = eos.pressure(u[RHO], u[MX : MX + 3], u[ENERGY])
        s = np.zeros_like(u)
        for d in range(3):
            s[MX + d] = -p * grad_phi[d]
        return s

    return source


def make_body_force(
    g: Sequence[float],
) -> SourceFn:
    """Constant body force (e.g. gravity): S_m = rho g, S_E = m . g."""
    g = np.asarray(g, dtype=np.float64)
    if g.shape != (3,):
        raise ValueError(f"body force must have 3 components, got {g.shape}")

    def source(u: np.ndarray) -> np.ndarray:
        s = np.zeros_like(u)
        for d in range(3):
            s[MX + d] = u[RHO] * g[d]
            s[ENERGY] += u[MX + d] * g[d]
        return s

    return source


def combine_sources(*sources: SourceFn) -> SourceFn:
    """Sum several source terms into one callable."""
    if not sources:
        raise ValueError("need at least one source")

    def source(u: np.ndarray) -> np.ndarray:
        out = sources[0](u)
        for s in sources[1:]:
            out = out + s(u)
        return out

    return source


def gaussian_bed(
    coords: np.ndarray,
    center: Sequence[float],
    width: float,
    peak: float = 0.3,
    lengths: Sequence[float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """A smooth periodic particle-bed volume fraction for examples.

    ``coords`` is ``(3, nel, N, N, N)`` physical node positions;
    the bed is a Gaussian bump of ``peak`` volume fraction centred at
    ``center`` with the given ``width``, periodically wrapped.
    """
    if not (0.0 <= peak < 1.0):
        raise ValueError(f"peak fraction must be in [0, 1), got {peak}")
    r2 = np.zeros(coords.shape[1:])
    for d in range(3):
        dx = coords[d] - center[d]
        ld = lengths[d]
        dx = dx - ld * np.round(dx / ld)  # periodic minimum image
        r2 += dx * dx
    return peak * np.exp(-r2 / (2.0 * width * width))
