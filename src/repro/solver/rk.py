"""Explicit time integration: SSP Runge-Kutta 3 (Shu-Osher).

CMT-nek's current release is "an explicit solver for compressible
Navier-Stokes equations" (Section III-A); the standard explicit choice
in the Nek DG branch is the three-stage strong-stability-preserving
scheme of Shu & Osher::

    u1 = u  + dt L(u)
    u2 = 3/4 u + 1/4 (u1 + dt L(u1))
    u  = 1/3 u + 2/3 (u2 + dt L(u2))

plus forward Euler as a one-stage reference for convergence tests.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..kernels.workspace import Workspace

RhsFn = Callable[[np.ndarray], np.ndarray]

#: Stage counts per scheme.
STAGES = {"euler": 1, "ssprk2": 2, "ssprk3": 3}


def step_euler(
    u: np.ndarray, rhs: RhsFn, dt: float, work: Optional[Workspace] = None
) -> np.ndarray:
    """Forward Euler step."""
    if work is None:
        return u + dt * rhs(u)
    t = work.like(u, key="rk:t")
    np.multiply(rhs(u), dt, out=t)
    return np.add(u, t, out=np.empty_like(u))


def step_ssprk2(
    u: np.ndarray, rhs: RhsFn, dt: float, work: Optional[Workspace] = None
) -> np.ndarray:
    """Two-stage, second-order SSP RK (Heun)."""
    if work is None:
        u1 = u + dt * rhs(u)
        return 0.5 * u + 0.5 * (u1 + dt * rhs(u1))
    t = work.like(u, key="rk:t")
    u1 = work.like(u, key="rk:u1")
    np.multiply(rhs(u), dt, out=t)
    np.add(u, t, out=u1)
    np.multiply(rhs(u1), dt, out=t)
    np.add(u1, t, out=t)
    t *= 0.5
    out = np.multiply(u, 0.5, out=np.empty_like(u))
    out += t
    return out


def step_ssprk3(
    u: np.ndarray, rhs: RhsFn, dt: float, work: Optional[Workspace] = None
) -> np.ndarray:
    """Three-stage, third-order SSP RK (Shu-Osher).

    With a :class:`~repro.kernels.workspace.Workspace` the stage
    vectors live in reusable scratch and only the returned state is a
    fresh array (it outlives the step as the new solution).  The
    in-place pipeline performs the *same* elementwise operations in the
    same order, so both paths are bitwise identical; tests enforce it.
    """
    if work is None:
        u1 = u + dt * rhs(u)
        u2 = 0.75 * u + 0.25 * (u1 + dt * rhs(u1))
        return (u + 2.0 * (u2 + dt * rhs(u2))) / 3.0
    t = work.like(u, key="rk:t")
    u1 = work.like(u, key="rk:u1")
    u2 = work.like(u, key="rk:u2")
    # u1 = u + dt L(u)
    np.multiply(rhs(u), dt, out=t)
    np.add(u, t, out=u1)
    # u2 = 3/4 u + 1/4 (u1 + dt L(u1))
    np.multiply(rhs(u1), dt, out=t)
    np.add(u1, t, out=t)
    t *= 0.25
    np.multiply(u, 0.75, out=u2)
    u2 += t
    # u = (u + 2 (u2 + dt L(u2))) / 3
    np.multiply(rhs(u2), dt, out=t)
    np.add(u2, t, out=t)
    t *= 2.0
    np.add(u, t, out=t)
    return np.divide(t, 3.0, out=np.empty_like(u))


_STEPPERS = {
    "euler": step_euler,
    "ssprk2": step_ssprk2,
    "ssprk3": step_ssprk3,
}


def get_stepper(name: str) -> Callable[[np.ndarray, RhsFn, float], np.ndarray]:
    """Look up a time stepper by name."""
    try:
        return _STEPPERS[name]
    except KeyError:
        raise ValueError(
            f"unknown time stepper {name!r}; choose from {sorted(_STEPPERS)}"
        ) from None


def cfl_dt(
    max_speed: float, dx_min: float, n: int, cfl: float = 0.5
) -> float:
    """CFL-limited step for an N-point spectral element.

    The smallest GLL spacing scales like ``dx * / N^2``; the classic DG
    estimate is ``dt = cfl * dx / (speed * N^2)``.
    """
    if max_speed <= 0:
        raise ValueError(f"max_speed must be positive, got {max_speed}")
    return cfl * dx_min / (max_speed * n * n)
