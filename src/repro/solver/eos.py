"""Equations of state for the compressible flow system.

The paper's roadmap (Section III-A) ends with "real gas models will be
added".  The solver is EOS-agnostic — any object with ``pressure``,
``sound_speed``, ``temperature``, and ``total_energy`` works — and two
models are provided:

* :class:`IdealGas` — the calorically perfect gas of the current
  CMT-nek release;
* :class:`StiffenedGas` — the standard "real-gas" extension for
  liquids/dense media under shock loading (a Noble-Abel/stiffened
  closure: ``p = (gamma-1) rho e - gamma p_inf``), which reduces to
  the ideal gas at ``p_inf = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IdealGas:
    """Calorically perfect ideal gas.

    ``gamma`` is the ratio of specific heats and ``r_gas`` the specific
    gas constant (only needed to report temperature).  CMT-nek's
    current release uses exactly this closure ("real gas models will be
    added" later, per Section III-A).
    """

    gamma: float = 1.4
    r_gas: float = 287.0

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")
        if self.r_gas <= 0.0:
            raise ValueError(f"r_gas must be positive, got {self.r_gas}")

    def pressure(
        self, rho: np.ndarray, mom: np.ndarray, energy: np.ndarray
    ) -> np.ndarray:
        """p = (gamma - 1) (E - |m|^2 / (2 rho)).

        ``mom`` stacks the three momentum components on axis 0.
        """
        ke = 0.5 * np.sum(mom * mom, axis=0) / rho
        return (self.gamma - 1.0) * (energy - ke)

    def sound_speed(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """a = sqrt(gamma p / rho)."""
        return np.sqrt(self.gamma * p / rho)

    def temperature(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """T = p / (rho R)."""
        return p / (rho * self.r_gas)

    def total_energy(
        self, rho: np.ndarray, vel: np.ndarray, p: np.ndarray
    ) -> np.ndarray:
        """E = p/(gamma-1) + rho |v|^2 / 2 (inverse of :meth:`pressure`)."""
        return p / (self.gamma - 1.0) + 0.5 * rho * np.sum(vel * vel, axis=0)


@dataclass(frozen=True)
class StiffenedGas:
    """Stiffened-gas EOS: ``p = (gamma - 1) rho e - gamma p_inf``.

    Models liquids and dense materials under compression (water at
    shock conditions is the textbook case: gamma ~ 6, p_inf ~ 3.4e8).
    ``p_inf = 0`` recovers :class:`IdealGas` exactly.
    """

    gamma: float = 6.1
    p_inf: float = 2.0
    r_gas: float = 287.0

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")
        if self.p_inf < 0.0:
            raise ValueError(f"p_inf must be non-negative, got {self.p_inf}")
        if self.r_gas <= 0.0:
            raise ValueError(f"r_gas must be positive, got {self.r_gas}")

    def pressure(
        self, rho: np.ndarray, mom: np.ndarray, energy: np.ndarray
    ) -> np.ndarray:
        """p = (gamma-1)(E - |m|^2/(2 rho)) - gamma p_inf."""
        ke = 0.5 * np.sum(mom * mom, axis=0) / rho
        return (self.gamma - 1.0) * (energy - ke) - self.gamma * self.p_inf

    def sound_speed(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """a = sqrt(gamma (p + p_inf) / rho)."""
        return np.sqrt(self.gamma * (p + self.p_inf) / rho)

    def temperature(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """T = (p + p_inf) / (rho R) (thermal closure of the model)."""
        return (p + self.p_inf) / (rho * self.r_gas)

    def total_energy(
        self, rho: np.ndarray, vel: np.ndarray, p: np.ndarray
    ) -> np.ndarray:
        """Inverse of :meth:`pressure` given primitive variables."""
        return (
            (p + self.gamma * self.p_inf) / (self.gamma - 1.0)
            + 0.5 * rho * np.sum(vel * vel, axis=0)
        )
