"""Shared auto-tuning machinery: trial timing and cross-rank reduction.

Two subsystems tune themselves at setup time:

* the gather-scatter library (:mod:`repro.gs.autotune`) times its three
  exchange methods on the *virtual* clock and picks the fastest — the
  paper's Section VI procedure;
* the kernel-IR tier (:mod:`repro.kir.autotune`) times candidate
  lowerings of each tensor-contraction program on the *wall* clock and
  pins the winner in a persistent per-host cache.

Both follow the same measurement discipline — warm up, synchronize,
time a fixed number of trials, reduce — so the mechanics live here once
and each tuner supplies only its clock and its candidate set.
"""

from __future__ import annotations

import os
import platform
import socket
import time
from typing import Callable, Optional, Tuple


def host_fingerprint() -> str:
    """Stable identity of the measuring host, hostname included.

    Wall-clock measurements are only comparable on the machine that
    produced them, so both the bench comparator (wall-metric gating)
    and the kernel autotune cache key their data by this string.  The
    hostname leads the fingerprint so per-host caches on a shared
    filesystem never collide once ranks span machines; the
    ``REPRO_HOST_ID`` environment variable overrides it (set per
    simulated host by the sockets backend's loopback launcher, and
    available to pin a stable identity on ephemeral containers).
    """
    host = os.environ.get("REPRO_HOST_ID")
    if not host:
        host = platform.node() or socket.gethostname()
    return f"{host}/{platform.machine()}/{platform.system()}"


def time_trials(
    fn: Callable[[], object],
    trials: int = 3,
    warmup: int = 1,
    timer: Callable[[], float] = time.perf_counter,
    sync: Optional[Callable[[], object]] = None,
) -> float:
    """Average seconds per call of ``fn`` over ``trials`` timed calls.

    ``warmup`` untimed calls run first (JIT/cache/setup effects), then
    ``sync`` (e.g. a barrier on the virtual clock) separates warmup
    from measurement, then ``trials`` calls are timed as one block.
    ``timer`` is any monotonic seconds source — ``time.perf_counter``
    for wall measurements, ``comm.time`` for virtual ones.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    for _ in range(warmup):
        fn()
    if sync is not None:
        sync()
    t0 = timer()
    for _ in range(trials):
        fn()
    return (timer() - t0) / trials


def best_time(
    fn: Callable[[], object],
    repeats: int = 2,
    trials: int = 3,
    warmup: int = 1,
    timer: Callable[[], float] = time.perf_counter,
) -> float:
    """Min-of-``repeats`` of :func:`time_trials` — the noise-robust
    seconds-per-call estimate the kernel tuner ranks candidates by
    (same aggregation the bench runner applies to wall metrics)."""
    return min(
        time_trials(fn, trials=trials, warmup=warmup if r == 0 else 0,
                    timer=timer)
        for r in range(repeats)
    )


def rank_stats(comm, seconds: float, site: str) -> Tuple[float, float, float]:
    """Reduce one rank's per-call seconds across the job.

    Returns ``(avg, mn, mx)`` — the mean / min / max over ranks, the
    three columns of the paper's Fig. 7 table.  Collective.
    """
    from .mpi.datatypes import MAX, MIN, SUM

    avg = comm.allreduce(seconds, op=SUM, site=site) / comm.size
    mn = comm.allreduce(seconds, op=MIN, site=site)
    mx = comm.allreduce(seconds, op=MAX, site=site)
    return avg, mn, mx
