"""Persistent pool of forked job workers.

The pool is the mechanism half of the service (the
:class:`~repro.service.scheduler.JobQueue` is the policy half).  Each
worker is forked **once** and then serves job batches for its whole
life over a pair of pipes, which amortises the fork/import/numpy-setup
cost that a process-per-job design pays every time — and, more
importantly, keeps the worker's in-memory
:class:`~repro.service.artifacts.ArtifactCache` alive across jobs so
repeated configurations skip their setup entirely.

Protocol (all JSON-safe dicts over ``multiprocessing`` fork-context
pipes):

* parent → worker: ``("run", [spec_doc, ...])`` — a batch of one or
  more job specs; or ``("stop",)``.
* worker → parent: ``("result", result_doc)`` per job, then
  ``("done", cache_stats, cached_keys)`` closing the batch.

A worker that dies mid-batch (hard crash) is detected by pipe EOF +
liveness; its in-flight jobs are failed and a fresh worker is forked
in its slot, so one poisoned job cannot take the service down.

Affinity: the parent tracks which artifact keys each worker holds and
:meth:`WorkerPool.pick_worker` prefers an idle worker that already
caches the batch's key — without it, a round-robin pool spreads
identical configs across workers and every one pays the cold setup.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .artifacts import ArtifactCache
from .execute import run_job, spec_artifact_key
from .jobs import STATUS_FAILED, JobResult, JobSpec

_CTX = mp.get_context("fork")


def _worker_loop(cmd_conn, res_conn) -> None:
    """Worker child main: serve ("run", batch) commands until stopped."""
    cache = ArtifactCache()
    while True:
        try:
            msg = cmd_conn.recv()
        except EOFError:
            return
        if msg[0] == "stop":
            return
        if msg[0] != "run":  # pragma: no cover - protocol guard
            continue
        for doc in msg[1]:
            result = run_job(JobSpec.from_json(doc), cache)
            res_conn.send(("result", result.to_json()))
        res_conn.send(("done", cache.stats.snapshot(), cache.keys()))


@dataclass
class _Worker:
    proc: "mp.Process"
    cmd_w: object   # parent's write end of the command pipe
    res_r: object   # parent's read end of the result pipe
    busy: bool = False
    jobs_served: int = 0
    batches_served: int = 0
    #: Artifact keys this worker's cache held after its last batch.
    cached_keys: Set[str] = field(default_factory=set)

    @property
    def pid(self) -> int:
        return self.proc.pid or 0


class PoolError(RuntimeError):
    pass


class WorkerPool:
    """See module docstring."""

    def __init__(self, nworkers: int = 2) -> None:
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.nworkers = nworkers
        self._workers: List[_Worker] = [
            self._spawn() for _ in range(nworkers)
        ]
        self._closed = False
        #: Workers that died mid-batch and were replaced.
        self.respawns = 0

    def _spawn(self) -> _Worker:
        cmd_r, cmd_w = _CTX.Pipe(duplex=False)
        res_r, res_w = _CTX.Pipe(duplex=False)
        proc = _CTX.Process(
            target=_worker_loop, args=(cmd_r, res_w),
            name="repro-job-worker", daemon=True,
        )
        proc.start()
        # The child inherited its own copies; drop the parent's.
        cmd_r.close()
        res_w.close()
        return _Worker(proc=proc, cmd_w=cmd_w, res_r=res_r)

    # -- introspection -------------------------------------------------

    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers]

    def idle_workers(self) -> List[int]:
        return [i for i, w in enumerate(self._workers) if not w.busy]

    def jobs_served(self) -> int:
        return sum(w.jobs_served for w in self._workers)

    # -- scheduling hooks ----------------------------------------------

    def pick_worker(self, specs: List[JobSpec]) -> Optional[int]:
        """Choose an idle worker for a batch, preferring cache affinity.

        Returns a worker index, or None when every worker is busy.
        """
        idle = self.idle_workers()
        if not idle:
            return None
        keys = {k for k in (spec_artifact_key(s) for s in specs)
                if k is not None}
        if keys:
            for i in idle:
                if keys & self._workers[i].cached_keys:
                    return i
        # Least-loaded cold worker: spreads distinct configs out so
        # each warms a different part of the fleet.
        return min(idle, key=lambda i: self._workers[i].jobs_served)

    def dispatch(self, index: int, specs: List[JobSpec]) -> None:
        """Hand a batch to worker ``index`` (must be idle)."""
        if self._closed:
            raise PoolError("pool is closed")
        w = self._workers[index]
        if w.busy:
            raise PoolError(f"worker {index} is busy")
        w.busy = True
        w.cmd_w.send(("run", [s.to_json() for s in specs]))

    def collect(self, index: int, specs: List[JobSpec]
                ) -> List[JobResult]:
        """Blocking: receive the batch's results from worker ``index``.

        Call from an executor thread, never the event loop.  A worker
        death yields ``failed`` results for the unfinished jobs and a
        replacement worker in the slot.
        """
        w = self._workers[index]
        results: List[JobResult] = []
        try:
            while True:
                msg = w.res_r.recv()
                if msg[0] == "result":
                    results.append(JobResult.from_json(msg[1]))
                elif msg[0] == "done":
                    w.cached_keys = set(msg[2])
                    break
        except EOFError:
            pass
        if len(results) < len(specs):
            # The worker died mid-batch: fail what never came back and
            # put a fresh worker in the slot.
            done = {r.job_id for r in results}
            for spec in specs:
                if spec.job_id not in done:
                    results.append(JobResult(
                        job_id=spec.job_id, kind=spec.kind,
                        name=spec.name, status=STATUS_FAILED,
                        worker_pid=w.pid,
                        error=f"worker pid {w.pid} died mid-batch",
                    ))
            self._replace(index)
            w = self._workers[index]
        w.jobs_served += len(specs)
        w.batches_served += 1
        w.busy = False
        return results

    def _replace(self, index: int) -> None:
        old = self._workers[index]
        self._close_worker(old, force=True)
        self._workers[index] = self._spawn()
        self.respawns += 1

    # -- shutdown ------------------------------------------------------

    @staticmethod
    def _close_worker(w: _Worker, force: bool = False) -> None:
        try:
            if not force and w.proc.is_alive():
                w.cmd_w.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(timeout=5.0)
        for conn in (w.cmd_w, w.res_r):
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            self._close_worker(w)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
