"""Persistent pool of forked job workers.

The pool is the mechanism half of the service (the
:class:`~repro.service.scheduler.JobQueue` is the policy half).  Each
worker is forked **once** and then serves job batches for its whole
life over a pair of pipes, which amortises the fork/import/numpy-setup
cost that a process-per-job design pays every time — and, more
importantly, keeps the worker's in-memory
:class:`~repro.service.artifacts.ArtifactCache` alive across jobs so
repeated configurations skip their setup entirely.

Protocol (all JSON-safe dicts over ``multiprocessing`` fork-context
pipes):

* parent → worker: ``("run", [spec_doc, ...])`` — a batch of one or
  more job specs; or ``("stop",)``.
* worker → parent: ``("result", result_doc)`` per job, then
  ``("done", cache_stats, cached_keys)`` closing the batch.

A worker that dies mid-batch (hard crash) is detected by pipe EOF +
liveness; its in-flight jobs are failed and a fresh worker is forked
in its slot, so one poisoned job cannot take the service down.

Deadline monitor: the worker runs its batch serially and sends one
result per job in batch order, so the parent always knows which job is
*currently* running (the one at index ``len(results)``) and when it
started (the dispatch, or the previous result's arrival).
:meth:`WorkerPool.collect` polls the result pipe against that job's
own ``timeout_seconds``; on overrun it drains results that already
arrived, kills the worker, reports the overrunning job ``timed_out``
and the rest of the batch ``worker_died`` (collateral — they never
ran), and respawns the slot.  The queue/service layer decides whether
those jobs are re-admitted (``max_retries``).  A job's measured start
is its result-pipe predecessor, so pipe latency only ever *adds*
budget — a timeout is never charged against time the job didn't get.

Accounting is per serving worker: a batch is always credited to the
worker that actually ran (or died running) it, never to the fresh
replacement — otherwise the least-loaded affinity pick would treat
the cold respawn as the pool's most seasoned worker.  Tallies of
retired (dead) workers accumulate on the pool so pool-wide totals
survive respawns.

Affinity: the parent tracks which artifact keys each worker holds and
:meth:`WorkerPool.pick_worker` prefers an idle worker that already
caches the batch's key — without it, a round-robin pool spreads
identical configs across workers and every one pays the cold setup.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .artifacts import ArtifactCache
from .execute import run_job, spec_artifact_key
from .jobs import STATUS_FAILED, JobResult, JobSpec

_CTX = mp.get_context("fork")


def _worker_loop(cmd_conn, res_conn, artifact_dir=None) -> None:
    """Worker child main: serve ("run", batch) commands until stopped."""
    cache = ArtifactCache(disk=artifact_dir)
    while True:
        try:
            msg = cmd_conn.recv()
        except EOFError:
            return
        if msg[0] == "stop":
            return
        if msg[0] != "run":  # pragma: no cover - protocol guard
            continue
        for doc in msg[1]:
            result = run_job(JobSpec.from_json(doc), cache)
            res_conn.send(("result", result.to_json()))
        res_conn.send(("done", cache.stats.snapshot(), cache.keys()))


@dataclass
class _Worker:
    proc: "mp.Process"
    cmd_w: object   # parent's write end of the command pipe
    res_r: object   # parent's read end of the result pipe
    busy: bool = False
    jobs_served: int = 0
    batches_served: int = 0
    #: Monotonic wall time the in-flight batch was dispatched (the
    #: rolling per-job deadline monitor measures from here).
    batch_started: Optional[float] = None
    #: Artifact keys this worker's cache held after its last batch.
    cached_keys: Set[str] = field(default_factory=set)

    @property
    def pid(self) -> int:
        return self.proc.pid or 0


class PoolError(RuntimeError):
    pass


class WorkerPool:
    """See module docstring."""

    def __init__(self, nworkers: int = 2,
                 artifact_dir: Optional[str] = None) -> None:
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.nworkers = nworkers
        #: Disk-spill directory every worker's ArtifactCache shares
        #: (None = in-memory caches only).
        self.artifact_dir = artifact_dir
        self._workers: List[_Worker] = [
            self._spawn() for _ in range(nworkers)
        ]
        self._closed = False
        #: Workers that died mid-batch and were replaced.
        self.respawns = 0
        #: Batches killed by the deadline monitor.
        self.timeout_kills = 0
        #: Tallies of retired (replaced) workers, so pool-wide totals
        #: survive respawns.
        self._retired_jobs_served = 0
        self._retired_batches_served = 0

    def _spawn(self) -> _Worker:
        cmd_r, cmd_w = _CTX.Pipe(duplex=False)
        res_r, res_w = _CTX.Pipe(duplex=False)
        proc = _CTX.Process(
            target=_worker_loop, args=(cmd_r, res_w, self.artifact_dir),
            name="repro-job-worker", daemon=True,
        )
        proc.start()
        # The child inherited its own copies; drop the parent's.
        cmd_r.close()
        res_w.close()
        return _Worker(proc=proc, cmd_w=cmd_w, res_r=res_r)

    # -- introspection -------------------------------------------------

    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers]

    def idle_workers(self) -> List[int]:
        return [i for i, w in enumerate(self._workers) if not w.busy]

    def jobs_served(self) -> int:
        return (sum(w.jobs_served for w in self._workers)
                + self._retired_jobs_served)

    # -- scheduling hooks ----------------------------------------------

    def pick_worker(self, specs: List[JobSpec]) -> Optional[int]:
        """Choose an idle worker for a batch, preferring cache affinity.

        Returns a worker index, or None when every worker is busy.
        """
        idle = self.idle_workers()
        if not idle:
            return None
        keys = {k for k in (spec_artifact_key(s) for s in specs)
                if k is not None}
        if keys:
            for i in idle:
                if keys & self._workers[i].cached_keys:
                    return i
        # Least-loaded cold worker: spreads distinct configs out so
        # each warms a different part of the fleet.
        return min(idle, key=lambda i: self._workers[i].jobs_served)

    def dispatch(self, index: int, specs: List[JobSpec]) -> None:
        """Hand a batch to worker ``index`` (must be idle)."""
        if self._closed:
            raise PoolError("pool is closed")
        w = self._workers[index]
        if w.busy:
            raise PoolError(f"worker {index} is busy")
        w.busy = True
        w.batch_started = time.monotonic()
        w.cmd_w.send(("run", [s.to_json() for s in specs]))

    def _drain_ready(self, w: _Worker, results: List[JobResult]) -> bool:
        """Consume already-arrived messages without blocking.

        Returns True if the batch's closing "done" message was seen —
        the batch actually finished (possibly at the deadline's edge).
        """
        try:
            while w.res_r.poll(0):
                msg = w.res_r.recv()
                if msg[0] == "result":
                    results.append(JobResult.from_json(msg[1]))
                elif msg[0] == "done":
                    w.cached_keys = set(msg[2])
                    return True
        except EOFError:
            pass
        return False

    def collect(self, index: int, specs: List[JobSpec]
                ) -> List[JobResult]:
        """Blocking: receive the batch's results from worker ``index``.

        Call from an executor thread, never the event loop.  A worker
        death yields ``worker_died`` failed results for the unfinished
        jobs; a job that overruns its own ``timeout_seconds`` gets its
        worker killed, a ``timed_out`` failed result, and the rest of
        the batch fails ``worker_died`` (collateral — those jobs never
        started).  Either way a replacement worker lands in the slot,
        the batch is credited to the worker that served it (not the
        replacement), and the dead worker's cached-key advertisement
        dies with it.
        """
        w = self._workers[index]
        results: List[JobResult] = []
        finished = False    # saw the batch's closing "done" message
        timed_out = False   # deadline monitor killed the current job
        died = False        # pipe EOF: worker crashed on its own
        started = (w.batch_started if w.batch_started is not None
                   else time.monotonic())
        try:
            while True:
                # The worker serves the batch serially and reports in
                # order, so the job currently running is the one at
                # index len(results), started when its predecessor's
                # result arrived (or at dispatch).
                current = len(results)
                deadline = None
                if (current < len(specs)
                        and specs[current].timeout_seconds > 0):
                    deadline = started + specs[current].timeout_seconds
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        # Budget exhausted: anything already on the
                        # wire still counts (the job may have finished
                        # at the deadline's edge).
                        finished = self._drain_ready(w, results)
                        if finished:
                            break
                        if len(results) > current:
                            started = time.monotonic()
                            continue  # it did finish; next job's clock
                        timed_out = True
                        break
                    if not w.res_r.poll(remaining):
                        continue  # re-check the rolling deadline
                msg = w.res_r.recv()
                if msg[0] == "result":
                    results.append(JobResult.from_json(msg[1]))
                    started = time.monotonic()
                elif msg[0] == "done":
                    w.cached_keys = set(msg[2])
                    finished = True
                    break
        except EOFError:
            died = True
        w.batch_started = None
        if timed_out:
            self.timeout_kills += 1
            self._kill(w)
        # Unfinished jobs are exactly specs[len(results):] (serial,
        # in-order worker).  On a timeout the first of them is the
        # overrunner; the rest never started.
        running = len(results)  # the job in flight when things went bad
        for j in range(len(results), len(specs)):
            spec = specs[j]
            if timed_out and j == running:
                flags = dict(timed_out=True, worker_died=False)
                reason = (
                    f"job exceeded its {spec.timeout_seconds:.3g}s "
                    f"timeout; worker pid {w.pid} killed"
                )
            elif j == running:
                flags = dict(timed_out=False, worker_died=True)
                reason = f"worker pid {w.pid} died mid-batch"
            else:
                # Collateral: its turn never came.  never_started lets
                # the service re-admit it without charging a retry.
                flags = dict(timed_out=False, worker_died=True,
                             never_started=True)
                cause = "timed out" if timed_out else "died"
                reason = (
                    f"never started: worker pid {w.pid} gone after "
                    f"job {specs[running].job_id} {cause} earlier in "
                    "the batch"
                )
            results.append(JobResult(
                job_id=spec.job_id, kind=spec.kind,
                name=spec.name, status=STATUS_FAILED,
                worker_pid=w.pid,
                error=reason,
                **flags,
            ))
        # Credit the worker that served the batch — never the fresh
        # replacement, which must start cold for least-loaded routing.
        w.jobs_served += len(specs)
        w.batches_served += 1
        w.busy = False
        if died or timed_out:
            self._replace(index)
        return results

    @staticmethod
    def _kill(w: _Worker) -> None:
        """Terminate a worker that overran its deadline."""
        if w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():  # pragma: no cover - stuck in C code
                w.proc.kill()
                w.proc.join(timeout=5.0)

    def _replace(self, index: int) -> None:
        old = self._workers[index]
        self._retired_jobs_served += old.jobs_served
        self._retired_batches_served += old.batches_served
        self._close_worker(old, force=True)
        self._workers[index] = self._spawn()
        self.respawns += 1

    # -- shutdown ------------------------------------------------------

    @staticmethod
    def _close_worker(w: _Worker, force: bool = False) -> None:
        try:
            if not force and w.proc.is_alive():
                w.cmd_w.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(timeout=5.0)
        for conn in (w.cmd_w, w.res_r):
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            self._close_worker(w)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
