"""Execution of one :class:`~repro.service.jobs.JobSpec` in a worker.

This is the code a persistent pool worker runs for each job it is
handed.  Jobs execute on the *threads* backend internally — the
service's parallelism is across workers (one forked process each), so
inside a worker the cheap backend is the right one, and it lets every
rank of a job share the worker's in-memory
:class:`~repro.service.artifacts.ArtifactCache` directly.

The artifact-cache hit/miss decision is made **here, once per job**
(never per rank): a complete entry found before launch is handed to
all ranks; otherwise all ranks run cold setup and store their shares.
That single decision point is what keeps ranks collectively consistent
(see :mod:`repro.service.artifacts`).  Jobs with fault injection
(``params["fault_spec"]``) would perturb message sequence numbers, so
they bypass the cache entirely — no lookup, no store.

``run_job`` is deliberately synchronous and exception-tight: whatever
goes wrong becomes a ``failed`` :class:`JobResult`, never a worker
crash.  Only ``Exception`` is caught — ``KeyboardInterrupt`` /
``SystemExit`` must propagate so a worker told to die actually dies
(the pool's timeout-kill path depends on that).

Both kinds accept ``params["backend"]`` (execution backend inside the
worker, default ``threads``) and ``params["sleep_s"]`` (a synthetic
wall-clock stall before the run — the hook the timeout tests and the
``service`` bench scenarios use to simulate a hung job).
``params["exit_if_flag"]`` names a flag file: if it exists when the
job starts, it is deleted and the worker process dies on the spot —
a deterministic crash-on-first-attempt hook for the worker-death and
retry tests (the retry finds the flag consumed and runs clean).
"""

from __future__ import annotations

import time
import traceback
from typing import Optional

from .artifacts import ArtifactCache, SetupArtifact, artifact_key
from .jobs import (
    STATUS_DONE,
    STATUS_FAILED,
    JobResult,
    JobSpec,
    digest_arrays,
)


def _machine(preset: str):
    from ..perfmodel.machine import MachineModel

    return MachineModel.preset(preset)


def _fault_plan(spec: JobSpec):
    """FaultPlan from ``params["fault_spec"]``, or None (fault-free)."""
    fault_spec = spec.param("fault_spec")
    if not fault_spec:
        return None
    from ..faults import FaultPlan

    return FaultPlan.parse(
        str(fault_spec), seed=int(spec.param("fault_seed", 0))
    )


def _cmtbone_main(comm, config, entry, cache, key, nranks):
    """SPMD main for a cmtbone job (threads backend, shared ``cache``)."""
    from ..core.cmtbone import CMTBone

    sink = None
    if cache is not None and entry is None:
        def sink(bone, bone_comm, _cache=cache, _key=key, _n=nranks):
            _cache.store(
                _key, bone_comm.rank,
                SetupArtifact.capture(bone, bone_comm), _n,
            )

    art = entry.artifact_for(comm.rank) if entry is not None else None
    bone = CMTBone(comm, config, setup_artifact=art, setup_sink=sink)
    return bone.run()


def _cmtbone_config(spec: JobSpec):
    from ..core.config import CMTBoneConfig

    p = spec.params
    return CMTBoneConfig(
        n=int(p.get("n", 5)),
        local_shape=p.get("nel", 8),
        nsteps=int(p.get("nsteps", 4)),
        kernel_variant=str(p.get("kernel_variant", "fused")),
        gs_method=p.get("gs_method"),
        work_mode=str(p.get("work_mode", "real")),
        monitor_every=int(p.get("monitor_every", 1)),
        seed=int(p.get("seed", 2015)),
    )


def spec_artifact_key(spec: JobSpec) -> Optional[str]:
    """Artifact-cache key a job will use (None for uncacheable kinds).

    The pool's affinity router uses this to steer jobs toward workers
    that already hold the matching setup artifact.  Fault-injected
    jobs bypass the cache, so they have no key.

    Never raises: this runs in the *service's* drive loop (affinity
    routing), where an invalid spec must dispatch and fail cleanly in
    its worker — not take the whole service down.  An unbuildable
    config simply has no cache identity.
    """
    if spec.kind != "cmtbone" or spec.param("fault_spec"):
        return None
    try:
        config = _cmtbone_config(spec)
        partition = config.build_partition(spec.nranks)
    except Exception:
        return None
    return artifact_key(
        partition.mesh.shape, config.n, partition.proc_shape,
        config.gs_method, config.kernel_variant,
    )


def _run_cmtbone(spec: JobSpec, cache: Optional[ArtifactCache],
                 result: JobResult) -> None:
    from ..mpi import Runtime

    config = _cmtbone_config(spec)
    key = spec_artifact_key(spec)
    plan = _fault_plan(spec)
    if plan is not None:
        # Fault injection perturbs setup-time message sequencing: the
        # job must run cold and must not poison the cache.
        cache = None
    entry = None
    if cache is not None:
        before_disk = cache.stats.disk_hits
        entry = cache.lookup(key, spec.nranks)
        result.cache_hits = 1 if entry is not None else 0
        result.cache_misses = 0 if entry is not None else 1
        result.cache_disk_hits = cache.stats.disk_hits - before_disk
    rt = Runtime(
        nranks=spec.nranks,
        machine=_machine(spec.machine),
        fault_plan=plan,
        backend=str(spec.param("backend", "threads")),
    )
    results = rt.run(
        _cmtbone_main,
        args=(config, entry, cache, key, spec.nranks),
    )
    stats = rt.clock_stats()
    result.vtime_total = max(s.total for s in stats)
    result.vtime_comm = max(s.comm for s in stats)
    result.digest = digest_arrays(
        repr((
            r.rank,
            r.chosen_method,
            tuple(r.monitor_values),
            r.vtime_total.hex(),
            r.vtime_comm.hex(),
            r.vtime_hidden_comm.hex(),
        )).encode("utf-8")
        for r in results
    )


def _run_sod(spec: JobSpec, result: JobResult) -> None:
    from ..cli import _sod_setup
    from ..solver import run_with_recovery

    p = spec.params
    setup = _sod_setup(
        spec.nranks,
        n=int(p.get("n", 5)),
        nelx=int(p.get("nelx", 8)),
        gs_method=str(p.get("gs_method", "pairwise")),
        kernel_variant=str(p.get("kernel_variant", "fused")),
    )
    states, report = run_with_recovery(
        setup,
        nranks=spec.nranks,
        nsteps=int(p.get("nsteps", 4)),
        dt=p.get("dt", 2e-4),
        checkpoint_every=int(p.get("checkpoint_every", 0)),
        checkpoint_dir=p.get("checkpoint_dir"),
        fault_plan=_fault_plan(spec),
        machine=_machine(spec.machine),
        backend=str(p.get("backend", "threads")),
        job_id=spec.job_id,
    )
    result.vtime_total = report.total_virtual_seconds
    result.digest = digest_arrays(
        st.u.tobytes() for st in states
    )


def run_job(spec: JobSpec, cache: Optional[ArtifactCache] = None
            ) -> JobResult:
    """Execute one job to a terminal :class:`JobResult` (never raises)."""
    import os

    result = JobResult(
        job_id=spec.job_id,
        kind=spec.kind,
        name=spec.name,
        worker_pid=os.getpid(),
    )
    t0 = time.perf_counter()
    flag = spec.param("exit_if_flag")
    if flag and os.path.exists(str(flag)):
        # Crash hook (see module docstring): consume the flag so a
        # retried attempt runs clean, then die without cleanup — the
        # parent must see a hard worker death, not an exception.
        os.unlink(str(flag))
        os._exit(17)
    try:
        delay = float(spec.param("sleep_s", 0.0) or 0.0)
        if delay > 0:
            time.sleep(delay)
        if spec.kind == "cmtbone":
            _run_cmtbone(spec, cache, result)
        elif spec.kind == "sod":
            _run_sod(spec, result)
        else:  # pragma: no cover - JobSpec validates kinds
            raise ValueError(f"unknown job kind {spec.kind!r}")
        result.status = STATUS_DONE
    except Exception as exc:
        # Exception, not BaseException: KeyboardInterrupt/SystemExit
        # must kill the worker, not masquerade as a failed job — the
        # pool's timeout-kill path depends on workers dying cleanly.
        result.status = STATUS_FAILED
        result.error = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
    result.exec_seconds = time.perf_counter() - t0
    return result
