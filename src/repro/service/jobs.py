"""Job descriptions and results for the mini-app job service.

A :class:`JobSpec` is one runnable mini-app configuration — a CMT-bone
proxy run or a Sod solver campaign — plus the queueing metadata the
scheduler needs (priority, submitter, estimated size).  Specs are
plain data and JSON round-trippable so they can travel over the
spool-directory protocol (``repro.cli submit`` / ``serve``) and over
the worker pool's pipes.

A :class:`JobResult` is what comes back: terminal status, latency
accounting, the job's deterministic virtual-time totals, artifact-
cache accounting, and a content digest of the physics output so
service runs can be checked bitwise against standalone CLI runs.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional

#: Job kinds the execution layer understands.
KINDS = ("cmtbone", "sod")

#: Terminal statuses of a job.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"

#: Jobs at or below this many work units (see :meth:`JobSpec.work_units`)
#: count as "small" and are eligible for batched admission: several of
#: them ride one worker dispatch, amortising the per-dispatch IPC.
SMALL_JOB_UNITS = 4_000_000


def new_job_id() -> str:
    return secrets.token_hex(8)


@dataclass(frozen=True)
class JobSpec:
    """One queued unit of work.

    ``params`` carries the kind-specific knobs (see
    :mod:`repro.service.execute` for what each kind reads); everything
    else is queueing metadata.  Higher ``priority`` runs first; ties
    break by submission order.
    """

    kind: str
    job_id: str = field(default_factory=new_job_id)
    name: str = ""
    submitter: str = "anon"
    #: Higher runs first (0 = normal).
    priority: int = 0
    nranks: int = 2
    #: Machine-model preset for the virtual clock.
    machine: str = "compton"
    #: Wall-second execution budget for one attempt (0 = unlimited).
    #: The pool's deadline monitor kills the worker of an overrunning
    #: batch; see docs/service.md, "Timeouts and retries".
    timeout_seconds: float = 0.0
    #: Automatic re-admissions allowed after a timeout or worker death
    #: (clean in-job failures are never retried).
    max_retries: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"job kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if self.timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be >= 0, got {self.timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def work_units(self) -> int:
        """Rough size estimate: grid points times steps.

        Drives the small-job classification for batched admission; it
        only needs to be monotone in actual cost, not accurate.
        """
        n = int(self.param("n", 5))
        nel = int(self.param("nel", self.param("nelx", 8)))
        nsteps = int(self.param("nsteps", 4))
        return self.nranks * nel * n**3 * max(nsteps, 1)

    def is_small(self) -> bool:
        return self.work_units() <= SMALL_JOB_UNITS

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "JobSpec":
        return cls(
            kind=str(doc["kind"]),
            job_id=str(doc.get("job_id") or new_job_id()),
            name=str(doc.get("name", "")),
            submitter=str(doc.get("submitter", "anon")),
            priority=int(doc.get("priority", 0)),
            nranks=int(doc.get("nranks", 2)),
            machine=str(doc.get("machine", "compton")),
            timeout_seconds=float(doc.get("timeout_seconds", 0.0)),
            max_retries=int(doc.get("max_retries", 0)),
            params=dict(doc.get("params", {})),
        )


@dataclass
class JobResult:
    """Terminal record of one job."""

    job_id: str
    kind: str
    name: str = ""
    status: str = STATUS_DONE
    #: PID of the pool worker that ran the job (0 for cancelled jobs
    #: that never ran).
    worker_pid: int = 0
    #: Wall seconds the job spent executing inside the worker.
    exec_seconds: float = 0.0
    #: Wall seconds from submission to completion (set by the service;
    #: includes queue wait).  The campaign's p50/p99 gate on this.
    latency_seconds: float = 0.0
    #: Max-over-ranks virtual time of the job (deterministic).
    vtime_total: float = 0.0
    vtime_comm: float = 0.0
    #: Setup-artifact cache accounting for this job.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Subset of ``cache_hits`` served from the disk spill rather than
    #: the worker's memory (restart warm hits).
    cache_disk_hits: int = 0
    #: Re-admissions this job consumed before reaching this terminal
    #: result (set by the service's retry loop).
    retries: int = 0
    #: The attempt producing this result overran its per-job
    #: ``timeout_seconds`` and its worker was killed.
    timed_out: bool = False
    #: The attempt's worker died mid-batch (hard crash or kill).
    worker_died: bool = False
    #: The job was collateral: its worker died (or was timeout-killed)
    #: before the job's turn in the batch came up.  The service
    #: re-admits such jobs without charging their retry budget — a job
    #: that never ran has not consumed an attempt.
    never_started: bool = False
    #: Content digest of the physics output (bitwise-comparable with a
    #: standalone run of the same spec).
    digest: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_DONE

    @property
    def retryable(self) -> bool:
        """Did this attempt fail for a reason re-admission can fix?

        Timeouts and worker deaths are environmental; a clean in-job
        exception is deterministic and would just fail again.
        """
        return self.timed_out or self.worker_died

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "JobResult":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in dict(doc).items() if k in known})


def digest_arrays(parts) -> str:
    """blake2b over an iterable of bytes-like chunks (stable digest)."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
    return h.hexdigest()
