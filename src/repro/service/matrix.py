"""Scenario-matrix campaigns: grids of jobs with comparative reports.

The CMT-bone paper characterises the parent code by running workload
*matrices* — element size N crossed with rank count P crossed with
communication choices — not one-off jobs.  This module is the campaign
runner for such matrices (ROADMAP item 4c): a small JSON DSL describes
the grid, :func:`expand_matrix` turns it into concrete
:class:`~repro.service.jobs.JobSpec` objects, the jobs run through the
service (queue + persistent pool + artifact cache + timeout/retry
machinery), and :class:`MatrixReport` renders the results as a
comparative table with a winner per row.

The DSL (``repro.cli campaign --matrix grid.json``)::

    {
      "kind": "cmtbone",                  # or "sod"
      "base": {"n": 5, "nel": 8, "nsteps": 3},   # params every cell shares
      "axes": {                           # cross product, in this order
        "nranks": [2, 4],                 # special: JobSpec.nranks (P)
        "gs_method": ["pairwise", "crystal"],
        "fault_spec": [null, "degrade:factor=4"],
        "backend": ["threads"]
      },
      "compare": "gs_method",             # the columns of the report
      "machine": "compton",               # optional JobSpec knobs ...
      "timeout_seconds": 60.0,
      "max_retries": 1,
      "submitter": "matrix"
    }

Axis names are either the special keys ``nranks`` and ``machine``
(JobSpec metadata) or arbitrary param names (``n``, ``nel``,
``gs_method``, ``kernel_variant``, ``backend``, ``fault_spec``, ...)
that land in ``JobSpec.params``; ``null`` in an axis means "leave the
param unset" (e.g. a fault-free cell).  Every cell gets a
deterministic label like ``nranks=2/gs_method=pairwise/fault=-``.

Cells are *prioritized* by estimated size: smaller cells get higher
queue priority so they dispatch first, warm the artifact cache for
their bigger siblings, and fill the comparative table early.  The
report groups cells into rows by every axis except ``compare`` and
marks the winner of each row — the compare-axis value with the lowest
virtual time among the cells that completed.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .jobs import KINDS, JobResult, JobSpec

#: Axis names routed to JobSpec metadata instead of params.
SPECIAL_AXES = ("nranks", "machine")


def _fmt(value: Any) -> str:
    """Compact, label-safe rendering of one axis value."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class MatrixCell:
    """One point of the grid: its axis coordinates and its job."""

    #: Axis name -> value, in the matrix's axis order.
    coords: Dict[str, Any]
    spec: JobSpec

    @property
    def label(self) -> str:
        return "/".join(
            f"{k}={_fmt(v)}" for k, v in self.coords.items()
        )

    def row_key(self, compare: str) -> Tuple:
        """Coordinates of the report row this cell belongs to."""
        return tuple(
            (k, _fmt(v)) for k, v in self.coords.items() if k != compare
        )


@dataclass
class MatrixSpec:
    """Validated description of one scenario matrix (see module docs)."""

    kind: str
    axes: "Dict[str, List[Any]]"
    base: Dict[str, Any] = field(default_factory=dict)
    compare: str = ""
    machine: str = "compton"
    nranks: int = 2
    timeout_seconds: float = 0.0
    max_retries: int = 0
    submitter: str = "matrix"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"matrix kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not self.axes:
            raise ValueError("matrix needs at least one axis")
        for name, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"axis {name!r} must be a non-empty list, "
                    f"got {values!r}"
                )
        if not self.compare:
            self.compare = next(iter(self.axes))
        if self.compare not in self.axes:
            raise ValueError(
                f"compare axis {self.compare!r} is not one of the "
                f"axes {list(self.axes)}"
            )

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "MatrixSpec":
        """Build from a parsed ``--matrix`` JSON document."""
        unknown = set(doc) - {
            "kind", "axes", "base", "compare", "machine", "nranks",
            "timeout_seconds", "max_retries", "submitter",
        }
        if unknown:
            raise ValueError(
                f"unknown matrix keys {sorted(unknown)} (axes go "
                "under 'axes', shared params under 'base')"
            )
        if "axes" not in doc or not isinstance(doc["axes"], Mapping):
            raise ValueError("matrix needs an 'axes' object")
        return cls(
            kind=str(doc.get("kind", "cmtbone")),
            axes={str(k): list(v) for k, v in doc["axes"].items()},
            base=dict(doc.get("base", {})),
            compare=str(doc.get("compare", "")),
            machine=str(doc.get("machine", "compton")),
            nranks=int(doc.get("nranks", 2)),
            timeout_seconds=float(doc.get("timeout_seconds", 0.0)),
            max_retries=int(doc.get("max_retries", 0)),
            submitter=str(doc.get("submitter", "matrix")),
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(v) for v in self.axes.values())

    def ncells(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n


def expand_matrix(matrix: MatrixSpec) -> List[MatrixCell]:
    """Cross the axes into concrete cells (deterministic order).

    Cell order is the row-major product of the axes as given;
    priorities are assigned afterwards by estimated work so small
    cells dispatch first (the report itself is ordered by cell, not by
    priority, so output stays stable).
    """
    names = list(matrix.axes)
    cells: List[MatrixCell] = []
    for values in itertools.product(
        *(matrix.axes[n] for n in names)
    ):
        coords = dict(zip(names, values))
        params = dict(matrix.base)
        nranks = matrix.nranks
        machine = matrix.machine
        for name, value in coords.items():
            if name == "nranks":
                nranks = int(value)
            elif name == "machine":
                machine = str(value)
            elif value is None:
                params.pop(name, None)
            else:
                params[name] = value
        spec = JobSpec(
            kind=matrix.kind,
            name="/".join(f"{k}={_fmt(v)}" for k, v in coords.items()),
            submitter=matrix.submitter,
            nranks=nranks,
            machine=machine,
            timeout_seconds=matrix.timeout_seconds,
            max_retries=matrix.max_retries,
            params=params,
        )
        cells.append(MatrixCell(coords=coords, spec=spec))
    # Priority by size rank: smallest work units run first, warming
    # the artifact cache for their bigger siblings.  Equal sizes keep
    # submission (cell) order via the queue's FIFO tie-break.
    order = sorted(range(len(cells)),
                   key=lambda i: cells[i].spec.work_units())
    prioritized: List[Optional[MatrixCell]] = [None] * len(cells)
    for rank, i in enumerate(order):
        cell = cells[i]
        prioritized[i] = MatrixCell(
            coords=cell.coords,
            spec=dataclasses.replace(cell.spec,
                                     priority=len(cells) - rank),
        )
    return [c for c in prioritized if c is not None]


@dataclass
class MatrixReport:
    """Comparative results of one matrix campaign."""

    matrix: MatrixSpec
    cells: List[MatrixCell]
    results: List[JobResult]
    wall_seconds: float
    nworkers: int
    queue_stats: Dict[str, int] = field(default_factory=dict)

    # -- derived tables ------------------------------------------------

    def rows(self) -> "List[Tuple[Tuple, Dict[str, JobResult]]]":
        """Report rows: (row key, compare-value -> result)."""
        table: Dict[Tuple, Dict[str, JobResult]] = {}
        for cell, result in zip(self.cells, self.results):
            key = cell.row_key(self.matrix.compare)
            col = _fmt(cell.coords[self.matrix.compare])
            table.setdefault(key, {})[col] = result
        return list(table.items())

    @staticmethod
    def _winner(cols: Dict[str, JobResult]) -> Optional[str]:
        """Compare-axis value with the lowest vtime among done cells."""
        done = {c: r for c, r in cols.items() if r.ok}
        if not done:
            return None
        return min(done, key=lambda c: (done[c].vtime_total, c))

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if r.status == "failed"]

    def winners(self) -> Dict[Tuple, Optional[str]]:
        return {key: self._winner(cols) for key, cols in self.rows()}

    # -- rendering -----------------------------------------------------

    def summary(self) -> str:
        """Text report: one block per row, one line per cell."""
        m = self.matrix
        lines = [
            f"matrix: {m.kind}, {m.ncells()} cells "
            f"{'x'.join(str(e) for e in self.matrix.shape)} "
            f"(axes {', '.join(m.axes)}; compare {m.compare}) "
            f"on {self.nworkers} workers in {self.wall_seconds:.3f} s",
        ]
        for key, cols in self.rows():
            row_label = "/".join(f"{k}={v}" for k, v in key) or "(all)"
            winner = self._winner(cols)
            lines.append(f"  {row_label}:")
            for col in (_fmt(v) for v in m.axes[m.compare]):
                r = cols.get(col)
                if r is None:  # pragma: no cover - full grids only
                    continue
                if r.ok:
                    mark = " <- winner" if col == winner else ""
                    cache = ("disk-hit" if r.cache_disk_hits
                             else "hit" if r.cache_hits
                             else "miss" if r.cache_misses else "-")
                    lines.append(
                        f"    {m.compare}={col:<12s} "
                        f"vtime {r.vtime_total:.6g}s  "
                        f"digest {r.digest[:12]}  cache {cache:<8s} "
                        f"retries {r.retries}{mark}"
                    )
                else:
                    why = ("timeout" if r.timed_out
                           else "worker-died" if r.worker_died
                           else r.status)
                    lines.append(
                        f"    {m.compare}={col:<12s} {r.status} "
                        f"({why}, retries {r.retries})"
                    )
        n_done = sum(1 for r in self.results if r.ok)
        retries = sum(r.retries for r in self.results)
        lines.append(
            f"  cells: {n_done}/{len(self.results)} done, "
            f"{len(self.failed)} failed, {retries} retries; "
            f"queue: {self.queue_stats.get('timeouts', 0)} timeouts, "
            f"{self.queue_stats.get('readmitted', 0)} re-admissions"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        rows = []
        for key, cols in self.rows():
            rows.append({
                "row": dict(key),
                "winner": self._winner(cols),
                "cells": {col: r.to_json() for col, r in cols.items()},
            })
        return {
            "kind": self.matrix.kind,
            "axes": {k: list(v) for k, v in self.matrix.axes.items()},
            "compare": self.matrix.compare,
            "ncells": self.matrix.ncells(),
            "wall_seconds": self.wall_seconds,
            "nworkers": self.nworkers,
            "queue": dict(self.queue_stats),
            "rows": rows,
        }


def run_matrix(
    matrix: MatrixSpec,
    nworkers: int = 2,
    quota: Optional[int] = None,
    batch_max: Optional[int] = None,
    artifact_dir: Optional[str] = None,
) -> MatrixReport:
    """Expand a matrix and run every cell through a fresh service."""
    from .scheduler import DEFAULT_BATCH_MAX
    from .service import run_campaign

    cells = expand_matrix(matrix)
    t0 = time.perf_counter()
    report = run_campaign(
        [c.spec for c in cells],
        nworkers=nworkers,
        quota=quota,
        batch_max=batch_max if batch_max is not None else DEFAULT_BATCH_MAX,
        artifact_dir=artifact_dir,
    )
    return MatrixReport(
        matrix=matrix,
        cells=cells,
        results=report.results,
        wall_seconds=time.perf_counter() - t0,
        nworkers=nworkers,
        queue_stats=report.queue_stats,
    )
