"""Job-service layer: queue, persistent worker pool, artifact cache.

Turns the mini-app from a one-shot CLI into a long-lived service that
amortises per-job fixed costs (fork/import, ``gs_setup``, auto-tune)
across a campaign of jobs.  See ``docs/service.md``.
"""

from .artifacts import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    DiskArtifactStore,
    SetupArtifact,
    artifact_key,
)
from .execute import run_job, spec_artifact_key
from .jobs import (
    KINDS,
    SMALL_JOB_UNITS,
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_FAILED,
    JobResult,
    JobSpec,
    digest_arrays,
    new_job_id,
)
from .matrix import MatrixCell, MatrixReport, MatrixSpec, run_matrix
from .pool import PoolError, WorkerPool
from .scheduler import DEFAULT_BATCH_MAX, JobQueue, QueueStats
from .service import CampaignReport, Service, run_campaign

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CacheStats",
    "CampaignReport",
    "DEFAULT_BATCH_MAX",
    "DiskArtifactStore",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "KINDS",
    "MatrixCell",
    "MatrixReport",
    "MatrixSpec",
    "PoolError",
    "QueueStats",
    "SMALL_JOB_UNITS",
    "STATUS_CANCELLED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "Service",
    "SetupArtifact",
    "WorkerPool",
    "artifact_key",
    "digest_arrays",
    "new_job_id",
    "run_campaign",
    "run_job",
    "run_matrix",
    "spec_artifact_key",
]
