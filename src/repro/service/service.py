"""The job service: asyncio drive loop over queue + worker pool.

:class:`Service` owns a :class:`~repro.service.scheduler.JobQueue` and
a :class:`~repro.service.pool.WorkerPool` and moves jobs between them:
whenever a worker is idle and the queue has a dispatchable batch, the
batch goes out, and the (blocking) pipe collection runs in a thread
via ``loop.run_in_executor`` so the event loop stays free to accept
submissions and cancellations concurrently.

:func:`run_campaign` is the synchronous convenience wrapper: feed it a
list of specs, it brings a service up, drains the jobs, and returns a
:class:`CampaignReport` with throughput (jobs/sec) and latency
percentiles — the numbers the service benchmarks gate on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .jobs import JobResult, JobSpec
from .pool import WorkerPool
from .scheduler import DEFAULT_BATCH_MAX, JobQueue


class Service:
    """See module docstring.  Use as an async context manager."""

    def __init__(
        self,
        nworkers: int = 2,
        quota: Optional[int] = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        artifact_dir: Optional[str] = None,
    ) -> None:
        self.queue = JobQueue(quota=quota, batch_max=batch_max)
        self.pool = WorkerPool(nworkers=nworkers,
                               artifact_dir=artifact_dir)
        self._pump: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._closing = False
        self._inflight = 0

    # -- client API ----------------------------------------------------

    def submit(self, spec: JobSpec) -> "asyncio.Future[JobResult]":
        """Queue a job; resolves to its result (latency stamped)."""
        fut = self.queue.submit(spec, submitted_at=time.perf_counter())
        self._wake.set()
        return fut

    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    async def drain(self) -> None:
        """Wait until everything submitted so far has finished."""
        while (self.queue.pending_count() or self.queue.running_count()
               or self._inflight):
            self._wake.set()
            await asyncio.sleep(0.001)

    # -- drive loop ----------------------------------------------------

    async def _run_batch(self, index: int, entries) -> None:
        """Collect a batch already dispatched to worker ``index``.

        Retry policy lives here: a result the pool marked ``timed_out``
        or ``worker_died`` whose spec still has ``max_retries`` budget
        is re-admitted to the queue (same id/future/priority) instead
        of being finalised; everything else resolves its future with
        the retry count stamped on the result.
        """
        specs = [e.spec for e in entries]
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            results = await loop.run_in_executor(
                None, self.pool.collect, index, specs
            )
            now = time.perf_counter()
            by_id: Dict[str, JobResult] = {r.job_id: r for r in results}
            for entry in entries:
                result = by_id[entry.spec.job_id]
                if result.timed_out:
                    self.queue.stats.timeouts += 1
                if result.never_started:
                    # Collateral of a batchmate's timeout/crash: the
                    # job never ran, so re-admission is free.
                    self.queue.readmit(entry, charge=False)
                    continue
                if (result.retryable
                        and entry.retries < entry.spec.max_retries):
                    self.queue.readmit(entry)
                    continue
                result.retries = entry.retries
                if entry.submitted_at:
                    result.latency_seconds = now - entry.submitted_at
                self.queue.job_finished(entry.spec.job_id, result)
        finally:
            self._inflight -= 1
            self._wake.set()

    async def _drive(self) -> None:
        tasks: List[asyncio.Task] = []
        while not self._closing:
            await self._wake.wait()
            self._wake.clear()
            while self.queue.has_dispatchable():
                # pick_worker needs the batch, but popping the batch
                # marks its jobs dispatched — so check for an idle
                # worker first, then pop, then route.  The dispatch
                # itself happens HERE, synchronously, so the worker is
                # marked busy before the loop can pick it again.
                idle = self.pool.idle_workers()
                if not idle:
                    break
                batch = self.queue.next_batch()
                if not batch:
                    break
                specs = [e.spec for e in batch]
                index = self.pool.pick_worker(specs)
                if index is None:  # pragma: no cover - idle checked above
                    index = idle[0]
                self.pool.dispatch(index, specs)
                tasks.append(asyncio.ensure_future(
                    self._run_batch(index, batch)
                ))
            tasks = [t for t in tasks if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "Service":
        self._pump = asyncio.ensure_future(self._drive())
        return self

    async def close(self) -> None:
        await self.drain()
        self._closing = True
        self._wake.set()
        if self._pump is not None:
            await self._pump
        self.pool.close()

    async def __aenter__(self) -> "Service":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()


@dataclass
class CampaignReport:
    """Summary of one campaign run through the service."""

    results: List[JobResult]
    wall_seconds: float
    nworkers: int
    queue_stats: Dict[str, int] = field(default_factory=dict)
    worker_pids: List[int] = field(default_factory=list)

    @property
    def jobs_per_second(self) -> float:
        return len(self.results) / self.wall_seconds if (
            self.wall_seconds > 0) else 0.0

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.results)

    @property
    def cache_disk_hits(self) -> int:
        return sum(r.cache_disk_hits for r in self.results)

    @property
    def retries(self) -> int:
        """Total re-admissions consumed across the campaign."""
        return sum(r.retries for r in self.results)

    @property
    def timed_out(self) -> List[JobResult]:
        return [r for r in self.results if r.timed_out]

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over completed jobs (nearest-rank)."""
        lats = sorted(r.latency_seconds for r in self.results)
        if not lats:
            return 0.0
        rank = min(len(lats) - 1, max(0, int(q / 100.0 * len(lats))))
        return lats[rank]

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if r.status == "failed"]

    def summary(self) -> str:
        lines = [
            f"campaign: {len(self.results)} jobs on {self.nworkers} "
            f"workers in {self.wall_seconds:.3f} s "
            f"({self.jobs_per_second:.2f} jobs/s)",
            f"latency: p50 {self.p50 * 1e3:.1f} ms, "
            f"p99 {self.p99 * 1e3:.1f} ms",
            f"setup-artifact cache: {self.cache_hits} hits "
            f"({self.cache_disk_hits} from disk), "
            f"{self.cache_misses} misses",
        ]
        if self.retries or self.timed_out:
            lines.append(
                f"retries: {self.retries} re-admissions, "
                f"{len(self.timed_out)} jobs ended timed-out"
            )
        qs = self.queue_stats
        if qs:
            lines.append(
                f"queue: {qs.get('dispatched', 0)} dispatched, "
                f"{qs.get('batched_dispatches', 0)} batched, "
                f"{qs.get('cancelled', 0)} cancelled, "
                f"{qs.get('quota_deferrals', 0)} quota deferrals"
            )
        if self.failed:
            lines.append(f"FAILED: {len(self.failed)} jobs")
        return "\n".join(lines)


def run_campaign(
    specs: List[JobSpec],
    nworkers: int = 2,
    quota: Optional[int] = None,
    batch_max: int = DEFAULT_BATCH_MAX,
    artifact_dir: Optional[str] = None,
) -> CampaignReport:
    """Run a list of jobs through a fresh service; return the report.

    Results come back in submission order regardless of completion
    order, so reports are stable to compare across runs.
    """

    async def _campaign() -> CampaignReport:
        t0 = time.perf_counter()
        async with Service(
            nworkers=nworkers, quota=quota, batch_max=batch_max,
            artifact_dir=artifact_dir,
        ) as svc:
            futures = [svc.submit(spec) for spec in specs]
            results = list(await asyncio.gather(*futures))
            pids = svc.pool.worker_pids()
            stats = svc.queue.stats.snapshot()
        return CampaignReport(
            results=results,
            wall_seconds=time.perf_counter() - t0,
            nworkers=nworkers,
            queue_stats=stats,
            worker_pids=pids,
        )

    return asyncio.run(_campaign())
