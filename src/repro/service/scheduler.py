"""Priority job queue with quotas, cancellation, batched admission.

The queue is the policy half of the service (:mod:`repro.service.pool`
is the mechanism half).  It is designed for a single asyncio event
loop: ``submit`` returns an :class:`asyncio.Future` that resolves to
the job's :class:`~repro.service.jobs.JobResult`, and the service's
drive loop calls :meth:`next_batch` whenever a worker goes idle.

Policies implemented here:

* **Priority** — higher ``JobSpec.priority`` dispatches first; ties
  break in submission order (a stable monotone counter, so equal-
  priority jobs are FIFO).
* **Per-submitter quota** — at most ``quota`` jobs per submitter may
  be running at once; a submitter's excess jobs stay queued even while
  workers idle, so one noisy user cannot monopolise the pool.
* **Cancellation** — a queued job can be cancelled (its future
  resolves to a ``cancelled`` result immediately); a job already
  handed to a worker cannot be preempted and reports ``False``.
* **Batched admission** — *small* jobs (``JobSpec.is_small()``) are
  admitted in groups of up to ``batch_max`` per dispatch, amortising
  the per-dispatch pipe round-trip; a large job always travels alone.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .jobs import STATUS_CANCELLED, JobResult, JobSpec

#: Default cap on small jobs admitted per worker dispatch.
DEFAULT_BATCH_MAX = 4


@dataclass
class _QueuedJob:
    spec: JobSpec
    future: "asyncio.Future[JobResult]"
    #: Wall time (perf_counter) at submission, for latency accounting.
    submitted_at: float = 0.0
    dispatched: bool = False
    cancelled: bool = False
    #: Re-admissions consumed so far (timeout/worker-death retries).
    retries: int = 0


@dataclass
class QueueStats:
    submitted: int = 0
    dispatched: int = 0
    cancelled: int = 0
    #: Dispatches that carried more than one job.
    batched_dispatches: int = 0
    #: Times the quota held an otherwise-runnable job back.
    quota_deferrals: int = 0
    #: Jobs re-admitted after a timeout or worker death.
    readmitted: int = 0
    #: Attempts that overran their ``timeout_seconds`` (every attempt
    #: counts, including the final one that exhausts the retries).
    timeouts: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class JobQueue:
    """See module docstring.  Not thread-safe: one event loop only."""

    def __init__(
        self,
        quota: Optional[int] = None,
        batch_max: int = DEFAULT_BATCH_MAX,
    ) -> None:
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.quota = quota
        self.batch_max = batch_max
        #: (-priority, seq) heap of queued job ids.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._jobs: Dict[str, _QueuedJob] = {}
        #: Currently-running job count per submitter (quota bookkeeping;
        #: the service calls :meth:`job_finished` to decrement).
        self._running: Dict[str, int] = {}
        self.stats = QueueStats()

    # -- submission / cancellation ------------------------------------

    def submit(
        self, spec: JobSpec, submitted_at: float = 0.0
    ) -> "asyncio.Future[JobResult]":
        """Queue a job; the returned future resolves to its result.

        Must be called from within a running event loop: the future is
        created on (and must be awaited from) that loop.  Using
        ``get_running_loop`` rather than the deprecated
        ``get_event_loop`` keeps the failure mode on Python >= 3.12 an
        immediate, explicit error instead of a warning that becomes a
        new (wrong) implicit loop.
        """
        if spec.job_id in self._jobs:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError as exc:
            raise RuntimeError(
                "JobQueue.submit must be called from a running event "
                "loop (use asyncio.run / Service.submit from async "
                "code)"
            ) from exc
        entry = _QueuedJob(
            spec=spec,
            future=loop.create_future(),
            submitted_at=submitted_at,
        )
        self._jobs[spec.job_id] = entry
        heapq.heappush(self._heap, (-spec.priority, next(self._seq),
                                    spec.job_id))
        self.stats.submitted += 1
        return entry.future

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job.  Running/finished jobs return False."""
        entry = self._jobs.get(job_id)
        if entry is None or entry.dispatched or entry.cancelled:
            return False
        entry.cancelled = True
        self.stats.cancelled += 1
        del self._jobs[job_id]  # its heap entry is now stale and skipped
        if not entry.future.done():
            entry.future.set_result(JobResult(
                job_id=job_id,
                kind=entry.spec.kind,
                name=entry.spec.name,
                status=STATUS_CANCELLED,
            ))
        return True

    # -- admission ----------------------------------------------------

    def _under_quota(self, submitter: str) -> bool:
        if self.quota is None:
            return True
        return self._running.get(submitter, 0) < self.quota

    def next_batch(self) -> List[_QueuedJob]:
        """Pop the next dispatchable batch (possibly empty).

        Takes the highest-priority eligible job; if it is *small*,
        greedily extends the batch with further eligible small jobs (in
        priority order) up to ``batch_max``.  Each admitted job counts
        against its submitter's quota immediately.
        """
        batch: List[_QueuedJob] = []
        skipped: List[tuple] = []
        deferred = False
        while self._heap and len(batch) < self.batch_max:
            item = heapq.heappop(self._heap)
            entry = self._jobs.get(item[2])
            if entry is None or entry.cancelled or entry.dispatched:
                continue  # stale heap entry
            if not self._under_quota(entry.spec.submitter):
                skipped.append(item)
                deferred = True
                continue
            if batch and not entry.spec.is_small():
                # Large jobs travel alone; keep for the next dispatch.
                skipped.append(item)
                break
            batch.append(entry)
            entry.dispatched = True
            self._running[entry.spec.submitter] = (
                self._running.get(entry.spec.submitter, 0) + 1
            )
            self.stats.dispatched += 1
            if not entry.spec.is_small():
                break  # a large job never gets companions
        for item in skipped:
            heapq.heappush(self._heap, item)
        if deferred:
            self.stats.quota_deferrals += 1
        if len(batch) > 1:
            self.stats.batched_dispatches += 1
        return batch

    # -- re-admission -------------------------------------------------

    def readmit(self, entry: _QueuedJob, charge: bool = True) -> None:
        """Put a dispatched-but-unfinished job back in the queue.

        Used by the service when an attempt timed out or its worker
        died.  The job keeps its id, future, and priority but goes to
        the back of its priority class (a fresh sequence number) and
        releases its quota slot until it dispatches again.  With
        ``charge=False`` (a collateral job that never started) the
        job's retry budget is left untouched.
        """
        if entry.spec.job_id not in self._jobs or not entry.dispatched:
            raise ValueError(
                f"job {entry.spec.job_id!r} is not dispatched; "
                "only in-flight jobs can be re-admitted"
            )
        submitter = entry.spec.submitter
        if self._running.get(submitter):
            self._running[submitter] -= 1
            if not self._running[submitter]:
                del self._running[submitter]
        entry.dispatched = False
        if charge:
            entry.retries += 1
        self.stats.readmitted += 1
        heapq.heappush(self._heap, (-entry.spec.priority,
                                    next(self._seq), entry.spec.job_id))

    # -- completion ---------------------------------------------------

    def job_finished(self, job_id: str, result: JobResult) -> None:
        """Resolve a dispatched job's future and release its quota."""
        entry = self._jobs.pop(job_id, None)
        if entry is None:
            return
        submitter = entry.spec.submitter
        if entry.dispatched and self._running.get(submitter):
            self._running[submitter] -= 1
            if not self._running[submitter]:
                del self._running[submitter]
        if not entry.future.done():
            entry.future.set_result(result)

    # -- introspection ------------------------------------------------

    def pending_count(self) -> int:
        """Jobs queued but not yet dispatched or cancelled."""
        return sum(
            1 for e in self._jobs.values()
            if not e.dispatched and not e.cancelled
        )

    def has_dispatchable(self) -> bool:
        """True if any job is queued (it may still be quota-deferred:
        callers must treat an empty :meth:`next_batch` as the signal to
        wait, so deferrals get *counted* there rather than hidden
        here)."""
        return any(
            not e.dispatched and not e.cancelled
            for e in self._jobs.values()
        )

    def running_count(self) -> int:
        return sum(self._running.values())
