"""Content-addressed cache of expensive per-job setup artifacts.

The dominant fixed cost of every CMT-bone job is its setup: the
``gs_setup`` discovery (an all-to-all over the simulated MPI), the
three-way exchange-method auto-tune, and the GLL operator builds.  Two
jobs with the same ``(mesh, N, P, gs method, kernel variant)`` redo
exactly the same work and — because the virtual-time model is
deterministic — charge exactly the same virtual seconds for it.  This
module caches that work inside a persistent service worker so the
second job skips it.

Keys are content hashes (:func:`artifact_key`) of the setup-relevant
configuration, so any config change produces a different key — there
is no invalidation protocol to get wrong.

Correctness contract (what makes a cache hit *bitwise* invisible):

* A per-rank :class:`SetupArtifact` snapshots the gather-scatter
  handle's pure plan, the auto-tune result, and the **absolute** clock
  and profiler state at the end of setup, captured on a rank whose
  clock was at zero.  Restoring into a fresh job (clock also at zero)
  therefore reproduces the exact post-setup state a cold run would
  reach — no delta arithmetic, no floating-point re-accumulation.
* Entries are published atomically only once **every** rank of the job
  has stored its artifact (:meth:`ArtifactCache.store`), and the
  hit/miss decision is taken once per job by the executor — never
  per-rank — so ranks can't diverge on whether setup communication
  happens (a partial entry from a dead job can otherwise deadlock a
  later one).
* Hits are refused when the consuming rank's clock is not at zero or
  fault injection is active (the executor handles the latter).

Disk spill (:class:`DiskArtifactStore`): a cache constructed with a
spill directory additionally *publishes* every complete entry to disk
and *fetches* entries it does not hold in memory from disk, so warm
setup artifacts survive a service restart and are shared across all
pool workers of one host.  The on-disk protocol mirrors the kir
autotune cache (``repro.kir.autotune``): payloads are pickled to
per-entry blob files committed with tmp + ``os.replace``, and a small
``index.json`` is maintained with an advisory ``fcntl`` lock around a
read-merge-write cycle, so concurrent workers publishing different
keys interleave instead of clobbering each other (lost-update races
are *merged* and counted).  Only complete ``nranks`` entries are ever
published — a partial entry cannot exist on disk — and because
:meth:`SetupArtifact.apply` restores absolute state that pickle
round-trips exactly, a disk hit is as bitwise-invisible as a memory
hit (the advanced-clock refusal also survives the round trip
unchanged).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import tempfile
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

try:  # advisory file locking (POSIX); degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Schema version of the on-disk index.
DISK_VERSION = 1
INDEX_FILENAME = "index.json"


def artifact_key(
    mesh_shape: Tuple[int, ...],
    n: int,
    proc_shape: Tuple[int, ...],
    gs_method: Optional[str],
    kernel_variant: str,
) -> str:
    """Content hash of the setup-relevant configuration."""
    payload = repr((
        tuple(mesh_shape), int(n), tuple(proc_shape),
        gs_method or "auto", kernel_variant,
    ))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=12
    ).hexdigest()


def _clock_state(clock) -> Dict[str, float]:
    return {
        "now": clock.now,
        "compute_time": clock.compute_time,
        "comm_time": clock.comm_time,
        "hidden_comm_time": clock.hidden_comm_time,
        "retry_time": clock.retry_time,
    }


def _restore_clock(clock, state: Dict[str, float]) -> None:
    clock.now = state["now"]
    clock.compute_time = state["compute_time"]
    clock.comm_time = state["comm_time"]
    clock.hidden_comm_time = state["hidden_comm_time"]
    clock.retry_time = state["retry_time"]


@dataclass
class SetupArtifact:
    """One rank's share of a cached setup (see module docstring)."""

    #: The rank's :class:`~repro.gs.handle.GSHandle` with its ``comm``
    #: stripped — the plan arrays are a pure function of the numbering,
    #: so rebinding to a new job's communicator is sound.
    handle: object
    #: Exchange method stamped on the handle after auto-tune/override.
    method: str
    #: Auto-tune table (``None`` when the method was forced).
    autotune: Optional[dict]
    #: Absolute clock state at end of setup (captured from zero).
    clock_state: Dict[str, float] = field(default_factory=dict)
    #: mpiP-style profile records at end of setup.
    profile_records: dict = field(default_factory=dict)
    profile_mpi_time: float = 0.0
    #: Call-graph profiler region stats/edges covering setup.
    region_stats: dict = field(default_factory=dict)
    region_edges: dict = field(default_factory=dict)

    @classmethod
    def capture(cls, bone, comm) -> "SetupArtifact":
        """Snapshot a rank's post-setup state (cold path, clock-from-zero).

        ``bone`` is the :class:`~repro.core.cmtbone.CMTBone` instance
        that just finished its setup region.
        """
        handle = copy.copy(bone.handle)
        handle.comm = None
        handle.setup_stats = dict(bone.handle.setup_stats)
        return cls(
            handle=handle,
            method=bone.handle.method or "pairwise",
            autotune=(
                dict(bone.autotune) if bone.autotune is not None else None
            ),
            clock_state=_clock_state(comm.clock),
            profile_records=copy.deepcopy(comm.profile.records),
            profile_mpi_time=comm.profile.mpi_time,
            region_stats=copy.deepcopy(bone.profiler.stats),
            region_edges=dict(bone.profiler.edges),
        )

    def apply(self, bone, comm) -> None:
        """Restore this rank's post-setup state into a fresh job.

        Refuses to restore onto a clock that has already advanced —
        absolute-state restore is only exact from zero.
        """
        if comm.clock.now != 0.0 or comm.profile.records:
            raise RuntimeError(
                "setup artifacts restore absolute state and require a "
                "fresh rank (clock at zero, empty profile)"
            )
        handle = copy.copy(self.handle)
        handle.comm = comm
        handle.setup_stats = dict(self.handle.setup_stats)
        handle.method = self.method
        bone.handle = handle
        bone.autotune = (
            dict(self.autotune) if self.autotune is not None else None
        )
        _restore_clock(comm.clock, self.clock_state)
        comm.profile.records = copy.deepcopy(self.profile_records)
        comm.profile.mpi_time = self.profile_mpi_time
        bone.profiler.stats = copy.deepcopy(self.region_stats)
        bone.profiler.edges = dict(self.region_edges)


@dataclass
class CacheEntry:
    """A published (complete) cache entry: one artifact per rank."""

    nranks: int
    ranks: Dict[int, SetupArtifact]
    method: str

    def artifact_for(self, rank: int) -> SetupArtifact:
        return self.ranks[rank]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Subset of ``hits`` that were served from the disk spill (the
    #: entry was not in this worker's memory).
    disk_hits: int = 0
    #: Complete entries this cache published to the disk spill.
    disk_stores: int = 0
    #: Publish cycles whose index merge found (and kept) keys written
    #: concurrently by another worker — survived lost-update races.
    races_merged: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


def _host_dirname() -> str:
    """Filesystem-safe per-host spill subdirectory name."""
    from ..autotune import host_fingerprint

    fp = host_fingerprint()
    safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in fp)
    return f"{safe}-{hashlib.blake2b(fp.encode(), digest_size=4).hexdigest()}"


class DiskArtifactStore:
    """Per-host on-disk spill of complete artifact-cache entries.

    Layout under ``root`` (one subdirectory per host fingerprint, so a
    shared filesystem never mixes machines)::

        <root>/<host>/index.json        {"version": 1, "entries":
                                         {key: {"nranks", "method", "blob"}}}
        <root>/<host>/<key>-r<N>.pkl    pickled CacheEntry

    Blobs are committed first (tmp + ``os.replace``), then the index is
    updated under an advisory ``<index>.lock`` with a read-merge-write
    cycle — the same protocol as the kir autotune cache — so the index
    never references a missing blob and concurrent publishers of
    different keys never lose each other's entries.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self.host_dir = os.path.join(self.root, _host_dirname())
        self._index_path = os.path.join(self.host_dir, INDEX_FILENAME)
        #: Keys this process last observed in the index; a publish that
        #: finds keys beyond these was raced by a concurrent writer
        #: (``None`` until the first read — nothing to compare against).
        self._known: Optional[frozenset] = None

    # -- index maintenance --------------------------------------------

    @contextmanager
    def _lock(self):
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        os.makedirs(self.host_dir, exist_ok=True)
        with open(self._index_path + ".lock", "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _load_index(self) -> Dict[str, dict]:
        """Entry table; a missing/corrupt/stale index degrades to {}."""
        try:
            with open(self._index_path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"artifact index {self._index_path!r} unreadable "
                f"({exc}); treating the disk cache as cold",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        if (not isinstance(data, dict)
                or data.get("version") != DISK_VERSION):
            warnings.warn(
                f"artifact index {self._index_path!r} has unsupported "
                "layout; treating the disk cache as cold",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _save_index(self, entries: Dict[str, dict]) -> None:
        os.makedirs(self.host_dir, exist_ok=True)
        payload = {"version": DISK_VERSION, "entries": entries}
        fd, tmp = tempfile.mkstemp(
            prefix=INDEX_FILENAME + ".", dir=self.host_dir
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self._index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- publish / fetch ----------------------------------------------

    def _blob_name(self, key: str, nranks: int) -> str:
        return f"{key}-r{nranks}.pkl"

    def publish(self, key: str, entry: "CacheEntry",
                stats: Optional[CacheStats] = None) -> None:
        """Spill one *complete* entry (blob first, then index merge)."""
        if len(entry.ranks) != entry.nranks:
            raise ValueError(
                f"refusing to publish a partial entry for {key!r}: "
                f"{len(entry.ranks)}/{entry.nranks} ranks"
            )
        os.makedirs(self.host_dir, exist_ok=True)
        blob = self._blob_name(key, entry.nranks)
        fd, tmp = tempfile.mkstemp(prefix=blob + ".", dir=self.host_dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, os.path.join(self.host_dir, blob))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock():
            entries = self._load_index()
            if (stats is not None and self._known is not None
                    and any(k != key and k not in self._known
                            for k in entries)):
                stats.races_merged += 1
            entries[key] = {
                "nranks": entry.nranks,
                "method": entry.method,
                "blob": blob,
            }
            self._save_index(entries)
            self._known = frozenset(entries)

    def fetch(self, key: str, nranks: int) -> Optional["CacheEntry"]:
        """Load a complete entry from disk, or None (never raises)."""
        entries = self._load_index()
        self._known = frozenset(entries)
        meta = entries.get(key)
        if not isinstance(meta, dict) or meta.get("nranks") != nranks:
            return None
        path = os.path.join(self.host_dir, str(meta.get("blob", "")))
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError) as exc:
            warnings.warn(
                f"artifact blob {path!r} unreadable ({exc}); "
                "treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if (not isinstance(entry, CacheEntry)
                or entry.nranks != nranks
                or len(entry.ranks) != entry.nranks):
            return None
        return entry

    def keys(self):
        return sorted(self._load_index())


class ArtifactCache:
    """Artifact store for one persistent service worker.

    Complete entries live in ``_entries``; in-progress per-rank stores
    accumulate in ``_pending`` and are published atomically once all
    ``nranks`` shares arrive.  A lookup never sees a partial entry, so
    the executor's once-per-job hit/miss decision is safe.

    With ``disk`` set (a directory path or a
    :class:`DiskArtifactStore`), complete entries are additionally
    spilled to disk on publish, and a memory miss consults the disk
    spill before reporting a miss — so entries survive restarts and
    are shared across every worker of the host.
    """

    def __init__(
        self,
        disk: Optional[Union[str, os.PathLike, DiskArtifactStore]] = None,
    ) -> None:
        self._entries: Dict[str, CacheEntry] = {}
        self._pending: Dict[str, Dict[int, SetupArtifact]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        if disk is None or isinstance(disk, DiskArtifactStore):
            self.disk = disk
        else:
            self.disk = DiskArtifactStore(disk)

    def lookup(self, key: str, nranks: int) -> Optional[CacheEntry]:
        """Complete entry for ``key`` (counted as hit), or None (miss).

        Checks memory first, then the disk spill; a disk hit is
        installed into memory (and counted in ``disk_hits``) so later
        lookups and the affinity router see it as warm.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.nranks == nranks:
                self.stats.hits += 1
                return entry
            if self.disk is not None:
                entry = self.disk.fetch(key, nranks)
                if entry is not None:
                    self._entries[key] = entry
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return entry
            self.stats.misses += 1
            return None

    def store(self, key: str, rank: int, artifact: SetupArtifact,
              nranks: int) -> None:
        """Add one rank's artifact; publish once all ranks are in."""
        with self._lock:
            if key in self._entries:
                return
            pending = self._pending.setdefault(key, {})
            pending[rank] = artifact
            self.stats.stores += 1
            if len(pending) == nranks:
                entry = CacheEntry(
                    nranks=nranks,
                    ranks=self._pending.pop(key),
                    method=artifact.method,
                )
                self._entries[key] = entry
                if self.disk is not None:
                    try:
                        self.disk.publish(key, entry, stats=self.stats)
                        self.stats.disk_stores += 1
                    except OSError as exc:
                        warnings.warn(
                            f"could not spill artifact {key!r} to "
                            f"{self.disk.host_dir!r}: {exc}",
                            RuntimeWarning,
                            stacklevel=2,
                        )

    def keys(self):
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
