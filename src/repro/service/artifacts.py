"""Content-addressed cache of expensive per-job setup artifacts.

The dominant fixed cost of every CMT-bone job is its setup: the
``gs_setup`` discovery (an all-to-all over the simulated MPI), the
three-way exchange-method auto-tune, and the GLL operator builds.  Two
jobs with the same ``(mesh, N, P, gs method, kernel variant)`` redo
exactly the same work and — because the virtual-time model is
deterministic — charge exactly the same virtual seconds for it.  This
module caches that work inside a persistent service worker so the
second job skips it.

Keys are content hashes (:func:`artifact_key`) of the setup-relevant
configuration, so any config change produces a different key — there
is no invalidation protocol to get wrong.

Correctness contract (what makes a cache hit *bitwise* invisible):

* A per-rank :class:`SetupArtifact` snapshots the gather-scatter
  handle's pure plan, the auto-tune result, and the **absolute** clock
  and profiler state at the end of setup, captured on a rank whose
  clock was at zero.  Restoring into a fresh job (clock also at zero)
  therefore reproduces the exact post-setup state a cold run would
  reach — no delta arithmetic, no floating-point re-accumulation.
* Entries are published atomically only once **every** rank of the job
  has stored its artifact (:meth:`ArtifactCache.store`), and the
  hit/miss decision is taken once per job by the executor — never
  per-rank — so ranks can't diverge on whether setup communication
  happens (a partial entry from a dead job can otherwise deadlock a
  later one).
* Hits are refused when the consuming rank's clock is not at zero or
  fault injection is active (the executor handles the latter).
"""

from __future__ import annotations

import copy
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


def artifact_key(
    mesh_shape: Tuple[int, ...],
    n: int,
    proc_shape: Tuple[int, ...],
    gs_method: Optional[str],
    kernel_variant: str,
) -> str:
    """Content hash of the setup-relevant configuration."""
    payload = repr((
        tuple(mesh_shape), int(n), tuple(proc_shape),
        gs_method or "auto", kernel_variant,
    ))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=12
    ).hexdigest()


def _clock_state(clock) -> Dict[str, float]:
    return {
        "now": clock.now,
        "compute_time": clock.compute_time,
        "comm_time": clock.comm_time,
        "hidden_comm_time": clock.hidden_comm_time,
        "retry_time": clock.retry_time,
    }


def _restore_clock(clock, state: Dict[str, float]) -> None:
    clock.now = state["now"]
    clock.compute_time = state["compute_time"]
    clock.comm_time = state["comm_time"]
    clock.hidden_comm_time = state["hidden_comm_time"]
    clock.retry_time = state["retry_time"]


@dataclass
class SetupArtifact:
    """One rank's share of a cached setup (see module docstring)."""

    #: The rank's :class:`~repro.gs.handle.GSHandle` with its ``comm``
    #: stripped — the plan arrays are a pure function of the numbering,
    #: so rebinding to a new job's communicator is sound.
    handle: object
    #: Exchange method stamped on the handle after auto-tune/override.
    method: str
    #: Auto-tune table (``None`` when the method was forced).
    autotune: Optional[dict]
    #: Absolute clock state at end of setup (captured from zero).
    clock_state: Dict[str, float] = field(default_factory=dict)
    #: mpiP-style profile records at end of setup.
    profile_records: dict = field(default_factory=dict)
    profile_mpi_time: float = 0.0
    #: Call-graph profiler region stats/edges covering setup.
    region_stats: dict = field(default_factory=dict)
    region_edges: dict = field(default_factory=dict)

    @classmethod
    def capture(cls, bone, comm) -> "SetupArtifact":
        """Snapshot a rank's post-setup state (cold path, clock-from-zero).

        ``bone`` is the :class:`~repro.core.cmtbone.CMTBone` instance
        that just finished its setup region.
        """
        handle = copy.copy(bone.handle)
        handle.comm = None
        handle.setup_stats = dict(bone.handle.setup_stats)
        return cls(
            handle=handle,
            method=bone.handle.method or "pairwise",
            autotune=(
                dict(bone.autotune) if bone.autotune is not None else None
            ),
            clock_state=_clock_state(comm.clock),
            profile_records=copy.deepcopy(comm.profile.records),
            profile_mpi_time=comm.profile.mpi_time,
            region_stats=copy.deepcopy(bone.profiler.stats),
            region_edges=dict(bone.profiler.edges),
        )

    def apply(self, bone, comm) -> None:
        """Restore this rank's post-setup state into a fresh job.

        Refuses to restore onto a clock that has already advanced —
        absolute-state restore is only exact from zero.
        """
        if comm.clock.now != 0.0 or comm.profile.records:
            raise RuntimeError(
                "setup artifacts restore absolute state and require a "
                "fresh rank (clock at zero, empty profile)"
            )
        handle = copy.copy(self.handle)
        handle.comm = comm
        handle.setup_stats = dict(self.handle.setup_stats)
        handle.method = self.method
        bone.handle = handle
        bone.autotune = (
            dict(self.autotune) if self.autotune is not None else None
        )
        _restore_clock(comm.clock, self.clock_state)
        comm.profile.records = copy.deepcopy(self.profile_records)
        comm.profile.mpi_time = self.profile_mpi_time
        bone.profiler.stats = copy.deepcopy(self.region_stats)
        bone.profiler.edges = dict(self.region_edges)


@dataclass
class CacheEntry:
    """A published (complete) cache entry: one artifact per rank."""

    nranks: int
    ranks: Dict[int, SetupArtifact]
    method: str

    def artifact_for(self, rank: int) -> SetupArtifact:
        return self.ranks[rank]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses, "stores": self.stores
        }


class ArtifactCache:
    """In-memory artifact store for one persistent service worker.

    Complete entries live in ``_entries``; in-progress per-rank stores
    accumulate in ``_pending`` and are published atomically once all
    ``nranks`` shares arrive.  A lookup never sees a partial entry, so
    the executor's once-per-job hit/miss decision is safe.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CacheEntry] = {}
        self._pending: Dict[str, Dict[int, SetupArtifact]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def lookup(self, key: str, nranks: int) -> Optional[CacheEntry]:
        """Complete entry for ``key`` (counted as hit), or None (miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.nranks == nranks:
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            return None

    def store(self, key: str, rank: int, artifact: SetupArtifact,
              nranks: int) -> None:
        """Add one rank's artifact; publish once all ranks are in."""
        with self._lock:
            if key in self._entries:
                return
            pending = self._pending.setdefault(key, {})
            pending[rank] = artifact
            self.stats.stores += 1
            if len(pending) == nranks:
                self._entries[key] = CacheEntry(
                    nranks=nranks,
                    ranks=self._pending.pop(key),
                    method=artifact.method,
                )

    def keys(self):
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
