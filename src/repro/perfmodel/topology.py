"""Interconnect topologies: hop counts between ranks.

The paper's communication study (Section VI) motivates "appropriate
latency and bandwidth models for the machines"; message latency in a
real cluster depends on how many switch/link hops separate two ranks.
This module provides hop-count models for the three shapes that matter
for Nek-family codes:

* :class:`FlatTopology` — every pair one hop (a single crossbar); the
  simplest useful model.
* :class:`FatTreeTopology` — ranks packed ``ranks_per_node`` to a node,
  nodes packed ``nodes_per_switch`` to a leaf switch, leaf switches
  joined by a core level.  Matches Compton (42 dual-socket nodes on
  Mellanox Infiniscale IV QDR).
* :class:`TorusTopology` — a 3-D torus with dimension-ordered routing,
  the BG/Q-style network Nek5000 scaling studies ran on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


class Topology:
    """Base class: maps a pair of world ranks to a hop count."""

    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def hops_batch(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hops` over aligned rank arrays.

        The base implementation loops over the scalar method; concrete
        topologies override it with pure-numpy arithmetic that produces
        exactly the same integers.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        flat_s, flat_d = np.broadcast_arrays(src, dst)
        out = np.fromiter(
            (
                self.hops(int(s), int(d))
                for s, d in zip(flat_s.ravel(), flat_d.ravel())
            ),
            dtype=np.int64,
            count=flat_s.size,
        )
        return out.reshape(flat_s.shape)

    def max_hops(self) -> int:
        """Upper bound on :meth:`hops`; used in cost summaries."""
        raise NotImplementedError


@dataclass(frozen=True)
class FlatTopology(Topology):
    """Uniform network: one hop between any two distinct ranks."""

    def hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def hops_batch(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        return np.where(src == dst, 0, 1).astype(np.int64)

    def max_hops(self) -> int:
        return 1


@dataclass(frozen=True)
class FatTreeTopology(Topology):
    """Two-level fat tree.

    Hop counts: 0 within a rank (self), 1 within a node (shared
    memory), 2 within a leaf switch, 4 across the core level.
    """

    ranks_per_node: int = 16
    nodes_per_switch: int = 18

    def __post_init__(self) -> None:
        if self.ranks_per_node < 1 or self.nodes_per_switch < 1:
            raise ValueError("fat-tree parameters must be >= 1")

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        node_s, node_d = src // self.ranks_per_node, dst // self.ranks_per_node
        if node_s == node_d:
            return 1
        sw_s = node_s // self.nodes_per_switch
        sw_d = node_d // self.nodes_per_switch
        return 2 if sw_s == sw_d else 4

    def hops_batch(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        node_s = src // self.ranks_per_node
        node_d = dst // self.ranks_per_node
        sw_s = node_s // self.nodes_per_switch
        sw_d = node_d // self.nodes_per_switch
        out = np.where(sw_s == sw_d, 2, 4)
        out = np.where(node_s == node_d, 1, out)
        out = np.where(src == dst, 0, out)
        return out.astype(np.int64)

    def max_hops(self) -> int:
        return 4

    def same_node(self, src: int, dst: int) -> bool:
        """True when both ranks live on the same physical node."""
        return src // self.ranks_per_node == dst // self.ranks_per_node

    def same_node_batch(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`same_node` over aligned rank arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        return src // self.ranks_per_node == dst // self.ranks_per_node


@dataclass(frozen=True)
class TorusTopology(Topology):
    """3-D torus with dimension-ordered (Manhattan, wrap-around) routing.

    Ranks are laid out lexicographically on ``shape = (px, py, pz)``
    with x fastest, matching :mod:`repro.mesh.partition`.
    """

    shape: Tuple[int, int, int] = (8, 8, 4)

    def __post_init__(self) -> None:
        if any(s < 1 for s in self.shape):
            raise ValueError(f"bad torus shape {self.shape}")

    @property
    def nranks(self) -> int:
        px, py, pz = self.shape
        return px * py * pz

    def coords(self, rank: int) -> Tuple[int, int, int]:
        """Rank -> (x, y, z) coordinates, x fastest."""
        px, py, pz = self.shape
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} outside torus {self.shape}")
        return rank % px, (rank // px) % py, rank // (px * py)

    @staticmethod
    def _ring_dist(a: int, b: int, n: int) -> int:
        d = abs(a - b)
        return min(d, n - d)

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        cs, cd = self.coords(src), self.coords(dst)
        return sum(
            self._ring_dist(a, b, n) for a, b, n in zip(cs, cd, self.shape)
        )

    def hops_batch(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        px, py, pz = self.shape
        if src.size and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= self.nranks
            or dst.max() >= self.nranks
        ):
            raise ValueError(f"rank outside torus {self.shape}")
        total = np.zeros(np.broadcast(src, dst).shape, dtype=np.int64)
        for a, b, n in (
            (src % px, dst % px, px),
            ((src // px) % py, (dst // px) % py, py),
            (src // (px * py), dst // (px * py), pz),
        ):
            d = np.abs(a - b)
            total = total + np.minimum(d, n - d)
        return total

    def max_hops(self) -> int:
        return sum(n // 2 for n in self.shape)


def mean_hops(topo: Topology, ranks: Sequence[int]) -> float:
    """Average pairwise hop count over a set of ranks (diagnostics)."""
    ranks = list(ranks)
    if len(ranks) < 2:
        return 0.0
    total = 0
    count = 0
    for i, a in enumerate(ranks):
        for b in ranks[i + 1 :]:
            total += topo.hops(a, b)
            count += 1
    return total / count
