"""Machine (node + network) models and presets for the paper's systems.

The compute side is a two-parameter roofline: a kernel that executes
``flops`` floating-point operations while moving ``mem_bytes`` to/from
memory takes::

    max(flops / (peak_flops * efficiency), mem_bytes / mem_bandwidth)

seconds.  ``efficiency`` is supplied per kernel *variant* (the paper's
loop-fusion study is exactly a study of how much of peak a variant
reaches), the rest are machine constants.

Presets model the three platforms named in the paper:

* ``"compton"`` — the Sandia ASC testbed used for Fig. 7: 42 nodes of
  dual 8-core Sandy Bridge Xeon E5-2670 (2.6 GHz) with Mellanox
  Infiniscale IV QDR Infiniband.
* ``"opteron6378"`` — the AMD Opteron 6378 (2.4 GHz) node used for the
  derivative-kernel PAPI study (Figs. 5-6).
* ``"i5-2500"`` — the 4-core 3.3 GHz desktop used for the gprof profile
  (Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .network import NetworkModel
from .topology import FatTreeTopology, FlatTopology


@dataclass(frozen=True)
class CpuModel:
    """Single-core compute roofline parameters."""

    #: Core clock in Hz.
    ghz: float = 2.6e9
    #: Peak double-precision flops/cycle/core (SIMD width x FMA).
    flops_per_cycle: float = 8.0
    #: Achievable memory bandwidth per core, bytes/s.
    mem_bandwidth: float = 8.0e9
    #: L1 data cache size in bytes (used by the cache-miss estimator).
    l1_dcache: int = 32 * 1024
    #: Cache line size in bytes.
    cache_line: int = 64

    def __post_init__(self) -> None:
        if self.ghz <= 0 or self.flops_per_cycle <= 0:
            raise ValueError("cpu rates must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak flops/s for one core."""
        return self.ghz * self.flops_per_cycle


@dataclass(frozen=True)
class MachineModel:
    """A named machine: CPU roofline + network model.

    ``wall_scale`` converts measured wall seconds into virtual seconds
    under :data:`repro.mpi.TimePolicy.MEASURED` (1.0 = take numpy's
    wall time at face value).
    """

    name: str = "generic"
    cpu: CpuModel = field(default_factory=CpuModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    wall_scale: float = 1.0
    #: Fixed per-rank cost of opening/committing one checkpoint file
    #: (parallel-filesystem metadata + fsync), virtual seconds.
    io_latency: float = 5.0e-4
    #: Sustained per-rank checkpoint I/O bandwidth, bytes/s.
    io_bandwidth: float = 2.0e9
    #: Fixed cost of relaunching the job after a crash (scheduler +
    #: startup), charged once per recovery restart, virtual seconds.
    restart_latency: float = 0.5

    # -- compute pricing -------------------------------------------------

    def compute_seconds(
        self,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
        efficiency: float = 1.0,
    ) -> float:
        """Roofline time for a kernel: compute-bound vs memory-bound."""
        if not (0.0 < efficiency <= 1.0):
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        t_flops = flops / (self.cpu.peak_flops * efficiency)
        t_mem = mem_bytes / self.cpu.mem_bandwidth
        return max(t_flops, t_mem)

    def with_network(self, network: NetworkModel) -> "MachineModel":
        """Copy of this machine with a different network model."""
        return replace(self, network=network)

    # -- checkpoint / resilience pricing ---------------------------------

    def checkpoint_seconds(self, nbytes: float) -> float:
        """Virtual seconds for one rank to write ``nbytes`` of state."""
        if nbytes < 0:
            raise ValueError(f"negative checkpoint size: {nbytes}")
        return self.io_latency + nbytes / self.io_bandwidth

    @staticmethod
    def young_daly_interval(
        checkpoint_seconds: float, mtbf_seconds: float
    ) -> float:
        """Young/Daly first-order optimal checkpoint interval.

        For checkpoint cost ``C`` and per-job mean time between
        failures ``M``, the compute time between checkpoints that
        minimizes expected total runtime is approximately::

            tau_opt = sqrt(2 * C * M) - C        (Young 1974, Daly 2006)

        Clamped below at ``C`` — checkpointing more often than the
        checkpoint itself takes can never win.  Validated empirically
        by ``benchmarks/bench_fault_ablation.py``.
        """
        if checkpoint_seconds <= 0 or mtbf_seconds <= 0:
            raise ValueError("checkpoint cost and MTBF must be positive")
        tau = math.sqrt(2.0 * checkpoint_seconds * mtbf_seconds)
        return max(tau - checkpoint_seconds, checkpoint_seconds)

    # -- overlap pricing -------------------------------------------------

    @staticmethod
    def exposed_comm_seconds(
        comm_seconds: float, overlap_compute_seconds: float
    ) -> float:
        """Communication left *exposed* after overlapping with compute.

        A split-phase exchange of duration ``comm_seconds`` posted
        before ``overlap_compute_seconds`` of independent compute costs
        only ``max(comm - compute, 0)`` of extra wall time; the rest is
        hidden under the compute.  This is the analytic counterpart of
        what the virtual clock measures per message (see
        ``VirtualClock.close_overlap``).
        """
        return max(comm_seconds - overlap_compute_seconds, 0.0)

    @staticmethod
    def overlapped_interval_seconds(
        compute_seconds: float, comm_seconds: float
    ) -> float:
        """Duration of one overlapped interval: compute + exposed comm.

        Equals ``max(compute, comm)`` — the classic overlap bound —
        rather than the blocking schedule's ``compute + comm``.
        """
        return compute_seconds + MachineModel.exposed_comm_seconds(
            comm_seconds, compute_seconds
        )

    # -- presets -----------------------------------------------------------

    @staticmethod
    def default() -> "MachineModel":
        return MachineModel.preset("compton")

    @staticmethod
    def preset(name: str) -> "MachineModel":
        """Build one of the named machine presets (see module docs)."""
        key = name.lower().replace("_", "-")
        try:
            return _PRESETS[key]()
        except KeyError:
            raise ValueError(
                f"unknown machine preset {name!r}; "
                f"available: {sorted(_PRESETS)}"
            ) from None

    @staticmethod
    def available_presets() -> list:
        return sorted(_PRESETS)


def _compton() -> MachineModel:
    """Sandia Compton: 2x E5-2670 / node, Mellanox QDR IB."""
    return MachineModel(
        name="compton",
        cpu=CpuModel(
            ghz=2.6e9,
            flops_per_cycle=8.0,  # AVX: 4 dp lanes x (add+mul)
            mem_bandwidth=6.4e9,  # ~51 GB/s per socket / 8 cores
            l1_dcache=32 * 1024,
        ),
        network=NetworkModel(
            latency=1.3e-6,  # QDR IB MPI latency
            hop_latency=0.1e-6,
            bandwidth=3.2e9,  # ~32 Gb/s effective
            # Per-message CPU overhead: MPI stack + gs-library
            # per-message bookkeeping (2015-era).  Calibrated so the
            # Fig. 7 magnitudes land near the paper's measurements.
            o_send=2.5e-6,
            o_recv=2.5e-6,
            g_inject=1.0e-11,
            shm_latency=0.3e-6,
            shm_bandwidth=8.0e9,
            topology=FatTreeTopology(ranks_per_node=16, nodes_per_switch=18),
        ),
    )


def _opteron6378() -> MachineModel:
    """AMD Opteron 6378 "Piledriver", 2.4 GHz, 48 KB L1d (Figs. 5-6)."""
    return MachineModel(
        name="opteron6378",
        cpu=CpuModel(
            ghz=2.4e9,
            flops_per_cycle=8.0,  # shared FMA pipe per module
            mem_bandwidth=5.0e9,
            l1_dcache=48 * 1024,  # 48 KB L1d, as stated in the paper
        ),
        network=NetworkModel(topology=FlatTopology()),
    )


def _i5_2500() -> MachineModel:
    """Intel i5-2500 desktop, 3.3 GHz (Fig. 4's gprof host)."""
    return MachineModel(
        name="i5-2500",
        cpu=CpuModel(
            ghz=3.3e9,
            flops_per_cycle=8.0,
            mem_bandwidth=5.0e9,
            l1_dcache=32 * 1024,
        ),
        network=NetworkModel(
            # All 8 MPI processes share one desktop: shared-memory only.
            latency=0.5e-6,
            bandwidth=6.0e9,
            shm_latency=0.3e-6,
            shm_bandwidth=6.0e9,
            o_send=0.3e-6,
            o_recv=0.3e-6,
            topology=FatTreeTopology(ranks_per_node=8, nodes_per_switch=1),
        ),
    )


def _generic() -> MachineModel:
    return MachineModel(name="generic")


_PRESETS = {
    "compton": _compton,
    "opteron6378": _opteron6378,
    "i5-2500": _i5_2500,
    "generic": _generic,
}
