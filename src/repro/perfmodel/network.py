"""LogGP-style network cost model.

Message timing in the simulated runtime decomposes, as in the LogGP
family of models, into:

* ``send_overhead`` — CPU time the sender burns to inject a message
  (the *o* parameter, plus a per-byte injection gap ``G_inj`` for
  buffer copies),
* ``transit`` — wire time from injection to arrival:
  ``L_base + L_hop * hops(src, dst) + nbytes * G`` where ``G`` is the
  inverse bandwidth, and
* ``recv_overhead`` — CPU time the receiver burns to drain the message.

Same-node transfers (when the topology can tell) use a cheaper
shared-memory latency/bandwidth pair.  Parameters for the machines the
paper used are in :mod:`repro.perfmodel.machine` presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .topology import FatTreeTopology, FlatTopology, Topology


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth/overhead model over a :class:`Topology`.

    All times are seconds; bandwidths are bytes/second.
    """

    #: Base wire latency for any off-rank message.
    latency: float = 1.3e-6
    #: Additional latency per network hop beyond the first.
    hop_latency: float = 0.2e-6
    #: Link bandwidth (bytes/s) for inter-node messages.
    bandwidth: float = 3.2e9
    #: Sender CPU overhead per message.
    o_send: float = 0.4e-6
    #: Receiver CPU overhead per message.
    o_recv: float = 0.4e-6
    #: Per-byte injection cost on the sender (buffer copy / DMA setup).
    g_inject: float = 0.0
    #: Latency for same-node (shared-memory) transfers.
    shm_latency: float = 0.3e-6
    #: Bandwidth for same-node transfers.
    shm_bandwidth: float = 8.0e9
    #: Hop-count model.
    topology: Topology = field(default_factory=FlatTopology)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.shm_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        for name in ("latency", "hop_latency", "o_send", "o_recv",
                     "g_inject", "shm_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- cost components -------------------------------------------------

    def send_overhead(self, nbytes: int) -> float:
        """Sender CPU seconds charged when a message is posted."""
        return self.o_send + nbytes * self.g_inject

    def recv_overhead(self, nbytes: int) -> float:
        """Receiver CPU seconds charged when a message is drained."""
        return self.o_recv

    def _same_node(self, src: int, dst: int) -> bool:
        if src == dst:
            return True
        topo = self.topology
        if isinstance(topo, FatTreeTopology):
            return topo.same_node(src, dst)
        return False

    def transit(self, src: int, dst: int, nbytes: int) -> float:
        """Wire seconds from injection to arrival at the receiver."""
        if self._same_node(src, dst):
            return self.shm_latency + nbytes / self.shm_bandwidth
        hops = self.topology.hops(src, dst)
        lat = self.latency + self.hop_latency * max(0, hops - 1)
        return lat + nbytes / self.bandwidth

    # -- convenience ------------------------------------------------------

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """End-to-end modelled cost of a single message (all pieces)."""
        return (
            self.send_overhead(nbytes)
            + self.transit(src, dst, nbytes)
            + self.recv_overhead(nbytes)
        )

    # -- batched (vectorized) variants ------------------------------------
    #
    # These evaluate the scalar formulas elementwise over numpy arrays.
    # Each expression is written with the exact operation order of its
    # scalar twin so the results are bit-identical — the virtual
    # scale-out engine (`repro.vscale`) relies on that to reproduce the
    # executed runtime's clock arithmetic in bulk.

    def send_overhead_batch(self, nbytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`send_overhead` over a byte-count array."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        return self.o_send + nbytes * self.g_inject

    def recv_overhead_batch(self, nbytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`recv_overhead` over a byte-count array."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        return np.full(nbytes.shape, self.o_recv)

    def _same_node_batch(
        self, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        same = src == dst
        topo = self.topology
        if isinstance(topo, FatTreeTopology):
            same = same | topo.same_node_batch(src, dst)
        return same

    def transit_batch(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`transit` over aligned rank/byte arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        shm = self.shm_latency + nbytes / self.shm_bandwidth
        hops = self.topology.hops_batch(src, dst)
        lat = self.latency + self.hop_latency * np.maximum(0, hops - 1)
        net = lat + nbytes / self.bandwidth
        return np.where(self._same_node_batch(src, dst), shm, net)

    def message_time_batch(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`message_time` over aligned arrays."""
        return (
            self.send_overhead_batch(nbytes)
            + self.transit_batch(src, dst, nbytes)
            + self.recv_overhead_batch(nbytes)
        )

    def describe(self) -> str:
        """Human-readable one-line parameter summary."""
        return (
            f"lat={self.latency * 1e6:.2f}us hop={self.hop_latency * 1e6:.2f}us "
            f"bw={self.bandwidth / 1e9:.1f}GB/s o_s={self.o_send * 1e6:.2f}us "
            f"o_r={self.o_recv * 1e6:.2f}us topo={type(self.topology).__name__}"
        )
