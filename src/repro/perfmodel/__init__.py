"""``repro.perfmodel`` — machine, network, and topology cost models.

These models price every compute region and message in the simulated
runtime, replacing the physical clusters the paper measured on (see
DESIGN.md, substitution table).
"""

from .machine import CpuModel, MachineModel
from .network import NetworkModel
from .topology import (
    FatTreeTopology,
    FlatTopology,
    Topology,
    TorusTopology,
    mean_hops,
)

__all__ = [
    "CpuModel",
    "FatTreeTopology",
    "FlatTopology",
    "MachineModel",
    "NetworkModel",
    "Topology",
    "TorusTopology",
    "mean_hops",
]
