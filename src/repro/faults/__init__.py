"""Deterministic fault injection for the simulated MPI runtime.

See :mod:`repro.faults.plan` for the fault-spec grammar and
:mod:`repro.faults.injector` for runtime semantics; the user-facing
walkthrough lives in ``docs/fault-injection.md``.
"""

from .injector import DropRecord, FaultInjector
from .plan import CrashEvent, DegradeEvent, DropEvent, FaultPlan, drop_unit

__all__ = [
    "CrashEvent",
    "DegradeEvent",
    "DropEvent",
    "DropRecord",
    "FaultInjector",
    "FaultPlan",
    "drop_unit",
]
