"""Runtime side of fault injection: decide, fire, and log events.

A :class:`FaultInjector` is created by the
:class:`~repro.mpi.runtime.Runtime` from a frozen
:class:`~repro.faults.plan.FaultPlan` and consulted from the rank
threads at well-defined points:

* :meth:`check_step_crash` — top of the solver step loop;
* :meth:`check_time_crash` — prologue of every send/recv;
* :meth:`drop_count` — in ``Comm._send_raw``, before an envelope hits
  the wire (how many retransmissions does this message suffer?);
* :meth:`delay_factor` — in ``Comm._complete_recv``, scaling modelled
  transit time for degraded links.

All decisions are pure functions of the plan plus deterministic message
identities, so two runs with the same plan make identical decisions
regardless of wall-clock thread interleaving.  The injector itself only
carries *logs* (what fired, what dropped) and the one-shot state for
crash events; both are guarded by a lock because rank threads call in
concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Tuple

from ..mpi.errors import RankCrashError
from .plan import CrashEvent, FaultPlan, drop_unit


@dataclass(frozen=True)
class DropRecord:
    """One logged message-drop episode (possibly several attempts)."""

    src: int
    dst: int
    seq: int
    attempts: int
    penalty: float


class FaultInjector:
    """Applies a :class:`FaultPlan` to one runtime launch.

    ``base_step`` maps the driver's local step numbers onto the plan's
    *global* step numbers: after recovery restores a checkpoint at step
    ``s``, the restarted runtime gets ``base_step=s`` so crash events
    keep firing at the step the plan names, not at a shifted one.
    """

    def __init__(self, plan: FaultPlan, base_step: int = 0):
        self.plan = plan
        self.base_step = base_step
        self._lock = threading.Lock()
        self._fired: set = set()
        self.crash_log: List[CrashEvent] = []
        self.drop_log: List[DropRecord] = []

    # -- crashes --------------------------------------------------------

    def check_step_crash(self, comm, step: int) -> None:
        """Fire any step-triggered crash for this rank at global ``step``.

        Called at the top of the step loop, before the step executes.
        Raises :class:`RankCrashError` on the crashing rank; peers learn
        of it through the runtime's abort event.
        """
        rank = comm.world_rank
        for ev in self.plan.crashes:
            if ev.step is not None and ev.rank == rank and ev.step == step:
                self._fire(comm, ev, step=step)

    def check_time_crash(self, comm, step: "int | None" = None) -> None:
        """Fire any time-triggered crash whose deadline has passed.

        Called from communication entry points — the first send/recv at
        or after the scheduled virtual time kills the rank (a rank that
        never communicates past the deadline survives, as a real
        node-loss would only be *observed* through communication).
        """
        rank = comm.world_rank
        now = comm.clock.now
        for ev in self.plan.crashes:
            if ev.time is not None and ev.rank == rank and now >= ev.time:
                self._fire(comm, ev, step=step)

    def _fire(self, comm, event: CrashEvent, step: "int | None") -> None:
        with self._lock:
            if event in self._fired:
                return
            self._fired.add(event)
            self.crash_log.append(event)
        comm.profile.record(
            "FAULT_Crash",
            f"fault:{event.describe()}",
            0.0,
            0,
            informational=True,
        )
        raise RankCrashError(
            f"injected fault killed rank {comm.world_rank} "
            f"({event.describe()}) at vtime {comm.clock.now:.6g}",
            rank=comm.world_rank,
            step=step if event.step is None else event.step,
            vtime=comm.clock.now,
        )

    @property
    def fired_crashes(self) -> Tuple[CrashEvent, ...]:
        """Crash events that fired in this launch (for plan pruning)."""
        with self._lock:
            return tuple(self.crash_log)

    # -- message drops --------------------------------------------------

    def drop_count(self, src: int, dst: int, seq: int) -> int:
        """How many times the ``seq``-th message on ``src -> dst`` drops.

        The reliable layer retransmits after each drop, so the sender
        experiences ``n`` consecutive losses followed by one successful
        injection.  ``n`` is capped at the retry policy's
        ``max_retries`` — beyond that the message is deemed delivered
        (the model never livelocks on a lossy link).  Deterministic:
        probabilistic events hash (plan seed, link, per-link sequence
        number, attempt index); ``nth`` events fire on exactly one
        message, once.
        """
        events = [e for e in self.plan.drops if e.matches(src, dst)]
        if not events:
            return 0
        max_retries = self.plan.retry.max_retries
        drops = 0
        while drops < max_retries:
            attempt_dropped = False
            for ev in events:
                if ev.nth is not None:
                    # One exact loss of the nth message's first attempt.
                    if seq + 1 == ev.nth and drops == 0:
                        attempt_dropped = True
                elif drop_unit(
                    self.plan.seed, src, dst, seq, drops
                ) < ev.p:
                    attempt_dropped = True
            if not attempt_dropped:
                break
            drops += 1
        return drops

    def log_drop(self, src: int, dst: int, seq: int,
                 attempts: int, penalty: float) -> None:
        """Record a drop episode for the run report."""
        with self._lock:
            self.drop_log.append(
                DropRecord(src=src, dst=dst, seq=seq,
                           attempts=attempts, penalty=penalty)
            )

    # -- link degradation ----------------------------------------------

    def delay_factor(self, src: int, dst: int) -> float:
        """Combined transit-time multiplier for the ``src -> dst`` link."""
        factor = 1.0
        for ev in self.plan.degrades:
            if ev.matches(src, dst):
                factor *= ev.factor
        return factor

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """Aggregate fault activity for run reports."""
        with self._lock:
            drops = list(self.drop_log)
            crashes = list(self.crash_log)
        return {
            "crashes": [e.describe() for e in crashes],
            "messages_dropped": sum(d.attempts for d in drops),
            "drop_episodes": len(drops),
            "retry_penalty_seconds": sum(d.penalty for d in drops),
        }
