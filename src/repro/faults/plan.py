"""Deterministic fault plans: what breaks, where, and when.

Production CMT-nek campaigns run for days at machine scale, where rank
failures, message loss, and degraded links are routine events rather
than exceptions.  A :class:`FaultPlan` is a declarative, fully
reproducible schedule of such events for the simulated runtime:

* :class:`CrashEvent` — kill one rank at a given global step or virtual
  time (the rank raises :class:`~repro.mpi.errors.RankCrashError`; every
  blocked peer receives :class:`~repro.mpi.errors.AbortError`);
* :class:`DropEvent` — drop messages on a link, either the *nth*
  message exactly (deterministic tests) or probabilistically with a
  seeded hash (chaos tests); the transport retries with exponential
  backoff charged to the virtual clock;
* :class:`DegradeEvent` — multiply the modelled transit time of a link
  (a flaky cable / congested switch).

Plans are built from a compact spec string (the CLI's ``--fault-spec``)
or programmatically; :meth:`FaultPlan.random` draws a seeded random
schedule for chaos sweeps.  Everything is a frozen value object so a
plan can be hashed, compared, pruned (:meth:`FaultPlan.without`) after
a crash fires, and replayed bit-for-bit.

Spec grammar
------------
::

    spec    := event (';' event)*
    event   := kind ':' key '=' value (',' key '=' value)*
    kind    := 'crash' | 'drop' | 'degrade'

    crash   := rank=<int> and one of step=<int> | time=<float>
    drop    := [src=<int>] [dst=<int>] and one of nth=<int> | p=<float>
    degrade := factor=<float> [src=<int>] [dst=<int>]

Omitted ``src``/``dst`` mean "any rank".  Examples::

    crash:rank=1,step=5
    crash:rank=0,time=2.5e-3
    drop:src=0,dst=1,nth=3            # 3rd message on link 0->1, once
    drop:p=0.02                       # 2% seeded loss on every link
    degrade:src=2,dst=3,factor=4      # link 2->3 four times slower
    crash:rank=1,step=5;drop:p=0.01   # events compose with ';'
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..mpi.transport import RetryPolicy


@dataclass(frozen=True)
class CrashEvent:
    """Kill ``rank`` when it reaches ``step`` or virtual time ``time``.

    Exactly one trigger must be set.  ``step`` triggers fire at the top
    of the solver's step loop (before the step executes, global step
    numbering); ``time`` triggers fire at the first communication call
    whose clock reading is ``>= time``.  Each event fires at most once
    per :class:`~repro.faults.injector.FaultInjector`; the recovery
    loop prunes fired events before restarting.
    """

    rank: int
    step: Optional[int] = None
    time: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.step is None) == (self.time is None):
            raise ValueError(
                "CrashEvent needs exactly one of step= or time="
            )
        if self.rank < 0:
            raise ValueError("CrashEvent rank must be >= 0")

    def describe(self) -> str:
        trigger = (
            f"step={self.step}" if self.step is not None
            else f"time={self.time:g}"
        )
        return f"crash:rank={self.rank},{trigger}"


@dataclass(frozen=True)
class DropEvent:
    """Drop messages on the (``src`` -> ``dst``) link.

    ``nth`` drops exactly the nth message (1-based, counted in the
    link's send order) once — the deterministic form tests use.  ``p``
    drops each injection attempt independently with probability ``p``,
    decided by a seeded hash of (seed, src, dst, message, attempt), so
    the loss pattern is reproducible and independent of wall-clock
    thread scheduling.  Omitted endpoints match any rank.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    nth: Optional[int] = None
    p: float = 0.0

    def __post_init__(self) -> None:
        if (self.nth is None) == (self.p == 0.0):
            raise ValueError("DropEvent needs exactly one of nth= or p=")
        if self.nth is not None and self.nth < 1:
            raise ValueError("DropEvent nth is 1-based (>= 1)")
        if not (0.0 <= self.p < 1.0):
            raise ValueError("DropEvent p must be in [0, 1)")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )

    def describe(self) -> str:
        parts = []
        if self.src is not None:
            parts.append(f"src={self.src}")
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        parts.append(
            f"nth={self.nth}" if self.nth is not None else f"p={self.p:g}"
        )
        return "drop:" + ",".join(parts)


@dataclass(frozen=True)
class DegradeEvent:
    """Multiply the modelled transit time of a link by ``factor``."""

    factor: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("DegradeEvent factor must be >= 1")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )

    def describe(self) -> str:
        parts = [f"factor={self.factor:g}"]
        if self.src is not None:
            parts.append(f"src={self.src}")
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        return "degrade:" + ",".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of crashes, drops, and degradations."""

    crashes: Tuple[CrashEvent, ...] = ()
    drops: Tuple[DropEvent, ...] = ()
    degrades: Tuple[DegradeEvent, ...] = ()
    #: Seed for every probabilistic decision (message drops).
    seed: int = 0
    #: Retransmission schedule for dropped envelopes.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0,
              retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Build a plan from a ``--fault-spec`` string (see module docs)."""
        crashes, drops, degrades = [], [], []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, body = chunk.partition(":")
            kind = kind.strip().lower()
            kv = _parse_kv(body, context=chunk)
            try:
                if kind == "crash":
                    crashes.append(CrashEvent(
                        rank=_take_int(kv, "rank", chunk, required=True),
                        step=_take_int(kv, "step", chunk),
                        time=_take_float(kv, "time", chunk),
                    ))
                elif kind == "drop":
                    drops.append(DropEvent(
                        src=_take_int(kv, "src", chunk),
                        dst=_take_int(kv, "dst", chunk),
                        nth=_take_int(kv, "nth", chunk),
                        p=_take_float(kv, "p", chunk) or 0.0,
                    ))
                elif kind == "degrade":
                    factor = _take_float(kv, "factor", chunk)
                    if factor is None:
                        raise ValueError("degrade needs factor=")
                    degrades.append(DegradeEvent(
                        factor=factor,
                        src=_take_int(kv, "src", chunk),
                        dst=_take_int(kv, "dst", chunk),
                    ))
                else:
                    raise ValueError(
                        f"unknown fault kind {kind!r} "
                        "(expected crash/drop/degrade)"
                    )
            except ValueError as exc:
                raise ValueError(
                    f"bad fault event {chunk!r}: {exc}"
                ) from None
            if kv:
                raise ValueError(
                    f"bad fault event {chunk!r}: "
                    f"unknown keys {sorted(kv)}"
                )
        return cls(
            crashes=tuple(crashes),
            drops=tuple(drops),
            degrades=tuple(degrades),
            seed=seed,
            retry=retry or RetryPolicy(),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        nranks: int,
        nsteps: int,
        max_crashes: int = 2,
        max_drop_p: float = 0.05,
        max_degrade: float = 4.0,
    ) -> "FaultPlan":
        """Draw a seeded random schedule for chaos testing.

        Every draw comes from ``random.Random(seed)``, so the same seed
        always yields the same plan — a chaos sweep is just a loop over
        seeds, and any failing seed reproduces exactly.
        """
        rng = random.Random(seed)
        crashes = tuple(
            CrashEvent(
                rank=rng.randrange(nranks),
                step=rng.randrange(1, max(nsteps, 2)),
            )
            for _ in range(rng.randint(0, max_crashes))
        )
        drops = []
        if rng.random() < 0.7:
            drops.append(DropEvent(p=rng.uniform(0.0, max_drop_p) or 1e-4))
        if rng.random() < 0.5 and nranks > 1:
            src = rng.randrange(nranks)
            dst = (src + 1 + rng.randrange(nranks - 1)) % nranks
            drops.append(DropEvent(
                src=src, dst=dst, nth=rng.randint(1, 50)
            ))
        degrades = []
        if rng.random() < 0.5 and nranks > 1:
            src = rng.randrange(nranks)
            dst = (src + 1 + rng.randrange(nranks - 1)) % nranks
            degrades.append(DegradeEvent(
                factor=rng.uniform(1.0, max_degrade), src=src, dst=dst
            ))
        return cls(
            crashes=crashes,
            drops=tuple(drops),
            degrades=tuple(degrades),
            seed=seed,
        )

    # -- queries / derivation -------------------------------------------

    @property
    def events(self) -> tuple:
        """All scheduled events, crashes first."""
        return self.crashes + self.drops + self.degrades

    def without(self, *crash_events: CrashEvent) -> "FaultPlan":
        """Copy of this plan with the given crash events removed.

        The recovery loop disarms every crash that already fired before
        relaunching, so a restarted job does not die at the same step
        again — the simulated failure happened once.
        """
        gone = set(crash_events)
        return replace(
            self,
            crashes=tuple(c for c in self.crashes if c not in gone),
        )

    def spec(self) -> str:
        """Round-trippable spec string (``FaultPlan.parse(plan.spec())``)."""
        return ";".join(e.describe() for e in self.events)

    def describe(self) -> str:
        if not self.events:
            return "fault plan: (empty)"
        return (
            f"fault plan (seed={self.seed}): "
            + "; ".join(e.describe() for e in self.events)
        )


def drop_unit(seed: int, src: int, dst: int, msg: int, attempt: int) -> float:
    """Deterministic uniform [0, 1) for one (message, attempt) decision.

    A keyed hash rather than a stateful RNG: the decision depends only
    on the plan seed and the message's identity (link + per-link send
    index + retransmission attempt), never on the wall-clock order in
    which rank threads happen to send — the property that makes fault
    replay bitwise reproducible.
    """
    key = f"{seed}:{src}:{dst}:{msg}:{attempt}".encode()
    h = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(h, "little") / 2.0**64


# -- spec-string helpers ----------------------------------------------------


def _parse_kv(body: str, context: str) -> dict:
    kv = {}
    for pair in body.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise ValueError(
                f"bad fault event {context!r}: expected key=value, "
                f"got {pair!r}"
            )
        kv[key.strip().lower()] = value.strip()
    return kv


def _take_int(kv: dict, key: str, context: str,
              required: bool = False) -> Optional[int]:
    if key not in kv:
        if required:
            raise ValueError(f"missing {key}=")
        return None
    raw = kv.pop(key)
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{key}={raw!r} is not an integer") from None


def _take_float(kv: dict, key: str, context: str) -> Optional[float]:
    if key not in kv:
        return None
    raw = kv.pop(key)
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{key}={raw!r} is not a number") from None
