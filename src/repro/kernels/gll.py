"""Gauss–Lobatto–Legendre (GLL) quadrature machinery.

CMT-nek discretizes each hexahedral element with a tensor product of
``N`` GLL points per direction (polynomial order ``N-1``).  This module
computes the points, quadrature weights, and Legendre polynomial values
from scratch (no table lookups), following the standard construction:

* the interior GLL points are the roots of ``P'_{N-1}``, found by
  Newton iteration from Chebyshev initial guesses;
* the weights are ``w_i = 2 / (N (N-1) P_{N-1}(x_i)^2)``.

Everything returns float64 numpy arrays and is cached per ``N`` (the
mini-app calls these in every setup).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

#: Supported range of GLL points per direction.  The paper: "N ranging
#: between 5 and 25"; we allow 2..64 for tests.
MIN_N = 2
MAX_N = 64


def legendre_and_derivative(n: int, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``P_n`` and ``P'_n`` at points ``x`` via the recurrence.

    Uses the three-term Bonnet recurrence for values and the standard
    derivative identity ``(1-x^2) P'_n = n (P_{n-1} - x P_n)``; end
    points are handled with the closed form ``P'_n(±1) = ±^{n+1}
    n(n+1)/2``.
    """
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.ones_like(x), np.zeros_like(x)
    p_prev = np.ones_like(x)
    p = x.copy()
    for k in range(1, n):
        p_next = ((2 * k + 1) * x * p - k * p_prev) / (k + 1)
        p_prev, p = p, p_next
    with np.errstate(divide="ignore", invalid="ignore"):
        dp = n * (p_prev - x * p) / (1.0 - x * x)
    endpoint = np.isclose(np.abs(x), 1.0)
    if np.any(endpoint):
        sign = np.where(x > 0, 1.0, (-1.0) ** (n + 1))
        dp = np.where(endpoint, sign * n * (n + 1) / 2.0, dp)
    return p, dp


def _check_n(n: int) -> None:
    if not (MIN_N <= n <= MAX_N):
        raise ValueError(
            f"GLL point count must be in [{MIN_N}, {MAX_N}], got {n}"
        )


@lru_cache(maxsize=None)
def gll_points(n: int) -> np.ndarray:
    """The ``n`` GLL points on [-1, 1] in increasing order.

    Roots of ``(1 - x^2) P'_{n-1}(x)``: the endpoints plus the extrema
    of ``P_{n-1}``.  Newton iteration on ``P'_{n-1}`` with a
    Chebyshev–Gauss–Lobatto initial guess converges in a handful of
    steps for all supported ``n``.
    """
    _check_n(n)
    if n == 2:
        return np.array([-1.0, 1.0])
    # Chebyshev-Gauss-Lobatto nodes are excellent initial guesses.
    x = -np.cos(np.pi * np.arange(n) / (n - 1))
    interior = x[1:-1].copy()
    for _ in range(100):
        _, dp = legendre_and_derivative(n - 1, interior)
        # Newton on f = P'_{n-1}; f' from the Legendre ODE:
        # (1-x^2) P''_n - 2x P'_n + n(n+1) P_n = 0.
        p, _ = legendre_and_derivative(n - 1, interior)
        d2p = (2.0 * interior * dp - (n - 1) * n * p) / (1.0 - interior**2)
        step = dp / d2p
        interior -= step
        if np.max(np.abs(step)) < 1e-15:
            break
    out = np.empty(n)
    out[0], out[-1] = -1.0, 1.0
    out[1:-1] = np.sort(interior)
    # Enforce exact antisymmetry (kills last-ulp asymmetry from Newton).
    out = 0.5 * (out - out[::-1])
    out.flags.writeable = False
    return out


@lru_cache(maxsize=None)
def gll_weights(n: int) -> np.ndarray:
    """GLL quadrature weights: exact for polynomials up to degree 2n-3."""
    _check_n(n)
    x = gll_points(n)
    p, _ = legendre_and_derivative(n - 1, x)
    w = 2.0 / (n * (n - 1) * p**2)
    w.flags.writeable = False
    return w


def lagrange_basis_at(n: int, xq: np.ndarray) -> np.ndarray:
    """Evaluate the ``n`` GLL Lagrange cardinal functions at ``xq``.

    Returns a matrix ``L`` of shape ``(len(xq), n)`` with
    ``L[q, j] = l_j(xq[q])``, built with the numerically stable
    barycentric formula.  Rows sum to one (partition of unity).
    """
    _check_n(n)
    x = gll_points(n)
    xq = np.asarray(xq, dtype=np.float64)
    # Barycentric weights.
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    bary = 1.0 / np.prod(diff, axis=1)
    d = xq[:, None] - x[None, :]
    exact = np.isclose(d, 0.0, atol=1e-14)
    any_exact = exact.any(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = bary[None, :] / d
        out = terms / terms.sum(axis=1, keepdims=True)
    if np.any(any_exact):
        out[any_exact] = exact[any_exact].astype(np.float64)
    return out


def barycentric_weights(n: int) -> np.ndarray:
    """Barycentric weights for the ``n``-point GLL grid."""
    x = gll_points(n)
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    return 1.0 / np.prod(diff, axis=1)
