"""PAPI-style analytic counters for the derivative kernel study.

The paper measures total instructions and total cycles with PAPI on an
AMD Opteron 6378 (Figs. 5 and 6) and draws three conclusions:

1. loop fusion + unrolling cuts ``dudt`` instructions ~2.8x and makes
   it 2.31x faster;
2. ``dudr`` barely benefits (1.03x) — the compiler already vectorizes
   the unit-stride loop;
3. ``duds`` shows *no* improvement: the middle-index access pattern
   forbids fusion and the vectorization win is offset by cache misses.

Hardware counters are not available here, so this module provides an
analytic replacement with two ingredients:

* a *structural* flop/byte count (``2 N^4 nel`` flops per direction),
  and
* per ``(direction, variant)`` microarchitectural coefficients —
  instructions-per-flop (how well the variant vectorizes) and
  cycles-per-instruction (stalls from the access pattern) — calibrated
  once against the paper's published PAPI numbers at their operating
  point (N=5, Nel=1563, 1000 steps; see table below) and then *reused
  unchanged* across every N, Nel in our sweeps.

Calibration table (derived from Figs. 5/6; F = 2 N^4 Nel steps flops):

    kernel        paper inst    inst/flop   paper cycles   CPI
    dudt fused    1.159e9       0.593       0.762e9        0.658
    dudr fused    2.402e9       1.229       1.355e9        0.564
    duds fused    2.595e9       1.328       1.468e9        0.566
    dudt basic    3.220e9       1.648       1.695e9        0.527
    dudr basic    2.429e9       1.243       1.394e9        0.574
    duds basic    (no improvement reported)  -> same as fused

The *ratios* these coefficients imply — speedups of 2.31x / 1.03x /
1.00x for dudt / dudr / duds — are the reproduction target; absolute
seconds differ from the paper (its runtime column is not mutually
consistent with its own cycle counts at 2.4 GHz, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..perfmodel.machine import MachineModel
from . import derivatives

#: Instructions per flop, calibrated per (direction, variant).
INST_PER_FLOP: Dict[Tuple[str, str], float] = {
    ("t", "fused"): 0.593,
    ("r", "fused"): 1.229,
    ("s", "fused"): 1.328,
    ("t", "basic"): 1.648,
    ("r", "basic"): 1.243,
    ("s", "basic"): 1.328,
}

#: Cycles per instruction, calibrated per (direction, variant).
CYCLES_PER_INST: Dict[Tuple[str, str], float] = {
    ("t", "fused"): 0.658,
    ("r", "fused"): 0.564,
    ("s", "fused"): 0.566,
    ("t", "basic"): 0.527,
    ("r", "basic"): 0.574,
    ("s", "basic"): 0.566,
}

#: Fallback coefficients for variants without calibration data
#: (e.g. "einsum"): treat as fused-quality code.
_FALLBACK_IPF = 1.0
_FALLBACK_CPI = 0.6

#: Microarchitectural class of each generated-kernel variant/schedule:
#: the IR schedule determines the loop structure, which is what the
#: calibrated coefficients describe.  ``gemm`` (and the reassociated /
#: transpose-batched forms, which are also single batched GEMMs per
#: contraction) prices as ``fused``; ``plane`` is the unfused triple
#: loop, i.e. ``basic``.  ``auto`` deliberately prices as the *default*
#: schedule rather than the host-tuned winner so modelled (virtual)
#: metrics stay host-independent and bench comparisons deterministic.
GENERATED_VARIANT_CLASS: Dict[str, str] = {
    "generated": "fused",
    "auto": "fused",
    "gemm": "fused",
    "plane": "basic",
    "einsum": "einsum",
    "tbatch": "fused",
    "gemm_rev": "fused",
}

#: L1-resident working set gives full-speed CPI; larger working sets
#: pay this multiplicative stall penalty on strided directions.
_L1_MISS_CPI_PENALTY = 1.15


@dataclass(frozen=True)
class KernelCost:
    """Modelled cost of one derivative-kernel invocation."""

    direction: str
    variant: str
    n: int
    nel: int
    steps: int
    flops: float
    mem_bytes: float
    instructions: float
    cycles: float
    seconds: float

    def row(self) -> Tuple[str, float, float, float]:
        """(label, runtime, instructions, cycles) — a Fig. 5/6 row."""
        return (f"dud{self.direction}", self.seconds, self.instructions,
                self.cycles)


def _coeffs(direction: str, variant: str) -> Tuple[float, float]:
    key = (direction, variant)
    return (
        INST_PER_FLOP.get(key, _FALLBACK_IPF),
        CYCLES_PER_INST.get(key, _FALLBACK_CPI),
    )


def working_set_bytes(n: int) -> int:
    """Per-element working set: field + result + derivative matrix."""
    return 8 * (2 * n**3 + n**2)


def ir_counts(direction: str, n: int, nel: int) -> Tuple[float, float]:
    """(flops, mem_bytes) derived from the contraction IR.

    Walks the direction's IR program: each ``Contract`` contributes
    ``2 * |out| * |contracted|`` flops, and memory traffic counts the
    streamed (element-batched) tensors once each.  For the derivative
    programs these equal the hand formulas ``2 N^4 nel`` and
    ``16 N^3 nel`` exactly — the test suite asserts this for every N —
    but unlike the hand formulas they stay correct automatically for
    any new program added to the registry.
    """
    from ..kir import (
        build_program,
        direction_program,
        program_flops,
        program_mem_bytes,
    )

    prog = build_program(direction_program(direction), n)
    return program_flops(prog, nel), program_mem_bytes(prog, nel)


def kernel_cost(
    direction: str,
    variant: str,
    n: int,
    nel: int,
    steps: int = 1,
    machine: MachineModel | None = None,
) -> KernelCost:
    """Model instructions, cycles, and runtime for a derivative kernel.

    ``steps`` multiplies everything (the paper runs 1000 time steps).
    The CPI picks up a stall penalty on the strided directions (s, r)
    when the per-element working set exceeds the machine's L1 — the
    "large number of cache misses due to poor data locality" the paper
    blames for duds.
    """
    if direction not in derivatives.DIRECTIONS:
        raise ValueError(f"unknown direction {direction!r}")
    if variant in derivatives.VARIANTS:
        coeff_variant = variant
        fl = derivatives.flops(n, nel) * steps
        mb = derivatives.mem_bytes(n, nel) * steps
    elif variant in GENERATED_VARIANT_CLASS:
        # Generated kernels are priced from their IR: structural
        # flop/byte counts come from the contraction list itself, the
        # microarchitectural coefficients from the schedule's class.
        coeff_variant = GENERATED_VARIANT_CLASS[variant]
        fl, mb = ir_counts(direction, n, nel)
        fl *= steps
        mb *= steps
    else:
        raise ValueError(f"unknown variant {variant!r}")
    machine = machine or MachineModel.preset("opteron6378")
    ipf, cpi = _coeffs(direction, coeff_variant)
    if direction in ("s", "r") and working_set_bytes(n) > machine.cpu.l1_dcache:
        cpi *= _L1_MISS_CPI_PENALTY
    instructions = fl * ipf
    cycles = instructions * cpi
    seconds = cycles / machine.cpu.ghz
    return KernelCost(
        direction=direction,
        variant=variant,
        n=n,
        nel=nel,
        steps=steps,
        flops=fl,
        mem_bytes=mb,
        instructions=instructions,
        cycles=cycles,
        seconds=seconds,
    )


def speedup(
    direction: str,
    n: int,
    nel: int,
    machine: MachineModel | None = None,
) -> float:
    """Modelled fused-over-basic speedup for one direction.

    At the paper's operating point this returns ~2.2-2.3 for ``t``,
    ~1.03 for ``r``, and 1.0 for ``s`` (cf. Section V).
    """
    basic = kernel_cost(direction, "basic", n, nel, machine=machine)
    fused = kernel_cost(direction, "fused", n, nel, machine=machine)
    return basic.seconds / fused.seconds


def roofline_seconds(
    n: int,
    nel: int,
    machine: MachineModel,
    variant: str = "fused",
    ndirections: int = 3,
) -> float:
    """Roofline-style single-number estimate used by the mini-app loop.

    Averages the per-direction calibrated efficiencies into one compute
    charge; this is what :class:`repro.core.cmtbone.CMTBone` bills per
    right-hand-side evaluation under ``TimePolicy.MODELED``.
    """
    total = 0.0
    dirs = derivatives.DIRECTIONS[:ndirections]
    for d in dirs:
        total += kernel_cost(d, variant, n, nel, machine=machine).seconds
    return total
