"""Over-integration (dealiasing) transfer between coarse and fine grids.

Section V of the paper notes the small-matrix multiplies are used "for
computing partial derivatives in the spectral element solver and for
dealiasing reference elements, where an element is first mapped to a
finer mesh and later mapped back to the regular mesh".  This module
implements that map/map-back pair as tensor-product applications of the
1-D interpolation matrix.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .operators import dealias_order, interpolation_matrix


def _apply_tensor(op: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Apply a 1-D operator along all three axes of (nel, N, N, N) data.

    ``op`` has shape ``(M, N)``; the result has shape ``(nel, M, M, M)``.
    Implemented as three batched GEMMs (the same fused structure as the
    derivative kernel).
    """
    nel = u.shape[0]
    n = u.shape[1]
    m = op.shape[0]
    if op.shape[1] != n or u.shape[1:] != (n, n, n):
        raise ValueError(
            f"operator {op.shape} incompatible with field {u.shape}"
        )
    # axis 1 (r): (M,N) @ (nel, N, N*N)
    v = np.matmul(op, u.reshape(nel, n, n * n)).reshape(nel, m, n, n)
    # axis 2 (s): batch over (nel, M)
    v = np.matmul(op, v.reshape(nel * m, n, n)).reshape(nel, m, m, n)
    # axis 3 (t): (..., N) @ (N, M)
    v = np.matmul(v.reshape(nel, m * m, n), op.T).reshape(nel, m, m, m)
    return v


def to_fine(u: np.ndarray, n: int, m: int | None = None) -> np.ndarray:
    """Interpolate (nel, N, N, N) fields to the (nel, M, M, M) fine grid.

    ``M`` defaults to the 3/2-rule :func:`~repro.kernels.operators.dealias_order`.
    """
    m = dealias_order(n) if m is None else m
    return _apply_tensor(np.asarray(interpolation_matrix(n, m)), u)


def to_coarse(v: np.ndarray, n: int, m: int | None = None) -> np.ndarray:
    """Map fine-grid fields back to the N-point grid (L2-style restriction).

    Uses the transpose-free interpolation back onto the coarse nodes
    (collocation restriction), which is the identity on polynomials of
    degree <= min(N, M) - 1; :func:`roundtrip` composes both directions.
    """
    m = dealias_order(n) if m is None else m
    return _apply_tensor(np.asarray(interpolation_matrix(m, n)), v)


def roundtrip(u: np.ndarray, n: int, m: int | None = None) -> np.ndarray:
    """Map to the fine grid and back (the paper's dealias pattern).

    Exact (to roundoff) for polynomial data of degree <= N-1 when
    ``M >= N``.
    """
    return to_coarse(to_fine(u, n, m), n, m)


def dealias_flops(n: int, m: int | None = None, nel: int = 1) -> float:
    """Flop count for one map-to-fine + map-back pair."""
    m = dealias_order(n) if m is None else m
    # to_fine: 2*M*N^3 + 2*M^2*N^2 + 2*M^3*N per element; back is mirror.
    fwd = 2.0 * (m * n**3 + m**2 * n**2 + m**3 * n)
    return 2.0 * fwd * nel


def shapes(n: int, m: int | None = None) -> Tuple[int, int]:
    """(coarse, fine) grid sizes used by the dealiasing pair."""
    return n, (dealias_order(n) if m is None else m)
