"""Over-integration (dealiasing) transfer between coarse and fine grids.

Section V of the paper notes the small-matrix multiplies are used "for
computing partial derivatives in the spectral element solver and for
dealiasing reference elements, where an element is first mapped to a
finer mesh and later mapped back to the regular mesh".  This module
implements that map/map-back pair as tensor-product applications of the
1-D interpolation matrix.

Like the derivative kernels, every entry point accepts ``out=`` (a
preallocated C-contiguous result that must not alias the input — same
alias-guard contract as :func:`repro.kernels.derivatives._check_out`)
and ``work=`` (a :class:`~repro.kernels.workspace.Workspace` the two
intermediate tensors are drawn from), so the solver's RK loop runs the
dealias pair allocation-free.  The in-place path performs the same
three GEMMs, so results are bitwise identical to the allocating call.

``variant="generated"``/``"auto"`` route through the contraction-IR
library (:mod:`repro.kir`, programs ``interp_fine``/``interp_coarse``)
instead of the hand-written GEMM chain below; the generated GEMM
schedule is bitwise identical to it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .operators import dealias_order, interpolation_matrix
from .workspace import Workspace

#: Variants accepted by the transfer entry points.
DEALIAS_VARIANTS = ("fused", "generated", "auto")


def _check_out(
    u: np.ndarray, out: Optional[np.ndarray], shape: Tuple[int, ...]
) -> np.ndarray:
    """Validate (or allocate) the result array; alias-guarded."""
    if out is None:
        return np.empty(shape, dtype=u.dtype)
    if out.shape != shape or out.dtype != u.dtype:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, needs "
            f"{shape}/{u.dtype}"
        )
    if not out.flags.c_contiguous:
        raise ValueError("out must be C-contiguous")
    if np.shares_memory(u, out):
        raise ValueError("out must not alias the input field")
    return out


def _apply_tensor(
    op: np.ndarray,
    u: np.ndarray,
    out: Optional[np.ndarray] = None,
    work: Optional[Workspace] = None,
) -> np.ndarray:
    """Apply a 1-D operator along all three axes of (nel, N, N, N) data.

    ``op`` has shape ``(M, N)``; the result has shape ``(nel, M, M, M)``.
    Implemented as three batched GEMMs (the same fused structure as the
    derivative kernel), writing into ``out`` and drawing the two
    intermediates from ``work`` when given.
    """
    nel = u.shape[0]
    n = u.shape[1]
    m = op.shape[0]
    if op.shape[1] != n or u.shape[1:] != (n, n, n):
        raise ValueError(
            f"operator {op.shape} incompatible with field {u.shape}"
        )
    out = _check_out(u, out, (nel, m, m, m))
    if work is None:
        t1 = np.empty((nel, m, n, n), dtype=u.dtype)
        t2 = np.empty((nel, m, m, n), dtype=u.dtype)
    else:
        t1 = work.buffer((nel, m, n, n), u.dtype, key="dealias:t1")
        t2 = work.buffer((nel, m, m, n), u.dtype, key="dealias:t2")
    # axis 1 (r): (M,N) @ (nel, N, N*N)
    np.matmul(
        op, u.reshape(nel, n, n * n), out=t1.reshape(nel, m, n * n)
    )
    # axis 2 (s): batch over (nel, M)
    np.matmul(
        op, t1.reshape(nel * m, n, n), out=t2.reshape(nel * m, m, n)
    )
    # axis 3 (t): (..., N) @ (N, M)
    np.matmul(
        t2.reshape(nel, m * m, n), op.T, out=out.reshape(nel, m * m, m)
    )
    return out


def _generated_transfer(
    program: str,
    u: np.ndarray,
    n: int,
    m: int,
    variant: str,
    out: Optional[np.ndarray],
    work: Optional[Workspace],
    op: np.ndarray,
    out_shape: Tuple[int, ...],
) -> np.ndarray:
    from ..kir import default_library

    out = _check_out(u, out, out_shape)
    kernel = default_library().resolve(
        program, n, u.shape[0], variant=variant, m=m
    )
    return kernel.fn(u, op, out=out, work=work)


def to_fine(
    u: np.ndarray,
    n: int,
    m: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    work: Optional[Workspace] = None,
    variant: str = "fused",
) -> np.ndarray:
    """Interpolate (nel, N, N, N) fields to the (nel, M, M, M) fine grid.

    ``M`` defaults to the 3/2-rule
    :func:`~repro.kernels.operators.dealias_order`.
    """
    m = dealias_order(n) if m is None else m
    op = np.asarray(interpolation_matrix(n, m))
    if variant in ("generated", "auto"):
        return _generated_transfer(
            "interp_fine", u, n, m, variant, out, work, op,
            (u.shape[0], m, m, m),
        )
    if variant != "fused":
        raise ValueError(
            f"unknown dealias variant {variant!r}; "
            f"variants: {DEALIAS_VARIANTS}"
        )
    return _apply_tensor(op, u, out=out, work=work)


def to_coarse(
    v: np.ndarray,
    n: int,
    m: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    work: Optional[Workspace] = None,
    variant: str = "fused",
) -> np.ndarray:
    """Map fine-grid fields back to the N-point grid (L2-style restriction).

    Uses the transpose-free interpolation back onto the coarse nodes
    (collocation restriction), which is the identity on polynomials of
    degree <= min(N, M) - 1; :func:`roundtrip` composes both directions.
    """
    m = dealias_order(n) if m is None else m
    op = np.asarray(interpolation_matrix(m, n))
    if variant in ("generated", "auto"):
        return _generated_transfer(
            "interp_coarse", v, n, m, variant, out, work, op,
            (v.shape[0], n, n, n),
        )
    if variant != "fused":
        raise ValueError(
            f"unknown dealias variant {variant!r}; "
            f"variants: {DEALIAS_VARIANTS}"
        )
    return _apply_tensor(op, v, out=out, work=work)


def roundtrip(
    u: np.ndarray,
    n: int,
    m: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    work: Optional[Workspace] = None,
    variant: str = "fused",
) -> np.ndarray:
    """Map to the fine grid and back (the paper's dealias pattern).

    Exact (to roundoff) for polynomial data of degree <= N-1 when
    ``M >= N``.  The intermediate fine-grid field is drawn from
    ``work`` when given (key ``dealias:fine``).
    """
    m = dealias_order(n) if m is None else m
    nel = u.shape[0]
    fine_out = (
        None if work is None
        else work.buffer((nel, m, m, m), u.dtype, key="dealias:fine")
    )
    fine = to_fine(u, n, m, out=fine_out, work=work, variant=variant)
    return to_coarse(fine, n, m, out=out, work=work, variant=variant)


def dealias_flops(n: int, m: Optional[int] = None, nel: int = 1) -> float:
    """Flop count for one map-to-fine + map-back pair."""
    m = dealias_order(n) if m is None else m
    # to_fine: 2*M*N^3 + 2*M^2*N^2 + 2*M^3*N per element; back is mirror.
    fwd = 2.0 * (m * n**3 + m**2 * n**2 + m**3 * n)
    return 2.0 * fwd * nel


def shapes(n: int, m: Optional[int] = None) -> Tuple[int, int]:
    """(coarse, fine) grid sizes used by the dealiasing pair."""
    return n, (dealias_order(n) if m is None else m)
