"""``repro.kernels`` — spectral-element compute kernels.

The computational heart of CMT-bone: GLL quadrature machinery, the
reference-element derivative/interpolation operators, the ``O(N^4)``
derivative kernel in its ``basic``/``fused``/``einsum`` variants plus
the IR-generated ``generated``/``auto`` tier (:mod:`repro.kir`), the
dealiasing transfer pair, and the PAPI-style analytic cost counters
behind the Figs. 5-6 reproduction.
"""

from .counters import (
    CYCLES_PER_INST,
    GENERATED_VARIANT_CLASS,
    INST_PER_FLOP,
    KernelCost,
    ir_counts,
    kernel_cost,
    roofline_seconds,
    speedup,
    working_set_bytes,
)
from .dealias import (
    DEALIAS_VARIANTS,
    dealias_flops,
    roundtrip,
    to_coarse,
    to_fine,
)
from .derivatives import (
    ALL_VARIANTS,
    DIRECTIONS,
    GENERATED_VARIANTS,
    VARIANTS,
    derivative,
    dudr,
    duds,
    dudt,
    flops,
    grad,
    grad_workspace,
    mem_bytes,
)
from .gll import (
    barycentric_weights,
    gll_points,
    gll_weights,
    lagrange_basis_at,
    legendre_and_derivative,
)
from .operators import (
    dealias_order,
    derivative_matrix,
    interpolation_matrix,
    mass_matrix_diagonal,
    stiffness_1d,
)
from .workspace import Workspace

__all__ = [
    "ALL_VARIANTS",
    "CYCLES_PER_INST",
    "DEALIAS_VARIANTS",
    "DIRECTIONS",
    "GENERATED_VARIANTS",
    "GENERATED_VARIANT_CLASS",
    "INST_PER_FLOP",
    "KernelCost",
    "VARIANTS",
    "Workspace",
    "barycentric_weights",
    "dealias_flops",
    "dealias_order",
    "derivative",
    "derivative_matrix",
    "dudr",
    "duds",
    "dudt",
    "flops",
    "gll_points",
    "gll_weights",
    "grad",
    "grad_workspace",
    "interpolation_matrix",
    "ir_counts",
    "kernel_cost",
    "lagrange_basis_at",
    "legendre_and_derivative",
    "mass_matrix_diagonal",
    "mem_bytes",
    "roofline_seconds",
    "roundtrip",
    "speedup",
    "stiffness_1d",
    "to_coarse",
    "to_fine",
    "working_set_bytes",
]
