"""Reference-element operators: derivative and interpolation matrices.

The paper abstracts CMT-nek's flux-divergence term as "matrix
multiplication operations where the derivative matrix of size (N, N)
operates over a 3D data (N, N, N, Nel)".  This module builds that
derivative matrix (and the dealiasing interpolation matrices) on the
GLL reference grid.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .gll import barycentric_weights, gll_points, gll_weights, lagrange_basis_at


@lru_cache(maxsize=None)
def derivative_matrix(n: int) -> np.ndarray:
    """First-derivative collocation matrix ``D`` on the ``n`` GLL points.

    ``(D u)[i] = u'(x_i)`` exactly for polynomials of degree <= n-1.
    Built from barycentric weights with the negative-sum trick for the
    diagonal, which keeps each row summing to machine-zero (the
    derivative of a constant vanishes identically).
    """
    x = gll_points(n)
    w = barycentric_weights(n)
    d = x[:, None] - x[None, :]
    np.fill_diagonal(d, 1.0)
    dmat = (w[None, :] / w[:, None]) / d
    np.fill_diagonal(dmat, 0.0)
    np.fill_diagonal(dmat, -dmat.sum(axis=1))
    dmat.flags.writeable = False
    return dmat


@lru_cache(maxsize=None)
def interpolation_matrix(n_from: int, n_to: int) -> np.ndarray:
    """Interpolation matrix from the ``n_from``-GLL to ``n_to``-GLL grid.

    Shape ``(n_to, n_from)``.  Used for the dealiasing step the paper
    describes ("an element is first mapped to a finer mesh and later
    mapped back to the regular mesh").
    """
    xq = gll_points(n_to)
    mat = lagrange_basis_at(n_from, xq)
    mat = np.ascontiguousarray(mat)
    mat.flags.writeable = False
    return mat


@lru_cache(maxsize=None)
def mass_matrix_diagonal(n: int) -> np.ndarray:
    """Diagonal (lumped) mass matrix on the reference interval.

    With GLL collocation the mass matrix is the diagonal of quadrature
    weights — the key structural advantage of the SEM basis.
    """
    return gll_weights(n)


@lru_cache(maxsize=None)
def stiffness_1d(n: int) -> np.ndarray:
    """1-D weak Laplacian ``K = D^T diag(w) D`` on the reference grid.

    The building block of Nekbone's ``ax`` operator (conjugate-gradient
    matvec); symmetric positive semidefinite with nullspace = constants.
    """
    dmat = derivative_matrix(n)
    w = gll_weights(n)
    k = dmat.T @ (w[:, None] * dmat)
    k = 0.5 * (k + k.T)  # enforce exact symmetry
    k.flags.writeable = False
    return k


def dealias_order(n: int) -> int:
    """Fine-grid size for over-integration dealiasing: ceil(3N/2)."""
    return (3 * n + 1) // 2
