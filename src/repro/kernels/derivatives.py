"""The spectral-element derivative kernel — CMT-bone's hot spot.

Per element, a field ``u`` lives on an ``N x N x N`` GLL grid indexed
``(r, s, t)``; batches are stored ``(nel, N, N, N)`` in C order (``t``
fastest).  The partial derivative along each reference direction is a
small dense matrix product with the ``(N, N)`` derivative matrix ``D``:

* ``dudr[e,i,j,k] = sum_m D[i,m] u[e,m,j,k]``  (first index),
* ``duds[e,i,j,k] = sum_m D[j,m] u[e,i,m,k]``  (middle index),
* ``dudt[e,i,j,k] = sum_m D[k,m] u[e,i,j,m]``  (last index),

an ``O(N^4)`` operation per element (Section V of the paper).

Two implementation strategies mirror the paper's loop study:

``basic``
    The untransformed triple loop: one small 2-D product per pencil
    plane per element.  This is the Python analogue of the paper's
    "basic implementation" without loop fusion or unrolling.
``fused``
    Loop fusion: the element and pencil loops collapse into a single
    batched GEMM.  ``dudr`` and ``dudt`` fuse perfectly into one
    ``(N, N) x (N, N^2)``-per-element product; ``duds`` contracts the
    *middle* index, so fusion is only partial (a strided batched
    matmul) — exactly the access-pattern obstruction the paper reports
    for ``duds``.
``einsum``
    numpy's contraction engine with path optimization; used as an
    independent cross-check in tests.
``generated`` / ``auto``
    Compiled from the contraction IR (:mod:`repro.kir`) instead of
    hand-written: ``generated`` lowers the default GEMM schedule
    (bitwise identical to ``fused``, and its ``plane``/``einsum``
    schedules are bitwise identical to ``basic``/``einsum``); ``auto``
    picks the fastest schedule per host via the persistent autotune
    cache.  The hand-written variants above remain the references the
    generated code is verified against.

By default every variant returns a newly allocated ``(nel, N, N, N)``
array; all are bit-for-bit interchangeable (same contraction order up
to float associativity; tests enforce agreement to tight tolerance).

Every entry point also accepts ``out=``: a preallocated C-contiguous
result array that must not alias the input.  The ``out=`` path runs
the *same* contraction (``np.matmul``/``np.einsum`` writing in place),
so results are bitwise identical to the allocating call — it only
removes the per-call ``(nel, N, N, N)`` allocation, which is what the
solver's RK loop reuses a :class:`~repro.kernels.workspace.Workspace`
for (see the ``kernels/workspace`` benchmark scenario).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .workspace import Workspace

#: Hand-written variant names (kept as reference implementations).
VARIANTS = ("basic", "fused", "einsum")
#: Variants served by the generated-kernel library (:mod:`repro.kir`):
#: ``generated`` is the static default schedule (GEMM form, the same
#: algorithm as ``fused``), ``auto`` is the per-host autotuned winner.
GENERATED_VARIANTS = ("generated", "auto")
#: Everything the public entry points accept.
ALL_VARIANTS = VARIANTS + GENERATED_VARIANTS
#: Reference-direction names in CMT-nek order.
DIRECTIONS = ("r", "s", "t")


def _check(u: np.ndarray, dmat: np.ndarray) -> Tuple[int, int]:
    if u.ndim != 4 or u.shape[1] != u.shape[2] or u.shape[2] != u.shape[3]:
        raise ValueError(
            f"expected field of shape (nel, N, N, N), got {u.shape}"
        )
    n = u.shape[1]
    if dmat.shape != (n, n):
        raise ValueError(
            f"derivative matrix shape {dmat.shape} does not match N={n}"
        )
    return u.shape[0], n


def _check_out(u: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
    """Validate (or allocate) the ``out=`` result array.

    The fused variants write through flat reshapes, so ``out`` must be
    C-contiguous; aliasing the input would corrupt the contraction.
    """
    if out is None:
        return np.empty_like(u)
    if out.shape != u.shape or out.dtype != u.dtype:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, "
            f"field needs {u.shape}/{u.dtype}"
        )
    if not out.flags.c_contiguous:
        raise ValueError("out must be C-contiguous")
    if np.shares_memory(u, out):
        raise ValueError("out must not alias the input field")
    return out


# ----------------------------------------------------------------------
# basic: per-element, per-pencil-plane loops (no fusion, no unroll)
# ----------------------------------------------------------------------

def dudr_basic(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/dr: one ``D @ u[e, :, :, k]`` product per (element, fixed-t)
    (r, s)-plane, contracting the r axis."""
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    for e in range(nel):
        for k in range(n):
            out[e, :, :, k] = dmat @ u[e, :, :, k]
    return out


def duds_basic(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/ds: one ``D @ u[e, i]`` product per (element, fixed-r)
    (s, t)-plane, contracting the s axis."""
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    for e in range(nel):
        for i in range(n):
            out[e, i] = dmat @ u[e, i]
    return out


def dudt_basic(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/dt: one ``u[e, i] @ D.T`` product per (element, fixed-r)
    (s, t)-plane, contracting the t axis."""
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    dt = dmat.T
    for e in range(nel):
        for i in range(n):
            out[e, i] = u[e, i] @ dt
    return out


# ----------------------------------------------------------------------
# fused: element/pencil loops collapsed into batched GEMMs
# ----------------------------------------------------------------------

def dudr_fused(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/dr as one (N, N) x (N, N^2) GEMM per element (fully fused)."""
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    np.matmul(
        dmat, u.reshape(nel, n, n * n), out=out.reshape(nel, n, n * n)
    )
    return out


def duds_fused(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/ds as a batched (N, N) x (N, N) matmul over (element, r).

    The middle-index contraction cannot collapse into a single GEMM
    without transposing the data — the fusion obstruction the paper
    reports.  numpy broadcasts ``D`` over the ``nel*N`` batch instead.
    """
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    np.matmul(
        dmat, u.reshape(nel * n, n, n), out=out.reshape(nel * n, n, n)
    )
    return out


def dudt_fused(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """d/dt as one (N^2, N) x (N, N) GEMM per element (fully fused)."""
    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    np.matmul(
        u.reshape(nel, n * n, n), dmat.T, out=out.reshape(nel, n * n, n)
    )
    return out


# ----------------------------------------------------------------------
# einsum: independent contraction path (cross-check variant)
# ----------------------------------------------------------------------

def dudr_einsum(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    _check(u, dmat)
    if out is not None:
        out = _check_out(u, out)
    return np.einsum("im,emjk->eijk", dmat, u, out=out, optimize=True)


def duds_einsum(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    _check(u, dmat)
    if out is not None:
        out = _check_out(u, out)
    return np.einsum("jm,eimk->eijk", dmat, u, out=out, optimize=True)


def dudt_einsum(
    u: np.ndarray, dmat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    _check(u, dmat)
    if out is not None:
        out = _check_out(u, out)
    return np.einsum("km,eijm->eijk", dmat, u, out=out, optimize=True)


_IMPLS: Dict[Tuple[str, str], Callable[..., np.ndarray]] = {
    ("r", "basic"): dudr_basic,
    ("s", "basic"): duds_basic,
    ("t", "basic"): dudt_basic,
    ("r", "fused"): dudr_fused,
    ("s", "fused"): duds_fused,
    ("t", "fused"): dudt_fused,
    ("r", "einsum"): dudr_einsum,
    ("s", "einsum"): duds_einsum,
    ("t", "einsum"): dudt_einsum,
}


def _generated_derivative(
    u: np.ndarray,
    dmat: np.ndarray,
    direction: str,
    variant: str,
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Route one direction through the :mod:`repro.kir` library.

    Validation (shape, contiguity, aliasing) stays here so generated
    kernels keep exactly the hand-written variants' contract; the
    library memoizes resolution, so the steady-state overhead is one
    dict lookup.
    """
    from ..kir import default_library, direction_program

    nel, n = _check(u, dmat)
    out = _check_out(u, out)
    kernel = default_library().resolve(
        direction_program(direction), n, nel, variant=variant
    )
    return kernel.fn(u, dmat, out=out)


def derivative(
    u: np.ndarray,
    dmat: np.ndarray,
    direction: str,
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dispatch ``d u / d{direction}`` to the requested variant."""
    if variant in GENERATED_VARIANTS:
        if direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {direction!r}; directions: {DIRECTIONS}"
            )
        return _generated_derivative(u, dmat, direction, variant, out)
    try:
        impl = _IMPLS[(direction, variant)]
    except KeyError:
        raise ValueError(
            f"unknown derivative ({direction!r}, {variant!r}); "
            f"directions: {DIRECTIONS}, variants: {ALL_VARIANTS}"
        ) from None
    return impl(u, dmat, out=out)


def dudr(
    u: np.ndarray,
    dmat: np.ndarray,
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """d/dr of a batch of element fields."""
    return derivative(u, dmat, "r", variant, out=out)


def duds(
    u: np.ndarray,
    dmat: np.ndarray,
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """d/ds of a batch of element fields."""
    return derivative(u, dmat, "s", variant, out=out)


def dudt(
    u: np.ndarray,
    dmat: np.ndarray,
    variant: str = "fused",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """d/dt of a batch of element fields."""
    return derivative(u, dmat, "t", variant, out=out)


def grad(
    u: np.ndarray,
    dmat: np.ndarray,
    variant: str = "fused",
    out: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All three reference-space partial derivatives of ``u``.

    ``out``, when given, is a triple of preallocated result arrays
    (one per direction), e.g. from :func:`grad_workspace`.

    The generated variants use the single fused ``grad`` IR program
    (one kernel for all three directions) instead of three dispatches.
    """
    if variant in GENERATED_VARIANTS:
        from ..kir import default_library

        nel, n = _check(u, dmat)
        outs = tuple(
            _check_out(u, o)
            for o in ((None, None, None) if out is None else out)
        )
        kernel = default_library().resolve("grad", n, nel, variant=variant)
        return kernel.fn(u, dmat, out=outs)
    o_r, o_s, o_t = (None, None, None) if out is None else out
    return (
        derivative(u, dmat, "r", variant, out=o_r),
        derivative(u, dmat, "s", variant, out=o_s),
        derivative(u, dmat, "t", variant, out=o_t),
    )


def grad_workspace(
    work: Workspace, u: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The reusable ``out=`` triple for :func:`grad` from a workspace."""
    return (
        work.like(u, key="grad:r"),
        work.like(u, key="grad:s"),
        work.like(u, key="grad:t"),
    )


def flops(n: int, nel: int, ndirections: int = 1) -> float:
    """Floating-point operations for the derivative kernel.

    Each output point needs ``N`` multiply-adds, so one direction over
    ``nel`` elements costs ``2 N^4 nel`` flops.
    """
    return 2.0 * float(n) ** 4 * nel * ndirections


def mem_bytes(n: int, nel: int, ndirections: int = 1) -> float:
    """Minimum memory traffic (read field + write result), float64."""
    return 16.0 * float(n) ** 3 * nel * ndirections
