"""The spectral-element derivative kernel — CMT-bone's hot spot.

Per element, a field ``u`` lives on an ``N x N x N`` GLL grid indexed
``(r, s, t)``; batches are stored ``(nel, N, N, N)`` in C order (``t``
fastest).  The partial derivative along each reference direction is a
small dense matrix product with the ``(N, N)`` derivative matrix ``D``:

* ``dudr[e,i,j,k] = sum_m D[i,m] u[e,m,j,k]``  (first index),
* ``duds[e,i,j,k] = sum_m D[j,m] u[e,i,m,k]``  (middle index),
* ``dudt[e,i,j,k] = sum_m D[k,m] u[e,i,j,m]``  (last index),

an ``O(N^4)`` operation per element (Section V of the paper).

Two implementation strategies mirror the paper's loop study:

``basic``
    The untransformed triple loop: one small 2-D product per pencil
    plane per element.  This is the Python analogue of the paper's
    "basic implementation" without loop fusion or unrolling.
``fused``
    Loop fusion: the element and pencil loops collapse into a single
    batched GEMM.  ``dudr`` and ``dudt`` fuse perfectly into one
    ``(N, N) x (N, N^2)``-per-element product; ``duds`` contracts the
    *middle* index, so fusion is only partial (a strided batched
    matmul) — exactly the access-pattern obstruction the paper reports
    for ``duds``.
``einsum``
    numpy's contraction engine with path optimization; used as an
    independent cross-check in tests.

All variants return newly allocated ``(nel, N, N, N)`` arrays and are
bit-for-bit interchangeable (same contraction order up to float
associativity; tests enforce agreement to tight tolerance).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

#: Variant names accepted by the public entry points.
VARIANTS = ("basic", "fused", "einsum")
#: Reference-direction names in CMT-nek order.
DIRECTIONS = ("r", "s", "t")


def _check(u: np.ndarray, dmat: np.ndarray) -> Tuple[int, int]:
    if u.ndim != 4 or u.shape[1] != u.shape[2] or u.shape[2] != u.shape[3]:
        raise ValueError(
            f"expected field of shape (nel, N, N, N), got {u.shape}"
        )
    n = u.shape[1]
    if dmat.shape != (n, n):
        raise ValueError(
            f"derivative matrix shape {dmat.shape} does not match N={n}"
        )
    return u.shape[0], n


# ----------------------------------------------------------------------
# basic: per-element, per-pencil-plane loops (no fusion, no unroll)
# ----------------------------------------------------------------------

def dudr_basic(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/dr: one ``D @ u[e, :, :, k]`` product per (element, fixed-t)
    (r, s)-plane, contracting the r axis."""
    nel, n = _check(u, dmat)
    out = np.empty_like(u)
    for e in range(nel):
        for k in range(n):
            out[e, :, :, k] = dmat @ u[e, :, :, k]
    return out


def duds_basic(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/ds: one ``D @ u[e, i]`` product per (element, fixed-r)
    (s, t)-plane, contracting the s axis."""
    nel, n = _check(u, dmat)
    out = np.empty_like(u)
    for e in range(nel):
        for i in range(n):
            out[e, i] = dmat @ u[e, i]
    return out


def dudt_basic(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/dt: one ``u[e, i] @ D.T`` product per (element, fixed-r)
    (s, t)-plane, contracting the t axis."""
    nel, n = _check(u, dmat)
    out = np.empty_like(u)
    dt = dmat.T
    for e in range(nel):
        for i in range(n):
            out[e, i] = u[e, i] @ dt
    return out


# ----------------------------------------------------------------------
# fused: element/pencil loops collapsed into batched GEMMs
# ----------------------------------------------------------------------

def dudr_fused(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/dr as one (N, N) x (N, N^2) GEMM per element (fully fused)."""
    nel, n = _check(u, dmat)
    return np.matmul(dmat, u.reshape(nel, n, n * n)).reshape(u.shape)


def duds_fused(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/ds as a batched (N, N) x (N, N) matmul over (element, r).

    The middle-index contraction cannot collapse into a single GEMM
    without transposing the data — the fusion obstruction the paper
    reports.  numpy broadcasts ``D`` over the ``nel*N`` batch instead.
    """
    nel, n = _check(u, dmat)
    return np.matmul(dmat, u.reshape(nel * n, n, n)).reshape(u.shape)


def dudt_fused(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    """d/dt as one (N^2, N) x (N, N) GEMM per element (fully fused)."""
    nel, n = _check(u, dmat)
    return np.matmul(u.reshape(nel, n * n, n), dmat.T).reshape(u.shape)


# ----------------------------------------------------------------------
# einsum: independent contraction path (cross-check variant)
# ----------------------------------------------------------------------

def dudr_einsum(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    _check(u, dmat)
    return np.einsum("im,emjk->eijk", dmat, u, optimize=True)


def duds_einsum(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    _check(u, dmat)
    return np.einsum("jm,eimk->eijk", dmat, u, optimize=True)


def dudt_einsum(u: np.ndarray, dmat: np.ndarray) -> np.ndarray:
    _check(u, dmat)
    return np.einsum("km,eijm->eijk", dmat, u, optimize=True)


_IMPLS: Dict[Tuple[str, str], Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    ("r", "basic"): dudr_basic,
    ("s", "basic"): duds_basic,
    ("t", "basic"): dudt_basic,
    ("r", "fused"): dudr_fused,
    ("s", "fused"): duds_fused,
    ("t", "fused"): dudt_fused,
    ("r", "einsum"): dudr_einsum,
    ("s", "einsum"): duds_einsum,
    ("t", "einsum"): dudt_einsum,
}


def derivative(
    u: np.ndarray,
    dmat: np.ndarray,
    direction: str,
    variant: str = "fused",
) -> np.ndarray:
    """Dispatch ``d u / d{direction}`` to the requested variant."""
    try:
        impl = _IMPLS[(direction, variant)]
    except KeyError:
        raise ValueError(
            f"unknown derivative ({direction!r}, {variant!r}); "
            f"directions: {DIRECTIONS}, variants: {VARIANTS}"
        ) from None
    return impl(u, dmat)


def dudr(u: np.ndarray, dmat: np.ndarray, variant: str = "fused") -> np.ndarray:
    """d/dr of a batch of element fields."""
    return derivative(u, dmat, "r", variant)


def duds(u: np.ndarray, dmat: np.ndarray, variant: str = "fused") -> np.ndarray:
    """d/ds of a batch of element fields."""
    return derivative(u, dmat, "s", variant)


def dudt(u: np.ndarray, dmat: np.ndarray, variant: str = "fused") -> np.ndarray:
    """d/dt of a batch of element fields."""
    return derivative(u, dmat, "t", variant)


def grad(
    u: np.ndarray, dmat: np.ndarray, variant: str = "fused"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All three reference-space partial derivatives of ``u``."""
    return (
        derivative(u, dmat, "r", variant),
        derivative(u, dmat, "s", variant),
        derivative(u, dmat, "t", variant),
    )


def flops(n: int, nel: int, ndirections: int = 1) -> float:
    """Floating-point operations for the derivative kernel.

    Each output point needs ``N`` multiply-adds, so one direction over
    ``nel`` elements costs ``2 N^4 nel`` flops.
    """
    return 2.0 * float(n) ** 4 * nel * ndirections


def mem_bytes(n: int, nel: int, ndirections: int = 1) -> float:
    """Minimum memory traffic (read field + write result), float64."""
    return 16.0 * float(n) ** 3 * nel * ndirections
