"""Reusable kernel workspaces: keyed pools of scratch arrays.

The RK loop evaluates the right-hand side three times per step, and a
naive implementation allocates a fresh ``(nel, N, N, N)`` array for
every flux component, derivative, and stage combination — dozens of
large allocations per timestep whose page faults and cache-cold writes
show up directly in the derivative-kernel wall clock (the effect the
``kernels/workspace`` benchmark scenario records).  A
:class:`Workspace` hands out named scratch buffers that persist across
calls: the first request for a ``(key, shape, dtype)`` triple
allocates, every later request returns the same array.

Correctness contract: a buffer's *contents* are undefined on entry
(callers overwrite or :meth:`zeros` them), and two live intermediates
must use distinct keys — the pool never aliases different keys.  All
consumers in :mod:`repro.solver` and :mod:`repro.kernels.derivatives`
are bitwise identical to their allocating counterparts; tests enforce
this.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class Workspace:
    """A pool of reusable scratch arrays keyed by (name, shape, dtype).

    Buffers are created on first use and cached for the lifetime of the
    workspace; :meth:`clear` drops them all (e.g. after a load-balance
    migration changes the local element count, making the old shapes
    stale).
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}

    def buffer(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        key: str = "",
    ) -> np.ndarray:
        """A C-contiguous scratch array of ``shape``; contents undefined."""
        k = (key, tuple(int(s) for s in shape), np.dtype(dtype))
        buf = self._buffers.get(k)
        if buf is None:
            buf = np.empty(k[1], dtype=k[2])
            self._buffers[k] = buf
        return buf

    def zeros(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        key: str = "",
    ) -> np.ndarray:
        """Like :meth:`buffer` but zero-filled on every request."""
        buf = self.buffer(shape, dtype=dtype, key=key)
        buf.fill(0.0)
        return buf

    def like(self, template: np.ndarray, key: str = "") -> np.ndarray:
        """Scratch array matching ``template``'s shape and dtype."""
        return self.buffer(template.shape, dtype=template.dtype, key=key)

    def clear(self) -> None:
        """Drop every cached buffer (stale shapes after repartitioning)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workspace({len(self)} buffers, {self.nbytes} bytes)"
