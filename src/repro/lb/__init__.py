"""Dynamic load balancing: cost monitoring, SFC repartitioning, migration.

The paper's Fig. 9 analysis reads MPI_Wait dominance as "the need for
better load balancing in the application"; CMT-nek's follow-up work
(Zhai et al., *Dynamic Load Balancing for Compressible Multiphase
Turbulence*) corrects it with periodic cost-driven repartitioning.
This package reproduces that subsystem for the mini-app:

- :mod:`repro.lb.cost` — per-rank virtual-time cost monitor (volume vs
  particle work), fed by the :class:`repro.mpi.clock.VirtualClock`;
- :mod:`repro.lb.sfc` — Morton space-filling-curve element ordering;
- :mod:`repro.lb.assignment` — :class:`ElementAssignment`, an explicit
  element-to-rank overlay compatible with the static brick partition's
  query surface;
- :mod:`repro.lb.partitioner` — weighted contiguous chunking of the
  curve with greedy boundary refinement;
- :mod:`repro.lb.policy` — :class:`RebalancePolicy` (threshold +
  hysteresis, every-K, manual);
- :mod:`repro.lb.migrate` — live element/particle migration over the
  crystal-router transport, charged to virtual time as ``LB_*`` sites;
- :mod:`repro.lb.manager` — :class:`LoadBalancer`, the per-rank driver
  hosts embed between RK steps.
"""

from .assignment import ElementAssignment
from .cost import (
    SITE_LB_MONITOR,
    CostMonitor,
    RankCost,
    capacities_from_costs,
    cost_imbalance,
    gather_costs,
    predicted_element_seconds,
)
from .manager import LoadBalancer, RebalanceEvent
from .migrate import (
    OP_LB_MIGRATE,
    OP_LB_REBUILD,
    SITE_LB_MIGRATE,
    SITE_LB_REBUILD,
    MigrationStats,
    migrate_elements,
    migrate_particles,
)
from .partitioner import chunk_bounds, predicted_times, refine_bounds, sfc_partition
from .policy import MODES, RebalancePolicy
from .sfc import element_ids, id_to_coords, morton_keys, sfc_order

__all__ = [
    "ElementAssignment",
    "CostMonitor",
    "RankCost",
    "LoadBalancer",
    "RebalanceEvent",
    "RebalancePolicy",
    "MigrationStats",
    "MODES",
    "SITE_LB_MONITOR",
    "SITE_LB_MIGRATE",
    "SITE_LB_REBUILD",
    "OP_LB_MIGRATE",
    "OP_LB_REBUILD",
    "capacities_from_costs",
    "cost_imbalance",
    "gather_costs",
    "predicted_element_seconds",
    "migrate_elements",
    "migrate_particles",
    "chunk_bounds",
    "refine_bounds",
    "predicted_times",
    "sfc_partition",
    "element_ids",
    "id_to_coords",
    "morton_keys",
    "sfc_order",
]
