"""The LoadBalancer: ties monitor, policy, and partitioner together.

The manager owns the *decision* side of dynamic load balancing; the
host (:class:`repro.core.cmtbone.CMTBone` or
:class:`repro.solver.driver.CMTSolver`) owns the *mechanics* — it
migrates its own field arrays and rebuilds its gather-scatter handle,
then commits the new assignment back.  Per step the host brackets its
work with ``monitor.begin_step()`` / ``monitor.end_step()`` and then
calls :meth:`LoadBalancer.propose`; when that returns a new
:class:`~repro.lb.assignment.ElementAssignment` the host migrates and
calls :meth:`commit`.

Every decision input is allgathered (``LB_monitor`` site), and policy
and partitioner are deterministic functions of that shared data, so
all ranks always agree on whether — and onto what — to rebalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .assignment import ElementAssignment
from .cost import (
    CostMonitor,
    RankCost,
    capacities_from_costs,
    cost_imbalance,
    gather_costs,
)
from .migrate import MigrationStats
from .partitioner import sfc_partition
from .policy import RebalancePolicy


@dataclass(frozen=True)
class RebalanceEvent:
    """Record of one committed rebalance (host-side stats attached)."""

    step: int
    imbalance_before: float
    stats: Optional[MigrationStats] = None


class LoadBalancer:
    """Per-rank load-balancing driver (one instance per rank)."""

    def __init__(
        self,
        comm,
        assignment: ElementAssignment,
        policy: RebalancePolicy,
    ) -> None:
        self.comm = comm
        self.assignment = assignment
        self.policy = policy
        self.monitor = CostMonitor(comm.clock)
        self.last_rebalance = -(10 ** 9)
        self.rebalances = 0
        self.events: List[RebalanceEvent] = []
        self.imbalance_history: List[float] = []
        self.last_costs: Optional[List[RankCost]] = None
        self._pending_imbalance = 1.0

    # -- decision ------------------------------------------------------------

    def propose(
        self,
        step: int,
        element_weights: Optional[np.ndarray] = None,
        force: bool = False,
    ) -> Optional[ElementAssignment]:
        """Check costs after ``step``; return a new assignment if due.

        Collective whenever the policy's check cadence fires (all ranks
        call the cost allgather together).  Returns ``None`` when no
        rebalance is warranted or the partitioner reproduces the
        current assignment.
        """
        if force:
            if self.monitor.window_steps == 0:
                return self._build(step, element_weights, costs=None)
            costs = gather_costs(self.comm, self.monitor)
            self.last_costs = costs
            self._pending_imbalance = cost_imbalance(costs)
            return self._build(step, element_weights, costs)
        if not self.policy.wants_check(step):
            return None
        if self.monitor.window_steps == 0:
            return None
        costs = gather_costs(self.comm, self.monitor)
        self.last_costs = costs
        imb = cost_imbalance(costs)
        self.imbalance_history.append(imb)
        if not self.policy.due(step, self.last_rebalance, imb):
            return None
        self._pending_imbalance = imb
        return self._build(step, element_weights, costs)

    def _build(
        self,
        step: int,
        element_weights: Optional[np.ndarray],
        costs: Optional[List[RankCost]],
    ) -> Optional[ElementAssignment]:
        caps = capacities_from_costs(costs) if costs else None
        new = sfc_partition(
            self.assignment.mesh,
            self.assignment.nranks,
            weights=element_weights,
            capacities=caps,
        )
        if new.same_as(self.assignment):
            return None
        return new

    # -- commit --------------------------------------------------------------

    def commit(
        self,
        assignment: ElementAssignment,
        step: int,
        stats: Optional[MigrationStats] = None,
        count: bool = True,
    ) -> None:
        """Adopt ``assignment`` after the host finished migrating.

        ``count=False`` restores a layout (e.g. from a checkpoint
        manifest) without recording a rebalance event.
        """
        self.assignment = assignment
        self.last_rebalance = step
        if count:
            self.rebalances += 1
            self.events.append(RebalanceEvent(
                step=step,
                imbalance_before=self._pending_imbalance,
                stats=stats,
            ))
        self._pending_imbalance = 1.0
        # Migration changes what the window's numbers mean.
        self.monitor.reset_window()

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        lines = [self.policy.describe()]
        lines.append(
            f"rebalances: {self.rebalances}"
            + (
                f" (last at step {self.last_rebalance})"
                if self.rebalances else ""
            )
        )
        if self.imbalance_history:
            lines.append(
                "measured imbalance (max/mean): "
                f"first={self.imbalance_history[0]:.3f} "
                f"last={self.imbalance_history[-1]:.3f}"
            )
        for ev in self.events:
            extra = ""
            if ev.stats is not None:
                extra = (
                    f", moved {ev.stats.elements_sent} el out / "
                    f"{ev.stats.elements_received} in"
                )
            lines.append(
                f"  step {ev.step}: imbalance "
                f"{ev.imbalance_before:.3f}{extra}"
            )
        return "\n".join(lines)
