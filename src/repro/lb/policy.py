"""When to rebalance: threshold, hysteresis, and cadence modes.

The policy is evaluated identically on every rank from identically
allgathered cost data, so rebalance decisions are collective-consistent
by construction — no extra vote is needed.

Modes
-----
``off``
    Never rebalance (the default; zero overhead, zero behavior change).
``auto``
    Rebalance when the measured max/mean cost imbalance exceeds
    ``threshold``, subject to ``min_interval`` steps of hysteresis
    since the last rebalance (migration is not free; chasing noise
    churns the mesh for nothing).
``every``
    Unconditionally rebalance every ``every`` steps (the manual-cadence
    mode CMT-nek exposes for studies).
``manual``
    Only when the host explicitly forces it.
"""

from __future__ import annotations

from dataclasses import dataclass

MODES = ("off", "auto", "every", "manual")


@dataclass(frozen=True)
class RebalancePolicy:
    """Decision rule driving :class:`repro.lb.manager.LoadBalancer`."""

    mode: str = "off"
    #: Max/mean cost-imbalance trigger for ``auto`` (1.0 = perfect).
    threshold: float = 1.10
    #: Cadence (steps) for ``every`` mode.
    every: int = 0
    #: Minimum steps between rebalances (``auto`` hysteresis).
    min_interval: int = 4
    #: Steps between imbalance checks (cost allgathers).
    check_every: int = 1

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"lb mode {self.mode!r} not in {MODES}")
        if self.threshold < 1.0:
            raise ValueError(f"threshold {self.threshold} must be >= 1.0")
        if self.mode == "every" and self.every < 1:
            raise ValueError("mode 'every' needs every >= 1")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def wants_check(self, step: int) -> bool:
        """Should costs be gathered after step ``step`` (0-based)?"""
        if not self.enabled or self.mode == "manual":
            return False
        return (step + 1) % self.check_every == 0

    def due(self, step: int, last_rebalance: int, imbalance: float) -> bool:
        """Rebalance after step ``step`` given the measured imbalance?"""
        if self.mode == "every":
            return (step + 1) % self.every == 0
        if self.mode == "auto":
            if step - last_rebalance < self.min_interval:
                return False
            return imbalance > self.threshold
        return False

    def describe(self) -> str:
        if self.mode == "off":
            return "lb: off"
        if self.mode == "every":
            return f"lb: every {self.every} steps"
        if self.mode == "manual":
            return "lb: manual"
        return (
            f"lb: auto (threshold={self.threshold:.3g}, "
            f"min_interval={self.min_interval})"
        )
