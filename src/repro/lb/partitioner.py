"""Weighted SFC repartitioning: curve -> contiguous chunks -> refinement.

The recipe (following CMT-nek's dynamic load-balancing papers):

1. Order all elements along the Morton curve (:mod:`repro.lb.sfc`).
2. Cut the curve into ``nranks`` contiguous chunks so each rank's
   *predicted time* — (sum of its element weights) x (its measured
   per-unit-weight cost) — is as even as the integer granularity
   allows.  Rank capacities fold measured heterogeneity in: a rank
   whose per-element cost came out 1.4x the mean gets a proportionally
   smaller share of the curve.
3. A greedy boundary-refinement pass slides single elements across
   adjacent chunk boundaries while the bottleneck (max predicted time
   of the two ranks at that boundary) strictly decreases.

Element weights default to 1 (pure volume work); callers with particle
load fold it in as ``w_e = 1 + n_particles(e) * t_part / t_elem``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..mesh.box import BoxMesh
from .assignment import ElementAssignment
from .sfc import sfc_order

#: Sweeps of the boundary-refinement pass; each sweep visits every
#: internal chunk boundary once, so a handful converges in practice.
REFINE_SWEEPS = 4


def chunk_bounds(
    cumw: np.ndarray, nranks: int, capacities: np.ndarray
) -> np.ndarray:
    """Split positions for capacity-weighted contiguous chunks.

    ``cumw`` is the cumulative element weight along the curve
    (``cumw[-1]`` = total).  Returns ``bounds`` of length ``nranks+1``
    with ``bounds[0] == 0`` and ``bounds[-1] == len(cumw)``; rank ``r``
    gets curve slots ``bounds[r]:bounds[r+1]``.  Every chunk is forced
    non-empty (required downstream: empty ranks have no gather-scatter
    presence).
    """
    nel = cumw.size
    if nel < nranks:
        raise ValueError(f"{nel} elements cannot fill {nranks} ranks")
    targets = np.cumsum(capacities) / capacities.sum() * cumw[-1]
    bounds = np.empty(nranks + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[1:] = np.searchsorted(cumw, targets - 1e-12) + 1
    bounds[-1] = nel
    # Enforce monotone, >= 1 element per chunk.
    for r in range(1, nranks):
        bounds[r] = max(bounds[r], bounds[r - 1] + 1)
    for r in range(nranks - 1, 0, -1):
        bounds[r] = min(bounds[r], bounds[r + 1] - 1)
    return bounds


def refine_bounds(
    cumw: np.ndarray,
    bounds: np.ndarray,
    unit_costs: np.ndarray,
    sweeps: int = REFINE_SWEEPS,
) -> np.ndarray:
    """Greedy single-element moves across adjacent chunk boundaries.

    At each internal boundary, moving one element left or right is
    accepted iff it strictly lowers ``max(time_left, time_right)``
    where ``time_r = chunk_weight_r * unit_costs[r]``.  This cleans up
    the integer-granularity error the searchsorted cut leaves behind.
    """
    bounds = bounds.copy()
    nranks = bounds.size - 1

    def chunk_w(r: int) -> float:
        lo, hi = bounds[r], bounds[r + 1]
        return float(cumw[hi - 1] - (cumw[lo - 1] if lo > 0 else 0.0))

    for _ in range(max(sweeps, 0)):
        improved = False
        for r in range(nranks - 1):
            wl, wr = chunk_w(r), chunk_w(r + 1)
            cl, cr = unit_costs[r], unit_costs[r + 1]
            cur = max(wl * cl, wr * cr)
            b = bounds[r + 1]
            # Move the boundary element leftward (rank r+1 -> r).
            if b + 1 < bounds[r + 2]:
                dw = float(cumw[b] - cumw[b - 1])
                if max((wl + dw) * cl, (wr - dw) * cr) < cur:
                    bounds[r + 1] += 1
                    improved = True
                    continue
            # Move the last element of rank r rightward (r -> r+1).
            if b - 1 > bounds[r]:
                dw = float(cumw[b - 1] - cumw[b - 2])
                if max((wl - dw) * cl, (wr + dw) * cr) < cur:
                    bounds[r + 1] -= 1
                    improved = True
        if not improved:
            break
    return bounds


def sfc_partition(
    mesh: BoxMesh,
    nranks: int,
    weights: Optional[Sequence[float]] = None,
    capacities: Optional[Sequence[float]] = None,
    refine: bool = True,
) -> ElementAssignment:
    """Build an :class:`ElementAssignment` by weighted SFC chunking.

    Parameters
    ----------
    weights:
        Per-element work, indexed by element lex id (default: uniform).
    capacities:
        Per-rank relative speed (elements-per-second); a rank with
        twice the capacity receives twice the weight.  Feeding
        ``1 / measured_per_element_seconds`` here is how measured
        imbalance is corrected.  Default: uniform.
    """
    order = sfc_order(mesh.shape)
    if weights is None:
        w = np.ones(order.size, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)[order]
        if w.size != order.size:
            raise ValueError(
                f"{w.size} weights for {order.size} elements"
            )
        if np.any(w <= 0):
            raise ValueError("element weights must be positive")
    if capacities is None:
        cap = np.ones(nranks, dtype=np.float64)
    else:
        cap = np.asarray(capacities, dtype=np.float64)
        if cap.shape != (nranks,):
            raise ValueError(f"need {nranks} capacities, got {cap.shape}")
        if np.any(cap <= 0):
            raise ValueError("rank capacities must be positive")

    cumw = np.cumsum(w)
    bounds = chunk_bounds(cumw, nranks, cap)
    if refine:
        bounds = refine_bounds(cumw, bounds, 1.0 / cap)

    owner = np.empty(mesh.nelgt, dtype=np.int64)
    for r in range(nranks):
        owner[order[bounds[r]:bounds[r + 1]]] = r
    return ElementAssignment(mesh, nranks, owner)


def predicted_times(
    assignment: ElementAssignment,
    weights: Optional[Sequence[float]] = None,
    unit_costs: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-rank predicted time for an assignment under the cost model."""
    if weights is None:
        wsum = assignment.counts().astype(np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        wsum = np.bincount(
            assignment.owner, weights=w, minlength=assignment.nranks
        )
    if unit_costs is None:
        return wsum
    return wsum * np.asarray(unit_costs, dtype=np.float64)
