"""Element-to-rank assignment overlay over the static brick partition.

:class:`repro.mesh.partition.Partition` hard-wires ownership to a 3-D
brick decomposition.  Everything built on top of it — the rank
topology, the DG face numbering, the boundary handler, the particle
tracker — only ever asks four questions: *what mesh is this*, *which
elements do I own (in a canonical local order)*, *who owns the element
at these coords*, and *what is its local index on its owner*.

:class:`ElementAssignment` answers the same questions from an explicit
``owner[element_id] -> rank`` table, so any ownership map produced by
the load balancer can be dropped into the existing machinery.  The
canonical local order is **ascending global lex id**, which for a
brick assignment coincides exactly with ``Partition.local_elements``
order (x fastest, then y, then z) — so the identity overlay built by
:meth:`from_partition` is layout-compatible with the static partition
and the first migration starts from a permutation-free baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..mesh.box import BoxMesh, Coord
from .sfc import element_ids, id_to_coords


class ElementAssignment:
    """Explicit global-element-id -> rank ownership table.

    Parameters
    ----------
    mesh:
        The global element box.
    nranks:
        Number of ranks; every value in ``owner`` must be in
        ``[0, nranks)`` and every rank must own at least one element.
    owner:
        ``(mesh.nelgt,)`` integer array mapping element lex id
        (``ix + ex*(iy + ey*iz)``) to owning rank.
    """

    def __init__(self, mesh: BoxMesh, nranks: int, owner: np.ndarray):
        owner = np.ascontiguousarray(np.asarray(owner, dtype=np.int64))
        if owner.shape != (mesh.nelgt,):
            raise ValueError(
                f"owner table has shape {owner.shape}, expected "
                f"({mesh.nelgt},) for mesh {mesh.shape}"
            )
        if owner.size and (owner.min() < 0 or owner.max() >= nranks):
            raise ValueError(
                f"owner ranks outside [0, {nranks}): "
                f"[{owner.min()}, {owner.max()}]"
            )
        counts = np.bincount(owner, minlength=nranks)
        if np.any(counts == 0):
            empty = np.flatnonzero(counts == 0).tolist()
            raise ValueError(f"ranks {empty} own no elements")
        self.mesh = mesh
        self.nranks = int(nranks)
        self.owner = owner
        self._counts = counts
        # Canonical local order: ascending global lex id per rank.
        # order[start[r]:start[r+1]] are rank r's element ids, sorted.
        self._order = np.argsort(owner, kind="stable").astype(np.int64)
        self._start = np.concatenate(([0], np.cumsum(counts)))
        # element id -> local index on its owner.
        self._lidx = np.empty(mesh.nelgt, dtype=np.int64)
        for r in range(nranks):
            ids = self._order[self._start[r]:self._start[r + 1]]
            self._lidx[ids] = np.arange(ids.size)

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_partition(partition) -> "ElementAssignment":
        """Identity overlay reproducing a brick partition's ownership."""
        mesh = partition.mesh
        ids = np.arange(mesh.nelgt, dtype=np.int64)
        coords = id_to_coords(mesh.shape, ids)
        try:
            owner = partition.owner_ranks(coords)
        except AttributeError:
            owner = np.array(
                [partition.owner_of(tuple(c)) for c in coords],
                dtype=np.int64,
            )
        return ElementAssignment(mesh, partition.nranks, owner)

    # -- ownership queries (Partition-compatible surface) --------------------

    def element_ids_of(self, rank: int) -> np.ndarray:
        """Global lex ids owned by ``rank``, in canonical local order."""
        self._check_rank(rank)
        return self._order[self._start[rank]:self._start[rank + 1]]

    def nel_of(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self._counts[rank])

    def counts(self) -> np.ndarray:
        """Elements per rank, ``(nranks,)``."""
        return self._counts.copy()

    def local_elements(self, rank: int) -> List[Coord]:
        """Global coords of this rank's elements, canonical order."""
        coords = id_to_coords(self.mesh.shape, self.element_ids_of(rank))
        return [tuple(c) for c in coords]

    def owner_of(self, ecoords: Coord) -> int:
        return int(self.owner[element_ids(self.mesh.shape, np.asarray(ecoords))])

    def owner_ranks(self, ecoords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of` for ``(k, 3)`` coords."""
        return self.owner[element_ids(self.mesh.shape, ecoords)]

    def local_index(self, rank: int, ecoords: Coord) -> int:
        eid = element_ids(self.mesh.shape, np.asarray(ecoords))
        if self.owner[eid] != rank:
            raise ValueError(f"element {tuple(ecoords)} not owned by rank {rank}")
        return int(self._lidx[eid])

    def local_indices(self, rank: int, ecoords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`local_index` for ``(k, 3)`` coords."""
        eids = element_ids(self.mesh.shape, ecoords)
        if not np.all(self.owner[eids] == rank):
            bad = np.asarray(ecoords)[self.owner[eids] != rank]
            raise ValueError(
                f"elements {bad[:4].tolist()}... not owned by rank {rank}"
            )
        return self._lidx[eids]

    # -- boundary / interior split (overlap pipeline) ------------------------

    def boundary_mask(self, rank: int) -> np.ndarray:
        """Boolean mask (canonical order) of cross-rank boundary elements.

        Unlike the brick partition's slab-based mask, this is computed
        from actual ownership adjacency: an element is boundary iff any
        of its six face neighbours (with periodic wrap) lives on another
        rank.  That is the exact set of elements carrying cross-rank
        shared face ids, so the split-phase overlap schedule remains
        valid for arbitrary assignments.
        """
        ids = self.element_ids_of(rank)
        coords = id_to_coords(self.mesh.shape, ids)
        mask = np.zeros(ids.size, dtype=bool)
        for axis in range(3):
            extent = self.mesh.shape[axis]
            for delta in (-1, 1):
                nb = coords.copy()
                nb[:, axis] += delta
                if self.mesh.periodic[axis]:
                    nb[:, axis] %= extent
                    valid = np.ones(ids.size, dtype=bool)
                else:
                    valid = (nb[:, axis] >= 0) & (nb[:, axis] < extent)
                if not valid.any():
                    continue
                nbids = element_ids(self.mesh.shape, nb[valid])
                sub = mask[valid]
                sub |= self.owner[nbids] != rank
                mask[valid] = sub
        return mask

    def boundary_local_indices(self, rank: int) -> np.ndarray:
        return np.flatnonzero(self.boundary_mask(rank))

    def interior_local_indices(self, rank: int) -> np.ndarray:
        return np.flatnonzero(~self.boundary_mask(rank))

    # -- serialization (checkpoint manifest interop) -------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable form for the checkpoint manifest."""
        return {
            "nranks": self.nranks,
            "owner": self.owner.tolist(),
        }

    @staticmethod
    def from_dict(mesh: BoxMesh, payload: Dict) -> "ElementAssignment":
        return ElementAssignment(
            mesh,
            int(payload["nranks"]),
            np.asarray(payload["owner"], dtype=np.int64),
        )

    # -- misc ----------------------------------------------------------------

    def same_as(self, other: Optional["ElementAssignment"]) -> bool:
        return (
            other is not None
            and self.nranks == other.nranks
            and self.mesh.shape == other.mesh.shape
            and np.array_equal(self.owner, other.owner)
        )

    def describe(self) -> str:
        c = self._counts
        return (
            f"ElementAssignment: {self.mesh.nelgt} elements on "
            f"{self.nranks} ranks (per-rank min={int(c.min())} "
            f"max={int(c.max())} mean={c.mean():.2f})"
        )

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} outside [0, {self.nranks})")
