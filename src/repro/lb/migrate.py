"""Live migration of element state (and particles) between RK steps.

Migration is an ordinary sparse all-to-all, so it rides the existing
crystal-router transport (:func:`repro.gs.crystal.route`): each rank
packs, per destination, the global ids of its departing elements plus
one flat float64 row per element holding *all* migrated field arrays
concatenated — one envelope per destination regardless of how many
arrays travel.  On arrival rows are split back into arrays and sorted
into the canonical ascending-global-id local order of the new
assignment.

Everything is charged to virtual time: the route's sends/receives show
up under the ``LB_migrate`` call site in the mpiP output, pack/unpack
memory passes are charged via ``comm.compute``, and an informational
``LB_Migrate`` pseudo-op row records the wall cost and byte volume of
each migration event (informational rows do not double-count into the
MPI fraction — the transport already billed the wire time).

Because every field array is moved bitwise (no arithmetic is applied
in flight) and all solver kernels are element-local, a migration is
exact: the fields of a rebalanced run are bit-identical, element for
element, to an unrebalanced run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..gs.crystal import route
from .assignment import ElementAssignment

#: mpiP call-site label for migration traffic on the transport.
SITE_LB_MIGRATE = "LB_migrate"
#: mpiP call-site label for the post-migration gather-scatter rebuild.
SITE_LB_REBUILD = "LB_gs_rebuild"
#: Informational pseudo-op summarizing a migration event.
OP_LB_MIGRATE = "LB_Migrate"
#: Informational pseudo-op summarizing a handle rebuild.
OP_LB_REBUILD = "LB_Rebuild"

#: A migrated field: (name, array, element_axis).
FieldSpec = Tuple[str, np.ndarray, int]


@dataclass(frozen=True)
class MigrationStats:
    """One rank's accounting for a single migration event."""

    elements_sent: int
    elements_received: int
    elements_kept: int
    bytes_sent: int
    seconds: float


def _pack_rows(arrays: Sequence[FieldSpec], nel: int) -> np.ndarray:
    """Flatten fields into per-element rows ``(nel, total_width)``."""
    cols = []
    for name, arr, axis in arrays:
        if arr.shape[axis] != nel:
            raise ValueError(
                f"field {name!r} has {arr.shape[axis]} elements on "
                f"axis {axis}, expected {nel}"
            )
        moved = np.moveaxis(arr, axis, 0)
        cols.append(np.ascontiguousarray(moved).reshape(nel, -1))
    if not cols:
        return np.empty((nel, 0), dtype=np.float64)
    return np.concatenate(cols, axis=1).astype(np.float64, copy=False)


def _unpack_rows(
    rows: np.ndarray, arrays: Sequence[FieldSpec], nel: int
) -> Dict[str, np.ndarray]:
    """Inverse of :func:`_pack_rows` for the new local element count."""
    out: Dict[str, np.ndarray] = {}
    col = 0
    for name, arr, axis in arrays:
        moved_shape = (nel,) + tuple(np.delete(arr.shape, axis))
        width = int(np.prod(moved_shape[1:], dtype=np.int64))
        block = rows[:, col:col + width].reshape(moved_shape)
        out[name] = np.ascontiguousarray(
            np.moveaxis(block, 0, axis)
        ).astype(arr.dtype, copy=False)
        col += width
    if col != rows.shape[1]:
        raise ValueError(
            f"migration rows carry {rows.shape[1]} columns, "
            f"fields consume {col}"
        )
    return out


def migrate_elements(
    comm,
    old_ids: np.ndarray,
    new_assignment: ElementAssignment,
    arrays: Sequence[FieldSpec],
) -> Tuple[Dict[str, np.ndarray], MigrationStats]:
    """Move element fields from the current layout to ``new_assignment``.

    Parameters
    ----------
    old_ids:
        Global lex ids of this rank's current elements, in the local
        order of the field arrays (for both the brick partition and an
        assignment this is ascending-global-id order).
    arrays:
        ``(name, array, element_axis)`` triples; every array must have
        ``len(old_ids)`` entries along its element axis.

    Returns the re-laid-out arrays (shaped for the new local element
    count, canonical ascending-global-id order) and per-rank stats.
    Collective: every rank must call this, even with nothing to send.
    """
    rank = comm.rank
    t0 = comm.clock.now
    old_ids = np.asarray(old_ids, dtype=np.int64)
    nel_old = old_ids.size
    rows = _pack_rows(arrays, nel_old)

    dest = new_assignment.owner[old_ids]
    records = {}
    bytes_sent = 0
    for d in np.unique(dest):
        sel = dest == d
        records[int(d)] = (old_ids[sel], rows[sel])
        if d != rank:
            bytes_sent += int(rows[sel].nbytes) + int(old_ids[sel].nbytes)
    # Pack/unpack of the envelopes is a real memory pass on both ends.
    comm.compute(mem_bytes=2.0 * rows.nbytes)

    arrived = route(records, comm, site=SITE_LB_MIGRATE)

    new_ids = new_assignment.element_ids_of(rank)
    nel_new = new_ids.size
    if rank in arrived:
        got_ids, got_rows = arrived[rank]
        got_rows = got_rows.reshape(got_ids.size, -1)
    else:
        got_ids = np.empty(0, dtype=np.int64)
        got_rows = np.empty((0, rows.shape[1]), dtype=np.float64)
    if got_ids.size != nel_new:
        raise AssertionError(
            f"rank {rank}: migration delivered {got_ids.size} elements, "
            f"assignment says {nel_new}"
        )
    # Sort arrivals into the canonical ascending-global-id order.
    order = np.argsort(got_ids, kind="stable")
    if not np.array_equal(got_ids[order], new_ids):
        raise AssertionError(
            f"rank {rank}: migrated element ids do not match assignment"
        )
    out = _unpack_rows(got_rows[order], arrays, nel_new)
    comm.compute(mem_bytes=2.0 * got_rows.nbytes)

    kept = int(np.count_nonzero(dest == rank))
    stats = MigrationStats(
        elements_sent=nel_old - kept,
        elements_received=nel_new - kept,
        elements_kept=kept,
        bytes_sent=bytes_sent,
        seconds=comm.clock.now - t0,
    )
    comm.profile.record(
        OP_LB_MIGRATE, SITE_LB_MIGRATE, stats.seconds, stats.bytes_sent,
        informational=True,
    )
    return out, stats


def migrate_particles(
    comm,
    ids: np.ndarray,
    pos: np.ndarray,
    dest_ranks: np.ndarray,
    site: str = SITE_LB_MIGRATE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Route particles (id + position rows) to their new owner ranks.

    A thin wrapper over the crystal transport used when a rebalance
    moves elements out from under their resident particles.  Returns
    the particles now resident on this rank, sorted by particle id for
    determinism.  Collective.
    """
    ids = np.asarray(ids, dtype=np.int64)
    pos = np.asarray(pos, dtype=np.float64).reshape(ids.size, -1)
    width = pos.shape[1] if pos.size else 3
    records = {}
    for d in np.unique(dest_ranks):
        sel = dest_ranks == d
        records[int(d)] = (ids[sel], pos[sel])
    comm.compute(mem_bytes=2.0 * (ids.nbytes + pos.nbytes))
    arrived = route(records, comm, site=site)
    if comm.rank in arrived:
        got_ids, got_pos = arrived[comm.rank]
        got_pos = got_pos.reshape(got_ids.size, -1)
    else:
        got_ids = np.empty(0, dtype=np.int64)
        got_pos = np.empty((0, width), dtype=np.float64)
    order = np.argsort(got_ids, kind="stable")
    return got_ids[order], got_pos[order]
