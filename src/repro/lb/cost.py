"""Online per-rank cost monitoring for the load balancer.

Costs are *virtual-time* quantities: the monitor brackets each
timestep and reads the rank's :class:`repro.mpi.clock.VirtualClock`
``compute_time`` counter, so everything the host charged through
``comm.compute`` — roofline kernel charges, injected imbalance
factors, pack/unpack passes — lands in the measurement exactly as it
lands in the makespan.  Particle work is attributed separately via
:meth:`CostMonitor.charge_particles` so the partitioner can weight
particle-laden elements; whatever is not claimed as particle time
counts as element-volume work.

The measured per-element cost is the ground truth the repartitioner
consumes (as ``capacity = 1 / cost``); :func:`predicted_element_seconds`
offers the analytic prior from :mod:`repro.kernels.counters` for
cold-start estimates and sanity checks against the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..kernels.counters import roofline_seconds

#: mpiP call-site label for the cost-exchange allgather.
SITE_LB_MONITOR = "LB_monitor"


@dataclass(frozen=True)
class RankCost:
    """One rank's accumulated cost over a measurement window."""

    rank: int
    nel: int
    volume_seconds: float
    particle_seconds: float = 0.0
    nparticles: int = 0
    steps: int = 1

    @property
    def total_seconds(self) -> float:
        return self.volume_seconds + self.particle_seconds

    @property
    def per_element_seconds(self) -> float:
        """Volume seconds per element per step (0 if unmeasurable)."""
        denom = self.nel * max(self.steps, 1)
        return self.volume_seconds / denom if denom else 0.0

    @property
    def per_particle_seconds(self) -> float:
        denom = self.nparticles * max(self.steps, 1)
        return self.particle_seconds / denom if denom else 0.0


def cost_imbalance(costs: List[RankCost]) -> float:
    """max/mean of per-step total cost across ranks (1.0 = balanced)."""
    totals = np.array([c.total_seconds / max(c.steps, 1) for c in costs])
    mean = totals.mean()
    return float(totals.max() / mean) if mean > 0 else 1.0


def capacities_from_costs(costs: List[RankCost]) -> Optional[np.ndarray]:
    """Per-rank capacities (1 / per-element cost) from measurements.

    Returns ``None`` when any rank's cost is unmeasurable (zero
    elements or zero charged compute) — the caller falls back to
    uniform capacities rather than dividing by zero.
    """
    per_el = np.array([c.per_element_seconds for c in costs])
    if np.any(per_el <= 0):
        return None
    return 1.0 / per_el


class CostMonitor:
    """Brackets timesteps and splits charged compute into work classes.

    Usage per step::

        monitor.begin_step()
        ...   # host runs one RK step, charging compute as usual
        monitor.end_step(nel=..., nparticles=...)

    Any particle-work charge inside the step is claimed with
    :meth:`charge_particles`; the step's remaining compute delta is
    element-volume work.  :meth:`window_cost` aggregates all steps
    since the last :meth:`reset_window` (windows are reset after every
    rebalance, since migration changes what the numbers mean).
    """

    def __init__(self, clock) -> None:
        self._clock = clock
        self._t0: Optional[float] = None
        self._part0 = 0.0
        self._particle_acc = 0.0
        self._win_volume = 0.0
        self._win_particle = 0.0
        self._win_steps = 0
        self._win_el_steps = 0      # sum of nel over steps
        self._win_part_steps = 0    # sum of nparticles over steps
        self.step_costs: List[RankCost] = []

    def begin_step(self) -> None:
        self._t0 = self._clock.compute_time
        self._part0 = self._particle_acc

    def charge_particles(self, seconds: float) -> None:
        """Attribute ``seconds`` of the current step to particle work."""
        self._particle_acc += float(seconds)

    def end_step(self, nel: int, nparticles: int = 0) -> RankCost:
        if self._t0 is None:
            raise RuntimeError("end_step without begin_step")
        total = self._clock.compute_time - self._t0
        particle = self._particle_acc - self._part0
        volume = max(total - particle, 0.0)
        self._t0 = None
        cost = RankCost(
            rank=-1, nel=int(nel), volume_seconds=volume,
            particle_seconds=particle, nparticles=int(nparticles),
        )
        self.step_costs.append(cost)
        self._win_volume += volume
        self._win_particle += particle
        self._win_steps += 1
        self._win_el_steps += int(nel)
        self._win_part_steps += int(nparticles)
        return cost

    def window_cost(self, rank: int) -> RankCost:
        """Aggregate cost since the last window reset."""
        steps = max(self._win_steps, 1)
        return RankCost(
            rank=rank,
            nel=self._win_el_steps // steps,
            volume_seconds=self._win_volume,
            particle_seconds=self._win_particle,
            nparticles=self._win_part_steps // steps,
            steps=self._win_steps,
        )

    @property
    def window_steps(self) -> int:
        return self._win_steps

    def reset_window(self) -> None:
        self._win_volume = 0.0
        self._win_particle = 0.0
        self._win_steps = 0
        self._win_el_steps = 0
        self._win_part_steps = 0


def gather_costs(comm, monitor: CostMonitor) -> List[RankCost]:
    """Allgather every rank's window cost (collective; ``LB_monitor``).

    The exchanged tuples are tiny, but the call is a real collective on
    the virtual network, so monitoring overhead shows up honestly in
    the mpiP output under the ``LB_monitor`` call site.
    """
    mine = monitor.window_cost(comm.rank)
    payload = (
        mine.nel, mine.volume_seconds, mine.particle_seconds,
        mine.nparticles, mine.steps,
    )
    gathered = comm.allgather(payload, site=SITE_LB_MONITOR)
    return [
        RankCost(
            rank=r, nel=nel, volume_seconds=vol,
            particle_seconds=part, nparticles=np_, steps=steps,
        )
        for r, (nel, vol, part, np_, steps) in enumerate(gathered)
    ]


def predicted_element_seconds(n: int, machine, variant: str = "fused") -> float:
    """Analytic per-element-per-RHS cost prior from the kernel counters."""
    return roofline_seconds(n, 1, machine, variant=variant)
