"""Morton (Z-order) space-filling-curve ordering of the element box.

Dynamic load balancing needs a one-dimensional ordering of elements
such that contiguous chunks of the order are spatially compact: cutting
the curve into per-rank intervals then yields partitions whose surface
(and hence gather-scatter traffic) stays close to the static brick
decomposition's.  CMT-nek's dynamic load-balancing work (Zhai et al.)
uses exactly this recipe — order elements along a space-filling curve,
then split the curve into weighted contiguous chunks.

The element *lex id* convention used throughout the LB subsystem is::

    id = ix + ex * (iy + ey * iz)        # x fastest

which matches the ascending order in which the static brick
:class:`repro.mesh.partition.Partition` enumerates its local elements.

Morton keys are built by bit-interleaving the (ix, iy, iz) coordinates.
Axes with fewer elements contribute fewer bits (only ``ceil(log2(e))``
levels), so flat boxes such as ``(64, 4, 1)`` still produce a compact
curve instead of wasting interleave slots on constant axes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

Coord = Tuple[int, int, int]


def element_ids(shape: Coord, coords: np.ndarray) -> np.ndarray:
    """Global lex ids for element coords ``(k, 3)`` (x fastest)."""
    ex, ey, _ez = shape
    c = np.asarray(coords, dtype=np.int64)
    return c[..., 0] + ex * (c[..., 1] + ey * c[..., 2])


def id_to_coords(shape: Coord, ids: np.ndarray) -> np.ndarray:
    """Inverse of :func:`element_ids`: ids -> ``(k, 3)`` coords."""
    ex, ey, _ez = shape
    ids = np.asarray(ids, dtype=np.int64)
    out = np.empty(ids.shape + (3,), dtype=np.int64)
    out[..., 0] = ids % ex
    out[..., 1] = (ids // ex) % ey
    out[..., 2] = ids // (ex * ey)
    return out


def _bits_for(extent: int) -> int:
    """Number of bits needed to index ``extent`` values (>= 1)."""
    return max(int(extent - 1).bit_length(), 1)


def morton_keys(shape: Coord, coords: np.ndarray) -> np.ndarray:
    """Morton keys for element coords ``(k, 3)``.

    Bits of each axis are interleaved from the least-significant level
    upward; an axis stops contributing once its extent is exhausted.
    Keys are unique within the box (they embed every coordinate bit).
    """
    c = np.asarray(coords, dtype=np.int64)
    nbits = [_bits_for(e) for e in shape]
    keys = np.zeros(c.shape[:-1], dtype=np.int64)
    shift = 0
    for level in range(max(nbits)):
        for axis in range(3):
            if level < nbits[axis]:
                keys |= ((c[..., axis] >> level) & 1) << shift
                shift += 1
    return keys


def sfc_order(shape: Coord) -> np.ndarray:
    """All element lex ids of the box, ordered along the Morton curve.

    Returns an ``(nelgt,)`` int64 array: position ``p`` on the curve
    holds the lex id of the ``p``-th element visited.  The ordering is
    deterministic (ties are impossible: keys are unique).
    """
    ex, ey, ez = shape
    nelgt = ex * ey * ez
    ids = np.arange(nelgt, dtype=np.int64)
    keys = morton_keys(shape, id_to_coords(shape, ids))
    return ids[np.argsort(keys, kind="stable")]
