"""Element-face topology: neighbours, face indexing, rank adjacency.

Face numbering convention (used consistently by ``full2face``, the DG
face numbering, and the solver's numerical flux):

====  =========  =====================  =================
face  direction  volume slice           face-local coords
====  =========  =====================  =================
 0     -r (x-)   ``u[e, 0,  :, :]``     (s, t)
 1     +r (x+)   ``u[e, -1, :, :]``     (s, t)
 2     -s (y-)   ``u[e, :, 0,  :]``     (r, t)
 3     +s (y+)   ``u[e, :, -1, :]``     (r, t)
 4     -t (z-)   ``u[e, :, :, 0 ]``     (r, s)
 5     +t (z+)   ``u[e, :, :, -1]``     (r, s)
====  =========  =====================  =================

Because the mesh is a structured box with every element identically
oriented, the face-local coordinate system of a face agrees between its
two adjacent elements — no orientation permutation is needed (general
unstructured meshes would need one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .box import BoxMesh, Coord
from .partition import Partition

#: Number of faces on a hexahedral element.
NFACES = 6

#: face index -> (axis, side) with side 0 = low, 1 = high.
FACE_AXIS_SIDE: Tuple[Tuple[int, int], ...] = (
    (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
)

#: face index -> the opposite face on the neighbouring element.
OPPOSITE_FACE: Tuple[int, ...] = (1, 0, 3, 2, 5, 4)


def neighbor_coords(
    mesh: BoxMesh, ecoords: Coord, face: int
) -> Optional[Coord]:
    """Element across ``face``, or ``None`` at a non-periodic boundary."""
    axis, side = FACE_AXIS_SIDE[face]
    delta = 1 if side == 1 else -1
    c = list(ecoords)
    c[axis] += delta
    extent = mesh.shape[axis]
    if 0 <= c[axis] < extent:
        return tuple(c)  # type: ignore[return-value]
    if mesh.periodic[axis]:
        c[axis] %= extent
        return tuple(c)  # type: ignore[return-value]
    return None


@dataclass(frozen=True)
class FaceLink:
    """One local element face and what is on the other side."""

    local_element: int
    face: int
    neighbor_rank: Optional[int]       # None at a physical boundary
    neighbor_coords: Optional[Coord]
    neighbor_face: Optional[int]

    @property
    def is_boundary(self) -> bool:
        return self.neighbor_rank is None

    @property
    def is_remote(self) -> bool:
        return self.neighbor_rank is not None


class RankTopology:
    """All face links for one rank's brick of elements.

    Precomputed once per run; the gather-scatter setup, ``full2face``
    exchanges, and the communication analysis all read from here.
    """

    def __init__(self, partition: Partition, rank: int):
        self.partition = partition
        self.rank = rank
        mesh = partition.mesh
        self.links: List[FaceLink] = []
        self._neighbor_ranks: Set[int] = set()
        for lidx, ecoords in enumerate(partition.local_elements(rank)):
            for face in range(NFACES):
                ncoords = neighbor_coords(mesh, ecoords, face)
                if ncoords is None:
                    self.links.append(
                        FaceLink(lidx, face, None, None, None)
                    )
                    continue
                nrank = partition.owner_of(ncoords)
                self.links.append(
                    FaceLink(
                        lidx, face, nrank, ncoords, OPPOSITE_FACE[face]
                    )
                )
                if nrank != rank:
                    self._neighbor_ranks.add(nrank)

    @property
    def neighbor_ranks(self) -> List[int]:
        """Distinct remote ranks sharing at least one element face."""
        return sorted(self._neighbor_ranks)

    def remote_links(self) -> List[FaceLink]:
        """Face links whose neighbour lives on another rank."""
        return [
            l for l in self.links
            if l.neighbor_rank is not None and l.neighbor_rank != self.rank
        ]

    def boundary_links(self) -> List[FaceLink]:
        return [l for l in self.links if l.is_boundary]

    def faces_to_rank(self) -> Dict[int, List[FaceLink]]:
        """Remote face links grouped by neighbour rank (sorted keys)."""
        out: Dict[int, List[FaceLink]] = {}
        for l in self.remote_links():
            out.setdefault(l.neighbor_rank, []).append(l)
        return {k: out[k] for k in sorted(out)}

    def surface_bytes_per_exchange(self, value_bytes: int = 8) -> int:
        """Bytes this rank ships per face exchange (one field)."""
        n = self.partition.mesh.n
        return len(self.remote_links()) * n * n * value_bytes
