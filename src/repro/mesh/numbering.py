"""Global GLL-point numberings: the index sets behind ``gs_setup``.

The paper (Section VI): "spectral element coefficients are stored
redundantly (and locally) on each processor instead of maintaining a
global matrix and each processor is given index sets containing the
global ids of the elements using ``gs_setup``".  Two numberings are
needed by the Nek-family mini-apps:

``continuous_numbering``
    Every geometrically coincident GLL point (across element faces,
    edges, and corners) shares one global id.  This is the C0
    direct-stiffness-summation numbering Nekbone's CG solve uses:
    ``gs_op(add)`` over it assembles the global operator.

``dg_face_numbering``
    Each geometric *face* of the mesh gets its own block of ``N^2``
    ids, shared only by the (at most two) elements abutting that face.
    ``gs_op(add)`` over it hands every element the sum of its own and
    its neighbour's face trace — subtracting its own value recovers
    the neighbour state the DG numerical flux needs.  This is CMT-nek's
    ``dg`` gather-scatter handle feeding ``full2face_cmt``.

Both return ``int64`` arrays shaped like the data they index
(``(nel, N, N, N)`` and ``(nel, 6, N, N)`` respectively).
"""

from __future__ import annotations

import numpy as np

from .box import BoxMesh
from .partition import Partition
from .topology import FACE_AXIS_SIDE, NFACES


def continuous_numbering(partition: Partition, rank: int) -> np.ndarray:
    """C0 global ids for this rank's volume data: ``(nel, N, N, N)``.

    Coincident points on element boundaries (faces, edges, corners,
    and periodic wraps) receive identical ids; ids are dense in
    ``[0, mesh.unique_point_count())``.
    """
    mesh = partition.mesh
    n = mesh.n
    npts = mesh.unique_points_shape()
    els = partition.local_elements(rank)
    gids = np.empty((len(els), n, n, n), dtype=np.int64)
    idx = np.arange(n)
    for lidx, (ix, iy, iz) in enumerate(els):
        gx = _global_line(ix, idx, n, npts[0], mesh.periodic[0])
        gy = _global_line(iy, idx, n, npts[1], mesh.periodic[1])
        gz = _global_line(iz, idx, n, npts[2], mesh.periodic[2])
        gids[lidx] = (
            gx[:, None, None]
            + npts[0] * (gy[None, :, None] + npts[1] * gz[None, None, :])
        )
    return gids


def _global_line(
    e: int, idx: np.ndarray, n: int, npts: int, periodic: bool
) -> np.ndarray:
    g = e * (n - 1) + idx
    if periodic:
        g = g % npts
    return g


def face_counts(mesh: BoxMesh) -> tuple:
    """Global face-plane counts per axis: (FX, FY, FZ).

    Axis ``a`` has ``shape[a]`` planes when periodic (every face
    interior) and ``shape[a] + 1`` otherwise (two boundary planes).
    """
    return tuple(
        s if per else s + 1 for s, per in zip(mesh.shape, mesh.periodic)
    )


def total_faces(mesh: BoxMesh) -> int:
    """Total number of geometric faces in the mesh."""
    ex, ey, ez = mesh.shape
    fx, fy, fz = face_counts(mesh)
    return fx * ey * ez + ex * fy * ez + ex * ey * fz


def dg_face_numbering(partition: Partition, rank: int) -> np.ndarray:
    """DG face-pair global ids for this rank: ``(nel, 6, N, N)``.

    Ids are ``face_id * N^2 + a + N * b`` where ``(a, b)`` are the
    face-local coordinates from :mod:`repro.mesh.topology`'s table.
    The two elements sharing a geometric face produce identical blocks,
    so ``gs_op(add)`` over these ids is exactly the two-sided face
    trace sum.
    """
    mesh = partition.mesh
    n = mesh.n
    ex, ey, ez = mesh.shape
    fx, fy, fz = face_counts(mesh)
    ofs_y = fx * ey * ez              # first y-face id
    ofs_z = ofs_y + ex * fy * ez      # first z-face id

    ab = np.arange(n)
    # Face-local point offsets a + N*b, identical for every face.
    pt = ab[:, None] + n * ab[None, :]

    els = partition.local_elements(rank)
    gids = np.empty((len(els), NFACES, n, n), dtype=np.int64)
    for lidx, (ix, iy, iz) in enumerate(els):
        for face in range(NFACES):
            axis, side = FACE_AXIS_SIDE[face]
            if axis == 0:
                plane = (ix + side) % fx if mesh.periodic[0] else ix + side
                fid = plane + fx * (iy + ey * iz)
            elif axis == 1:
                plane = (iy + side) % fy if mesh.periodic[1] else iy + side
                fid = ofs_y + ix + ex * (plane + fy * iz)
            else:
                plane = (iz + side) % fz if mesh.periodic[2] else iz + side
                fid = ofs_z + ix + ex * (iy + ey * plane)
            gids[lidx, face] = fid * (n * n) + pt
    return gids


def multiplicity(gids: np.ndarray) -> np.ndarray:
    """Local multiplicity of each id *within this rank's own data*.

    (Cross-rank multiplicity needs a gather-scatter of ones; this is
    the purely local piece used in setup sanity checks.)
    """
    flat = gids.ravel()
    _, inverse, counts = np.unique(flat, return_inverse=True, return_counts=True)
    return counts[inverse].reshape(gids.shape)
