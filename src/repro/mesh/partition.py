"""Domain decomposition: a 3-D processor grid over the element box.

Fig. 7 of the paper specifies its workload exactly in these terms::

    Number of processors: 256        Processor Distribution = 8, 8, 4
    Total elements = 25600           Element Distribution   = 40, 40, 16
    Elements per process = 100       Local Element Distrib. = 5, 5, 4

:class:`Partition` reproduces that decomposition: the global element
box is cut into equal bricks of ``lx x ly x lz`` local elements, one
brick per rank, ranks laid out lexicographically (x fastest) so that
rank order matches torus coordinates in
:class:`repro.perfmodel.topology.TorusTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .box import BoxMesh, Coord


def factor3(p: int) -> Coord:
    """Factor ``p`` into a near-cubic (px, py, pz) with px >= py >= pz.

    Greedy: repeatedly peel the largest prime factor onto the currently
    smallest dimension.  Good enough for the balanced processor grids
    mini-app studies use.
    """
    if p < 1:
        raise ValueError(f"process count must be >= 1, got {p}")
    dims = [1, 1, 1]
    for f in _prime_factors_desc(p):
        dims.sort()
        dims[0] *= f
    dims.sort(reverse=True)
    return tuple(dims)  # type: ignore[return-value]


def _prime_factors_desc(p: int) -> List[int]:
    out = []
    d = 2
    while d * d <= p:
        while p % d == 0:
            out.append(d)
            p //= d
        d += 1
    if p > 1:
        out.append(p)
    return sorted(out, reverse=True)


@dataclass(frozen=True)
class Partition:
    """Assignment of a :class:`BoxMesh` onto a 3-D processor grid."""

    mesh: BoxMesh
    proc_shape: Coord

    def __post_init__(self) -> None:
        for e, p in zip(self.mesh.shape, self.proc_shape):
            if p < 1:
                raise ValueError(f"bad processor grid {self.proc_shape}")
            if e % p != 0:
                raise ValueError(
                    f"element grid {self.mesh.shape} not divisible by "
                    f"processor grid {self.proc_shape}"
                )

    @staticmethod
    def auto(mesh: BoxMesh, nranks: int) -> "Partition":
        """Partition with an automatically factored processor grid."""
        return Partition(mesh=mesh, proc_shape=factor3(nranks))

    # -- processor grid ----------------------------------------------------

    @property
    def nranks(self) -> int:
        px, py, pz = self.proc_shape
        return px * py * pz

    def rank_coords(self, rank: int) -> Coord:
        """Rank -> (cx, cy, cz) on the processor grid, x fastest."""
        px, py, pz = self.proc_shape
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} outside grid {self.proc_shape}")
        return rank % px, (rank // px) % py, rank // (px * py)

    def coords_rank(self, coords: Coord) -> int:
        px, py, pz = self.proc_shape
        cx, cy, cz = coords
        if not (0 <= cx < px and 0 <= cy < py and 0 <= cz < pz):
            raise ValueError(f"coords {coords} outside grid {self.proc_shape}")
        return cx + px * (cy + py * cz)

    # -- element distribution ------------------------------------------------

    @property
    def local_shape(self) -> Coord:
        """Local element brick per rank (Fig. 7's 'Local Element Distribution')."""
        return tuple(
            e // p for e, p in zip(self.mesh.shape, self.proc_shape)
        )  # type: ignore[return-value]

    @property
    def nel_local(self) -> int:
        lx, ly, lz = self.local_shape
        return lx * ly * lz

    def owner_of(self, ecoords: Coord) -> int:
        """Rank owning the element at global coords ``ecoords``."""
        lx, ly, lz = self.local_shape
        return self.coords_rank(
            (ecoords[0] // lx, ecoords[1] // ly, ecoords[2] // lz)
        )

    def owner_ranks(self, ecoords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of` for an ``(k, 3)`` coords array."""
        ec = np.asarray(ecoords, dtype=np.int64)
        lx, ly, lz = self.local_shape
        px, py, _pz = self.proc_shape
        cx, cy, cz = ec[..., 0] // lx, ec[..., 1] // ly, ec[..., 2] // lz
        return cx + px * (cy + py * cz)

    def local_indices(self, rank: int, ecoords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`local_index` for an ``(k, 3)`` coords array."""
        ec = np.asarray(ecoords, dtype=np.int64)
        cx, cy, cz = self.rank_coords(rank)
        lx, ly, lz = self.local_shape
        kx = ec[..., 0] - cx * lx
        ky = ec[..., 1] - cy * ly
        kz = ec[..., 2] - cz * lz
        ok = (
            (kx >= 0) & (kx < lx)
            & (ky >= 0) & (ky < ly)
            & (kz >= 0) & (kz < lz)
        )
        if not np.all(ok):
            bad = ec[~ok]
            raise ValueError(
                f"elements {bad[:4].tolist()}... not owned by rank {rank}"
            )
        return kx + lx * (ky + ly * kz)

    def local_elements(self, rank: int) -> List[Coord]:
        """Global coords of this rank's elements, local-lex order."""
        cx, cy, cz = self.rank_coords(rank)
        lx, ly, lz = self.local_shape
        out = []
        for kz in range(lz):
            for ky in range(ly):
                for kx in range(lx):
                    out.append((cx * lx + kx, cy * ly + ky, cz * lz + kz))
        return out

    def local_index(self, rank: int, ecoords: Coord) -> int:
        """Global element coords -> this rank's local element index."""
        cx, cy, cz = self.rank_coords(rank)
        lx, ly, lz = self.local_shape
        kx = ecoords[0] - cx * lx
        ky = ecoords[1] - cy * ly
        kz = ecoords[2] - cz * lz
        if not (0 <= kx < lx and 0 <= ky < ly and 0 <= kz < lz):
            raise ValueError(
                f"element {ecoords} not owned by rank {rank}"
            )
        return kx + lx * (ky + ly * kz)

    # -- boundary / interior split (overlap pipeline) ------------------------

    def boundary_mask(self, rank: int) -> np.ndarray:
        """Boolean mask (local-lex order) of *boundary* elements.

        An element is boundary iff it touches a face of the rank's local
        brick along an axis where the processor grid is actually cut
        (``proc_shape[a] > 1``) — only those faces carry cross-rank
        shared ids, so only those elements contribute to the
        gather-scatter messages.  On a 1-rank grid every element is
        interior.  The split-phase solver extracts boundary traces
        first, posts the exchange, then overlaps interior work with the
        in-flight messages.
        """
        lx, ly, lz = self.local_shape
        mask = np.zeros((lz, ly, lx), dtype=bool)
        for axis, (p, l) in enumerate(zip(self.proc_shape, self.local_shape)):
            if p <= 1:
                continue
            # mask is indexed (z, y, x); partition axes are (x, y, z).
            ax = 2 - axis
            lo = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[ax] = 0
            hi[ax] = l - 1
            mask[tuple(lo)] = True
            mask[tuple(hi)] = True
        return mask.ravel()

    def boundary_local_indices(self, rank: int) -> np.ndarray:
        """Local indices (local-lex order) of boundary elements."""
        return np.flatnonzero(self.boundary_mask(rank))

    def interior_local_indices(self, rank: int) -> np.ndarray:
        """Local indices (local-lex order) of interior elements."""
        return np.flatnonzero(~self.boundary_mask(rank))

    def describe(self) -> str:
        """Fig. 7-style setup block."""
        lx, ly, lz = self.local_shape
        ex, ey, ez = self.mesh.shape
        px, py, pz = self.proc_shape
        return (
            f"Number of processors: {self.nranks}\n"
            f"Number of elements per process = {self.nel_local}\n"
            f"Total elements = {self.mesh.nelgt}\n"
            f"Number of gridpoints per element = {self.mesh.n}\n"
            f"Dimensions = 3\n"
            f"Processor Distribution (x,y,z) = {px}, {py}, {pz}\n"
            f"Element Distribution (x,y,z) = {ex}, {ey}, {ez}\n"
            f"Local Element Distribution (x,y,z) = {lx}, {ly}, {lz}"
        )
