"""``repro.mesh`` — box meshes, domain decomposition, and numberings.

Implements the partitioned hexahedral-element domain of Fig. 3: the
global element box, its decomposition onto a 3-D processor grid, the
face topology between elements/ranks, and the two global GLL-point
numbering schemes (C0 continuous for Nekbone, DG face-pair for
CMT-bone) that drive ``gs_setup``.
"""

from .box import BoxMesh
from .numbering import (
    continuous_numbering,
    dg_face_numbering,
    face_counts,
    multiplicity,
    total_faces,
)
from .partition import Partition, factor3
from .topology import (
    FACE_AXIS_SIDE,
    NFACES,
    OPPOSITE_FACE,
    FaceLink,
    RankTopology,
    neighbor_coords,
)

__all__ = [
    "BoxMesh",
    "FACE_AXIS_SIDE",
    "FaceLink",
    "NFACES",
    "OPPOSITE_FACE",
    "Partition",
    "RankTopology",
    "continuous_numbering",
    "dg_face_numbering",
    "face_counts",
    "factor3",
    "multiplicity",
    "neighbor_coords",
    "total_faces",
]
