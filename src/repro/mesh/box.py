"""Structured 3-D box meshes of hexahedral spectral elements.

CMT-nek partitions the computational domain into hexahedral elements,
each discretized by ``N^3`` GLL points (Fig. 3 of the paper).  The
mini-app workloads all run on structured boxes, so this module models a
box of ``ex x ey x ez`` identical hex elements with optional periodic
wrap per direction, and the affine reference-to-physical geometry that
a structured box admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..kernels.gll import gll_points

Coord = Tuple[int, int, int]


@dataclass(frozen=True)
class BoxMesh:
    """A global box of hexahedral elements.

    Parameters
    ----------
    shape:
        Elements per direction, ``(ex, ey, ez)``.
    n:
        GLL points per direction per element (polynomial order + 1).
    periodic:
        Per-direction periodicity flags.
    lengths:
        Physical box extents; elements are uniform bricks.
    """

    shape: Coord
    n: int
    periodic: Tuple[bool, bool, bool] = (True, True, True)
    lengths: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(s < 1 for s in self.shape):
            raise ValueError(f"bad element shape {self.shape}")
        if self.n < 2:
            raise ValueError(f"need at least 2 GLL points, got {self.n}")
        if any(l <= 0 for l in self.lengths):
            raise ValueError(f"bad box lengths {self.lengths}")

    # -- element indexing ------------------------------------------------

    @property
    def nelgt(self) -> int:
        """Total (global) element count, Nek's ``nelgt``."""
        ex, ey, ez = self.shape
        return ex * ey * ez

    def element_index(self, coords: Coord) -> int:
        """(ix, iy, iz) -> lexicographic global element id (x fastest)."""
        ex, ey, ez = self.shape
        ix, iy, iz = coords
        if not (0 <= ix < ex and 0 <= iy < ey and 0 <= iz < ez):
            raise ValueError(f"element coords {coords} outside {self.shape}")
        return ix + ex * (iy + ey * iz)

    def element_coords(self, eg: int) -> Coord:
        """Global element id -> (ix, iy, iz)."""
        ex, ey, ez = self.shape
        if not (0 <= eg < self.nelgt):
            raise ValueError(f"element id {eg} outside mesh of {self.nelgt}")
        return eg % ex, (eg // ex) % ey, eg // (ex * ey)

    def iter_elements(self) -> Iterator[Coord]:
        """All element coordinates in lexicographic order."""
        ex, ey, ez = self.shape
        for iz in range(ez):
            for iy in range(ey):
                for ix in range(ex):
                    yield (ix, iy, iz)

    # -- geometry ----------------------------------------------------------

    @property
    def element_lengths(self) -> Tuple[float, float, float]:
        """Physical edge lengths of one element."""
        return tuple(
            l / s for l, s in zip(self.lengths, self.shape)
        )  # type: ignore[return-value]

    @property
    def jacobian(self) -> Tuple[float, float, float]:
        """d(reference)/d(physical) scale per direction.

        A reference element spans [-1, 1]; physical derivative =
        reference derivative * (2 / element edge length).
        """
        return tuple(
            2.0 / h for h in self.element_lengths
        )  # type: ignore[return-value]

    def element_nodes(self, coords: Coord) -> np.ndarray:
        """Physical GLL node positions for one element.

        Returns shape ``(3, n, n, n)`` with axes (xyz, r, s, t).
        """
        xg = np.asarray(gll_points(self.n))
        hx, hy, hz = self.element_lengths
        ix, iy, iz = coords
        x = (ix + 0.5 * (xg + 1.0)) * hx
        y = (iy + 0.5 * (xg + 1.0)) * hy
        z = (iz + 0.5 * (xg + 1.0)) * hz
        out = np.empty((3, self.n, self.n, self.n))
        out[0] = x[:, None, None]
        out[1] = y[None, :, None]
        out[2] = z[None, None, :]
        return out

    @property
    def points_per_element(self) -> int:
        return self.n**3

    @property
    def total_points(self) -> int:
        """Total GLL points counted with element-boundary redundancy."""
        return self.nelgt * self.points_per_element

    def unique_points_shape(self) -> Coord:
        """Global unique point grid (continuous numbering) per direction."""
        out = []
        for s, per in zip(self.shape, self.periodic):
            npts = s * (self.n - 1)
            if not per:
                npts += 1
            out.append(npts)
        return tuple(out)  # type: ignore[return-value]

    def unique_point_count(self) -> int:
        nx, ny, nz = self.unique_points_shape()
        return nx * ny * nz
