"""``repro.validation`` — mini-app vs parent-application validation.

Implements the paper's declared next step (Section VII): quantify how
well CMT-bone's performance signature matches the application it
proxies, using the Barrett et al. mini-app validation methodology the
paper cites (Section II, refs [8]/[9]).
"""

from .compare import (
    AppSignature,
    CMTBONE_PHASE_MAP,
    PHASES,
    cmtbone_signature,
    solver_signature,
)
from .report import ValidationScore, score, validation_report

__all__ = [
    "AppSignature",
    "CMTBONE_PHASE_MAP",
    "PHASES",
    "ValidationScore",
    "cmtbone_signature",
    "score",
    "solver_signature",
    "validation_report",
]
