"""Mini-app validation: does CMT-bone represent CMT-nek?

Section II: "it is important to treat [mini-apps] as guidelines and
not targets ... A verification and validation methodology for
identifying and understanding this relationship is described in [8]
and [9]"; and Section VII: "A key focus in the near term will be
extensive validation of the relationship between CMT-bone and CMT-nek
on different architectures based on performance metrics."

This package implements that methodology for the reproduction: the DG
Euler solver (:mod:`repro.solver`) stands in for CMT-nek (it *is* the
conceptual model the mini-app abstracts), and CMT-bone is validated
against it.  Both run matched configurations (same N, elements/rank,
P, machine model) with the same phase taxonomy — ``derivative`` /
``surface`` / ``exchange`` / ``update`` — and their performance
signatures are compared on the metrics of the Barrett et al.
methodology: time-fraction breakdown, communication volume and
message sizes, and per-rank MPI fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.callgraph import CallGraphProfiler
from ..analysis.mpip import summarize_fractions
from ..core.cmtbone import CMTBone
from ..core.config import CMTBoneConfig
from ..mpi import Runtime
from ..perfmodel import MachineModel
from ..solver import CMTSolver, SolverConfig, from_primitives

#: The shared phase taxonomy both applications are mapped onto.
PHASES = ("derivative", "surface", "exchange", "update", "other")

#: Mini-app region -> taxonomy phase.  The split-phase regions of the
#: overlapped schedule both map onto "exchange" so overlapped and
#: blocking runs are compared on the same taxonomy.
CMTBONE_PHASE_MAP = {
    "ax_": "derivative",
    "full2face_cmt": "surface",
    "gs_op_": "exchange",
    "gs_op_begin": "exchange",
    "gs_op_finish": "exchange",
    "add2s2": "update",
}


@dataclass(frozen=True)
class AppSignature:
    """One application's performance signature on a workload."""

    label: str
    phase_fractions: Dict[str, float]
    total_time: float
    mpi_pct_mean: float
    mpi_pct_max: float
    total_message_bytes: int
    message_count: int

    @property
    def mean_message_bytes(self) -> float:
        if not self.message_count:
            return 0.0
        return self.total_message_bytes / self.message_count


def _fractions_from(
    stats_list, name_to_phase
) -> Dict[str, float]:
    totals: Dict[str, float] = {p: 0.0 for p in PHASES}
    grand = 0.0
    for stats in stats_list:
        for name, st in stats.items():
            t = st.self_time
            if t <= 0:
                continue
            phase = name_to_phase(name)
            if phase is None:
                continue
            totals[phase] += t
            grand += t
    if grand == 0:
        return dict.fromkeys(PHASES, 0.0)
    return {p: totals[p] / grand for p in PHASES}


def _message_stats(profile) -> Tuple[int, int]:
    total_bytes = 0
    count = 0
    for row in profile.aggregates():
        if row.op in ("MPI_Send", "MPI_Isend") and row.bytes_total > 0:
            total_bytes += row.bytes_total
            count += row.count
    return total_bytes, count


def cmtbone_signature(
    config: CMTBoneConfig,
    nranks: int,
    machine: Optional[MachineModel] = None,
    backend: str = "threads",
) -> AppSignature:
    """Run the mini-app on the workload and extract its signature.

    The signature is built entirely from virtual-time quantities, so it
    is identical whichever execution ``backend`` carries the ranks.
    """
    runtime = Runtime(
        nranks=nranks, machine=machine or MachineModel.preset("compton"),
        backend=backend,
    )
    results = runtime.run(lambda comm: CMTBone(comm, config).run())

    def to_phase(name: str):
        if name in CMTBONE_PHASE_MAP:
            return CMTBONE_PHASE_MAP[name]
        if name in ("cmt_timestep",):
            return None          # pure container, no self time
        return "other"           # setup, monitor

    fractions = _fractions_from(
        [r.profiler.stats for r in results], to_phase
    )
    profile = runtime.job_profile()
    mean_pct, _mn, mx, _ = summarize_fractions(profile)
    tb, mc = _message_stats(profile)
    return AppSignature(
        label="CMT-bone (mini-app)",
        phase_fractions=fractions,
        total_time=max(r.vtime_total for r in results),
        mpi_pct_mean=mean_pct,
        mpi_pct_max=mx,
        total_message_bytes=tb,
        message_count=mc,
    )


def solver_signature(
    config: CMTBoneConfig,
    nranks: int,
    machine: Optional[MachineModel] = None,
    backend: str = "threads",
) -> AppSignature:
    """Run the parent-application stand-in (real DG solver) matched.

    Matches the mini-app workload knob for knob: same partition, same
    N, same step count (each mini-app "RK stage" pipeline corresponds
    to one rhs evaluation; the solver's SSP-RK3 performs 3 per step,
    like the mini-app's ``rk_stages=3``).
    """
    partition = config.build_partition(nranks)

    def main(comm):
        solver = CMTSolver(
            comm, partition,
            config=SolverConfig(
                gs_method=config.gs_method or "pairwise",
                kernel_variant=config.kernel_variant,
                overlap=config.overlap,
            ),
        )
        prof = CallGraphProfiler(comm.clock)
        solver.profiler = prof
        rng = np.random.default_rng(7 + comm.rank)
        shape = (partition.nel_local,) + (partition.mesh.n,) * 3
        rho = 1.0 + 1e-3 * rng.standard_normal(shape)
        vel = np.zeros((3,) + shape)
        vel[0] = 0.1
        state = from_primitives(rho, vel, np.ones(shape))
        dt = solver.stable_dt(state)
        state = solver.run(state, nsteps=config.nsteps, dt=dt,
                           monitor_every=config.monitor_every)
        return prof, comm.clock.now

    runtime = Runtime(
        nranks=nranks, machine=machine or MachineModel.preset("compton"),
        backend=backend,
    )
    results = runtime.run(main)

    def to_phase(name: str):
        return name if name in PHASES else "other"

    fractions = _fractions_from(
        [prof.stats for prof, _ in results], to_phase
    )
    profile = runtime.job_profile()
    mean_pct, _mn, mx, _ = summarize_fractions(profile)
    tb, mc = _message_stats(profile)
    return AppSignature(
        label="CMT-nek stand-in (DG solver)",
        phase_fractions=fractions,
        total_time=max(t for _p, t in results),
        mpi_pct_mean=mean_pct,
        mpi_pct_max=mx,
        total_message_bytes=tb,
        message_count=mc,
    )
