"""Similarity scoring and report rendering for mini-app validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.tables import render_table
from .compare import PHASES, AppSignature


@dataclass(frozen=True)
class ValidationScore:
    """Similarity of the mini-app's signature to the parent's.

    All components lie in [0, 1]; 1 is a perfect match.
    """

    phase_similarity: float       # 1 - total-variation distance
    comm_volume_ratio: float      # min/max of total exchanged bytes
    message_size_ratio: float     # min/max of mean message size
    mpi_fraction_ratio: float     # min/max of mean MPI %

    @property
    def overall(self) -> float:
        """Geometric mean of the component scores."""
        parts = [
            max(self.phase_similarity, 1e-12),
            max(self.comm_volume_ratio, 1e-12),
            max(self.message_size_ratio, 1e-12),
            max(self.mpi_fraction_ratio, 1e-12),
        ]
        prod = 1.0
        for p in parts:
            prod *= p
        return prod ** (1.0 / len(parts))


def _ratio(a: float, b: float) -> float:
    if a <= 0 or b <= 0:
        return 0.0 if (a > 0) != (b > 0) else 1.0
    return min(a, b) / max(a, b)


def score(mini: AppSignature, parent: AppSignature) -> ValidationScore:
    """Compare two signatures on the methodology's metrics."""
    tv = 0.5 * sum(
        abs(mini.phase_fractions.get(p, 0.0)
            - parent.phase_fractions.get(p, 0.0))
        for p in PHASES
    )
    return ValidationScore(
        phase_similarity=1.0 - tv,
        comm_volume_ratio=_ratio(
            mini.total_message_bytes, parent.total_message_bytes
        ),
        message_size_ratio=_ratio(
            mini.mean_message_bytes, parent.mean_message_bytes
        ),
        mpi_fraction_ratio=_ratio(
            mini.mpi_pct_mean, parent.mpi_pct_mean
        ),
    )


def validation_report(
    mini: AppSignature,
    parent: AppSignature,
    scores: Optional[ValidationScore] = None,
) -> str:
    """The side-by-side validation table + scores."""
    scores = scores or score(mini, parent)
    rows: List[tuple] = []
    for p in PHASES:
        rows.append((
            f"time % in {p}",
            100 * mini.phase_fractions.get(p, 0.0),
            100 * parent.phase_fractions.get(p, 0.0),
        ))
    rows += [
        ("MPI % (mean)", mini.mpi_pct_mean, parent.mpi_pct_mean),
        ("p2p bytes total", float(mini.total_message_bytes),
         float(parent.total_message_bytes)),
        ("p2p messages", float(mini.message_count),
         float(parent.message_count)),
        ("mean message bytes", mini.mean_message_bytes,
         parent.mean_message_bytes),
    ]
    table = render_table(
        ["metric", mini.label, parent.label], rows, floatfmt="{:.4g}"
    )
    score_rows = [
        ("phase-breakdown similarity", scores.phase_similarity),
        ("comm-volume ratio", scores.comm_volume_ratio),
        ("message-size ratio", scores.message_size_ratio),
        ("MPI-fraction ratio", scores.mpi_fraction_ratio),
        ("OVERALL (geometric mean)", scores.overall),
    ]
    score_table = render_table(
        ["similarity metric (1 = perfect)", "score"],
        score_rows, floatfmt="{:.3f}",
    )
    return f"{table}\n\n{score_table}"
