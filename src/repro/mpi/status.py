"""Receive status objects, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Metadata about a completed receive.

    Attributes
    ----------
    source:
        Rank of the sender within the communicator the receive was
        posted on.
    tag:
        Tag carried by the matched message.
    nbytes:
        Modelled wire size of the message payload.
    arrival_vtime:
        Virtual time at which the message arrived at the receiver's NIC
        (before the receiver-side overhead was charged).
    wait_vtime:
        Virtual seconds the receiving rank spent blocked for this
        message (zero when the message was already waiting).
    """

    source: int
    tag: int
    nbytes: int
    arrival_vtime: float
    wait_vtime: float

    def Get_source(self) -> int:
        """MPI-style accessor for :attr:`source`."""
        return self.source

    def Get_tag(self) -> int:
        """MPI-style accessor for :attr:`tag`."""
        return self.tag

    def Get_count(self) -> int:
        """MPI-style accessor: payload size in bytes."""
        return self.nbytes
