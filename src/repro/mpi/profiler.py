"""mpiP-style per-rank, per-callsite MPI profiling.

The paper instruments CMT-bone with mpiP [Vetter & Chambreau 2004] and
reports (Figs. 8-10):

* the percentage of total execution time each rank spends in MPI,
* the twenty most expensive MPI call *sites* aggregated over ranks, and
* the total and average message size per call site.

This module reproduces that bookkeeping inside the simulated runtime.
Every communicator operation records ``(op name, call site)`` together
with the virtual seconds spent and bytes moved.  Each rank writes to its
own :class:`RankProfile` without locking; the runtime merges them into
a :class:`JobProfile` after the job completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class CallRecord:
    """Aggregate statistics for one (op, site) pair on one rank."""

    op: str
    site: str
    count: int = 0
    vtime: float = 0.0
    bytes_total: int = 0
    vtime_max: float = 0.0

    def add(self, vtime: float, nbytes: int) -> None:
        self.count += 1
        self.vtime += vtime
        self.bytes_total += nbytes
        if vtime > self.vtime_max:
            self.vtime_max = vtime

    @property
    def bytes_avg(self) -> float:
        return self.bytes_total / self.count if self.count else 0.0


class RankProfile:
    """MPI profile for a single rank (no locking: single-writer)."""

    def __init__(self, rank: int):
        self.rank = rank
        self.records: Dict[Tuple[str, str], CallRecord] = {}
        self.mpi_time = 0.0

    def record(
        self,
        op: str,
        site: str,
        vtime: float,
        nbytes: int,
        informational: bool = False,
    ) -> None:
        """Add one call to the ``(op, site)`` aggregate.

        ``informational=True`` rows (the ``FAULT_*`` pseudo-ops emitted
        by :mod:`repro.faults`) appear in reports but do not accumulate
        into ``mpi_time`` — their cost is already inside the enclosing
        operation's clock delta, so counting them again would inflate
        the per-rank MPI fraction.
        """
        key = (op, site)
        rec = self.records.get(key)
        if rec is None:
            rec = CallRecord(op=op, site=site)
            self.records[key] = rec
        rec.add(vtime, nbytes)
        if not informational:
            self.mpi_time += vtime


@dataclass
class SiteAggregate:
    """One row of the mpiP 'Aggregate Time of Callsites' report."""

    op: str
    site: str
    count: int
    vtime: float
    vtime_mean: float
    vtime_max: float
    bytes_total: int
    bytes_avg: float
    app_pct: float
    mpi_pct: float


@dataclass
class JobProfile:
    """Merged MPI profile for the whole job.

    ``rank_totals`` maps rank -> (app virtual time, mpi virtual time)
    and backs the Fig. 8 per-rank MPI-fraction plot; ``aggregates()``
    backs Figs. 9 and 10.
    """

    nranks: int
    rank_totals: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    rank_profiles: List[RankProfile] = field(default_factory=list)

    @property
    def app_time(self) -> float:
        """Total virtual app time summed over ranks."""
        return sum(t for t, _ in self.rank_totals.values())

    @property
    def mpi_time(self) -> float:
        """Total virtual MPI time summed over ranks."""
        return sum(m for _, m in self.rank_totals.values())

    def mpi_fraction(self, rank: int) -> float:
        """Fraction of rank's virtual time spent inside MPI calls."""
        app, mpi = self.rank_totals[rank]
        return mpi / app if app > 0 else 0.0

    def mpi_fractions(self) -> List[float]:
        """Per-rank MPI fractions in rank order (Fig. 8 series)."""
        return [self.mpi_fraction(r) for r in sorted(self.rank_totals)]

    def aggregates(self) -> List[SiteAggregate]:
        """Merge per-rank records by (op, site); sort by total time."""
        merged: Dict[Tuple[str, str], CallRecord] = {}
        for rp in self.rank_profiles:
            for key, rec in rp.records.items():
                agg = merged.get(key)
                if agg is None:
                    agg = CallRecord(op=rec.op, site=rec.site)
                    merged[key] = agg
                agg.count += rec.count
                agg.vtime += rec.vtime
                agg.bytes_total += rec.bytes_total
                agg.vtime_max = max(agg.vtime_max, rec.vtime_max)
        app = self.app_time or 1.0
        mpi = self.mpi_time or 1.0
        rows = [
            SiteAggregate(
                op=rec.op,
                site=rec.site,
                count=rec.count,
                vtime=rec.vtime,
                vtime_mean=rec.vtime / rec.count if rec.count else 0.0,
                vtime_max=rec.vtime_max,
                bytes_total=rec.bytes_total,
                bytes_avg=rec.bytes_avg,
                app_pct=100.0 * rec.vtime / app,
                mpi_pct=100.0 * rec.vtime / mpi,
            )
            for rec in merged.values()
        ]
        rows.sort(key=lambda r: r.vtime, reverse=True)
        return rows

    def top_sites(self, n: int = 20) -> List[SiteAggregate]:
        """The ``n`` most expensive call sites (Fig. 9)."""
        return self.aggregates()[:n]

    def by_op(self) -> Dict[str, float]:
        """Total virtual time per MPI operation name."""
        out: Dict[str, float] = {}
        for row in self.aggregates():
            out[row.op] = out.get(row.op, 0.0) + row.vtime
        return out

    def message_size_rows(
        self, n: int = 20, ops: Optional[Iterable[str]] = None
    ) -> List[SiteAggregate]:
        """Rows for the message-size report (Fig. 10).

        Sorted by call count (the paper plots the *most frequently
        called* sites); collective/wait rows with zero bytes are
        dropped.
        """
        rows = [r for r in self.aggregates() if r.bytes_total > 0]
        if ops is not None:
            allow = set(ops)
            rows = [r for r in rows if r.op in allow]
        rows.sort(key=lambda r: r.count, reverse=True)
        return rows[:n]
