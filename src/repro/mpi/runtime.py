"""SPMD job runtime: per-rank state, semantics, and backend dispatch.

:class:`Runtime` owns the per-rank state (mailboxes, virtual clocks,
profiles) and delegates *execution* to a selectable
:class:`~repro.mpi.backend.Backend`:

* ``threads`` (default) — one Python thread per simulated rank.
* ``procs`` — one forked OS process per rank with shared-memory
  envelope delivery; real kernel work escapes the GIL and runs truly
  in parallel (see :mod:`repro.mpi.backend`).

Either way, a watchdog detects deadlock (every live rank blocked with
no matching progress) and aborts the job with a diagnostic snapshot
instead of hanging the test suite, and virtual-time metrics are
identical across backends.

Typical use::

    from repro.mpi import Runtime
    from repro.perfmodel import MachineModel

    def main(comm):
        part = comm.allreduce(comm.rank)
        return part

    rt = Runtime(nranks=8, machine=MachineModel.preset("compton"))
    results = rt.run(main)        # list of per-rank return values
    profile = rt.job_profile()    # mpiP-style statistics
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from .clock import ClockStats, TimePolicy, VirtualClock
from .communicator import Comm
from .errors import AbortError, DeadlockError, MPIError, RankCrashError
from .profiler import JobProfile, RankProfile
from .transport import BlockTracker, ChannelSeq, Mailbox

_WORLD_CID = 1


class Runtime:
    """Executes an SPMD function over ``nranks`` simulated ranks."""

    def __init__(
        self,
        nranks: int,
        machine: Optional[Any] = None,
        time_policy: TimePolicy = TimePolicy.MODELED,
        deadlock_detection: bool = True,
        trace_messages: bool = False,
        fault_plan: Optional[Any] = None,
        fault_base_step: int = 0,
        backend: Union[str, Any] = "threads",
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        # Imported here to avoid a hard cycle at module import time.
        from ..perfmodel.machine import MachineModel
        from .backend import resolve_backend

        self.nranks = nranks
        self.machine = machine if machine is not None else MachineModel.default()
        self.time_policy = time_policy
        self.deadlock_detection = deadlock_detection
        self.backend = resolve_backend(backend)
        #: Active fault injector, or ``None`` for a fault-free job.
        #: ``fault_base_step`` aligns the plan's global step numbers
        #: with a restarted driver's local ones (see recovery loop).
        self.faults = None
        if fault_plan is not None:
            from ..faults import FaultInjector

            self.faults = FaultInjector(fault_plan, base_step=fault_base_step)
        #: Message trace for external network-simulation export, or
        #: ``None`` when tracing is off (see ``repro.mpi.trace``).
        self.trace = None
        if trace_messages:
            from .trace import MessageTrace

            self.trace = MessageTrace(nranks)

        self.tracker = BlockTracker()
        self.seq = ChannelSeq()
        self.abort_event = threading.Event()
        self._mailboxes = [Mailbox(r) for r in range(nranks)]
        self._clocks = [VirtualClock() for _ in range(nranks)]
        self._profiles = [RankProfile(r) for r in range(nranks)]
        self._finished = [False] * nranks
        self._finished_lock = threading.Lock()
        self._ran = False

    # -- wiring --------------------------------------------------------

    def mailbox(self, world_rank: int) -> Mailbox:
        return self._mailboxes[world_rank]

    def context_id(self, key: Tuple) -> int:
        """Deterministically map a derivation key to a context id.

        Every member of a ``split``/``dup`` computes the same ``key``
        (parent cid, per-parent derivation counter, operation tag), so
        every member maps it to the same id.  The id is a pure, stable
        hash of the key — *not* a first-come registry allocation — so
        ranks running in separate OS processes (the ``procs`` backend)
        agree on it without any shared allocator, even when disjoint
        subcommunicators derive different numbers of comms.  56-bit
        digests keep accidental collisions negligible, and internal
        collective contexts live in a disjoint range (see
        ``_INTERNAL_CID`` in the communicator).
        """
        digest = hashlib.blake2b(
            repr(key).encode("utf-8"), digest_size=7
        ).digest()
        return _WORLD_CID + 1 + int.from_bytes(digest, "big")

    def world_comm(self, rank: int) -> Comm:
        """Build the COMM_WORLD handle for ``rank``."""
        return Comm(
            runtime=self,
            cid=_WORLD_CID,
            group=range(self.nranks),
            world_rank=rank,
            clock=self._clocks[rank],
            profile=self._profiles[rank],
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        main: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
    ) -> List[Any]:
        """Run ``main(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order.  If any rank
        raises, the job is aborted and the first error is re-raised on
        the calling thread (other ranks receive :class:`AbortError`).
        A :class:`Runtime` is single-shot: build a new one per job.
        """
        if self._ran:
            raise MPIError(
                "Runtime is single-shot; create a new instance "
                "(or call reset() to re-arm this one)"
            )
        self._ran = True
        outcome = self.backend.execute(
            self, main, tuple(args), dict(kwargs or {})
        )
        if self.deadlock_report is not None:
            raise DeadlockError(self.deadlock_report)
        primary = self._select_error(outcome.errors)
        if primary is not None:
            rank = outcome.errors.index(primary)
            tb = outcome.tracebacks[rank]
            if tb:
                raise MPIError(
                    f"rank {rank} failed:\n{tb}"
                ) from primary
            raise primary
        return outcome.results

    def reset(self) -> "Runtime":
        """Re-arm this Runtime for another :meth:`run` call.

        Replaces every piece of per-job state — mailboxes, clocks,
        profiles, sequence counters, finished flags, the abort event —
        with fresh instances, so a second job starts from exactly the
        state a newly constructed Runtime would have.  Fault injectors
        and message traces are job-scoped and are *not* reset; re-arm
        is refused while they are attached (build a fresh Runtime for
        those).  Returns ``self`` for chaining
        (``rt.reset().run(main)``).
        """
        if self.faults is not None or self.trace is not None:
            raise MPIError(
                "reset() does not support fault injection or message "
                "tracing; create a fresh Runtime for those jobs"
            )
        self.tracker = BlockTracker()
        self.seq = ChannelSeq()
        self.abort_event = threading.Event()
        self._mailboxes = [Mailbox(r) for r in range(self.nranks)]
        self._clocks = [VirtualClock() for _ in range(self.nranks)]
        self._profiles = [RankProfile(r) for r in range(self.nranks)]
        self._finished = [False] * self.nranks
        self._deadlock_report = None
        self._ran = False
        return self

    def _select_error(
        self, errors: Sequence[Optional[BaseException]]
    ) -> Optional[BaseException]:
        """Pick the most informative error to re-raise.

        Priority: a real (unexpected) error beats an injected
        :class:`RankCrashError`, which beats the secondary
        :class:`AbortError` casualties it caused.
        """
        crash = None
        abort = None
        for e in errors:
            if e is None:
                continue
            if isinstance(e, AbortError):
                abort = abort or e
            elif isinstance(e, RankCrashError):
                crash = crash or e
            else:
                return e
        return crash or abort

    def _live_count(self) -> int:
        with self._finished_lock:
            return self.nranks - sum(self._finished)

    @property
    def deadlock_report(self) -> Optional[str]:
        """Diagnostic text if the watchdog fired, else ``None``."""
        return getattr(self, "_deadlock_report", None)

    # -- post-run reporting --------------------------------------------

    def clock_stats(self) -> List[ClockStats]:
        """Per-rank virtual clock snapshots."""
        return [
            ClockStats(
                rank=r,
                total=c.now,
                compute=c.compute_time,
                comm=c.comm_time,
                hidden_comm=c.hidden_comm_time,
                extra=(
                    {"retry_time": c.retry_time} if c.retry_time else {}
                ),
            )
            for r, c in enumerate(self._clocks)
        ]

    def job_profile(self) -> JobProfile:
        """Merged mpiP-style profile for the completed job."""
        prof = JobProfile(nranks=self.nranks)
        for r in range(self.nranks):
            clock = self._clocks[r]
            prof.rank_totals[r] = (clock.now, self._profiles[r].mpi_time)
            prof.rank_profiles.append(self._profiles[r])
        return prof


def spmd(
    nranks: int,
    main: Callable[..., Any],
    *args: Any,
    machine: Optional[Any] = None,
    time_policy: TimePolicy = TimePolicy.MODELED,
    backend: Union[str, Any] = "threads",
    **kwargs: Any,
) -> List[Any]:
    """One-line helper: run ``main`` over ``nranks`` and return results."""
    rt = Runtime(
        nranks=nranks,
        machine=machine,
        time_policy=time_policy,
        backend=backend,
    )
    return rt.run(main, args=args, kwargs=kwargs)
