"""SPMD job runtime: one Python thread per simulated rank.

:class:`Runtime` launches ``nranks`` threads, each executing the user's
``main(comm)`` function against its own :class:`~repro.mpi.communicator.Comm`.
A watchdog thread detects deadlock (every live rank blocked with no
matching progress) and aborts the job with a diagnostic snapshot instead
of hanging the test suite.

Typical use::

    from repro.mpi import Runtime
    from repro.perfmodel import MachineModel

    def main(comm):
        part = comm.allreduce(comm.rank)
        return part

    rt = Runtime(nranks=8, machine=MachineModel.preset("compton"))
    results = rt.run(main)        # list of per-rank return values
    profile = rt.job_profile()    # mpiP-style statistics
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .clock import ClockStats, TimePolicy, VirtualClock
from .communicator import Comm
from .errors import AbortError, DeadlockError, MPIError, RankCrashError
from .profiler import JobProfile, RankProfile
from .transport import BlockTracker, ChannelSeq, Mailbox

#: Watchdog polling period (wall seconds).
_WATCHDOG_PERIOD = 0.5
#: Number of consecutive no-progress all-blocked observations before the
#: watchdog declares deadlock (guards against sampling races).
_WATCHDOG_STRIKES = 3

_WORLD_CID = 1


class Runtime:
    """Executes an SPMD function over ``nranks`` simulated ranks."""

    def __init__(
        self,
        nranks: int,
        machine: Optional[Any] = None,
        time_policy: TimePolicy = TimePolicy.MODELED,
        deadlock_detection: bool = True,
        trace_messages: bool = False,
        fault_plan: Optional[Any] = None,
        fault_base_step: int = 0,
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        # Imported here to avoid a hard cycle at module import time.
        from ..perfmodel.machine import MachineModel

        self.nranks = nranks
        self.machine = machine if machine is not None else MachineModel.default()
        self.time_policy = time_policy
        self.deadlock_detection = deadlock_detection
        #: Active fault injector, or ``None`` for a fault-free job.
        #: ``fault_base_step`` aligns the plan's global step numbers
        #: with a restarted driver's local ones (see recovery loop).
        self.faults = None
        if fault_plan is not None:
            from ..faults import FaultInjector

            self.faults = FaultInjector(fault_plan, base_step=fault_base_step)
        #: Message trace for external network-simulation export, or
        #: ``None`` when tracing is off (see ``repro.mpi.trace``).
        self.trace = None
        if trace_messages:
            from .trace import MessageTrace

            self.trace = MessageTrace(nranks)

        self.tracker = BlockTracker()
        self.seq = ChannelSeq()
        self.abort_event = threading.Event()
        self._mailboxes = [Mailbox(r) for r in range(nranks)]
        self._clocks = [VirtualClock() for _ in range(nranks)]
        self._profiles = [RankProfile(r) for r in range(nranks)]
        self._cid_lock = threading.Lock()
        self._cid_registry: Dict[Tuple, int] = {}
        self._next_cid = _WORLD_CID + 1
        self._finished = [False] * nranks
        self._finished_lock = threading.Lock()
        self._ran = False

    # -- wiring --------------------------------------------------------

    def mailbox(self, world_rank: int) -> Mailbox:
        return self._mailboxes[world_rank]

    def context_id(self, key: Tuple) -> int:
        """Deterministically map a derivation key to a context id.

        Every member of a ``split``/``dup`` computes the same ``key``,
        so the first caller allocates the id and the rest look it up.
        """
        with self._cid_lock:
            cid = self._cid_registry.get(key)
            if cid is None:
                cid = self._next_cid
                self._next_cid += 1
                self._cid_registry[key] = cid
            return cid

    def world_comm(self, rank: int) -> Comm:
        """Build the COMM_WORLD handle for ``rank``."""
        return Comm(
            runtime=self,
            cid=_WORLD_CID,
            group=range(self.nranks),
            world_rank=rank,
            clock=self._clocks[rank],
            profile=self._profiles[rank],
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        main: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
    ) -> List[Any]:
        """Run ``main(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order.  If any rank
        raises, the job is aborted and the first error is re-raised on
        the calling thread (other ranks receive :class:`AbortError`).
        A :class:`Runtime` is single-shot: build a new one per job.
        """
        if self._ran:
            raise MPIError("Runtime is single-shot; create a new instance")
        self._ran = True
        kwargs = kwargs or {}
        results: List[Any] = [None] * self.nranks
        errors: List[Optional[BaseException]] = [None] * self.nranks
        tracebacks: List[str] = [""] * self.nranks

        def worker(rank: int) -> None:
            comm = self.world_comm(rank)
            try:
                results[rank] = main(comm, *args, **kwargs)
            except RankCrashError as exc:
                # An injected crash is a *primary* failure: set the
                # abort event so every blocked peer wakes with
                # AbortError within one _WAIT_POLL tick, but skip the
                # traceback wrap so the recovery loop catches the
                # RankCrashError itself (with rank/step/vtime intact).
                errors[rank] = exc
                self.abort_event.set()
            except AbortError as exc:
                errors[rank] = exc
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
                tracebacks[rank] = traceback.format_exc()
                self.abort_event.set()
            finally:
                with self._finished_lock:
                    self._finished[rank] = True

        if self.nranks == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(
                    target=worker, args=(r,), name=f"rank-{r}", daemon=True
                )
                for r in range(self.nranks)
            ]
            watchdog = None
            if self.deadlock_detection:
                watchdog = threading.Thread(
                    target=self._watch, name="watchdog", daemon=True
                )
                watchdog.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            self.abort_event.set()  # stop the watchdog
            if watchdog is not None:
                watchdog.join()

        if self.deadlock_report is not None:
            raise DeadlockError(self.deadlock_report)
        primary = self._select_error(errors)
        if primary is not None:
            rank = errors.index(primary)
            tb = tracebacks[rank]
            if tb:
                raise MPIError(
                    f"rank {rank} failed:\n{tb}"
                ) from primary
            raise primary
        return results

    def _select_error(
        self, errors: Sequence[Optional[BaseException]]
    ) -> Optional[BaseException]:
        """Pick the most informative error to re-raise.

        Priority: a real (unexpected) error beats an injected
        :class:`RankCrashError`, which beats the secondary
        :class:`AbortError` casualties it caused.
        """
        crash = None
        abort = None
        for e in errors:
            if e is None:
                continue
            if isinstance(e, AbortError):
                abort = abort or e
            elif isinstance(e, RankCrashError):
                crash = crash or e
            else:
                return e
        return crash or abort

    def _live_count(self) -> int:
        with self._finished_lock:
            return self.nranks - sum(self._finished)

    def _watch(self) -> None:
        """Deadlock watchdog: abort when nothing can ever progress."""
        strikes = 0
        last_progress = -1
        while not self.abort_event.wait(_WATCHDOG_PERIOD):
            live = self._live_count()
            if live == 0:
                return
            blocked = self.tracker.blocked
            progress = self.tracker.progress_value
            if blocked >= live and progress == last_progress:
                strikes += 1
                if strikes >= _WATCHDOG_STRIKES:
                    self._abort_deadlock()
                    return
            else:
                strikes = 0
            last_progress = progress

    def _abort_deadlock(self) -> None:
        snap = {
            r: self._mailboxes[r].snapshot() for r in range(self.nranks)
        }
        lines = ["deadlock detected; per-rank pending state:"]
        for r, s in snap.items():
            if s["posted"] or s["unexpected"]:
                lines.append(
                    f"  rank {r}: waiting_on={s['posted']} "
                    f"unmatched_inbox={s['unexpected']}"
                )
        self._deadlock_report = "\n".join(lines)
        self.abort_event.set()

    @property
    def deadlock_report(self) -> Optional[str]:
        """Diagnostic text if the watchdog fired, else ``None``."""
        return getattr(self, "_deadlock_report", None)

    # -- post-run reporting --------------------------------------------

    def clock_stats(self) -> List[ClockStats]:
        """Per-rank virtual clock snapshots."""
        return [
            ClockStats(
                rank=r,
                total=c.now,
                compute=c.compute_time,
                comm=c.comm_time,
                hidden_comm=c.hidden_comm_time,
                extra=(
                    {"retry_time": c.retry_time} if c.retry_time else {}
                ),
            )
            for r, c in enumerate(self._clocks)
        ]

    def job_profile(self) -> JobProfile:
        """Merged mpiP-style profile for the completed job."""
        prof = JobProfile(nranks=self.nranks)
        for r in range(self.nranks):
            clock = self._clocks[r]
            prof.rank_totals[r] = (clock.now, self._profiles[r].mpi_time)
            prof.rank_profiles.append(self._profiles[r])
        return prof


def spmd(
    nranks: int,
    main: Callable[..., Any],
    *args: Any,
    machine: Optional[Any] = None,
    time_policy: TimePolicy = TimePolicy.MODELED,
    **kwargs: Any,
) -> List[Any]:
    """One-line helper: run ``main`` over ``nranks`` and return results."""
    rt = Runtime(nranks=nranks, machine=machine, time_policy=time_policy)
    return rt.run(main, args=args, kwargs=kwargs)
