"""``repro.mpi`` — a from-scratch simulated MPI for mini-app studies.

This package provides the message-passing substrate the CMT-bone
reproduction runs on.  Each simulated rank is a Python thread (or,
with ``backend="procs"``, a forked OS process) with a private mailbox
and a *virtual clock*; communication costs come from a LogGP-style
latency/bandwidth model, so runs are deterministic and the paper's
communication figures (gather-scatter method comparison, MPI time
fractions, top call sites, message sizes) can be regenerated without
cluster hardware.  See ``docs/backends.md`` for backend selection.

Public surface:

* :class:`Runtime`, :func:`spmd` — launch SPMD jobs.
* :class:`Comm` — the per-rank communicator handle.
* Reduction ops ``SUM``/``PROD``/``MIN``/``MAX``/... and the wildcards
  ``ANY_SOURCE``/``ANY_TAG``.
* :class:`TimePolicy` — modelled vs. measured compute timing.
* Profiling types: :class:`JobProfile`, :class:`SiteAggregate`.
"""

from .backend import (
    Backend,
    ProcsBackend,
    ThreadsBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from .clock import ClockStats, OverlapInterval, TimePolicy, VirtualClock
from .communicator import Comm
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    BUILTIN_OPS,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    ReduceOp,
    payload_nbytes,
)
from .errors import (
    AbortError,
    CommunicatorError,
    DeadlockError,
    MPIError,
    RankCrashError,
    RankError,
)
from .profiler import CallRecord, JobProfile, RankProfile, SiteAggregate
from .request import (
    RecvRequest,
    Request,
    SendRequest,
    testall,
    waitall,
    waitany,
)
from .runtime import Runtime, spmd
from .status import Status
from .trace import MessageTrace, TraceEvent
from .transport import RetryPolicy

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AbortError",
    "BAND",
    "Backend",
    "BOR",
    "BUILTIN_OPS",
    "CallRecord",
    "ClockStats",
    "Comm",
    "CommunicatorError",
    "DeadlockError",
    "JobProfile",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "MPIError",
    "MessageTrace",
    "OverlapInterval",
    "PROD",
    "ProcsBackend",
    "RankCrashError",
    "RankError",
    "RankProfile",
    "RecvRequest",
    "ReduceOp",
    "Request",
    "RetryPolicy",
    "Runtime",
    "SUM",
    "SendRequest",
    "SiteAggregate",
    "Status",
    "ThreadsBackend",
    "TraceEvent",
    "TimePolicy",
    "VirtualClock",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "payload_nbytes",
    "spmd",
    "testall",
    "waitall",
    "waitany",
]
