"""Execution backends: how the simulated ranks actually run.

A :class:`~repro.mpi.runtime.Runtime` owns the per-rank state (clocks,
profiles, mailboxes) and the MPI semantics; a :class:`Backend` decides
what carries each rank:

* ``threads`` — one Python thread per rank in this process.  Zero
  setup cost and shared-memory payload passing, but real kernel work
  serialises on the GIL, so wall-clock numbers understate multi-core
  hardware.
* ``procs`` — one forked OS process per rank with envelope delivery
  over shared-memory rings (:mod:`repro.mpi.shm`).  Kernels run truly
  in parallel; payloads and per-rank results must be picklable.

Virtual-time metrics are bitwise-identical across backends by
construction: every clock charge is a pure function of the machine
model and the deterministic message schedule, never of wall-clock
scheduling.  Only wall-clock measurements differ.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .clock import VirtualClock
from .errors import AbortError, MPIError, RankCrashError
from .profiler import RankProfile
from .shm import (
    DEFAULT_RING_CAPACITY,
    SharedBlockTracker,
    ShmRing,
    dump_envelope,
    load_envelope,
)
from .transport import ChannelSeq, Mailbox

#: Watchdog polling period (wall seconds).
_WATCHDOG_PERIOD = 0.5
#: Number of consecutive no-progress all-blocked observations before the
#: watchdog declares deadlock (guards against sampling races).
_WATCHDOG_STRIKES = 3

#: Delivery-thread poll period while its ring is empty (wall seconds).
_DELIVERY_POLL = 0.05

#: Leading byte of a flush-marker ring record.  Envelope records are
#: ``pickle.dumps`` output, which always starts with ``b"\x80"`` (the
#: PROTO opcode), so a marker can never be mistaken for an envelope.
_FLUSH_MARK = b"!"
#: Upper bound on the abort determinism fence (wall seconds): how long
#: an aborting rank waits for peers to acknowledge its flush markers.
_FLUSH_TIMEOUT = 5.0


@dataclass
class ExecutionOutcome:
    """Per-rank results of one job, in rank order."""

    results: List[Any]
    errors: List[Optional[BaseException]]
    tracebacks: List[str] = field(default_factory=list)


def run_rank(
    main: Callable[..., Any],
    comm,
    args: Tuple,
    kwargs: dict,
    abort_event,
) -> Tuple[Any, Optional[BaseException], str]:
    """Run one rank's ``main``, applying the job-wide failure policy.

    Returns ``(result, error, traceback_text)``.  An injected
    :class:`RankCrashError` is a *primary* failure: the abort event is
    set so every blocked peer wakes with :class:`AbortError` within one
    poll tick, but the traceback wrap is skipped so the recovery loop
    catches the crash itself (with rank/step/vtime intact).  A
    secondary :class:`AbortError` is recorded without re-aborting.
    """
    try:
        return main(comm, *args, **kwargs), None, ""
    except RankCrashError as exc:
        abort_event.set()
        return None, exc, ""
    except AbortError as exc:
        return None, exc, ""
    except BaseException as exc:  # noqa: BLE001 - reported to caller
        abort_event.set()
        return None, exc, traceback.format_exc()


def watch_loop(
    live_count: Callable[[], int],
    tracker,
    abort_event,
    fire: Callable[[], None],
) -> None:
    """Deadlock watchdog: call ``fire`` when nothing can ever progress.

    Backend-agnostic: ``tracker`` is any object with ``blocked`` and
    ``progress_value`` (in-process or shared counters) and
    ``abort_event`` any event with ``wait(timeout)``.
    """
    strikes = 0
    last_progress = -1
    while not abort_event.wait(_WATCHDOG_PERIOD):
        live = live_count()
        if live == 0:
            return
        if tracker.blocked >= live and tracker.progress_value == last_progress:
            strikes += 1
            if strikes >= _WATCHDOG_STRIKES:
                fire()
                return
        else:
            strikes = 0
        last_progress = tracker.progress_value


def format_deadlock_report(snapshots: Dict[int, dict]) -> str:
    """Render per-rank mailbox snapshots into the diagnostic text."""
    lines = ["deadlock detected; per-rank pending state:"]
    for r in sorted(snapshots):
        s = snapshots[r]
        if s["posted"] or s["unexpected"]:
            lines.append(
                f"  rank {r}: waiting_on={s['posted']} "
                f"unmatched_inbox={s['unexpected']}"
            )
    return "\n".join(lines)


def marshal_exit_records(
    runtime,
    records: Dict[int, dict],
    fired: bool,
    n: int,
    hard_death: Callable[[int, Optional[int]], BaseException],
) -> ExecutionOutcome:
    """Fold per-rank exit records back into the Runtime.

    Shared by every multi-process backend (procs and sockets): exit
    records carry each rank's result/error plus the state the parent
    must absorb for backend-transparent reporting — virtual clock,
    profile, mailbox snapshot, trace events, fault logs.  A rank with
    no record (or one flagged ``hard_exit``) died without reporting;
    ``hard_death(rank, exitcode)`` builds its error — an
    :class:`MPIError` for procs, a :class:`RankCrashError` for sockets
    (where a vanished remote process is a recoverable crash).  ``fired``
    marks a tripped deadlock watchdog, in which case the collected
    mailbox snapshots become the runtime's deadlock report.
    """
    results: List[Any] = [None] * n
    errors: List[Optional[BaseException]] = [None] * n
    tracebacks: List[str] = [""] * n
    snapshots: Dict[int, dict] = {}
    for r in range(n):
        rec = records.get(r)
        if rec is None or rec.get("hard_exit"):
            code = rec.get("exitcode") if rec else None
            errors[r] = hard_death(r, code)
            continue
        results[r] = rec.get("result")
        errors[r] = rec.get("error")
        tracebacks[r] = rec.get("traceback", "")
        if rec.get("clock") is not None:
            runtime._clocks[r] = rec["clock"]
        if rec.get("profile") is not None:
            runtime._profiles[r] = rec["profile"]
        snapshots[r] = rec.get("snapshot") or {
            "posted": [], "unexpected": []
        }
        if runtime.trace is not None and rec.get("trace") is not None:
            runtime.trace._per_rank[r] = list(rec["trace"])
        if runtime.faults is not None:
            runtime.faults.crash_log.extend(rec.get("crash_log", ()))
            runtime.faults.drop_log.extend(rec.get("drop_log", ()))
    if fired:
        runtime._deadlock_report = format_deadlock_report(snapshots)
    return ExecutionOutcome(results, errors, tracebacks)


class Backend:
    """Strategy interface: execute a job over a Runtime's ranks."""

    name = "?"

    def execute(
        self, runtime, main: Callable[..., Any], args: Tuple, kwargs: dict
    ) -> ExecutionOutcome:
        raise NotImplementedError


class ThreadsBackend(Backend):
    """One Python thread per rank (the original execution model).

    All ranks — including single-rank jobs — run on worker threads
    under the deadlock watchdog, so ``deadlock_detection=True`` means
    the same thing at every job size.
    """

    name = "threads"

    def execute(self, runtime, main, args, kwargs) -> ExecutionOutcome:
        n = runtime.nranks
        results: List[Any] = [None] * n
        errors: List[Optional[BaseException]] = [None] * n
        tracebacks: List[str] = [""] * n

        def worker(rank: int) -> None:
            comm = runtime.world_comm(rank)
            res, err, tb = run_rank(
                main, comm, args, kwargs, runtime.abort_event
            )
            results[rank], errors[rank], tracebacks[rank] = res, err, tb
            with runtime._finished_lock:
                runtime._finished[rank] = True

        threads = [
            threading.Thread(
                target=worker, args=(r,), name=f"rank-{r}", daemon=True
            )
            for r in range(n)
        ]
        watchdog = None
        if runtime.deadlock_detection:

            def fire() -> None:
                snap = {
                    r: runtime._mailboxes[r].snapshot() for r in range(n)
                }
                runtime._deadlock_report = format_deadlock_report(snap)
                runtime.abort_event.set()

            watchdog = threading.Thread(
                target=watch_loop,
                args=(runtime._live_count, runtime.tracker,
                      runtime.abort_event, fire),
                name="watchdog",
                daemon=True,
            )
            watchdog.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        runtime.abort_event.set()  # stop the watchdog
        if watchdog is not None:
            watchdog.join()
        return ExecutionOutcome(results, errors, tracebacks)


class _RingMailbox:
    """Sender-side stand-in for a remote rank's mailbox (procs backend).

    Exposes exactly the one method senders call on a *remote* mailbox
    (``deliver``); matching still happens in the destination process,
    inside its real :class:`Mailbox`, preserving the thread backend's
    semantics.  Per-source FIFO holds because each sender pushes its
    records into the destination ring in program order and the ring is
    consumed in order.
    """

    __slots__ = ("_ring", "_abort", "_finished", "_dst")

    def __init__(self, ring: ShmRing, abort, finished, dst: int):
        self._ring = ring
        self._abort = abort
        self._finished = finished
        self._dst = dst

    def deliver(self, env) -> None:
        # If the destination already finished its main it can never
        # receive; drop instead of blocking on a full ring (the threads
        # backend likewise just leaves such messages unmatched).
        self._ring.push(
            dump_envelope(env),
            abort_event=self._abort,
            give_up=lambda: self._finished[self._dst] == 1,
            what=f"send to rank {self._dst}",
        )


class _FencedAbort:
    """Determinism fence around the shared abort event (procs backend).

    In the threads backend every send lands in the destination mailbox
    before the sender's next statement runs, so by the time a crashing
    rank sets the abort event, everything it managed to send is already
    delivered.  In the procs backend delivery rides the shm rings on a
    background thread: without a fence, a survivor blocked in a wait
    races the crashed rank's final envelopes against the abort flag,
    and the "completion wins" contract (see
    :func:`repro.mpi.transport.Mailbox.wait_event`) degenerates into a
    scheduling accident — recovery reports diverge from the threads
    backend run to run.

    ``set`` therefore first pushes a flush marker into every peer ring
    and waits for each owning delivery thread to acknowledge it (via
    the shared ``acks`` counter array).  Ring FIFO then guarantees every
    envelope this rank pushed *before* the marker has been delivered,
    so when the shared event finally becomes visible, the survivors'
    mailboxes already hold exactly what the fault plan says they
    should.  Mirrors the FLUSH/FLUSH_ACK fence of the sockets backend.

    The wait is bounded (``_FLUSH_TIMEOUT``) and skips destinations
    that already finished — a finished rank consumes nothing, and its
    delivery thread may be gone.  Ack counters are compared against a
    per-call baseline, never reset, so pooled workers can reuse one
    shared array across jobs.
    """

    __slots__ = ("_event", "_rank", "_rings", "_finished", "_acks", "_n")

    def __init__(self, event, rank, rings, finished, acks):
        self._event = event
        self._rank = rank
        self._rings = rings
        self._finished = finished
        self._acks = acks
        self._n = len(rings)

    # Event API relied on by waits, ring pushes and the watchdog.

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout=None) -> bool:
        return self._event.wait(timeout)

    def clear(self) -> None:  # pragma: no cover - API symmetry
        self._event.clear()

    def set(self) -> None:
        if not self._event.is_set():
            try:
                self._flush()
            except Exception:  # the fence must never mask the abort
                pass
        self._event.set()

    def _flush(self) -> None:
        deadline = time.monotonic() + _FLUSH_TIMEOUT
        me = self._rank
        mark = _FLUSH_MARK + struct.pack("<I", me)
        baselines: Dict[int, int] = {}
        for dst in range(self._n):
            if dst == me:
                continue
            with self._acks.get_lock():
                base = self._acks[me * self._n + dst]
            if self._rings[dst].push(
                mark,
                give_up=lambda d=dst: (
                    self._finished[d] == 1 or time.monotonic() > deadline
                ),
                what=f"flush to rank {dst}",
            ):
                baselines[dst] = base
        for dst, base in baselines.items():
            idx = me * self._n + dst
            while (time.monotonic() < deadline
                   and self._finished[dst] != 1):
                with self._acks.get_lock():
                    if self._acks[idx] > base:
                        break
                time.sleep(0.001)


def _delivery_loop(
    ring: ShmRing, mailbox: Mailbox, tracker, stop, on_flush=None
) -> None:
    """Drain the owning rank's ring into its in-process mailbox."""
    while True:
        data = ring.pop(timeout=_DELIVERY_POLL)
        if data is None:
            if stop.is_set():
                return
            continue
        if data[:1] == _FLUSH_MARK:
            if on_flush is not None:
                (src,) = struct.unpack("<I", data[1:5])
                on_flush(src)
            continue
        mailbox.deliver(load_envelope(data))
        tracker.bump()


def _send_record(conn, record: dict, rank: int, abort_event,
                 backend: str = "procs") -> None:
    """Ship the exit record to the parent, degrading if unpicklable."""
    try:
        conn.send(record)
        return
    except Exception:
        pass
    err = record.get("error")
    detail = f" (original error: {type(err).__name__})" if err else ""
    record["result"] = None
    record["error"] = MPIError(
        f"rank {rank} produced an unpicklable result or error{detail}; "
        f"the {backend} backend requires picklable per-rank values"
    )
    record["trace"] = None
    abort_event.set()
    try:
        conn.send(record)
    except Exception:
        record["clock"] = None
        record["profile"] = None
        conn.send(record)


def _rank_process(
    runtime, rank, main, args, kwargs, abort, tracker, finished, rings,
    flush_acks, conn
) -> None:
    """Child-process body: patch the forked Runtime copy, run the rank.

    The fork gives this process a private copy of the whole Runtime;
    only the pieces that must be *shared* are swapped for their
    process-safe counterparts (abort event, block tracker, peer
    mailboxes).  ``ChannelSeq`` is deliberately process-local: each
    counter key ``(src, dst)`` is only ever incremented by the ``src``
    rank, so local counters produce exactly the sequence numbers the
    shared one would — which keeps fault-injection drop decisions
    (keyed on seq) identical to the threads backend.
    """
    record: dict = {"rank": rank}
    local_box = runtime._mailboxes[rank]
    stop = threading.Event()
    abort = _FencedAbort(abort, rank, rings, finished, flush_acks)

    def _ack_flush(src: int) -> None:
        with flush_acks.get_lock():
            flush_acks[src * runtime.nranks + rank] += 1

    try:
        runtime.abort_event = abort
        runtime.tracker = tracker
        runtime.seq = ChannelSeq()
        runtime._mailboxes = [
            local_box
            if r == rank
            else _RingMailbox(rings[r], abort, finished, r)
            for r in range(runtime.nranks)
        ]
        deliverer = threading.Thread(
            target=_delivery_loop,
            args=(rings[rank], local_box, tracker, stop, _ack_flush),
            name=f"deliver-{rank}",
            daemon=True,
        )
        deliverer.start()
        comm = runtime.world_comm(rank)
        result, error, tb = run_rank(main, comm, args, kwargs, abort)
        record.update(result=result, error=error, traceback=tb)
    except BaseException as exc:  # noqa: BLE001 - setup failure
        record.update(
            result=None, error=exc, traceback=traceback.format_exc()
        )
        abort.set()
    finally:
        finished[rank] = 1
        stop.set()
        record["clock"] = runtime._clocks[rank]
        record["profile"] = runtime._profiles[rank]
        record["snapshot"] = local_box.snapshot()
        if runtime.trace is not None:
            record["trace"] = list(runtime.trace._per_rank[rank])
        if runtime.faults is not None:
            record["crash_log"] = list(runtime.faults.crash_log)
            record["drop_log"] = list(runtime.faults.drop_log)
        _send_record(conn, record, rank, abort)
        conn.close()


def _pool_rank_loop(
    runtime, rank, abort, tracker, finished, rings, flush_acks, cmd, rec
) -> None:
    """Persistent-worker body: serve jobs until told to stop.

    The fork happens once (at pool creation); each ``("job", ...)``
    command re-arms this process's private Runtime copy — fresh
    mailbox, clock, profile, and sequence counters, plus the machine
    model and time policy shipped with the job — and runs the rank
    exactly as the one-shot :func:`_rank_process` would.  Between jobs
    the process blocks on the command pipe, so re-arming replaces a
    fork + interpreter warm-up with one ``recv``.
    """
    abort = _FencedAbort(abort, rank, rings, finished, flush_acks)

    def _ack_flush(src: int) -> None:
        with flush_acks.get_lock():
            flush_acks[src * runtime.nranks + rank] += 1

    while True:
        try:
            msg = cmd.recv()
        except EOFError:  # parent vanished
            return
        if msg[0] == "stop":
            return
        _, main, args, kwargs, machine, time_policy = msg
        record: dict = {"rank": rank}
        local_box = Mailbox(rank)
        stop = threading.Event()
        deliverer = None
        try:
            runtime.machine = machine
            runtime.time_policy = time_policy
            runtime.abort_event = abort
            runtime.tracker = tracker
            runtime.seq = ChannelSeq()
            runtime._clocks[rank] = VirtualClock()
            runtime._profiles[rank] = RankProfile(rank)
            runtime._mailboxes = [
                local_box
                if r == rank
                else _RingMailbox(rings[r], abort, finished, r)
                for r in range(runtime.nranks)
            ]
            deliverer = threading.Thread(
                target=_delivery_loop,
                args=(rings[rank], local_box, tracker, stop, _ack_flush),
                name=f"deliver-{rank}",
                daemon=True,
            )
            deliverer.start()
            comm = runtime.world_comm(rank)
            result, error, tb = run_rank(main, comm, args, kwargs, abort)
            record.update(result=result, error=error, traceback=tb)
        except BaseException as exc:  # noqa: BLE001 - setup failure
            record.update(
                result=None, error=exc, traceback=traceback.format_exc()
            )
            abort.set()
        finally:
            finished[rank] = 1
            stop.set()
            if deliverer is not None:
                # The ring must be quiescent before the next job resets
                # it, so (unlike the one-shot path) the drain thread is
                # joined before the record ships.
                deliverer.join()
            record["clock"] = runtime._clocks[rank]
            record["profile"] = runtime._profiles[rank]
            record["snapshot"] = local_box.snapshot()
            record["pid"] = os.getpid()
            _send_record(rec, record, rank, abort)


class ProcsBackend(Backend):
    """One forked OS process per rank; shared-memory envelope delivery.

    Escapes the GIL: real (``work_mode="real"``) kernels execute truly
    concurrently across cores.  Per-process :class:`VirtualClock`,
    :class:`RankProfile`, trace events and fault logs are marshalled
    back to the parent through an exit-record pipe, so post-run
    reporting (``clock_stats``, ``job_profile``, recovery loops) is
    backend-transparent.

    Requirements: the ``fork`` start method (POSIX), and picklable
    message payloads, per-rank return values, and exceptions.

    With ``reusable=True`` the backend keeps a persistent pool of rank
    workers: the first :meth:`execute` forks them, and every later job
    *re-arms* the same processes over a command pipe instead of
    re-forking (amortising fork + import + allocator warm-up across a
    job stream — the point of the service layer's worker pool).  The
    same backend instance must then be passed to every Runtime
    (``Runtime(backend=pool)``), all jobs must use the same ``nranks``,
    ``main``/``args`` must be picklable, and fault injection / message
    tracing are refused (those are one-shot-job features).  Call
    :meth:`close` when done; a worker that dies hard poisons the pool
    and the next execute raises.
    """

    name = "procs"

    def __init__(
        self,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        join_timeout: float = 30.0,
        reusable: bool = False,
    ):
        self.ring_capacity = ring_capacity
        self.join_timeout = join_timeout
        self.reusable = reusable
        self._pool: Optional[dict] = None
        self._broken = False
        #: Jobs served by the current pool (diagnostics / tests).
        self.jobs_served = 0

    @staticmethod
    def _context():
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise MPIError(
                "the procs backend requires the 'fork' start method "
                "(POSIX only); use backend='threads' on this platform"
            )
        return mp.get_context("fork")

    def execute(self, runtime, main, args, kwargs) -> ExecutionOutcome:
        if self.reusable:
            return self._execute_pooled(runtime, main, args, kwargs)
        ctx = self._context()
        n = runtime.nranks
        abort = ctx.Event()
        tracker = SharedBlockTracker(ctx.Value("q", 0), ctx.Value("q", 0))
        finished = ctx.Array("b", n, lock=False)
        # (src, dst) flush-marker ack counters for the abort fence.
        flush_acks = ctx.Array("q", n * n)
        rings = [ShmRing(ctx, self.ring_capacity) for _ in range(n)]
        pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
        procs = []
        fired = threading.Event()
        try:
            for r in range(n):
                p = ctx.Process(
                    target=_rank_process,
                    args=(
                        runtime, r, main, args, kwargs, abort, tracker,
                        finished, rings, flush_acks, pipes[r][1],
                    ),
                    name=f"rank-{r}",
                    daemon=True,
                )
                p.start()
                pipes[r][1].close()  # child keeps the write end
                procs.append(p)
            watchdog = None
            if runtime.deadlock_detection:

                def live() -> int:
                    return n - sum(finished)

                def fire() -> None:
                    fired.set()
                    abort.set()

                watchdog = threading.Thread(
                    target=watch_loop,
                    args=(live, tracker, abort, fire),
                    name="watchdog",
                    daemon=True,
                )
                watchdog.start()
            records = self._collect(procs, pipes, abort)
            for p in procs:
                p.join(timeout=self.join_timeout)
                if p.is_alive():  # pragma: no cover - hard hang
                    p.terminate()
                    p.join(timeout=5.0)
            abort.set()  # stop the watchdog
            if watchdog is not None:
                watchdog.join()
        finally:
            for r in range(n):
                pipes[r][0].close()
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
                    p.join(timeout=5.0)
            for ring in rings:
                ring.drain_spills()
                # Fallback for hard worker death: unlink spill segments
                # whose ring record never got published (or whose
                # reader died before the unlink).
                ring.sweep_spills()
                ring.destroy()
        return self._marshal(runtime, records, fired, n)

    @staticmethod
    def _collect(procs, pipes, abort) -> Dict[int, dict]:
        """Read one exit record per rank, detecting hard deaths.

        A pipe EOF is not enough on its own: every forked child
        inherits the OS-level write ends of its siblings' pipes, so a
        rank that dies without sending (``os._exit``, signal,
        interpreter crash) only EOFs once *all* children exited — and
        its surviving peers may be blocked waiting for it.  So when a
        wait times out, dead processes whose pipes are silent are
        declared hard deaths and the job is aborted, which releases the
        blocked peers within one poll tick.
        """
        from multiprocessing import connection

        conns = {pipes[r][0]: r for r in range(len(procs))}
        records: Dict[int, dict] = {}

        def take(conn, rank) -> None:
            try:
                records[rank] = conn.recv()
            except EOFError:
                abort.set()
                records[rank] = {"rank": rank, "hard_exit": True}

        while conns:
            ready = connection.wait(list(conns), timeout=0.25)
            for conn in ready:
                take(conn, conns.pop(conn))
            if ready:
                continue
            for conn, rank in list(conns.items()):
                p = procs[rank]
                if p.is_alive():
                    continue
                p.join()  # reap; any sent record is now in the pipe
                del conns[conn]
                if conn.poll(0):
                    take(conn, rank)
                else:
                    abort.set()
                    records[rank] = {"rank": rank, "hard_exit": True}
        for rank, rec in records.items():
            if rec.get("hard_exit"):
                procs[rank].join(timeout=5.0)
                rec["exitcode"] = procs[rank].exitcode
        return records

    @staticmethod
    def _marshal(runtime, records, fired, n) -> ExecutionOutcome:
        """Fold the children's exit records back into the Runtime."""
        return marshal_exit_records(
            runtime, records, fired.is_set(), n,
            hard_death=lambda r, code: MPIError(
                f"rank {r} terminated unexpectedly (exit code {code})"
            ),
        )

    # -- persistent worker pool (reusable=True) ------------------------

    def _ensure_pool(self, runtime) -> dict:
        if self._broken:
            raise MPIError(
                "this reusable procs pool is broken (a worker died "
                "hard); create a fresh ProcsBackend"
            )
        if self._pool is not None:
            if self._pool["nranks"] != runtime.nranks:
                raise MPIError(
                    f"reusable procs pool was forked for "
                    f"{self._pool['nranks']} ranks; cannot run a "
                    f"{runtime.nranks}-rank job on it"
                )
            return self._pool
        ctx = self._context()
        n = runtime.nranks
        abort = ctx.Event()
        tracker = SharedBlockTracker(ctx.Value("q", 0), ctx.Value("q", 0))
        finished = ctx.Array("b", n, lock=False)
        # (src, dst) flush-marker ack counters for the abort fence;
        # monotone across pooled jobs (the fence compares baselines).
        flush_acks = ctx.Array("q", n * n)
        rings = [ShmRing(ctx, self.ring_capacity) for _ in range(n)]
        cmd_pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
        rec_pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
        procs = []
        for r in range(n):
            p = ctx.Process(
                target=_pool_rank_loop,
                args=(
                    runtime, r, abort, tracker, finished, rings,
                    flush_acks, cmd_pipes[r][0], rec_pipes[r][1],
                ),
                name=f"pool-rank-{r}",
                daemon=True,
            )
            p.start()
            rec_pipes[r][1].close()  # child keeps the write end
            procs.append(p)
        self._pool = {
            "nranks": n,
            "abort": abort,
            "tracker": tracker,
            "finished": finished,
            "rings": rings,
            "cmd_pipes": cmd_pipes,
            "rec_pipes": rec_pipes,
            "procs": procs,
        }
        return self._pool

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (empty before the first job)."""
        if self._pool is None:
            return []
        return [p.pid for p in self._pool["procs"]]

    def _execute_pooled(self, runtime, main, args, kwargs
                        ) -> ExecutionOutcome:
        if runtime.faults is not None or runtime.trace is not None:
            raise MPIError(
                "a reusable procs pool does not support fault injection "
                "or message tracing; run those jobs on a fresh one-shot "
                "backend"
            )
        pool = self._ensure_pool(runtime)
        n = pool["nranks"]
        # Re-arm shared state.  All workers are blocked on their command
        # pipes here (the previous job's records were all collected), so
        # nothing races these resets.
        for ring in pool["rings"]:
            ring.reset()
        for r in range(n):
            pool["finished"][r] = 0
        pool["tracker"].reset()
        pool["abort"].clear()
        fired = threading.Event()
        for r in range(n):
            pool["cmd_pipes"][r][1].send(
                ("job", main, args, kwargs,
                 runtime.machine, runtime.time_policy)
            )
        watchdog = None
        if runtime.deadlock_detection:

            def live() -> int:
                return n - sum(pool["finished"])

            def fire() -> None:
                fired.set()
                pool["abort"].set()

            watchdog = threading.Thread(
                target=watch_loop,
                args=(live, pool["tracker"], pool["abort"], fire),
                name="watchdog",
                daemon=True,
            )
            watchdog.start()
        records = self._collect(
            pool["procs"], pool["rec_pipes"], pool["abort"]
        )
        pool["abort"].set()  # stop the watchdog (cleared at next job)
        if watchdog is not None:
            watchdog.join()
        self.jobs_served += 1
        if any(rec.get("hard_exit") for rec in records.values()):
            self._broken = True
            self.close()
        return self._marshal(runtime, records, fired, n)

    def close(self) -> None:
        """Shut the persistent pool down and release its resources."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for r in range(pool["nranks"]):
            try:
                pool["cmd_pipes"][r][1].send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for p in pool["procs"]:
            p.join(timeout=self.join_timeout)
            if p.is_alive():  # pragma: no cover - hard hang
                p.terminate()
                p.join(timeout=5.0)
        for r in range(pool["nranks"]):
            for conn in (pool["cmd_pipes"][r] + pool["rec_pipes"][r]):
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        for ring in pool["rings"]:
            ring.drain_spills()
            ring.sweep_spills()
            ring.destroy()


def _sockets_factory() -> Backend:
    # Deferred import: repro.net imports this module, so the registry
    # entry must not import it back at module load.
    from ..net.backend import SocketBackend

    return SocketBackend()


#: Registration table: name -> zero-argument factory.  Table-driven so
#: new backends (and tests) slot in via :func:`register_backend`
#: without touching resolution logic.
_BACKENDS: Dict[str, Callable[[], Backend]] = {
    ThreadsBackend.name: ThreadsBackend,
    ProcsBackend.name: ProcsBackend,
    "sockets": _sockets_factory,
}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register (or replace) a backend under ``name``.

    ``factory`` takes no arguments and returns a :class:`Backend`;
    registration makes the name valid for ``Runtime(backend=...)`` and
    every ``--backend`` CLI flag.
    """
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Names accepted by ``Runtime(backend=...)`` / ``--backend``."""
    return sorted(_BACKENDS)


def resolve_backend(spec: Union[str, Backend]) -> Backend:
    """Turn a backend name or instance into a :class:`Backend`."""
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise MPIError(
                f"unknown backend {spec!r}; "
                f"available: {', '.join(available_backends())}"
            ) from None
        return factory()
    raise MPIError(f"backend must be a name or Backend, got {type(spec)!r}")
