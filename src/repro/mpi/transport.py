"""In-process message transport: envelopes, mailboxes, matching.

Each simulated rank owns one :class:`Mailbox`.  A send deposits an
:class:`Envelope` in the destination mailbox; matching follows the MPI
two-queue scheme:

* a queue of *posted receives* not yet matched, and
* a queue of *unexpected messages* not yet matched.

A send first scans the posted-receive queue in posting order; a receive
first scans the unexpected queue in arrival order.  Per source, arrival
order equals the sender's program order, so the MPI non-overtaking
guarantee holds for each ``(source, dest, comm, tag)`` channel.

Wall-clock thread scheduling never influences *virtual* message timing:
an envelope carries the sender's virtual injection time, and the
receiver computes arrival from the network model when the match
completes.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from .datatypes import ANY_SOURCE, ANY_TAG
from .errors import AbortError

#: Polling granularity (wall seconds) for blocked waits.  Blocked
#: threads wake at this cadence only to check for job abort; normal
#: completion signals the event directly.
_WAIT_POLL = 0.1


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retransmission schedule for dropped messages.

    When a :class:`~repro.faults.FaultInjector` drops an envelope, the
    transport models a reliable layer underneath: the sender detects the
    loss (after a backoff timeout) and re-injects.  Attempt ``i``
    (0-based) waits ``backoff_base * backoff_factor**i`` virtual seconds
    before retransmitting; the whole penalty is charged to the sender's
    virtual clock (see :meth:`repro.mpi.clock.VirtualClock.charge_retry`),
    so retried messages hit the wire later and every downstream arrival
    time shifts deterministically.  ``max_retries`` bounds consecutive
    drops of one envelope so a lossy link can never livelock a run.
    """

    #: Backoff before the first retransmission (virtual seconds).
    backoff_base: float = 20e-6
    #: Multiplier applied to the backoff after every failed attempt.
    backoff_factor: float = 2.0
    #: Hard bound on consecutive drops of a single envelope.
    max_retries: int = 12

    def __post_init__(self) -> None:
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1 required")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    def backoff_seconds(self, attempts: int) -> float:
        """Total backoff for ``attempts`` consecutive drops."""
        return sum(
            self.backoff_base * self.backoff_factor**i
            for i in range(attempts)
        )


@dataclass
class Envelope:
    """One message in flight.

    ``wire_vtime`` is the sender's virtual clock when the message hit
    the wire (i.e. after the sender-side overhead was charged).
    """

    src: int
    dst: int
    cid: int
    tag: int
    payload: Any
    nbytes: int
    wire_vtime: float
    seq: int


def envelope_matches(
    cid: int, source: int, tag: int, env: Envelope
) -> bool:
    """Does ``env`` satisfy a receive posted as ``(cid, source, tag)``?

    The single matching rule shared by :class:`PendingRecv` and
    :meth:`Mailbox.probe`, so a probe can never disagree with the
    receive it predicts (and never has to allocate a throwaway
    ``PendingRecv`` — with a kernel-side ``threading.Event`` — just to
    ask the question).
    """
    if env.cid != cid:
        return False
    if source != ANY_SOURCE and env.src != source:
        return False
    if tag != ANY_TAG and env.tag != tag:
        return False
    return True


class PendingRecv:
    """A posted receive waiting for a matching envelope."""

    __slots__ = ("cid", "source", "tag", "event", "envelope")

    def __init__(self, cid: int, source: int, tag: int):
        self.cid = cid
        self.source = source
        self.tag = tag
        self.event = threading.Event()
        self.envelope: Optional[Envelope] = None

    def matches(self, env: Envelope) -> bool:
        """Does ``env`` satisfy this posted receive?"""
        return envelope_matches(self.cid, self.source, self.tag, env)


class Mailbox:
    """Per-rank matching engine (posted receives + unexpected queue).

    Concurrency invariants — all state transitions happen under
    ``lock``, which matters doubly for the process backend, whose
    dedicated delivery thread widens the window in which ``deliver``
    runs concurrently with the owning rank's ``post_recv``/``probe``:

    * an envelope is matched to at most one :class:`PendingRecv`, and a
      :class:`PendingRecv` receives at most one envelope — ``deliver``
      only fills receives still in ``posted`` with ``envelope is
      None``, and removes them from the queue in the same critical
      section;
    * ``pr.event.set()`` is called only after ``pr.envelope`` is
      assigned, inside the lock, so a waiter woken by the event always
      observes the payload (no lost wakeup);
    * an envelope is either handed to a posted receive or appended to
      ``unexpected`` — never both, never neither — so no message is
      dropped or duplicated by a probe/post_recv/deliver interleaving;
    * per-source arrival order is preserved: ``deliver`` appends in
      call order and both scans walk their queue front-to-back, so the
      MPI non-overtaking guarantee holds per ``(source, cid, tag)``
      channel;
    * ``probe`` is read-only: it takes the lock, scans, and touches
      nothing, so a concurrent ``deliver`` can at worst make it answer
      "no message" for an envelope that arrives a moment later —
      exactly ``MPI_Iprobe`` semantics.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self.lock = threading.Lock()
        self.unexpected: deque[Envelope] = deque()
        self.posted: deque[PendingRecv] = deque()

    def deliver(self, env: Envelope) -> None:
        """Called on the *sender's* thread to deposit ``env`` here."""
        with self.lock:
            for pr in self.posted:
                if pr.envelope is None and pr.matches(env):
                    pr.envelope = env
                    self.posted.remove(pr)
                    pr.event.set()
                    return
            self.unexpected.append(env)

    def post_recv(self, cid: int, source: int, tag: int) -> PendingRecv:
        """Post a receive; match immediately if a message is waiting."""
        pr = PendingRecv(cid, source, tag)
        with self.lock:
            for env in self.unexpected:
                if pr.matches(env):
                    self.unexpected.remove(env)
                    pr.envelope = env
                    pr.event.set()
                    return pr
            self.posted.append(pr)
        return pr

    def probe(self, cid: int, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructively look for a matching unexpected message."""
        with self.lock:
            for env in self.unexpected:
                if envelope_matches(cid, source, tag, env):
                    return env
        return None

    def snapshot(self) -> dict:
        """Debug snapshot used in deadlock reports."""
        with self.lock:
            return {
                "unexpected": [
                    (e.src, e.tag, e.cid, e.nbytes) for e in self.unexpected
                ],
                "posted": [
                    (p.source, p.tag, p.cid)
                    for p in self.posted
                    if p.envelope is None
                ],
            }


class BlockTracker:
    """Counts blocked ranks and overall matching progress.

    The runtime watchdog declares deadlock when every live rank is
    blocked and the progress counter has not moved between two checks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.blocked = 0
        self.progress = itertools.count()
        self._progress_value = 0

    def bump(self) -> None:
        """Record that a match or delivery happened."""
        with self._lock:
            self._progress_value = next(self.progress)

    @property
    def progress_value(self) -> int:
        return self._progress_value

    def enter_blocked(self) -> None:
        with self._lock:
            self.blocked += 1

    def exit_blocked(self) -> None:
        with self._lock:
            self.blocked -= 1


def wait_event(
    event: threading.Event,
    tracker: BlockTracker,
    abort_event: threading.Event,
    what: str = "recv",
) -> None:
    """Block on ``event``, remaining responsive to job abort.

    Raises :class:`AbortError` if the runtime aborts while we wait.
    The abort event is polled every :data:`_WAIT_POLL` wall seconds and
    checked once *before* blocking, so a wait posted after the job
    already aborted raises immediately and a wait in progress observes
    a peer's death within one poll tick — the bound the fault-injection
    tests assert (an injected crash mid-exchange must never hang the
    surviving ranks; see ``tests/test_faults.py``).

    Abort-vs-completion ordering: **completion wins**.  If the
    completion event is set when this call samples the outcome, it
    returns success even when the job abort is also already set — on
    the fast path (event set before we block) and the slow path (event
    set while we poll) alike.  A completed operation is a committed
    local fact: the envelope was matched and delivered under the
    mailbox lock, so reporting success cannot be wrong, and only waits
    that are genuinely still blocked observe the abort.  The consistent
    rule is also what keeps post-crash virtual clocks deterministic: a
    surviving rank consumes exactly the messages its dead peer managed
    to send — a function of the fault plan, never of which thread
    sampled the abort flag first.  The crashed-attempt makespans the
    recovery loop charges (and the ``solver/fault_campaign`` bench
    scenario gates as a deterministic virtual metric) depend on this.
    """
    if event.is_set():
        return
    if abort_event.is_set():
        raise AbortError(f"job aborted while blocked in {what}")
    tracker.enter_blocked()
    try:
        while True:
            if event.wait(_WAIT_POLL):
                return
            if abort_event.is_set():
                raise AbortError(f"job aborted while blocked in {what}")
    finally:
        tracker.exit_blocked()


@dataclass
class ChannelSeq:
    """Monotone per-(src, dst) sequence numbers for debugging/tracing."""

    _counters: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def next(self, src: int, dst: int) -> int:
        key = (src, dst)
        with self._lock:
            n = self._counters.get(key, 0)
            self._counters[key] = n + 1
            return n
