"""Message tracing: export the traffic an external simulator needs.

Section VI: "To perform network simulations we also need appropriate
latency and bandwidth models for the machines and data transfer
characteristics for the application" — and Section II points at SST
(the Structural Simulation Toolkit) as the consumer.  With
``Runtime(trace_messages=True)`` every point-to-point message is
recorded as a :class:`TraceEvent`; :class:`MessageTrace` can export
the stream as CSV/JSON-lines and answer the questions network
modellers ask (traffic matrix, size spectrum, temporal profile) via
:mod:`repro.analysis.traffic`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterator, List

#: CSV column order (stable export format).
CSV_COLUMNS = ("seq", "src", "dst", "cid", "tag", "nbytes", "wire_vtime")


@dataclass(frozen=True)
class TraceEvent:
    """One message on the wire."""

    seq: int
    src: int
    dst: int
    cid: int
    tag: int
    nbytes: int
    wire_vtime: float


class MessageTrace:
    """Per-rank event lists, merged and queried after the run.

    Each simulated rank appends only from its own thread, so recording
    is lock-free; :meth:`events` merges in virtual-time order.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self._per_rank: List[List[TraceEvent]] = [[] for _ in range(nranks)]

    def record(
        self,
        src: int,
        dst: int,
        cid: int,
        tag: int,
        nbytes: int,
        wire_vtime: float,
        seq: int,
    ) -> None:
        self._per_rank[src].append(
            TraceEvent(
                seq=seq, src=src, dst=dst, cid=cid, tag=tag,
                nbytes=nbytes, wire_vtime=wire_vtime,
            )
        )

    def __len__(self) -> int:
        return sum(len(lst) for lst in self._per_rank)

    def events(self) -> List[TraceEvent]:
        """All events, sorted by (virtual time, src, seq)."""
        merged = [e for lst in self._per_rank for e in lst]
        merged.sort(key=lambda e: (e.wire_vtime, e.src, e.seq))
        return merged

    def rank_events(self, rank: int) -> List[TraceEvent]:
        """Events sent by one rank, in program order."""
        return list(self._per_rank[rank])

    def iter_rows(self) -> Iterator[tuple]:
        for e in self.events():
            yield (e.seq, e.src, e.dst, e.cid, e.tag, e.nbytes,
                   e.wire_vtime)

    # -- export ----------------------------------------------------------

    def to_csv(self, path) -> int:
        """Write the trace as CSV; returns the row count."""
        count = 0
        with open(path, "w") as fh:
            fh.write(",".join(CSV_COLUMNS) + "\n")
            for row in self.iter_rows():
                fh.write(",".join(repr(v) for v in row) + "\n")
                count += 1
        return count

    def to_jsonl(self, path) -> int:
        """Write the trace as JSON-lines; returns the row count."""
        count = 0
        with open(path, "w") as fh:
            for e in self.events():
                fh.write(json.dumps(asdict(e)) + "\n")
                count += 1
        return count

    @staticmethod
    def from_jsonl(path) -> "MessageTrace":
        """Reload a trace exported with :meth:`to_jsonl`."""
        events = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(TraceEvent(**json.loads(line)))
        nranks = 1 + max(
            (max(e.src, e.dst) for e in events), default=0
        )
        trace = MessageTrace(nranks)
        for e in events:
            trace._per_rank[e.src].append(e)
        return trace

    # -- quick summaries ----------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for lst in self._per_rank for e in lst)

    def time_span(self) -> float:
        """Virtual-time span between first and last injection."""
        evs = self.events()
        if len(evs) < 2:
            return 0.0
        return evs[-1].wire_vtime - evs[0].wire_vtime
