"""Per-rank virtual clocks.

The CLUSTER'15 CMT-bone paper reports *performance* results (kernel
runtimes, gather-scatter exchange times, per-rank MPI fractions).  A
pure-Python reproduction cannot match wall-clock numbers from a Fortran
mini-app on Infiniband hardware, so instead every simulated rank carries
a :class:`VirtualClock`: a deterministic, monotonically non-decreasing
count of *modelled* seconds.

Compute kernels advance the clock through the machine model (a roofline
cost in flops/bytes) or, optionally, by scaled measured wall time.  The
communication layer advances it with a LogGP-style latency/bandwidth
model.  All figures in the paper's evaluation are regenerated in this
virtual time base.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum


class TimePolicy(Enum):
    """How compute regions convert work into virtual seconds.

    MODELED
        Use the analytic machine model (flops / memory roofline).  Fully
        deterministic; the default for all benchmark harnesses.
    MEASURED
        Measure real wall time of the enclosed numpy work and scale it
        by ``wall_scale``.  Useful for single-node kernel studies where
        the actual numpy performance is the object of interest.
    """

    MODELED = "modeled"
    MEASURED = "measured"


@dataclass
class VirtualClock:
    """A monotonically non-decreasing virtual clock for one rank.

    Attributes
    ----------
    now:
        Current virtual time in seconds.
    compute_time:
        Total virtual seconds attributed to computation.
    comm_time:
        Total virtual seconds attributed to communication (including
        blocked wait time).
    """

    now: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0

    def advance(self, dt: float, *, kind: str = "compute") -> None:
        """Advance the clock by ``dt >= 0`` virtual seconds.

        ``kind`` is either ``"compute"`` or ``"comm"`` and controls which
        accumulator the interval is attributed to.
        """
        if dt < 0:
            raise ValueError(f"negative clock advance: {dt!r}")
        self.now += dt
        if kind == "compute":
            self.compute_time += dt
        elif kind == "comm":
            self.comm_time += dt
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown advance kind: {kind!r}")

    def synchronize(self, t: float, *, kind: str = "comm") -> float:
        """Move the clock forward to virtual time ``t`` if ``t`` is ahead.

        Returns the (non-negative) wait interval.  Used when a receive
        completes: the receiver's clock jumps to the message arrival
        time and the jump is the modelled ``MPI_Wait`` time.
        """
        dt = t - self.now
        if dt > 0:
            self.advance(dt, kind=kind)
            return dt
        return 0.0


class StopwatchRegion:
    """Context manager measuring wall time and crediting a clock.

    Only used under :data:`TimePolicy.MEASURED`; see
    :meth:`repro.mpi.communicator.Comm.compute_region`.
    """

    def __init__(self, clock: VirtualClock, wall_scale: float = 1.0):
        self._clock = clock
        self._scale = wall_scale
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "StopwatchRegion":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._clock.advance(self.elapsed * self._scale, kind="compute")


@dataclass
class ClockStats:
    """Immutable snapshot of one rank's clock, used in reports."""

    rank: int
    total: float
    compute: float
    comm: float
    extra: dict = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        """Fraction of total virtual time spent in communication."""
        if self.total <= 0.0:
            return 0.0
        return self.comm / self.total
