"""Per-rank virtual clocks.

The CLUSTER'15 CMT-bone paper reports *performance* results (kernel
runtimes, gather-scatter exchange times, per-rank MPI fractions).  A
pure-Python reproduction cannot match wall-clock numbers from a Fortran
mini-app on Infiniband hardware, so instead every simulated rank carries
a :class:`VirtualClock`: a deterministic, monotonically non-decreasing
count of *modelled* seconds.

Compute kernels advance the clock through the machine model (a roofline
cost in flops/bytes) or, optionally, by scaled measured wall time.  The
communication layer advances it with a LogGP-style latency/bandwidth
model.  All figures in the paper's evaluation are regenerated in this
virtual time base.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum


class TimePolicy(Enum):
    """How compute regions convert work into virtual seconds.

    MODELED
        Use the analytic machine model (flops / memory roofline).  Fully
        deterministic; the default for all benchmark harnesses.
    MEASURED
        Measure real wall time of the enclosed numpy work and scale it
        by ``wall_scale``.  Useful for single-node kernel studies where
        the actual numpy performance is the object of interest.
    """

    MODELED = "modeled"
    MEASURED = "measured"


@dataclass
class OverlapInterval:
    """An open split-phase communication window on one rank's clock.

    Created by :meth:`VirtualClock.overlap_interval` when nonblocking
    communication is posted (``gs_op_begin``); closed with
    :meth:`VirtualClock.close_overlap` when the matching wait starts.
    The window records only its opening time — the clock keeps running
    (through compute charges) while the exchange is in flight.
    """

    t_open: float


@dataclass
class VirtualClock:
    """A monotonically non-decreasing virtual clock for one rank.

    Attributes
    ----------
    now:
        Current virtual time in seconds.
    compute_time:
        Total virtual seconds attributed to computation.
    comm_time:
        Total virtual seconds attributed to communication (including
        blocked wait time).
    hidden_comm_time:
        Virtual seconds of communication that were *hidden* under
        compute inside split-phase overlap windows — time a blocking
        exchange would have waited but the overlapped pipeline did not
        (see :meth:`close_overlap`).  Informational: hidden time never
        advances ``now``.
    retry_time:
        Virtual seconds spent retransmitting dropped messages
        (exponential backoff + repeated injection overhead, see
        :meth:`charge_retry` and :mod:`repro.faults`).  A subset of
        ``comm_time`` — retries *do* advance ``now``; this accumulator
        only attributes them.
    """

    now: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    hidden_comm_time: float = 0.0
    retry_time: float = 0.0

    def advance(self, dt: float, *, kind: str = "compute") -> None:
        """Advance the clock by ``dt >= 0`` virtual seconds.

        ``kind`` is either ``"compute"`` or ``"comm"`` and controls which
        accumulator the interval is attributed to.
        """
        if dt < 0:
            raise ValueError(f"negative clock advance: {dt!r}")
        self.now += dt
        if kind == "compute":
            self.compute_time += dt
        elif kind == "comm":
            self.comm_time += dt
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown advance kind: {kind!r}")

    def synchronize(self, t: float, *, kind: str = "comm") -> float:
        """Move the clock forward to virtual time ``t`` if ``t`` is ahead.

        Returns the (non-negative) wait interval.  Used when a receive
        completes: the receiver's clock jumps to the message arrival
        time and the jump is the modelled ``MPI_Wait`` time.
        """
        dt = t - self.now
        if dt > 0:
            self.advance(dt, kind=kind)
            return dt
        return 0.0

    def charge_retry(self, dt: float) -> None:
        """Charge ``dt`` seconds of retransmission time (comm + retry).

        Used by the transport when a fault plan drops a message: the
        sender pays the backoff and re-injection cost on its own clock
        (so retried messages hit the wire later), and the interval is
        additionally attributed to :attr:`retry_time` for reporting.
        """
        self.advance(dt, kind="comm")
        self.retry_time += dt

    # -- split-phase overlap accounting -------------------------------------

    def overlap_interval(self) -> OverlapInterval:
        """Open an overlap window at the current time (comm just posted)."""
        return OverlapInterval(t_open=self.now)

    def close_overlap(
        self,
        interval: OverlapInterval,
        completion: float,
        wait_start: "float | None" = None,
    ) -> float:
        """Close an overlap window; credit and return the hidden time.

        ``completion`` is the modelled completion time of the in-flight
        communication (latest message arrival); ``wait_start`` is the
        clock reading when the finishing wait began (defaults to
        ``now``, for callers that close before waiting).  A *blocking*
        exchange opened at ``interval.t_open`` would have waited
        ``max(completion - t_open, 0)``; the overlapped pipeline is
        exposed only to ``max(completion - wait_start, 0)``.  The
        difference is communication hidden under the compute that ran
        inside the window.  Only the exposed part is ever charged to
        ``now`` (by the waits themselves); the hidden part is
        accumulated in :attr:`hidden_comm_time` for reporting.
        """
        if wait_start is None:
            wait_start = self.now
        blocking = max(completion - interval.t_open, 0.0)
        exposed = max(completion - wait_start, 0.0)
        hidden = blocking - exposed
        if hidden < 0:  # pragma: no cover - t_open <= wait_start always
            raise ValueError(f"overlap window closed before it opened: {hidden}")
        self.hidden_comm_time += hidden
        return hidden


class StopwatchRegion:
    """Context manager measuring wall time and crediting a clock.

    Only used under :data:`TimePolicy.MEASURED`; see
    :meth:`repro.mpi.communicator.Comm.compute_region`.
    """

    def __init__(self, clock: VirtualClock, wall_scale: float = 1.0):
        self._clock = clock
        self._scale = wall_scale
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "StopwatchRegion":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._clock.advance(self.elapsed * self._scale, kind="compute")


@dataclass
class ClockStats:
    """Immutable snapshot of one rank's clock, used in reports."""

    rank: int
    total: float
    compute: float
    comm: float
    #: Communication hidden under compute in overlap windows (never
    #: part of ``total``; see :meth:`VirtualClock.close_overlap`).
    hidden_comm: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        """Fraction of total virtual time spent in communication."""
        if self.total <= 0.0:
            return 0.0
        return self.comm / self.total
