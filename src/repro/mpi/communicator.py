"""The simulated communicator: point-to-point + collective operations.

:class:`Comm` mirrors the slice of MPI that Nek5000-family codes use:
``send/recv/isend/irecv/sendrecv``, ``barrier``, ``bcast``, ``reduce``,
``allreduce``, ``gather``, ``scatter``, ``allgather``, ``alltoall`` and
communicator ``split``/``dup``.  Collectives are implemented *on top of*
the point-to-point layer with the textbook algorithms (dissemination
barrier, binomial bcast/reduce, recursive-doubling allreduce, ring
allgather, rotation alltoall), so their virtual-time cost emerges from
the same latency/bandwidth model as everything else instead of being a
hand-tuned constant.

Every public operation accepts an optional ``site=`` label.  The
profiler aggregates ``(operation, site)`` pairs, which is what the
mpiP-style reports in Figs. 8-10 of the paper group by.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .clock import StopwatchRegion, TimePolicy, VirtualClock
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    ReduceOp,
    SUM,
    copy_payload,
    payload_nbytes,
)
from .errors import CommunicatorError, RankError
from .profiler import RankProfile
from .request import RecvRequest, Request, SendRequest
from .status import Status
from .transport import Envelope, PendingRecv, wait_event

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime


class Comm:
    """A communicator bound to one simulated rank.

    Unlike real MPI (where a communicator handle is shared and the rank
    is implicit in the process), each rank thread holds its *own*
    ``Comm`` instance; ``group`` lists the world ranks that are members.
    """

    def __init__(
        self,
        runtime: "Runtime",
        cid: int,
        group: Sequence[int],
        world_rank: int,
        clock: VirtualClock,
        profile: RankProfile,
        parent_path: str = "world",
    ):
        self._runtime = runtime
        self.cid = cid
        self.group = list(group)
        self.world_rank = world_rank
        self.rank = self.group.index(world_rank)
        self.size = len(self.group)
        self.clock = clock
        self._prof = profile
        self._world_to_local: Dict[int, int] = {
            w: i for i, w in enumerate(self.group)
        }
        self._path = parent_path
        self._derive_seq = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Comm {self._path} cid={self.cid} rank={self.rank}/{self.size}>"
        )

    def _default_site(self, op: str) -> str:
        return op

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise RankError(
                f"{what}={r} out of range for communicator of size {self.size}"
            )

    @property
    def machine(self):
        """The machine/network model the job runs on."""
        return self._runtime.machine

    @property
    def faults(self):
        """Active :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self._runtime.faults

    @property
    def profile(self) -> RankProfile:
        """This rank's mpiP-style profile (fault hooks record here)."""
        return self._prof

    def time(self) -> float:
        """Current virtual time on this rank (``MPI_Wtime`` analogue)."""
        return self.clock.now

    # ------------------------------------------------------------------
    # compute-side clock advancement
    # ------------------------------------------------------------------

    def compute(
        self,
        *,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
        seconds: Optional[float] = None,
        efficiency: float = 1.0,
    ) -> float:
        """Charge a compute interval to this rank's virtual clock.

        Either pass ``seconds`` directly, or pass work counts
        (``flops``, ``mem_bytes``) to be priced by the machine model's
        roofline with an ``efficiency`` factor in (0, 1].  Returns the
        charged interval.
        """
        if seconds is None:
            seconds = self.machine.compute_seconds(
                flops=flops, mem_bytes=mem_bytes, efficiency=efficiency
            )
        self.clock.advance(seconds, kind="compute")
        return seconds

    def measured_region(self) -> StopwatchRegion:
        """Wall-clock-measured compute region (``TimePolicy.MEASURED``).

        Usage::

            with comm.measured_region():
                y = kernel(x)   # real numpy work; wall time is charged
        """
        return StopwatchRegion(self.clock, self.machine.wall_scale)

    @property
    def time_policy(self) -> TimePolicy:
        return self._runtime.time_policy

    def shadow(self):
        """Uncharged, unprofiled communication (modelling primitive).

        Inside the context, operations move real data with real
        blocking semantics but advance a scratch clock and record to a
        scratch profile — both discarded on exit.  Used when a
        component's *cost* is modelled separately from its *data path*
        (e.g. the gather-scatter allreduce method at scales where
        materializing the global vector would need the memory of a real
        cluster; see ``repro.gs.allreduce_method``).  Collective
        discipline still applies: every rank of the communicator must
        enter and leave the shadow region together.
        """
        return _ShadowRegion(self)

    # ------------------------------------------------------------------
    # point-to-point: raw layer (no profiling; used by collectives too)
    # ------------------------------------------------------------------

    def _send_raw(
        self, payload: Any, dest: int, tag: int, internal: bool = False
    ) -> int:
        """Eager send; charges sender overhead; returns wire bytes.

        ``internal=True`` routes the message through a shadow context id
        so collective-internal traffic can never match user receives
        (real MPI keeps a separate context for collectives too).
        """
        self._check_rank(dest, "dest")
        faults = self._runtime.faults
        if faults is not None:
            faults.check_time_crash(self)
        nbytes = payload_nbytes(payload)
        net = self.machine.network
        ovh = net.send_overhead(nbytes)
        self.clock.advance(ovh, kind="comm")
        dst_world = self.group[dest]
        seq = self._runtime.seq.next(self.world_rank, dst_world)
        if faults is not None:
            drops = faults.drop_count(self.world_rank, dst_world, seq)
            if drops:
                # The reliable layer under the transport: each lost
                # attempt costs its backoff timeout plus a fresh
                # injection overhead, all on the sender's clock — so
                # the surviving copy hits the wire later and every
                # downstream arrival shifts deterministically.
                penalty = drops * ovh + faults.plan.retry.backoff_seconds(drops)
                self.clock.charge_retry(penalty)
                faults.log_drop(self.world_rank, dst_world, seq, drops, penalty)
                self._prof.record(
                    "FAULT_Retry",
                    f"fault:drop[{self.world_rank}->{dst_world}]",
                    penalty,
                    nbytes * drops,
                    informational=True,
                )
        env = Envelope(
            src=self.world_rank,
            dst=dst_world,
            cid=self.cid + (_INTERNAL_CID if internal else 0),
            tag=tag,
            payload=copy_payload(payload),
            nbytes=nbytes,
            wire_vtime=self.clock.now,
            seq=seq,
        )
        trace = self._runtime.trace
        if trace is not None:
            trace.record(
                src=self.world_rank, dst=dst_world, cid=env.cid,
                tag=tag, nbytes=nbytes, wire_vtime=env.wire_vtime,
                seq=env.seq,
            )
        self._runtime.mailbox(dst_world).deliver(env)
        self._runtime.tracker.bump()
        return nbytes

    def _post_recv_raw(
        self, source: int, tag: int, internal: bool = False
    ) -> PendingRecv:
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
            src_world = self.group[source]
        else:
            src_world = ANY_SOURCE
        return self._runtime.mailbox(self.world_rank).post_recv(
            self.cid + (_INTERNAL_CID if internal else 0), src_world, tag
        )

    def _complete_recv(self, env: Envelope, t0: float) -> Tuple[Any, Status]:
        """Charge virtual arrival/wait time for a matched envelope."""
        net = self.machine.network
        transit = net.transit(env.src, self.world_rank, env.nbytes)
        faults = self._runtime.faults
        if faults is not None:
            transit *= faults.delay_factor(env.src, self.world_rank)
        arrival = env.wire_vtime + transit
        wait_dt = max(0.0, arrival - t0)
        end = max(t0, arrival) + net.recv_overhead(env.nbytes)
        self.clock.synchronize(end, kind="comm")
        status = Status(
            source=self._world_to_local.get(env.src, env.src),
            tag=env.tag,
            nbytes=env.nbytes,
            arrival_vtime=arrival,
            wait_vtime=wait_dt,
        )
        return env.payload, status

    def _recv_raw(
        self, source: int, tag: int, internal: bool = False
    ) -> Tuple[Any, Status]:
        faults = self._runtime.faults
        if faults is not None:
            faults.check_time_crash(self)
        pending = self._post_recv_raw(source, tag, internal=internal)
        t0 = self.clock.now
        wait_event(
            pending.event,
            self._runtime.tracker,
            self._runtime.abort_event,
            what=f"recv(src={source}, tag={tag})",
        )
        env = pending.envelope
        assert env is not None
        return self._complete_recv(env, t0)

    # ------------------------------------------------------------------
    # point-to-point: public, profiled layer
    # ------------------------------------------------------------------

    def send(
        self, payload: Any, dest: int, tag: int = 0, site: Optional[str] = None
    ) -> None:
        """Blocking (eager) standard-mode send."""
        t0 = self.clock.now
        nbytes = self._send_raw(payload, dest, tag)
        self._prof.record(
            "MPI_Send", site or self._default_site("MPI_Send"),
            self.clock.now - t0, nbytes,
        )

    def isend(
        self, payload: Any, dest: int, tag: int = 0, site: Optional[str] = None
    ) -> Request:
        """Nonblocking send.  Eager: the returned request is complete."""
        t0 = self.clock.now
        nbytes = self._send_raw(payload, dest, tag)
        self._prof.record(
            "MPI_Isend", site or self._default_site("MPI_Isend"),
            self.clock.now - t0, nbytes,
        )
        return SendRequest(nbytes)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        site: Optional[str] = None,
        return_status: bool = False,
    ) -> Any:
        """Blocking receive; returns the payload (and optionally status)."""
        t0 = self.clock.now
        payload, status = self._recv_raw(source, tag)
        self._prof.record(
            "MPI_Recv", site or self._default_site("MPI_Recv"),
            self.clock.now - t0, status.nbytes,
        )
        if return_status:
            return payload, status
        return payload

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        site: Optional[str] = None,
    ) -> RecvRequest:
        """Nonblocking receive; completion charged at ``wait`` time."""
        pending = self._post_recv_raw(source, tag)
        self._prof.record(
            "MPI_Irecv", site or self._default_site("MPI_Irecv"), 0.0, 0
        )
        return RecvRequest(self, pending)

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        site: Optional[str] = None,
    ) -> Any:
        """Combined send+receive (deadlock-free with eager sends)."""
        t0 = self.clock.now
        nbytes = self._send_raw(payload, dest, sendtag)
        recv_payload, status = self._recv_raw(source, recvtag)
        self._prof.record(
            "MPI_Sendrecv", site or self._default_site("MPI_Sendrecv"),
            self.clock.now - t0, nbytes + status.nbytes,
        )
        return recv_payload

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Nonblocking probe for a matching unexpected message."""
        if source != ANY_SOURCE:
            # Same validation as a receive: without it, a negative
            # source would silently index the group from the end and
            # probe a different rank than the recv it predicts.
            self._check_rank(source, "source")
            src_world = self.group[source]
        else:
            src_world = ANY_SOURCE
        env = self._runtime.mailbox(self.world_rank).probe(
            self.cid, src_world, tag
        )
        return env is not None

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self, site: Optional[str] = None) -> None:
        """Dissemination barrier: ceil(log2 P) zero-byte rounds."""
        t0 = self.clock.now
        k = 1
        while k < self.size:
            dest = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            self._send_raw(None, dest, _TAG_BARRIER + k, internal=True)
            self._recv_raw(src, _TAG_BARRIER + k, internal=True)
            k <<= 1
        self._prof.record(
            "MPI_Barrier", site or self._default_site("MPI_Barrier"),
            self.clock.now - t0, 0,
        )

    def bcast(
        self, payload: Any = None, root: int = 0, site: Optional[str] = None
    ) -> Any:
        """Binomial-tree broadcast (MPICH algorithm, any P)."""
        self._check_rank(root, "root")
        t0 = self.clock.now
        size, rank = self.size, self.rank
        relative = (rank - root) % size
        buf = payload
        mask = 1
        while mask < size:
            if relative & mask:
                src = (relative - mask + root) % size
                buf, _ = self._recv_raw(src, _TAG_BCAST, internal=True)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if relative + mask < size:
                dst = (relative + mask + root) % size
                self._send_raw(buf, dst, _TAG_BCAST, internal=True)
            mask >>= 1
        self._prof.record(
            "MPI_Bcast", site or self._default_site("MPI_Bcast"),
            self.clock.now - t0, payload_nbytes(buf),
        )
        return buf

    def reduce(
        self,
        payload: Any,
        op: ReduceOp = SUM,
        root: int = 0,
        site: Optional[str] = None,
    ) -> Any:
        """Binomial-tree reduction to ``root`` (returns None elsewhere)."""
        self._check_rank(root, "root")
        t0 = self.clock.now
        size, rank = self.size, self.rank
        relative = (rank - root) % size
        result = payload
        mask = 1
        while mask < size:
            if relative & mask == 0:
                partner = relative | mask
                if partner < size:
                    other, _ = self._recv_raw(
                        (partner + root) % size, _TAG_REDUCE, internal=True
                    )
                    result = op(result, other)
            else:
                dst = ((relative & ~mask) + root) % size
                self._send_raw(result, dst, _TAG_REDUCE, internal=True)
                result = None
                break
            mask <<= 1
        self._prof.record(
            "MPI_Reduce", site or self._default_site("MPI_Reduce"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return result if rank == root else None

    def allreduce(
        self, payload: Any, op: ReduceOp = SUM, site: Optional[str] = None
    ) -> Any:
        """Recursive-doubling allreduce with non-power-of-two fold."""
        t0 = self.clock.now
        result = self._allreduce_raw(payload, op)
        self._prof.record(
            "MPI_Allreduce", site or self._default_site("MPI_Allreduce"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return result

    def _allreduce_raw(self, payload: Any, op: ReduceOp) -> Any:
        size, rank = self.size, self.rank
        if size == 1:
            return copy_payload(payload)
        pof2 = 1
        while pof2 * 2 <= size:
            pof2 *= 2
        rem = size - pof2
        result = copy_payload(payload)
        # Fold phase: the first 2*rem ranks pair up so pof2 ranks remain.
        if rank < 2 * rem:
            if rank % 2 == 0:
                self._send_raw(result, rank + 1, _TAG_ALLREDUCE, internal=True)
                newrank = -1
            else:
                other, _ = self._recv_raw(rank - 1, _TAG_ALLREDUCE, internal=True)
                result = op(result, other)
                newrank = rank // 2
        else:
            newrank = rank - rem
        # Recursive doubling among the pof2 survivors.
        if newrank != -1:
            mask = 1
            while mask < pof2:
                partner_new = newrank ^ mask
                partner = (
                    partner_new * 2 + 1
                    if partner_new < rem
                    else partner_new + rem
                )
                self._send_raw(result, partner, _TAG_ALLREDUCE + 1, internal=True)
                other, _ = self._recv_raw(partner, _TAG_ALLREDUCE + 1, internal=True)
                result = op(result, other)
                mask <<= 1
        # Unfold phase: survivors push the result back to idle partners.
        if rank < 2 * rem:
            if rank % 2 == 0:
                result, _ = self._recv_raw(rank + 1, _TAG_ALLREDUCE + 2, internal=True)
            else:
                self._send_raw(result, rank - 1, _TAG_ALLREDUCE + 2, internal=True)
        return result

    def allgather(self, payload: Any, site: Optional[str] = None) -> List[Any]:
        """Ring allgather; returns a list indexed by rank."""
        t0 = self.clock.now
        size, rank = self.size, self.rank
        blocks: List[Any] = [None] * size
        blocks[rank] = copy_payload(payload)
        right = (rank + 1) % size
        left = (rank - 1) % size
        send_idx = rank
        for _ in range(size - 1):
            self._send_raw(blocks[send_idx], right, _TAG_ALLGATHER, internal=True)
            recv_idx = (send_idx - 1) % size
            blocks[recv_idx], _ = self._recv_raw(left, _TAG_ALLGATHER, internal=True)
            send_idx = recv_idx
        self._prof.record(
            "MPI_Allgather", site or self._default_site("MPI_Allgather"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return blocks

    def gather(
        self, payload: Any, root: int = 0, site: Optional[str] = None
    ) -> Optional[List[Any]]:
        """Linear gather to ``root``; returns list at root, None elsewhere."""
        self._check_rank(root, "root")
        t0 = self.clock.now
        out: Optional[List[Any]] = None
        if self.rank == root:
            out = [None] * self.size
            out[root] = copy_payload(payload)
            for r in range(self.size):
                if r == root:
                    continue
                out[r], _ = self._recv_raw(r, _TAG_GATHER, internal=True)
        else:
            self._send_raw(payload, root, _TAG_GATHER, internal=True)
        self._prof.record(
            "MPI_Gather", site or self._default_site("MPI_Gather"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return out

    def scatter(
        self,
        payloads: Optional[Sequence[Any]] = None,
        root: int = 0,
        site: Optional[str] = None,
    ) -> Any:
        """Linear scatter from ``root``; each rank gets its element."""
        self._check_rank(root, "root")
        t0 = self.clock.now
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommunicatorError(
                    "scatter at root needs one payload per rank"
                )
            for r in range(self.size):
                if r == root:
                    continue
                self._send_raw(payloads[r], r, _TAG_SCATTER, internal=True)
            mine = copy_payload(payloads[root])
            nbytes = sum(payload_nbytes(p) for p in payloads)
        else:
            mine, status = self._recv_raw(root, _TAG_SCATTER, internal=True)
            nbytes = status.nbytes
        self._prof.record(
            "MPI_Scatter", site or self._default_site("MPI_Scatter"),
            self.clock.now - t0, nbytes,
        )
        return mine

    def alltoall(
        self, payloads: Sequence[Any], site: Optional[str] = None
    ) -> List[Any]:
        """Rotation (pairwise) all-to-all personalized exchange.

        ``payloads[d]`` goes to rank ``d``; returns the list received,
        indexed by source rank.  This is the pattern the paper's
        ``gs_setup`` discovery phase uses.
        """
        if len(payloads) != self.size:
            raise CommunicatorError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        t0 = self.clock.now
        size, rank = self.size, self.rank
        out: List[Any] = [None] * size
        out[rank] = copy_payload(payloads[rank])
        nbytes = 0
        for i in range(1, size):
            dst = (rank + i) % size
            src = (rank - i) % size
            nbytes += self._send_raw(payloads[dst], dst, _TAG_ALLTOALL + i, internal=True)
            out[src], _ = self._recv_raw(src, _TAG_ALLTOALL + i, internal=True)
        self._prof.record(
            "MPI_Alltoall", site or self._default_site("MPI_Alltoall"),
            self.clock.now - t0, nbytes,
        )
        return out

    def scan(
        self, payload: Any, op: ReduceOp = SUM, site: Optional[str] = None
    ) -> Any:
        """Inclusive prefix reduction (``MPI_Scan``), hypercube algorithm.

        Rank r receives ``op(x_0, ..., x_r)``.  Used by Nek-style codes
        for global numbering offsets.
        """
        t0 = self.clock.now
        size, rank = self.size, self.rank
        result = copy_payload(payload)      # inclusive prefix so far
        partial = copy_payload(payload)     # combined value of my block
        mask = 1
        while mask < size:
            partner = rank ^ mask
            if partner < size:
                self._send_raw(partial, partner, _TAG_SCAN, internal=True)
                other, _ = self._recv_raw(partner, _TAG_SCAN, internal=True)
                # Keep operand order: the lower-rank block goes first,
                # so non-commutative (merely associative) ops work.
                if partner < rank:
                    result = op(other, result)
                    partial = op(other, partial)
                else:
                    partial = op(partial, other)
            mask <<= 1
        self._prof.record(
            "MPI_Scan", site or self._default_site("MPI_Scan"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return result

    def exscan(
        self, payload: Any, op: ReduceOp = SUM, site: Optional[str] = None
    ) -> Any:
        """Exclusive prefix reduction (``MPI_Exscan``).

        Rank 0 receives ``None``; rank r > 0 receives
        ``op(x_0, ..., x_{r-1})``.
        """
        t0 = self.clock.now
        size, rank = self.size, self.rank
        result: Any = None                  # exclusive prefix so far
        partial = copy_payload(payload)
        mask = 1
        while mask < size:
            partner = rank ^ mask
            if partner < size:
                self._send_raw(partial, partner, _TAG_SCAN + 1,
                               internal=True)
                other, _ = self._recv_raw(partner, _TAG_SCAN + 1,
                                          internal=True)
                if partner < rank:
                    result = other if result is None else op(other, result)
                    partial = op(other, partial)
                else:
                    partial = op(partial, other)
            mask <<= 1
        self._prof.record(
            "MPI_Exscan", site or self._default_site("MPI_Exscan"),
            self.clock.now - t0, payload_nbytes(payload),
        )
        return result

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------

    def dup(self) -> "Comm":
        """Duplicate this communicator with a fresh context id."""
        return self._derive(self.group, tag="dup")

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """Split into sub-communicators by ``color``, ordered by ``key``.

        Collective over this communicator.  Returns ``None`` for
        ``color < 0`` (MPI_UNDEFINED semantics).
        """
        triples = self.allgather(
            (int(color), int(key), self.rank), site="comm_split"
        )
        if color < 0:
            self._derive_seq += 1  # keep derivation counters aligned
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )
        group = [self.group[r] for _, r in members]
        return self._derive(group, tag=f"split.{color}")

    def _derive(self, group: Sequence[int], tag: str) -> "Comm":
        self._derive_seq += 1
        key = (self.cid, self._derive_seq, tag)
        cid = self._runtime.context_id(key)
        return Comm(
            runtime=self._runtime,
            cid=cid,
            group=group,
            world_rank=self.world_rank,
            clock=self.clock,
            profile=self._prof,
            parent_path=f"{self._path}/{tag}",
        )


# Tag bases reserved for internal collective traffic.  User tags share
# the space, but collectives always execute in lockstep on all members,
# so a disjoint high range avoids accidental matches with user p2p.
class _ShadowRegion:
    """Context manager backing :meth:`Comm.shadow`."""

    def __init__(self, comm: Comm):
        self._comm = comm
        self._saved_clock: Optional[VirtualClock] = None
        self._saved_prof: Optional[RankProfile] = None

    def __enter__(self) -> Comm:
        comm = self._comm
        self._saved_clock = comm.clock
        self._saved_prof = comm._prof
        scratch = VirtualClock()
        scratch.now = comm.clock.now  # keep message ordering plausible
        comm.clock = scratch
        comm._prof = RankProfile(comm.world_rank)
        return comm

    def __exit__(self, *exc) -> None:
        comm = self._comm
        assert self._saved_clock is not None
        comm.clock = self._saved_clock
        comm._prof = self._saved_prof


#: Context-id offset for collective-internal traffic (keeps it from
#: ever matching user point-to-point receives, even with wildcards).
#: Derived user cids are 56-bit hashes (see ``Runtime.context_id``), so
#: the offset sits above that range: internal cids occupy a disjoint
#: band and can never collide with any user communicator's cid.
_INTERNAL_CID = 1 << 60

_TAG_BARRIER = 1 << 24
_TAG_BCAST = (1 << 24) + 64
_TAG_REDUCE = (1 << 24) + 128
_TAG_ALLREDUCE = (1 << 24) + 192
_TAG_ALLGATHER = (1 << 24) + 256
_TAG_GATHER = (1 << 24) + 320
_TAG_SCATTER = (1 << 24) + 384
_TAG_ALLTOALL = (1 << 24) + 448
_TAG_SCAN = (1 << 24) + 1024
