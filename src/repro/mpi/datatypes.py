"""Reduction operations and payload size accounting.

The simulated communicator transports numpy arrays and plain Python
objects.  Reduction collectives need an associative operation; this
module provides the standard MPI set (SUM, PROD, MIN, MAX, LAND, LOR,
BAND, BOR) as small singleton objects that work element-wise on numpy
arrays and on Python scalars.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

import numpy as np


class ReduceOp:
    """An associative, commutative reduction operation.

    Parameters
    ----------
    name:
        MPI-style name, e.g. ``"MPI_SUM"``.
    fn:
        Binary function combining two payloads element-wise.
    identity_for:
        Given a numpy dtype, return the identity element (used by the
        "allreduce onto a big vector" gather-scatter method, which must
        fill slots a rank does not contribute to).
    """

    __slots__ = ("name", "fn", "_identity_for", "ufunc")

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any], Any],
        identity_for: Callable[[np.dtype], Any],
        ufunc: Any = None,
    ):
        self.name = name
        self.fn = fn
        self._identity_for = identity_for
        #: Matching numpy ufunc (``np.add`` for SUM, ...) used by the
        #: gather-scatter library for vectorized segment reduction;
        #: ``None`` for custom ops without one.
        self.ufunc = ufunc

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def identity(self, dtype: np.dtype) -> Any:
        """Identity element of the operation for ``dtype``."""
        return self._identity_for(np.dtype(dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ReduceOp {self.name}>"


def _min_identity(dt: np.dtype) -> Any:
    if np.issubdtype(dt, np.floating):
        return np.array(np.inf, dtype=dt)[()]
    if np.issubdtype(dt, np.integer):
        return np.iinfo(dt).max
    raise TypeError(f"MIN identity undefined for dtype {dt}")


def _max_identity(dt: np.dtype) -> Any:
    if np.issubdtype(dt, np.floating):
        return np.array(-np.inf, dtype=dt)[()]
    if np.issubdtype(dt, np.integer):
        return np.iinfo(dt).min
    raise TypeError(f"MAX identity undefined for dtype {dt}")


SUM = ReduceOp("MPI_SUM", lambda a, b: a + b, lambda dt: dt.type(0), np.add)
PROD = ReduceOp(
    "MPI_PROD", lambda a, b: a * b, lambda dt: dt.type(1), np.multiply
)
MIN = ReduceOp("MPI_MIN", np.minimum, _min_identity, np.minimum)
MAX = ReduceOp("MPI_MAX", np.maximum, _max_identity, np.maximum)
LAND = ReduceOp("MPI_LAND", np.logical_and, lambda dt: True, np.logical_and)
LOR = ReduceOp("MPI_LOR", np.logical_or, lambda dt: False, np.logical_or)
BAND = ReduceOp(
    "MPI_BAND", np.bitwise_and, lambda dt: dt.type(-1), np.bitwise_and
)
BOR = ReduceOp("MPI_BOR", np.bitwise_or, lambda dt: dt.type(0), np.bitwise_or)

#: All built-in reduction operations, keyed by MPI name.
BUILTIN_OPS = {
    op.name: op for op in (SUM, PROD, MIN, MAX, LAND, LOR, BAND, BOR)
}

#: Wildcard constants mirroring MPI semantics.
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Wire size of a message payload in bytes.

    Numpy arrays report their buffer size; scalars their itemsize;
    anything else is costed as its pickle length (the runtime ships
    Python objects by reference, but the *network model* must charge a
    realistic byte count).
    """
    wire = getattr(payload, "__wire_nbytes__", None)
    if wire is not None:
        return int(wire)
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (np.generic,)):
        return payload.nbytes
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)) and all(
        isinstance(p, np.ndarray) for p in payload
    ):
        return sum(p.nbytes for p in payload)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable exotic object
        return 64


def copy_payload(payload: Any) -> Any:
    """Snapshot a payload at send time.

    MPI semantics let the sender reuse its buffer as soon as the send
    returns, so the transport must not alias sender memory.  Arrays are
    copied; immutable scalars/bytes pass through; other objects are
    deep-copied via pickle round-trip only when mutable containers are
    involved (cheap common cases avoid the round-trip).
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (int, float, complex, bool, str, bytes, np.generic)):
        return payload
    if payload is None:
        return None
    if isinstance(payload, tuple) and all(
        isinstance(p, (int, float, complex, bool, str, bytes)) for p in payload
    ):
        return payload
    return pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
