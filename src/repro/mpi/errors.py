"""Exception hierarchy for the simulated MPI runtime.

The runtime executes one Python thread per simulated rank.  Errors can
originate inside a single rank (bad arguments, truncation) or from the
collective state of the job (deadlock, a peer rank crashing).  All of
them derive from :class:`MPIError` so callers can catch the whole
family with one clause.
"""

from __future__ import annotations


class MPIError(Exception):
    """Base class for all errors raised by the simulated MPI runtime."""


class DeadlockError(MPIError):
    """Every rank is blocked and no message can make progress.

    Raised in *all* blocked ranks by the runtime watchdog.  The message
    includes a snapshot of what each rank was blocked on, which makes
    classic mismatched send/recv bugs easy to diagnose.
    """


class AbortError(MPIError):
    """The job was aborted because another rank raised an exception.

    Ranks that were blocked in communication when a peer died receive
    this error instead of hanging forever.  The original traceback is
    re-raised from :meth:`repro.mpi.runtime.Runtime.run` on the caller's
    thread.
    """


class CommunicatorError(MPIError):
    """Invalid communicator usage (bad rank, mismatched collective...)."""


class RankError(CommunicatorError):
    """A rank index is out of range for the communicator."""
