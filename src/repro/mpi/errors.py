"""Exception hierarchy for the simulated MPI runtime.

The runtime executes one Python thread per simulated rank.  Errors can
originate inside a single rank (bad arguments, truncation) or from the
collective state of the job (deadlock, a peer rank crashing).  All of
them derive from :class:`MPIError` so callers can catch the whole
family with one clause.
"""

from __future__ import annotations


class MPIError(Exception):
    """Base class for all errors raised by the simulated MPI runtime."""


class DeadlockError(MPIError):
    """Every rank is blocked and no message can make progress.

    Raised in *all* blocked ranks by the runtime watchdog.  The message
    includes a snapshot of what each rank was blocked on, which makes
    classic mismatched send/recv bugs easy to diagnose.
    """


class AbortError(MPIError):
    """The job was aborted because another rank raised an exception.

    Ranks that were blocked in communication when a peer died receive
    this error instead of hanging forever.  The original traceback is
    re-raised from :meth:`repro.mpi.runtime.Runtime.run` on the caller's
    thread.
    """


class RankCrashError(MPIError):
    """A rank was killed by an injected fault (see :mod:`repro.faults`).

    Raised *on the crashing rank's own thread* when a scheduled
    :class:`~repro.faults.CrashEvent` fires.  Deliberately **not** a
    subclass of :class:`AbortError`: the runtime must treat the crash as
    a primary failure (set the abort event so blocked peers wake with
    :class:`AbortError`) rather than as a secondary casualty — making it
    an ``AbortError`` would leave every surviving rank blocked until the
    deadlock watchdog gave up.  The crash-recovery loop in
    :func:`repro.solver.driver.run_with_recovery` catches this error,
    restores the last complete checkpoint, and replays.
    """

    def __init__(self, message: str, rank: int = -1, step: "int | None" = None,
                 vtime: float = 0.0):
        super().__init__(message)
        #: World rank that crashed.
        self.rank = rank
        #: Global step the rank was on when it crashed (None for
        #: virtual-time-triggered crashes outside the step loop).
        self.step = step
        #: Crashing rank's virtual clock at the moment of the crash.
        self.vtime = vtime


class CommunicatorError(MPIError):
    """Invalid communicator usage (bad rank, mismatched collective...)."""


class RankError(CommunicatorError):
    """A rank index is out of range for the communicator."""
