"""Nonblocking communication requests (``MPI_Request`` analogue).

Sends are *eager*: the payload is snapshotted and delivered at post
time, so a :class:`SendRequest` is born complete (its virtual cost was
already charged at post).  Receives return a :class:`RecvRequest` whose
:meth:`~RecvRequest.wait` blocks the calling thread until the matching
envelope arrives and then charges the receiver's virtual clock with the
modelled wait interval — this is exactly the ``MPI_Wait`` time that
dominates Fig. 9 of the paper.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, TYPE_CHECKING

from .status import Status
from .transport import PendingRecv, wait_event

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Comm


class Request:
    """Abstract base for nonblocking-operation handles."""

    def wait(self, site: Optional[str] = None) -> Any:
        raise NotImplementedError

    def test(self) -> bool:
        """True if the operation could complete without blocking."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        raise NotImplementedError

    @staticmethod
    def waitall(
        requests: Sequence["Request"], site: Optional[str] = None
    ) -> list:
        """``MPI_Waitall``: wait on every request, payloads in order.

        Class-level convenience over the module-scope :func:`waitall`
        so call sites holding a list of mixed requests need no extra
        import (``Request.waitall(reqs)``).
        """
        return waitall(requests, site=site)

    @staticmethod
    def testall(requests: Sequence["Request"]) -> bool:
        """``MPI_Testall``: True iff every request could complete now."""
        return testall(requests)


class SendRequest(Request):
    """Handle for an eager nonblocking send (already complete)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def wait(self, site: Optional[str] = None) -> None:
        return None

    def test(self) -> bool:
        return True

    @property
    def completed(self) -> bool:
        return True


class RecvRequest(Request):
    """Handle for a posted nonblocking receive."""

    __slots__ = ("_comm", "_pending", "_status", "_payload", "_done")

    def __init__(self, comm: "Comm", pending: PendingRecv):
        self._comm = comm
        self._pending = pending
        self._status: Optional[Status] = None
        self._payload: Any = None
        self._done = False

    def test(self) -> bool:
        return self._done or self._pending.event.is_set()

    @property
    def completed(self) -> bool:
        return self._done

    @property
    def status(self) -> Optional[Status]:
        """Receive status; ``None`` until :meth:`wait` returns."""
        return self._status

    def wait(self, site: Optional[str] = None) -> Any:
        """Block until the message arrives; return the payload.

        Charges the receiver's virtual clock: the clock jumps to the
        modelled arrival time (plus receive overhead) if the message is
        "late" in virtual time, and the jump is recorded against
        ``MPI_Wait`` in the profiler.
        """
        if self._done:
            return self._payload
        comm = self._comm
        rt = comm._runtime
        t0 = comm.clock.now
        wait_event(
            self._pending.event, rt.tracker, rt.abort_event, what="MPI_Wait"
        )
        env = self._pending.envelope
        assert env is not None
        payload, status = comm._complete_recv(env, t0)
        self._payload = payload
        self._status = status
        self._done = True
        comm._prof.record(
            "MPI_Wait",
            site or comm._default_site("MPI_Wait"),
            comm.clock.now - t0,
            env.nbytes,
        )
        return payload


def waitall(requests: Sequence[Request], site: Optional[str] = None) -> list:
    """Wait for every request; return payloads in request order.

    Like ``MPI_Waitall``, completion order does not matter: each wait
    advances the rank's virtual clock only as far as the latest arrival,
    so the total charged time equals the makespan of the arrivals, not
    their sum.
    """
    return [req.wait(site=site) for req in requests]


def testall(requests: Sequence[Request]) -> bool:
    """True iff every request in the list could complete without blocking.

    Like ``MPI_Testall`` this does not complete the operations (no
    clock charge, no profiler record): pair with :func:`waitall` once
    it returns True, which will then complete everything wait-free.
    """
    return all(req.test() for req in requests)


def waitany(
    requests: Sequence[Request], site: Optional[str] = None
) -> tuple:
    """Wait until any request completes; return (index, payload).

    Like ``MPI_Waitany``: already-completable requests are preferred
    (checked with :meth:`Request.test` in order); otherwise the call
    blocks on the first request and lets the runtime's event wake-ups
    drive progress — with deterministic virtual time, the *returned*
    completion is the one observable earliest in program order among
    the testable set, which is what the mini-app codes rely on.
    """
    if not requests:
        raise ValueError("waitany requires at least one request")
    import time as _time

    from .errors import AbortError

    runtime = next(
        (r._comm._runtime for r in requests if isinstance(r, RecvRequest)),
        None,
    )
    tracked = False
    try:
        while True:
            # Completion wins over abort, matching wait_event: a
            # request that already tests complete is a committed local
            # fact, so report it; only a sweep that finds nothing
            # completable observes the job abort.  This keeps
            # post-crash progress (and hence crashed-attempt virtual
            # makespans) a function of what peers actually sent.
            for i, req in enumerate(requests):
                if req.test():
                    return i, req.wait(site=site)
            if runtime is None:  # pragma: no cover - all-send defensive
                continue
            if runtime.abort_event.is_set():
                raise AbortError("job aborted while blocked in waitany")
            if not tracked:
                runtime.tracker.enter_blocked()
                tracked = True
            _time.sleep(0.0005)
    finally:
        if tracked:
            runtime.tracker.exit_blocked()
