"""Shared-memory plumbing for the process-parallel execution backend.

The ``procs`` backend (:mod:`repro.mpi.backend`) runs every simulated
rank as an OS process, so envelope delivery can no longer be a direct
method call on the destination's :class:`~repro.mpi.transport.Mailbox`.
This module provides the two pieces of cross-process state it needs:

* :class:`ShmRing` — a multi-producer single-consumer ring buffer in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  Each
  rank owns one ring; every peer pickles envelopes into it and the
  owner's delivery thread drains it into the ordinary in-process
  mailbox, so the matching semantics (posted/unexpected queues,
  non-overtaking per channel) are byte-for-byte the thread backend's.
* :class:`SharedBlockTracker` — the
  :class:`~repro.mpi.transport.BlockTracker` API over process-shared
  counters, so the parent's deadlock watchdog can observe every rank.

Memory-ordering note: the ring's ``head``/``tail`` are aligned 64-bit
counters.  The reader never consumes a record before the writer's
semaphore release (which is a full synchronisation point), and writers
read ``head`` only to bound free space — a stale value is merely
conservative.  The single racy access is the reader's 8-byte ``head``
store observed by writers, which is atomic for aligned 64-bit stores on
every platform CPython's ``mmap`` targets.
"""

from __future__ import annotations

import itertools
import os
import pickle
import secrets
import struct
import time
from multiprocessing import shared_memory
from typing import Callable, List, Optional

from .errors import AbortError

#: Default per-rank ring capacity (bytes of pickled envelope payload).
DEFAULT_RING_CAPACITY = 1 << 20

#: Records larger than this fraction of the ring spill to a dedicated
#: one-shot shared-memory segment (the ring then carries only its name).
_SPILL_FRACTION = 4

#: Writer back-off while the ring is full (wall seconds).
_PUSH_POLL = 0.0005

#: Ring header: two little-endian uint64 (head, tail), 8-byte aligned.
_HDR = 16

#: Record kinds (first byte of every record body).
_KIND_INLINE = b"I"
_KIND_SPILL = b"S"

#: Where POSIX shared memory shows up as files (spill-sweep fallback).
_SHM_DIR = "/dev/shm"


def _unlink_segment(name: str) -> bool:
    """Best-effort unlink of one named segment; True if it was removed."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent unlink
        return False
    return True


class ShmRing:
    """MPSC ring buffer over a shared-memory segment.

    One reader (the owning rank's delivery thread), many writers (every
    peer rank's sending thread).  Writers serialise on ``writer_lock``;
    the reader is lock-free and paced by ``data_sem``, which counts
    whole records.  ``head``/``tail`` are monotone byte offsets (they
    never wrap — positions are taken modulo the capacity), so free
    space is simply ``capacity - (tail - head)``.

    Oversized records (bigger than ``capacity // _SPILL_FRACTION``)
    spill into a dedicated one-shot ``SharedMemory`` segment created by
    the writer and unlinked by the reader, so the ring never deadlocks
    on a record that cannot fit.

    Spill segments are named ``<spill_prefix>_<pid>_<seq>`` — the
    prefix is fixed before any child forks, so the parent can find and
    unlink leftovers after a hard worker death (a writer that dies
    between creating its spill segment and publishing the ring record
    leaves a segment no reader will ever unlink; see
    :meth:`sweep_spills`).
    """

    def __init__(self, ctx, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 4096:
            raise ValueError(f"ring capacity too small: {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HDR + capacity
        )
        self._buf = self._shm.buf
        struct.pack_into("<QQ", self._buf, 0, 0, 0)
        self.writer_lock = ctx.Lock()
        self.data_sem = ctx.Semaphore(0)
        #: Job-unique namespace for this ring's spill segments;
        #: inherited by every forked writer.
        self.spill_prefix = f"reprospill{secrets.token_hex(6)}"
        self._spill_seq = itertools.count()

    # -- head/tail accessors ------------------------------------------

    def _head(self) -> int:
        return struct.unpack_from("<Q", self._buf, 0)[0]

    def _set_head(self, v: int) -> None:
        struct.pack_into("<Q", self._buf, 0, v)

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, 8)[0]

    def _set_tail(self, v: int) -> None:
        struct.pack_into("<Q", self._buf, 8, v)

    # -- circular byte copies -----------------------------------------

    def _write(self, pos: int, data: bytes) -> None:
        off = pos % self.capacity
        first = min(len(data), self.capacity - off)
        self._buf[_HDR + off:_HDR + off + first] = data[:first]
        rest = len(data) - first
        if rest:
            self._buf[_HDR:_HDR + rest] = data[first:]

    def _read(self, pos: int, n: int) -> bytes:
        off = pos % self.capacity
        first = min(n, self.capacity - off)
        out = bytes(self._buf[_HDR + off:_HDR + off + first])
        rest = n - first
        if rest:
            out += bytes(self._buf[_HDR:_HDR + rest])
        return out

    # -- producer side -------------------------------------------------

    def push(
        self,
        data: bytes,
        abort_event=None,
        give_up: Optional[Callable[[], bool]] = None,
        what: str = "send",
    ) -> bool:
        """Append one record; block (politely) while the ring is full.

        Raises :class:`AbortError` if ``abort_event`` fires while
        waiting for space; returns ``False`` (record dropped) when
        ``give_up()`` turns true — the backend passes "the destination
        rank has finished", in which case the message can never be
        received anyway.  Returns ``True`` on success.  A spill
        segment created for a record that is then dropped (or whose
        push aborts) is unlinked here — only *published* records hand
        unlink responsibility to the reader.
        """
        spill_name: Optional[str] = None
        if len(data) + 5 > self.capacity // _SPILL_FRACTION:
            spill_name, body = self._spill(data)
            rec = _KIND_SPILL + body
        else:
            rec = _KIND_INLINE + data
        need = 4 + len(rec)
        while True:
            with self.writer_lock:
                head = self._head()
                tail = self._tail()
                if self.capacity - (tail - head) >= need:
                    self._write(tail, struct.pack("<I", len(rec)))
                    self._write(tail + 4, rec)
                    self._set_tail(tail + need)
                    break
            if abort_event is not None and abort_event.is_set():
                if spill_name is not None:
                    _unlink_segment(spill_name)
                raise AbortError(f"job aborted while blocked in {what}")
            if give_up is not None and give_up():
                if spill_name is not None:
                    _unlink_segment(spill_name)
                return False
            time.sleep(_PUSH_POLL)
        self.data_sem.release()
        return True

    def _spill(self, data: bytes) -> tuple:
        """Write ``data`` to a fresh named segment; (name, record body)."""
        name = f"{self.spill_prefix}_{os.getpid()}_{next(self._spill_seq)}"
        seg = shared_memory.SharedMemory(
            name=name, create=True, size=max(len(data), 1)
        )
        seg.buf[: len(data)] = data
        seg.close()
        return name, struct.pack("<Q", len(data)) + name.encode("ascii")

    # -- consumer side -------------------------------------------------

    def pop(self, timeout: float) -> Optional[bytes]:
        """Take one record, or ``None`` if nothing arrives in time."""
        if not self.data_sem.acquire(timeout=timeout):
            return None
        head = self._head()
        (n,) = struct.unpack("<I", self._read(head, 4))
        rec = self._read(head + 4, n)
        self._set_head(head + 4 + n)
        if rec[:1] == _KIND_SPILL:
            return self._unspill(rec[1:])
        return rec[1:]

    @staticmethod
    def _unspill(body: bytes) -> bytes:
        (size,) = struct.unpack("<Q", body[:8])
        name = body[8:].decode("ascii")
        seg = shared_memory.SharedMemory(name=name)
        try:
            return bytes(seg.buf[:size])
        finally:
            seg.close()
            seg.unlink()

    # -- lifecycle ------------------------------------------------------

    def drain_spills(self) -> None:
        """Unlink spill segments referenced by unread records.

        Called by the parent during cleanup so an aborted job does not
        leak shared-memory segments (the reader normally unlinks each
        spill as it consumes it).
        """
        while self.data_sem.acquire(timeout=0):
            head = self._head()
            (n,) = struct.unpack("<I", self._read(head, 4))
            rec = self._read(head + 4, n)
            self._set_head(head + 4 + n)
            if rec[:1] == _KIND_SPILL:
                try:
                    self._unspill(rec[1:])
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass

    def orphaned_spills(self) -> List[str]:
        """Names of this ring's spill segments still present on disk.

        After :meth:`drain_spills` has consumed every published record,
        any remaining segment under this ring's prefix is an orphan: a
        writer died between creating it and publishing the record (or a
        reader died between reading the record and unlinking).  Only
        meaningful where POSIX shared memory is file-backed.
        """
        try:
            names = os.listdir(_SHM_DIR)
        except OSError:  # pragma: no cover - no /dev/shm
            return []
        return sorted(n for n in names if n.startswith(self.spill_prefix))

    def sweep_spills(self) -> int:
        """Unlink orphaned spill segments; returns how many were removed.

        The parent-side fallback for hard worker death: the reader
        normally unlinks each spill as it consumes it and
        :meth:`drain_spills` covers unread-but-published records, but a
        segment whose record never made it into the ring is reachable
        only by name.  The job-unique ``spill_prefix`` makes that
        lookup safe (no other job's segments can match).
        """
        return sum(1 for name in self.orphaned_spills()
                   if _unlink_segment(name))

    def reset(self) -> None:
        """Re-arm the ring for the next job (persistent worker pools).

        Drops any unread records (unlinking their spills), rewinds
        ``head``/``tail``, and leaves the semaphore at zero.  Callers
        must guarantee no writer is active.
        """
        self.drain_spills()
        self.sweep_spills()
        struct.pack_into("<QQ", self._buf, 0, 0, 0)

    def destroy(self) -> None:
        """Release the segment (parent side, after every child exited)."""
        self._buf = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass


def dump_envelope(env) -> bytes:
    """Pickle one :class:`~repro.mpi.transport.Envelope` for the wire."""
    return pickle.dumps(env, protocol=pickle.HIGHEST_PROTOCOL)


def load_envelope(data: bytes):
    return pickle.loads(data)


class SharedBlockTracker:
    """:class:`~repro.mpi.transport.BlockTracker` API over shared counters.

    ``blocked`` and ``progress`` are ``multiprocessing.Value`` objects
    created by the parent; every rank process and the parent watchdog
    observe the same counts, which is what makes deadlock detection
    work across address spaces.
    """

    def __init__(self, blocked, progress):
        self._blocked = blocked
        self._progress = progress

    def reset(self) -> None:
        """Zero both counters (between jobs of a persistent worker pool)."""
        with self._blocked.get_lock():
            self._blocked.value = 0
        with self._progress.get_lock():
            self._progress.value = 0

    def bump(self) -> None:
        with self._progress.get_lock():
            self._progress.value += 1

    @property
    def progress_value(self) -> int:
        return self._progress.value

    def enter_blocked(self) -> None:
        with self._blocked.get_lock():
            self._blocked.value += 1

    def exit_blocked(self) -> None:
        with self._blocked.get_lock():
            self._blocked.value -= 1

    @property
    def blocked(self) -> int:
        return self._blocked.value
