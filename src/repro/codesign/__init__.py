"""``repro.codesign`` — architecture design-space exploration.

The reason mini-apps exist (paper abstract): "an investigation of
mini-app behavior can provide system designers with insight into the
impact of architectures ... on application performance".  This package
sweeps CMT-bone across candidate machine models and ranks them:
factorial knob grids, named notional-exascale candidates, speedup
tables, and cost/performance Pareto fronts.
"""

from .candidates import (
    Candidate,
    candidate_grid,
    default_cost,
    notional_exascale_candidates,
    scale_machine,
)
from .explorer import (
    Evaluation,
    Explorer,
    VscaleExplorer,
    bottleneck,
    gs_method_crossover,
    pareto_front,
    rank_by_speed,
    speedup_table,
)

__all__ = [
    "Candidate",
    "Evaluation",
    "Explorer",
    "VscaleExplorer",
    "bottleneck",
    "gs_method_crossover",
    "candidate_grid",
    "default_cost",
    "notional_exascale_candidates",
    "pareto_front",
    "rank_by_speed",
    "scale_machine",
    "speedup_table",
]
