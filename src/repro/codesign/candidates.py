"""Candidate-architecture definitions for design-space exploration.

The paper's purpose for CMT-bone (Section III-C): "position ourselves
to extract maximum performance on futuristic exascale architectures
through a co-design effort ... to emulate and evaluate a series of
candidate exascale architectures" (the CHREC Behavioral Emulation
flow).  A candidate here is a named :class:`MachineModel` variation;
:func:`candidate_grid` builds factorial sweeps over the knobs a system
architect actually trades (core speed, memory bandwidth, NIC latency,
link bandwidth, topology).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, List, Optional, Sequence

from ..perfmodel.machine import MachineModel
from ..perfmodel.topology import Topology, TorusTopology


@dataclass(frozen=True)
class Candidate:
    """One point in the architecture design space."""

    name: str
    machine: MachineModel
    #: Relative cost of the system (arbitrary units) for Pareto studies;
    #: defaults derive from the knob multipliers.
    cost: float = 1.0
    knobs: Dict[str, float] = field(default_factory=dict)


def scale_machine(
    base: MachineModel,
    *,
    cpu_speed: float = 1.0,
    mem_bandwidth: float = 1.0,
    net_latency: float = 1.0,
    net_bandwidth: float = 1.0,
    topology: Optional[Topology] = None,
) -> MachineModel:
    """Scale a base machine's knobs multiplicatively.

    ``net_latency`` scales latency *and* per-message overheads (a
    faster NIC improves both); ``cpu_speed`` scales the clock.
    """
    for name, v in (("cpu_speed", cpu_speed),
                    ("mem_bandwidth", mem_bandwidth),
                    ("net_latency", net_latency),
                    ("net_bandwidth", net_bandwidth)):
        if v <= 0:
            raise ValueError(f"{name} multiplier must be positive, got {v}")
    cpu = replace(
        base.cpu,
        ghz=base.cpu.ghz * cpu_speed,
        mem_bandwidth=base.cpu.mem_bandwidth * mem_bandwidth,
    )
    net = replace(
        base.network,
        latency=base.network.latency * net_latency,
        hop_latency=base.network.hop_latency * net_latency,
        o_send=base.network.o_send * net_latency,
        o_recv=base.network.o_recv * net_latency,
        bandwidth=base.network.bandwidth * net_bandwidth,
        shm_bandwidth=base.network.shm_bandwidth * mem_bandwidth,
        topology=topology if topology is not None else base.network.topology,
    )
    return replace(base, cpu=cpu, network=net)


def default_cost(
    cpu_speed: float,
    mem_bandwidth: float,
    net_latency: float,
    net_bandwidth: float,
) -> float:
    """A crude monotone cost model: faster parts cost more.

    Latency improvements (multiplier < 1) are priced like bandwidth
    increases; the exact shape only matters for Pareto ordering, and
    tests assert monotonicity, not values.
    """
    return (
        cpu_speed**1.5
        + 0.5 * mem_bandwidth**1.2
        + 0.5 * net_bandwidth
        + 0.5 / net_latency
    )


def candidate_grid(
    base: Optional[MachineModel] = None,
    cpu_speeds: Sequence[float] = (1.0, 2.0),
    mem_bandwidths: Sequence[float] = (1.0, 2.0),
    net_latencies: Sequence[float] = (1.0, 0.5),
    net_bandwidths: Sequence[float] = (1.0, 4.0),
) -> List[Candidate]:
    """Factorial sweep over the four headline knobs."""
    base = base or MachineModel.preset("compton")
    out = []
    for cs, mb, nl, nb in product(
        cpu_speeds, mem_bandwidths, net_latencies, net_bandwidths
    ):
        name = f"cpu{cs:g}x_mem{mb:g}x_lat{nl:g}x_bw{nb:g}x"
        out.append(
            Candidate(
                name=name,
                machine=scale_machine(
                    base,
                    cpu_speed=cs,
                    mem_bandwidth=mb,
                    net_latency=nl,
                    net_bandwidth=nb,
                ),
                cost=default_cost(cs, mb, nl, nb),
                knobs={
                    "cpu_speed": cs,
                    "mem_bandwidth": mb,
                    "net_latency": nl,
                    "net_bandwidth": nb,
                },
            )
        )
    return out


def notional_exascale_candidates(
    base: Optional[MachineModel] = None,
) -> List[Candidate]:
    """A handful of named 'notional future systems' (Section I/III-C).

    Caricatures of real design directions circa the paper: a fat-core
    machine, a bandwidth machine, a low-latency-fabric machine, and a
    torus machine.
    """
    base = base or MachineModel.preset("compton")
    return [
        Candidate(
            "fat-cores",
            scale_machine(base, cpu_speed=4.0),
            cost=default_cost(4, 1, 1, 1),
            knobs={"cpu_speed": 4.0},
        ),
        Candidate(
            "hbm-memory",
            scale_machine(base, mem_bandwidth=6.0),
            cost=default_cost(1, 6, 1, 1),
            knobs={"mem_bandwidth": 6.0},
        ),
        Candidate(
            "low-latency-fabric",
            scale_machine(base, net_latency=0.1),
            cost=default_cost(1, 1, 0.1, 1),
            knobs={"net_latency": 0.1},
        ),
        Candidate(
            "fat-links",
            scale_machine(base, net_bandwidth=8.0),
            cost=default_cost(1, 1, 1, 8),
            knobs={"net_bandwidth": 8.0},
        ),
        Candidate(
            "torus-fabric",
            scale_machine(
                base, topology=TorusTopology(shape=(8, 8, 4))
            ),
            cost=default_cost(1, 1, 1, 1),
            knobs={},
        ),
    ]
