"""Design-space exploration driver: run the mini-app on candidates.

"Mini-apps can also serve as a platform for fast algorithm design
space exploration" (abstract) and for "performance analysis on
notional future systems" (Section I).  :class:`Explorer` runs a fixed
CMT-bone workload against each candidate architecture, collects
virtual-time metrics, and ranks the candidates — the mini-app doing
exactly the co-design job it was built for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.mpip import summarize_fractions
from ..core.cmtbone import run_cmtbone
from ..core.config import CMTBoneConfig
from ..mpi.runtime import Runtime
from .candidates import Candidate


@dataclass(frozen=True)
class Evaluation:
    """Metrics from running the workload on one candidate."""

    candidate: Candidate
    step_time: float           # virtual seconds per timestep (max rank)
    compute_time: float        # per-step compute portion
    comm_time: float           # per-step communication portion
    mpi_pct_mean: float
    chosen_gs_method: str

    @property
    def name(self) -> str:
        return self.candidate.name

    @property
    def cost(self) -> float:
        return self.candidate.cost

    @property
    def comm_fraction(self) -> float:
        total = self.compute_time + self.comm_time
        return self.comm_time / total if total else 0.0


@dataclass
class Explorer:
    """Evaluate a CMT-bone workload across candidate architectures."""

    config: CMTBoneConfig
    nranks: int

    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Run the workload on one candidate (fresh simulated job)."""
        runtime = Runtime(nranks=self.nranks, machine=candidate.machine)
        results = runtime.run(run_cmtbone, args=(self.config,))
        nsteps = max(self.config.nsteps, 1)
        worst = max(results, key=lambda r: r.vtime_total)
        profile = runtime.job_profile()
        mean_pct, _, _, _ = summarize_fractions(profile)
        return Evaluation(
            candidate=candidate,
            step_time=worst.vtime_total / nsteps,
            compute_time=worst.vtime_compute / nsteps,
            comm_time=worst.vtime_comm / nsteps,
            mpi_pct_mean=mean_pct,
            chosen_gs_method=worst.chosen_method,
        )

    def sweep(self, candidates: Sequence[Candidate]) -> List[Evaluation]:
        """Evaluate every candidate; order follows the input."""
        return [self.evaluate(c) for c in candidates]


@dataclass
class VscaleExplorer:
    """Design-space exploration through the virtual scale-out engine.

    :class:`Explorer` re-executes the full workload for every
    candidate, even when two candidates share the identical compute
    model and differ only in network parameters — pure waste, since the
    executed profile's compute charges cannot change.  This variant
    prices every candidate analytically with
    :class:`repro.vscale.VirtualScaleEngine` (so ``nranks`` can reach
    10^5) and executes at most **one** sample job per distinct compute
    model, reused across all of that model's network variations for
    the modeled-vs-executed agreement gate.  ``executed_jobs`` counts
    the actual sample runs — tests assert it stays at the number of
    distinct compute models, not the number of candidates.
    """

    config: CMTBoneConfig
    nranks: int
    sample: int = 16
    backend: str = "threads"
    methods: tuple = ("pairwise", "crystal", "allreduce")
    #: Gate each distinct compute model's engine on modeled-vs-executed
    #: agreement at the sample rank count (one executed job per model).
    validate: bool = True

    def __post_init__(self) -> None:
        self._engines: dict = {}
        self._validated: dict = {}
        self.executed_jobs = 0

    def _engine(self, machine):
        from ..vscale import VirtualScaleEngine

        if machine not in self._engines:
            self._engines[machine] = VirtualScaleEngine(
                self.config,
                nranks=self.nranks,
                machine=machine,
                sample=self.sample,
                backend=self.backend,
            )
        return self._engines[machine]

    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Model one candidate; execute only for a new compute model."""
        engine = self._engine(candidate.machine)
        method, timeline = engine.best_method(self.methods)
        if self.validate:
            sig = (candidate.machine.cpu, candidate.machine.wall_scale)
            if sig not in self._validated:
                agreement = engine.validate(method)
                self.executed_jobs += 1
                self._validated[sig] = agreement
                if not agreement.ok:
                    raise RuntimeError(
                        "virtual-scale model disagrees with execution "
                        f"for candidate {candidate.name!r}: "
                        + agreement.describe()
                    )
        nsteps = max(self.config.nsteps, 1)
        worst = int(timeline.total.argmax())
        return Evaluation(
            candidate=candidate,
            step_time=float(timeline.total[worst]) / nsteps,
            compute_time=float(timeline.compute[worst]) / nsteps,
            comm_time=float(timeline.comm[worst]) / nsteps,
            mpi_pct_mean=float(timeline.mpi_fraction_pct.mean()),
            chosen_gs_method=method,
        )

    def sweep(self, candidates: Sequence[Candidate]) -> List[Evaluation]:
        """Evaluate every candidate; order follows the input."""
        return [self.evaluate(c) for c in candidates]


def gs_method_crossover(
    config: CMTBoneConfig,
    nranks_list: Sequence[int],
    machine=None,
    methods: Sequence[str] = ("pairwise", "crystal", "allreduce"),
    sample: int = 16,
) -> List[tuple]:
    """Fig. 7 what-if: the winning gs method at each rank count.

    Returns ``(nranks, {method: step_seconds}, winner)`` rows from the
    vectorized model — rank counts far past the paper's 256 are cheap,
    which is the point: the crossover between pairwise and the crystal
    router (and allreduce's collapse with the dense global vector) can
    be mapped without a cluster.
    """
    from ..vscale import VirtualScaleEngine

    rows = []
    for p in nranks_list:
        engine = VirtualScaleEngine(
            config, nranks=p, machine=machine, sample=sample
        )
        times = {
            m: engine.model(m).step_seconds for m in methods
        }
        winner = min(times, key=times.get)
        rows.append((p, times, winner))
    return rows


def rank_by_speed(evals: Sequence[Evaluation]) -> List[Evaluation]:
    """Fastest first."""
    return sorted(evals, key=lambda e: e.step_time)


def speedup_table(
    evals: Sequence[Evaluation], baseline_name: str
) -> List[tuple]:
    """(name, step time, speedup vs baseline, comm fraction) rows."""
    by_name = {e.name: e for e in evals}
    if baseline_name not in by_name:
        raise KeyError(
            f"baseline {baseline_name!r} not among "
            f"{sorted(by_name)}"
        )
    base = by_name[baseline_name].step_time
    return [
        (e.name, e.step_time, base / e.step_time, e.comm_fraction)
        for e in rank_by_speed(evals)
    ]


def pareto_front(evals: Sequence[Evaluation]) -> List[Evaluation]:
    """Non-dominated candidates in (cost, step_time) space.

    A candidate is on the front if no other candidate is both cheaper
    and faster.  Returned sorted by cost.
    """
    out = []
    for e in evals:
        dominated = any(
            (o.cost < e.cost and o.step_time <= e.step_time)
            or (o.cost <= e.cost and o.step_time < e.step_time)
            for o in evals
        )
        if not dominated:
            out.append(e)
    return sorted(out, key=lambda e: e.cost)


def bottleneck(evaluation: Evaluation) -> str:
    """Coarse diagnosis: is this candidate compute- or comm-bound?"""
    return (
        "communication" if evaluation.comm_fraction > 0.5 else "compute"
    )
