"""Crystal-router gather-scatter: staged hypercube all-to-all.

The crystal router (originally developed for all-to-all communication
in hypercubes; gslib's ``crystal_router``) moves arbitrary
(destination, payload) records through ``log2 P`` pairwise stages: at
each stage every rank swaps, with its partner across one address bit,
all records whose destination lies in the partner's half of the
machine.  Message *count* per rank is logarithmic regardless of how
many final destinations there are — the win over pairwise exchange
when neighbours are many and messages small.

Non-power-of-two rank counts are handled by folding the top
``P - 2^k`` ranks onto their lower images before routing and unfolding
afterwards (the same trick MPICH uses for allreduce), which preserves
the "completes in ~log2 P stages" guarantee the paper quotes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..mpi.datatypes import ReduceOp
from .handle import GSHandle

#: Tag for crystal-router stage traffic.
TAG_CRYSTAL = 7101

#: Call-site label recorded in the mpiP-style profile.
SITE = "gs_op:crystal"

#: A routing buffer: destination rank -> (gids, values) record arrays.
Records = Dict[int, Tuple[np.ndarray, np.ndarray]]


def _merge(into: Records, frm: Records) -> None:
    """Concatenate record bundles per destination."""
    for dest, (g, v) in frm.items():
        if dest in into:
            g0, v0 = into[dest]
            into[dest] = (np.concatenate([g0, g]), np.concatenate([v0, v]))
        else:
            into[dest] = (np.asarray(g), np.asarray(v))


def _records_nbytes(records: Records) -> float:
    """Payload bytes in a routing buffer (gids + values)."""
    return float(
        sum(g.nbytes + v.nbytes for g, v in records.values())
    )


def route(records: Records, comm, site: str = SITE) -> Records:
    """Deliver every record bundle to its destination rank.

    Generic crystal-router transport: returns the records whose
    destination is this rank (merged across all senders).  Used by the
    gather-scatter exchange below and reusable for any sparse
    all-to-all (e.g. transfer of particles between ranks).
    """
    size, rank = comm.size, comm.rank
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    buf: Records = dict(records)
    # Records addressed to ourselves never travel.
    self_records: Records = {}
    if rank in buf:
        self_records[rank] = buf.pop(rank)

    # Fold: high ranks park everything on their low image.
    if rank >= pof2:
        comm.send(buf, dest=rank - pof2, tag=TAG_CRYSTAL, site=site)
        buf = {}
    elif rank < rem:
        incoming = comm.recv(source=rank + pof2, tag=TAG_CRYSTAL, site=site)
        _merge(buf, incoming)

    # Hypercube stages among the low pof2 ranks; destinations >= pof2
    # route via their folded image.
    if rank < pof2:
        bit = pof2 >> 1
        while bit:
            partner = rank ^ bit

            def other_side(dest: int, _bit=bit, _rank=rank) -> bool:
                eff = dest if dest < pof2 else dest - pof2
                return (eff & _bit) != (_rank & _bit)

            outgoing: Records = {}
            keep: Records = {}
            for dest, gv in buf.items():
                (outgoing if other_side(dest) else keep)[dest] = gv
            comm.isend(outgoing, dest=partner, tag=TAG_CRYSTAL + 1, site=site)
            incoming = comm.recv(
                source=partner, tag=TAG_CRYSTAL + 1, site=site
            )
            # Per-stage pack/unpack of the routed records is a real
            # memory pass in gslib's crystal router; charge it.
            moved = _records_nbytes(outgoing) + _records_nbytes(incoming)
            comm.compute(mem_bytes=2.0 * moved)
            buf = keep
            _merge(buf, incoming)
            bit >>= 1

    # Unfold: hand back records destined for the folded high ranks.
    if rank < rem:
        high = {d: gv for d, gv in buf.items() if d >= pof2}
        for d in high:
            del buf[d]
        comm.send(high, dest=rank + pof2, tag=TAG_CRYSTAL + 2, site=site)
    elif rank >= pof2:
        buf = {}
        incoming = comm.recv(
            source=rank - pof2, tag=TAG_CRYSTAL + 2, site=site
        )
        _merge(buf, incoming)

    if any(d != rank for d in buf):
        stray = sorted(d for d in buf if d != rank)
        raise AssertionError(
            f"crystal router left records for {stray} on rank {rank}"
        )
    _merge(buf, self_records)
    return buf


def exchange_crystal(
    handle: GSHandle, condensed: np.ndarray, op: ReduceOp, site: str = SITE
) -> np.ndarray:
    """Combine shared entries of ``condensed`` via the crystal router."""
    comm = handle.comm
    records: Records = {
        q: (
            handle.uids[ix],
            condensed[ix],
        )
        for q, ix in handle.neighbor_send_index.items()
    }
    arrived = route(records, comm, site=site)
    out = condensed.copy()
    for _src, (gids, vals) in sorted(arrived.items()):
        ix = np.searchsorted(handle.uids, gids)
        # np.ufunc.at folds duplicates (several sources may contribute
        # to the same id) without overwriting.
        op.ufunc.at(out, ix, vals)
    return out
