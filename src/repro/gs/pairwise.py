"""Pairwise-exchange gather-scatter: direct neighbour messages.

The simplest of the three gslib strategies and — per Fig. 7 — the one
CMT-bone's auto-tuner selects on the paper's 256-rank workload: every
rank posts a nonblocking receive from each sharing neighbour, sends its
own condensed boundary values, and folds what arrives.  Message count
equals the number of sharing neighbours (6 face neighbours for the DG
numbering; up to 26 for the C0 numbering, many of them tiny edge and
corner messages).
"""

from __future__ import annotations

import numpy as np

from ..mpi.datatypes import ReduceOp
from ..mpi.request import waitall
from .handle import GSHandle

#: Tag used by pairwise exchanges (user tag space).
TAG_PAIRWISE = 7001

#: Call-site label recorded in the mpiP-style profile.
SITE = "gs_op:pairwise"


def exchange_pairwise(
    handle: GSHandle, condensed: np.ndarray, op: ReduceOp, site: str = SITE
) -> np.ndarray:
    """Combine shared entries of ``condensed`` across sharing ranks.

    Each neighbour receives this rank's *original* condensed values, so
    ids shared by more than two ranks (edges/corners in the continuous
    numbering) still fold every contribution exactly once.
    """
    comm = handle.comm
    neighbors = handle.neighbors
    if not neighbors:
        return condensed
    recv_reqs = [
        comm.irecv(source=q, tag=TAG_PAIRWISE, site=site) for q in neighbors
    ]
    for q in neighbors:
        comm.isend(
            condensed[handle.neighbor_send_index[q]],
            dest=q,
            tag=TAG_PAIRWISE,
            site=site,
        )
    payloads = waitall(recv_reqs, site=site)
    out = condensed.copy()
    for q, vals in zip(neighbors, payloads):
        ix = handle.neighbor_send_index[q]
        out[ix] = op.ufunc(out[ix], np.asarray(vals))
    return out
