"""Pairwise-exchange gather-scatter: direct neighbour messages.

The simplest of the three gslib strategies and — per Fig. 7 — the one
CMT-bone's auto-tuner selects on the paper's 256-rank workload: every
rank posts a nonblocking receive from each sharing neighbour, sends its
own condensed boundary values, and folds what arrives.  Message count
equals the number of sharing neighbours (6 face neighbours for the DG
numbering; up to 26 for the C0 numbering, many of them tiny edge and
corner messages).

Two interfaces are provided:

* :func:`exchange_pairwise` — the classic blocking form used by
  ``gs_op``;
* :func:`exchange_pairwise_begin` / :func:`exchange_pairwise_finish` —
  the split-phase form behind ``gs_op_begin``/``gs_op_finish``:
  ``begin`` posts all receives and sends and returns immediately so
  interior compute can proceed while messages are in flight; ``finish``
  waits, folds, and credits hidden-vs-exposed communication time to
  the rank's :class:`~repro.mpi.clock.VirtualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..mpi.clock import OverlapInterval
from ..mpi.datatypes import ReduceOp
from ..mpi.request import RecvRequest, Request
from .handle import GSHandle

#: Tag used by pairwise exchanges (user tag space).
TAG_PAIRWISE = 7001

#: Call-site label recorded in the mpiP-style profile.
SITE = "gs_op:pairwise"


def exchange_pairwise(
    handle: GSHandle, condensed: np.ndarray, op: ReduceOp, site: str = SITE
) -> np.ndarray:
    """Combine shared entries of ``condensed`` across sharing ranks.

    Each neighbour receives this rank's *original* condensed values, so
    ids shared by more than two ranks (edges/corners in the continuous
    numbering) still fold every contribution exactly once.
    """
    comm = handle.comm
    neighbors = handle.neighbors
    if not neighbors:
        return condensed
    recv_reqs = [
        comm.irecv(source=q, tag=TAG_PAIRWISE, site=site) for q in neighbors
    ]
    for q in neighbors:
        comm.isend(
            condensed[handle.neighbor_send_index[q]],
            dest=q,
            tag=TAG_PAIRWISE,
            site=site,
        )
    payloads = Request.waitall(recv_reqs, site=site)
    out = condensed.copy()
    for q, vals in zip(neighbors, payloads):
        ix = handle.neighbor_send_index[q]
        out[ix] = op.ufunc(out[ix], np.asarray(vals))
    return out


@dataclass
class PairwiseFlight:
    """An in-flight split-phase pairwise exchange (between begin/finish)."""

    handle: GSHandle
    op: ReduceOp
    site: str
    recv_reqs: List[RecvRequest]
    #: Overlap window opened on the rank's clock when the messages were
    #: posted; closed at finish to account hidden communication time.
    window: OverlapInterval = field(default=None)  # type: ignore[assignment]


def exchange_pairwise_begin(
    handle: GSHandle,
    send_values: np.ndarray,
    op: ReduceOp,
    site: str = SITE,
    tag: int = TAG_PAIRWISE,
) -> PairwiseFlight:
    """Post the receives and sends of a pairwise exchange; don't wait.

    ``send_values`` is a condensed-size array whose entries must be
    valid at every *cross-rank shared* id (``handle.neighbor_send_index``
    positions); ids private to this rank are never read, so callers may
    pass a partially populated condense (the overlapped solver posts
    boundary-element traces before interior ones even exist).
    """
    comm = handle.comm
    neighbors = handle.neighbors
    recv_reqs = [
        comm.irecv(source=q, tag=tag, site=site) for q in neighbors
    ]
    for q in neighbors:
        comm.isend(
            send_values[handle.neighbor_send_index[q]],
            dest=q,
            tag=tag,
            site=site,
        )
    return PairwiseFlight(
        handle=handle,
        op=op,
        site=site,
        recv_reqs=recv_reqs,
        window=comm.clock.overlap_interval(),
    )


def exchange_pairwise_finish(
    flight: PairwiseFlight, condensed: np.ndarray, site: str = None
) -> np.ndarray:
    """Wait for an in-flight exchange, fold the payloads, return the sum.

    ``condensed`` is the fully populated local condense (it may have
    been completed *after* ``begin`` posted the boundary values).  The
    wait charges only the communication still exposed after whatever
    compute ran since ``begin``; the hidden remainder is credited to
    the clock's ``hidden_comm_time``.
    """
    handle = flight.handle
    site = site or flight.site
    wait_start = handle.comm.clock.now
    payloads = Request.waitall(flight.recv_reqs, site=site)
    # Overlap accounting: the blocking-equivalent wait is measured from
    # the posting time, the exposed wait from the finish time; their
    # difference was hidden under the intervening compute.
    if flight.recv_reqs:
        completion = max(
            req.status.arrival_vtime for req in flight.recv_reqs
        )
        handle.comm.clock.close_overlap(
            flight.window, completion, wait_start=wait_start
        )
    out = condensed.copy()
    for q, vals in zip(handle.neighbors, payloads):
        ix = handle.neighbor_send_index[q]
        out[ix] = flight.op.ufunc(out[ix], np.asarray(vals))
    return out
