"""``gs_setup`` — building a gather-scatter handle by global discovery.

The paper, Section VI: "each processor is given index sets containing
the global ids of the elements using ``gs_setup``.  This requires a
discovery phase using all-to-all communication to identify for every
global index *i* on process *p*, all the processes *q* that also have
*i*."

:func:`gs_setup` performs exactly that discovery over the simulated
MPI, producing a :class:`GSHandle` that the three exchange algorithms
(:mod:`~repro.gs.pairwise`, :mod:`~repro.gs.crystal`,
:mod:`~repro.gs.allreduce_method`) and :func:`~repro.gs.ops.gs_op`
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..mpi.communicator import Comm
from ..mpi.datatypes import MAX, ReduceOp


@dataclass
class GSHandle:
    """Index sets and exchange plans for one global numbering.

    Attributes
    ----------
    comm:
        The communicator the handle was set up on.
    shape:
        Shape of the data arrays ``gs_op`` will accept.
    uids:
        Sorted unique global ids present on this rank.
    local_order / segment_starts:
        Permutation and segment boundaries so that
        ``x.ravel()[local_order]`` groups equal-gid entries contiguously
        (the *local condense* plan).
    inverse:
        Flat-index -> uid-index map (the *scatter back* plan).
    shared_index:
        uid-indices of ids shared with at least one other rank.
    neighbor_send_index:
        For each neighbour rank, the uid-indices (sorted by gid, hence
        identically ordered on both sides) of ids shared with it.
    owners:
        For each shared uid (parallel to ``shared_index``), the sorted
        list of *other* ranks holding it.
    max_gid:
        Global maximum id (sizes the allreduce method's big vector).
    """

    comm: Comm
    shape: tuple
    uids: np.ndarray
    local_order: np.ndarray
    segment_starts: np.ndarray
    inverse: np.ndarray
    shared_index: np.ndarray
    neighbor_send_index: Dict[int, np.ndarray]
    owners: List[List[int]]
    max_gid: int
    #: Total shared-id instances across the whole job (allreduce'd at
    #: setup); drives the allreduce method's memory-vs-model switch.
    global_shared: int = 0
    method: Optional[str] = None
    setup_stats: dict = field(default_factory=dict)

    # -- local plans -------------------------------------------------------

    @property
    def n_unique(self) -> int:
        return len(self.uids)

    @property
    def neighbors(self) -> List[int]:
        """Ranks this rank shares at least one id with (sorted)."""
        return sorted(self.neighbor_send_index)

    def condense(self, x: np.ndarray, op: ReduceOp) -> np.ndarray:
        """Combine local duplicates: data array -> per-uid values."""
        if x.shape != self.shape:
            raise ValueError(
                f"gs data shape {x.shape} != handle shape {self.shape}"
            )
        if op.ufunc is None:
            raise ValueError(f"{op.name} has no ufunc; cannot gs over it")
        flat = x.reshape(-1)[self.local_order]
        return op.ufunc.reduceat(flat, self.segment_starts)

    def scatter(self, condensed: np.ndarray) -> np.ndarray:
        """Per-uid values -> data array (duplicates replicated)."""
        return condensed[self.inverse].reshape(self.shape)

    def shared_gids_with(self, q: int) -> np.ndarray:
        """Global ids shared with neighbour ``q`` (sorted)."""
        return self.uids[self.neighbor_send_index[q]]

    def wire_bytes_pairwise(self, itemsize: int = 8) -> int:
        """Bytes this rank sends per pairwise exchange of one field."""
        return sum(
            len(ix) * itemsize for ix in self.neighbor_send_index.values()
        )


def gs_setup(gids: np.ndarray, comm: Comm, site: str = "gs_setup") -> GSHandle:
    """Discover sharing and build a :class:`GSHandle`.

    ``gids`` is an integer array of any shape: one global id per data
    entry (the numbering schemes in :mod:`repro.mesh.numbering` produce
    them).  Collective over ``comm``.
    """
    gids = np.asarray(gids)
    if not np.issubdtype(gids.dtype, np.integer):
        raise TypeError(f"global ids must be integers, got {gids.dtype}")
    if gids.size and int(gids.min()) < 0:
        raise ValueError("global ids must be non-negative")
    flat = gids.reshape(-1).astype(np.int64)

    # Local condense plan.
    uids, inverse = np.unique(flat, return_inverse=True)
    local_order = np.argsort(flat, kind="stable")
    sorted_vals = flat[local_order]
    is_start = np.empty(len(sorted_vals), dtype=bool)
    if len(sorted_vals):
        is_start[0] = True
        is_start[1:] = sorted_vals[1:] != sorted_vals[:-1]
    segment_starts = np.nonzero(is_start)[0]

    # --- discovery phase (all-to-all), as in the paper -----------------
    size = comm.size
    # 1. Route each unique id to its "home" rank by cheap hashing.
    home = (uids % size).astype(np.int64)
    send_lists = [uids[home == h] for h in range(size)]
    got = comm.alltoall(send_lists, site=site)

    # 2. Homes invert: id -> ranks that reported it; keep shared only.
    # Vectorized grouping: sort (gid, src) pairs by gid, find group
    # boundaries, and keep groups reported by more than one rank.
    got_arrays = [np.asarray(g, dtype=np.int64).reshape(-1) for g in got]
    all_ids = (
        np.concatenate(got_arrays)
        if got_arrays
        else np.empty(0, dtype=np.int64)
    )
    all_src = np.repeat(
        np.arange(size, dtype=np.int64),
        [len(a) for a in got_arrays],
    )
    order = np.argsort(all_ids, kind="stable")
    s_ids, s_src = all_ids[order], all_src[order]
    if len(s_ids):
        is_start = np.concatenate(([True], s_ids[1:] != s_ids[:-1]))
        starts = np.nonzero(is_start)[0]
        ends = np.concatenate((starts[1:], [len(s_ids)]))
    else:
        starts = ends = np.empty(0, dtype=np.int64)

    # Member-level view of shared groups (group size >= 2), fully
    # vectorized: one "member" per (gid, reporting rank) pair.
    gsizes = ends - starts
    shared_groups = gsizes >= 2
    m_gsize = np.repeat(gsizes[shared_groups], gsizes[shared_groups])
    m_gstart = np.repeat(starts[shared_groups], gsizes[shared_groups])
    members = np.nonzero(
        np.repeat(shared_groups, gsizes)
    )[0]
    m_gid = s_ids[members]
    m_src = s_src[members]

    # Sort members by destination rank; each destination's reply is
    # (gids, group sizes, concatenated owner lists) — ragged arrays
    # instead of per-id Python tuples.
    dorder = np.argsort(m_src, kind="stable")
    d_src = m_src[dorder]
    d_gid = m_gid[dorder]
    d_gsize = m_gsize[dorder]
    d_gstart = m_gstart[dorder]
    total_owned = int(d_gsize.sum())
    if total_owned:
        ofs = np.cumsum(d_gsize) - d_gsize
        idx = (
            np.arange(total_owned)
            - np.repeat(ofs, d_gsize)
            + np.repeat(d_gstart, d_gsize)
        )
        d_owners = s_src[idx]
    else:
        d_owners = np.empty(0, dtype=np.int64)
    dest_cuts = np.searchsorted(d_src, np.arange(size + 1))
    owner_cuts = np.concatenate(
        ([0], np.cumsum(d_gsize))
    ).astype(np.int64)
    replies = []
    for r in range(size):
        a, b = dest_cuts[r], dest_cuts[r + 1]
        replies.append(
            (d_gid[a:b], d_gsize[a:b], d_owners[owner_cuts[a]:owner_cuts[b]])
        )
    answers = comm.alltoall(replies, site=site)

    # 3. Assemble per-neighbour index sets (sorted by gid on both sides).
    me = comm.rank
    r_gid = np.concatenate([np.asarray(a[0]) for a in answers])
    r_cnt = np.concatenate([np.asarray(a[1]) for a in answers])
    r_own = np.concatenate([np.asarray(a[2]) for a in answers])
    # Expand to (gid, owner) pairs and drop self.
    pair_gid = np.repeat(r_gid, r_cnt)
    keep = r_own != me
    pair_gid = pair_gid[keep]
    pair_own = r_own[keep]
    shared_sorted = np.unique(r_gid)
    shared_index = np.searchsorted(uids, shared_sorted)
    # Group pairs by owner for the per-neighbour send lists.
    powner_order = np.argsort(pair_own, kind="stable")
    po = pair_own[powner_order]
    pg = pair_gid[powner_order]
    neighbor_send_index: Dict[int, np.ndarray] = {}
    if len(po):
        q_starts = np.nonzero(
            np.concatenate(([True], po[1:] != po[:-1]))
        )[0]
        q_ends = np.concatenate((q_starts[1:], [len(po)]))
        for a, b in zip(q_starts, q_ends):
            q = int(po[a])
            neighbor_send_index[q] = np.searchsorted(uids, np.sort(pg[a:b]))
    # Owner lists per shared gid (ascending gid), for introspection.
    gorder = np.argsort(pair_gid, kind="stable")
    gg = pair_gid[gorder]
    go = pair_own[gorder]
    owners: List[List[int]] = []
    if len(gg):
        g_starts = np.nonzero(
            np.concatenate(([True], gg[1:] != gg[:-1]))
        )[0]
        g_ends = np.concatenate((g_starts[1:], [len(gg)]))
        for a, b in zip(g_starts, g_ends):
            owners.append(sorted(go[a:b].tolist()))

    local_max = int(uids[-1]) if len(uids) else -1
    max_gid = int(comm.allreduce(local_max, op=MAX, site=site))
    from ..mpi.datatypes import SUM as _SUM

    global_shared = int(
        comm.allreduce(len(shared_sorted), op=_SUM, site=site)
    )

    handle = GSHandle(
        comm=comm,
        shape=gids.shape,
        uids=uids,
        local_order=local_order,
        segment_starts=segment_starts,
        inverse=inverse,
        shared_index=shared_index,
        neighbor_send_index=neighbor_send_index,
        owners=owners,
        max_gid=max_gid,
        global_shared=global_shared,
    )
    handle.setup_stats = {
        "n_unique": handle.n_unique,
        "n_shared": int(len(shared_sorted)),
        "n_neighbors": len(neighbor_send_index),
        "max_gid": max_gid,
        "global_shared": global_shared,
    }
    return handle
