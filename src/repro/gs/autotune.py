"""Setup-time auto-tuning of the gather-scatter exchange method.

Paper, Section VI: "At the beginning of each CMT-nek and CMT-bone
simulation, three gather-scatter methods are evaluated to determine
which one performs the best for the given problem setup and machine."

:func:`choose_method` replays that procedure: time each candidate over
a few trial ``gs_op`` rounds (barrier-separated so the measurements are
clean), reduce per-rank averages/minima/maxima across the job, and
stamp the winner into the handle.  The per-method statistics are kept
— they are exactly the rows of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autotune import rank_stats, time_trials
from ..mpi.datatypes import SUM
from .handle import GSHandle
from .ops import METHOD_LABELS, METHODS, gs_op


@dataclass(frozen=True)
class MethodTiming:
    """Cross-rank timing statistics for one exchange method.

    ``avg``/``mn``/``mx`` are seconds per ``gs_op`` invocation: the
    per-rank mean over trials, averaged / min'd / max'd across ranks —
    the same three columns Fig. 7 reports.
    """

    method: str
    avg: float
    mn: float
    mx: float

    @property
    def label(self) -> str:
        return METHOD_LABELS[self.method]

    def row(self) -> str:
        return (
            f"{self.label:<18s} {self.avg:14.9f} {self.mn:14.9f} "
            f"{self.mx:14.9f}"
        )


def time_method(
    handle: GSHandle,
    method: str,
    trials: int = 3,
    warmup: int = 1,
    seed: int = 1234,
) -> MethodTiming:
    """Time one exchange method over ``trials`` gs_op rounds.

    Collective.  Virtual time is deterministic, so no repetitions are
    needed for noise — ``trials`` exists to mirror the real procedure
    and to amortize any first-call setup inside a method.
    """
    comm = handle.comm
    rng = np.random.default_rng(seed + comm.rank)
    u = rng.standard_normal(handle.shape)
    dt = time_trials(
        lambda: gs_op(handle, u, op=SUM, method=method,
                      site=f"gs_autotune:{method}"),
        trials=trials,
        warmup=warmup,
        timer=comm.time,
        sync=lambda: comm.barrier(site="gs_autotune"),
    )
    avg, mn, mx = rank_stats(comm, dt, site="gs_autotune")
    return MethodTiming(method=method, avg=avg, mn=mn, mx=mx)


def choose_method(
    handle: GSHandle,
    methods: Optional[Sequence[str]] = None,
    trials: int = 3,
    set_on_handle: bool = True,
) -> Dict[str, MethodTiming]:
    """Evaluate candidate methods and select the fastest (by avg).

    Returns the full timing table (Fig. 7's data); the winner's name is
    written to ``handle.method`` so subsequent ``gs_op`` calls use it.
    """
    methods = list(methods) if methods is not None else sorted(METHODS)
    timings: Dict[str, MethodTiming] = {}
    for m in methods:
        if m not in METHODS:
            raise ValueError(f"unknown gs method {m!r}")
        timings[m] = time_method(handle, m, trials=trials)
    winner = min(timings.values(), key=lambda t: t.avg).method
    if set_on_handle:
        handle.method = winner
        handle.setup_stats["autotune"] = {
            m: (t.avg, t.mn, t.mx) for m, t in timings.items()
        }
        handle.setup_stats["chosen_method"] = winner
    return timings


def timing_table(timings: Dict[str, MethodTiming], title: str = "") -> str:
    """Render a Fig. 7-style table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'All-to-all method':<18s} {'Time (avg) s':>14s} "
        f"{'Time (min) s':>14s} {'Time (max) s':>14s}"
    )
    for m in sorted(timings):
        lines.append(timings[m].row())
    return "\n".join(lines)
