"""``repro.gs`` — the gather-scatter library (gslib abstraction).

Nearest-neighbour updates in Nek-family codes run through a
gather-scatter layer: ``gs_setup`` discovers which ranks share each
global GLL-point id (all-to-all discovery), and ``gs_op`` combines
shared values with one of three interchangeable exchange algorithms —
pairwise exchange, crystal router, or allreduce-onto-a-big-vector —
selected at setup by timing all three (paper, Section VI / Fig. 7).
"""

from .allreduce_method import SparseGlobalVector, exchange_allreduce
from .autotune import MethodTiming, choose_method, time_method, timing_table
from .crystal import exchange_crystal, route
from .handle import GSHandle, gs_setup
from .many import gs_op_many
from .ops import (
    METHOD_LABELS,
    METHODS,
    GSExchange,
    gs_multiplicity,
    gs_op,
    gs_op_begin,
    gs_op_finish,
)
from .pairwise import (
    PairwiseFlight,
    exchange_pairwise,
    exchange_pairwise_begin,
    exchange_pairwise_finish,
)

__all__ = [
    "GSExchange",
    "GSHandle",
    "METHODS",
    "METHOD_LABELS",
    "MethodTiming",
    "PairwiseFlight",
    "SparseGlobalVector",
    "choose_method",
    "exchange_allreduce",
    "exchange_crystal",
    "exchange_pairwise",
    "exchange_pairwise_begin",
    "exchange_pairwise_finish",
    "gs_multiplicity",
    "gs_op",
    "gs_op_begin",
    "gs_op_finish",
    "gs_op_many",
    "gs_setup",
    "route",
    "time_method",
    "timing_table",
]
