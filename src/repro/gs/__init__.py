"""``repro.gs`` — the gather-scatter library (gslib abstraction).

Nearest-neighbour updates in Nek-family codes run through a
gather-scatter layer: ``gs_setup`` discovers which ranks share each
global GLL-point id (all-to-all discovery), and ``gs_op`` combines
shared values with one of three interchangeable exchange algorithms —
pairwise exchange, crystal router, or allreduce-onto-a-big-vector —
selected at setup by timing all three (paper, Section VI / Fig. 7).
"""

from .allreduce_method import SparseGlobalVector, exchange_allreduce
from .autotune import MethodTiming, choose_method, time_method, timing_table
from .crystal import exchange_crystal, route
from .handle import GSHandle, gs_setup
from .many import gs_op_many
from .ops import METHOD_LABELS, METHODS, gs_multiplicity, gs_op
from .pairwise import exchange_pairwise

__all__ = [
    "GSHandle",
    "METHODS",
    "METHOD_LABELS",
    "MethodTiming",
    "SparseGlobalVector",
    "choose_method",
    "exchange_allreduce",
    "exchange_crystal",
    "exchange_pairwise",
    "gs_multiplicity",
    "gs_op",
    "gs_op_many",
    "gs_setup",
    "route",
    "time_method",
    "timing_table",
]
