"""The "allreduce onto a big vector" gather-scatter strategy.

The third gslib candidate: scatter every rank's contributions into one
dense global vector (length = max global id + 1, identity-filled),
``MPI_Allreduce`` it, and read back.  Trivially correct and latency-
optimal in message *count*, but the vector is the size of the whole
shared index space, so the cost grows with the *global* problem rather
than the local boundary — which is why Fig. 7 finds it "too expensive"
for both mini-apps at 256 ranks.

To keep the simulation faithful in *cost* without burning gigabytes of
host RAM, the dense vector travels as a :class:`SparseGlobalVector`:
semantically a sparse merge, but advertising the dense byte count to
the network model via the ``__wire_nbytes__`` protocol (see
``repro.mpi.datatypes.payload_nbytes``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpi.datatypes import ReduceOp
from .handle import GSHandle

#: Call-site label recorded in the mpiP-style profile.
SITE = "gs_op:allreduce"

#: Above this many shared-id instances job-wide, the exact sparse
#: merge would claim cluster-scale memory on the simulation host, so
#: the method switches to the cost-faithful split described in
#: :func:`exchange_allreduce` (same modelled time, bounded memory).
EXACT_MERGE_LIMIT = 400_000


@dataclass
class SparseGlobalVector:
    """Sparse stand-in for the dense allreduce vector.

    ``gids`` are sorted and unique; entries absent from ``gids`` hold
    the reduction identity.  ``dense_len`` fixes the advertised wire
    size so the simulated network charges for the full dense vector
    exactly as the real algorithm would ship it.
    """

    gids: np.ndarray
    vals: np.ndarray
    dense_len: int
    itemsize: int = 8

    @property
    def __wire_nbytes__(self) -> int:
        return self.dense_len * self.itemsize

    def merge(self, other: "SparseGlobalVector", op: ReduceOp
              ) -> "SparseGlobalVector":
        """Element-wise reduction of two sparse vectors.

        Ids present in both are combined with ``op``; ids present in
        one side pass through unchanged (the other side holds the
        identity there).
        """
        if self.dense_len != other.dense_len:
            raise ValueError("mismatched dense lengths in gs allreduce")
        gids = np.union1d(self.gids, other.gids)
        vals = np.full(len(gids), op.identity(self.vals.dtype),
                       dtype=self.vals.dtype)
        ia = np.searchsorted(gids, self.gids)
        vals[ia] = self.vals
        ib = np.searchsorted(gids, other.gids)
        vals[ib] = op.fn(vals[ib], other.vals)
        return SparseGlobalVector(gids, vals, self.dense_len, self.itemsize)


def exchange_allreduce(
    handle: GSHandle, condensed: np.ndarray, op: ReduceOp, site: str = SITE
) -> np.ndarray:
    """Combine shared entries via a global-vector allreduce.

    Only the *shared* ids need to ride the vector (purely local ids
    would reduce against identities on every other rank — nek's
    implementation exploits the same observation), but the wire size is
    the dense global vector either way.

    Above :data:`EXACT_MERGE_LIMIT` shared instances job-wide, the
    exact sparse union would need the aggregate memory of the cluster
    being modelled (the very reason Fig. 7 finds this method "too
    expensive"), so cost and data are split: the allreduce runs with
    empty sparse payloads that still advertise the dense wire size —
    virtual-time cost is identical, since the network model prices
    bytes and message count, not contents — and the combined values are
    obtained through a pairwise exchange executed in the communicator's
    shadow (uncharged, unprofiled) region.
    """
    comm = handle.comm
    dense_len = handle.max_gid + 1
    ix = handle.shared_index
    itemsize = condensed.dtype.itemsize
    exact = handle.global_shared <= EXACT_MERGE_LIMIT

    if exact:
        mine = SparseGlobalVector(
            gids=handle.uids[ix],
            vals=np.ascontiguousarray(condensed[ix]),
            dense_len=dense_len,
            itemsize=itemsize,
        )
    else:
        mine = SparseGlobalVector(
            gids=np.empty(0, dtype=np.int64),
            vals=np.empty(0, dtype=condensed.dtype),
            dense_len=dense_len,
            itemsize=itemsize,
        )
    merge_op = ReduceOp(
        name=op.name,
        fn=lambda a, b: a.merge(b, op),
        identity_for=lambda dt: None,
    )
    combined = comm.allreduce(mine, op=merge_op, site=site)

    if exact:
        out = condensed.copy()
        take = np.searchsorted(combined.gids, handle.uids[ix])
        out[ix] = combined.vals[take]
        return out

    from .pairwise import exchange_pairwise

    with comm.shadow():
        return exchange_pairwise(handle, condensed, op)
