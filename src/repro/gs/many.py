"""``gs_op_many`` — one exchange for several fields (gslib's vec API).

CMT-nek exchanges five conserved-variable traces (plus fluxes) every
RK stage.  Doing that as five separate ``gs_op`` calls pays the
per-message cost five times; gslib therefore offers ``gs_op_many`` /
``gs_op_vec``, which packs all fields that share a handle into one
message per neighbour.  This module implements the packed variant on
top of the same three exchange algorithms; ``bench_pack_ablation``
quantifies the win.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..mpi.datatypes import ReduceOp, SUM
from ..mpi.request import waitall
from .allreduce_method import exchange_allreduce
from .crystal import route
from .handle import GSHandle
from .ops import METHODS
from .pairwise import TAG_PAIRWISE

#: Call-site label for packed exchanges.
SITE_MANY = "gs_op_many"


def _stack_fields(handle: GSHandle, fields: Sequence[np.ndarray]
                  ) -> np.ndarray:
    for f in fields:
        if f.shape != handle.shape:
            raise ValueError(
                f"field shape {f.shape} != handle shape {handle.shape}"
            )
    return np.stack([np.asarray(f) for f in fields], axis=0)


def gs_op_many(
    handle: GSHandle,
    fields: Sequence[np.ndarray],
    op: ReduceOp = SUM,
    method: Optional[str] = None,
    site: str = SITE_MANY,
) -> List[np.ndarray]:
    """Gather-scatter several same-shaped fields in one packed exchange.

    Semantically identical to ``[gs_op(h, f) for f in fields]`` but
    each neighbour receives a single message carrying all fields'
    shared values.  Collective.
    """
    if not fields:
        return []
    method = method or handle.method or "pairwise"
    if method not in METHODS:
        raise ValueError(
            f"unknown gs method {method!r}; choose from {sorted(METHODS)}"
        )
    stacked = _stack_fields(handle, fields)
    nf = stacked.shape[0]
    # Condense every field against the shared local plan.
    cond = np.stack(
        [handle.condense(stacked[i], op) for i in range(nf)], axis=0
    )  # (nf, n_unique)

    comm = handle.comm
    if comm.size > 1:
        if method == "pairwise":
            cond = _packed_pairwise(handle, cond, op, site)
        elif method == "crystal":
            cond = _packed_crystal(handle, cond, op, site)
        else:
            for i in range(nf):
                cond[i] = exchange_allreduce(handle, cond[i], op, site=site)
    out = [handle.scatter(cond[i]) for i in range(nf)]
    # One memory-bound local pass over all fields (see gs_op).
    itemsize = stacked.dtype.itemsize
    comm.compute(
        flops=float(stacked.size),
        mem_bytes=2.0 * itemsize * (stacked.size + nf * handle.n_unique),
    )
    return out


def _packed_pairwise(
    handle: GSHandle, cond: np.ndarray, op: ReduceOp, site: str
) -> np.ndarray:
    """Pairwise exchange with all fields packed per neighbour."""
    comm = handle.comm
    neighbors = handle.neighbors
    if not neighbors:
        return cond
    recv_reqs = [
        comm.irecv(source=q, tag=TAG_PAIRWISE + 1, site=site)
        for q in neighbors
    ]
    for q in neighbors:
        comm.isend(
            np.ascontiguousarray(cond[:, handle.neighbor_send_index[q]]),
            dest=q,
            tag=TAG_PAIRWISE + 1,
            site=site,
        )
    payloads = waitall(recv_reqs, site=site)
    out = cond.copy()
    for q, vals in zip(neighbors, payloads):
        ix = handle.neighbor_send_index[q]
        out[:, ix] = op.ufunc(out[:, ix], np.asarray(vals))
    return out


def _packed_crystal(
    handle: GSHandle, cond: np.ndarray, op: ReduceOp, site: str
) -> np.ndarray:
    """Crystal-router exchange with fields packed into the records."""
    comm = handle.comm
    nf = cond.shape[0]
    # Pack gid-major (one row of nf values per gid) so the router's
    # per-destination record concatenation keeps rows intact.
    records = {
        q: (
            handle.uids[ix],
            np.ascontiguousarray(cond[:, ix].T).reshape(-1),
        )
        for q, ix in handle.neighbor_send_index.items()
    }
    arrived = route(records, comm, site=site)
    out = cond.copy()
    for _dest, (gids, flat) in sorted(arrived.items()):
        vals = np.asarray(flat).reshape(-1, nf)
        ix = np.searchsorted(handle.uids, gids)
        for i in range(nf):
            op.ufunc.at(out[i], ix, vals[:, i])
    return out
