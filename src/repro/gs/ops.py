"""``gs_op`` — the user-facing gather-scatter operation.

Mirrors gslib's ``gs_op_(u, op, handle)``: combine every entry of ``u``
that shares a global id — across local duplicates *and* across ranks —
with an associative operation, and write the combined value back into
every copy.  The cross-rank exchange runs through whichever of the
three algorithms the handle's auto-tuner selected (or an explicit
``method=`` override).

Split-phase interface
---------------------
:func:`gs_op_begin` / :func:`gs_op_finish` split one ``gs_op`` so the
exchange can overlap interior compute: ``begin`` posts the pairwise
sends/receives (only the cross-rank shared entries of ``u`` need to be
valid at that point) and returns a :class:`GSExchange`; ``finish``
waits, folds, and scatters.  The two halves are attributed to distinct
mpiP call sites (``<site>:begin`` / ``<site>:finish``) so overlapped
runs remain legible in the Fig. 9-style reports.

Only the pairwise method is genuinely split-phase (it is the only one
built on nonblocking point-to-point).  For the crystal-router and
allreduce methods ``begin`` records its inputs and ``finish`` runs the
whole blocking exchange — a documented synchronous fallback that keeps
the split-phase API collective-safe for every method while still
benefiting from any compute the caller performed between the halves
(every rank enters the blocking exchange later, so modelled waits never
grow).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..mpi.datatypes import ReduceOp, SUM
from .allreduce_method import exchange_allreduce
from .crystal import exchange_crystal
from .handle import GSHandle
from .pairwise import (
    TAG_PAIRWISE,
    PairwiseFlight,
    exchange_pairwise,
    exchange_pairwise_begin,
    exchange_pairwise_finish,
)

#: The three exchange strategies evaluated at setup (paper, Section VI).
METHODS: Dict[str, Callable] = {
    "pairwise": exchange_pairwise,
    "crystal": exchange_crystal,
    "allreduce": exchange_allreduce,
}

#: Paper-style display names (Fig. 7 rows).
METHOD_LABELS = {
    "pairwise": "pairwise exchange",
    "crystal": "crystal router",
    "allreduce": "allreduce",
}


def gs_op(
    handle: GSHandle,
    u: np.ndarray,
    op: ReduceOp = SUM,
    method: Optional[str] = None,
    site: Optional[str] = None,
) -> np.ndarray:
    """Gather-scatter ``u`` in place of gslib's ``gs_op_``.

    Returns a new array of the same shape where every set of entries
    sharing a global id holds their ``op``-combination.  Collective:
    every rank in the handle's communicator must call with the same
    ``op`` and ``method``.
    """
    method = method or handle.method or "pairwise"
    try:
        exchange = METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown gs method {method!r}; choose from {sorted(METHODS)}"
        ) from None
    u = np.asarray(u)
    condensed = handle.condense(u, op)
    if handle.comm.size > 1:
        if site is None:
            condensed = exchange(handle, condensed, op)
        else:
            condensed = exchange(handle, condensed, op, site=site)
    out = handle.scatter(condensed)
    # Local gather/scatter is a memory-bound indirected pass over the
    # data (read u + write condensed, read condensed + write out).
    # gslib pays it on every gs_op, and the paper's Fig. 7 timings
    # include it, so the virtual clock must too.
    itemsize = u.dtype.itemsize
    handle.comm.compute(
        flops=float(u.size),
        mem_bytes=2.0 * itemsize * (u.size + handle.n_unique),
    )
    return out


class GSExchange:
    """An in-flight split-phase gather-scatter (between begin/finish).

    Produced by :func:`gs_op_begin`; consumed exactly once by
    :func:`gs_op_finish`.  For the pairwise method the exchange is
    genuinely in flight (``flight`` holds the posted requests); for the
    other methods it merely records the inputs for the synchronous
    fallback at finish.
    """

    __slots__ = ("handle", "op", "method", "site", "flight", "condensed", "_done")

    def __init__(
        self,
        handle: GSHandle,
        op: ReduceOp,
        method: str,
        site: str,
        flight: Optional[PairwiseFlight] = None,
        condensed: Optional[np.ndarray] = None,
    ):
        self.handle = handle
        self.op = op
        self.method = method
        self.site = site
        self.flight = flight
        #: Condense of the values seen at begin; superseded when finish
        #: is handed a fully populated ``u``.
        self.condensed = condensed
        self._done = False


def gs_op_begin(
    handle: GSHandle,
    u: np.ndarray,
    op: ReduceOp = SUM,
    method: Optional[str] = None,
    site: Optional[str] = None,
    tag: int = TAG_PAIRWISE,
) -> GSExchange:
    """Start a gather-scatter; return a handle for :func:`gs_op_finish`.

    With the pairwise method this posts the nonblocking sends and
    receives immediately and returns while they are in flight, so the
    caller can run interior compute under the exchange.  ``u`` only
    needs valid entries at the *cross-rank shared* ids (entries on
    boundary-element faces); everything else may still be unset,
    provided a fully populated array is handed to :func:`gs_op_finish`.

    With the crystal-router or allreduce methods (or on a single rank)
    nothing is posted here — the blocking exchange runs inside
    ``finish`` (synchronous fallback, see module docstring) — but the
    begin/finish structure is identical so callers never branch on the
    method.  Pass a distinct ``tag`` per concurrent in-flight exchange.
    """
    method = method or handle.method or "pairwise"
    if method not in METHODS:
        raise ValueError(
            f"unknown gs method {method!r}; choose from {sorted(METHODS)}"
        )
    base_site = site or f"gs_op:{method}"
    u = np.asarray(u)
    # Condense is snapshotted in every case so finish can run even if
    # the caller never hands back a fully populated u (and, for the
    # fallback methods, so the exchange has its send values).  A u
    # passed to finish replaces this snapshot via re-condense.
    condensed = handle.condense(u, op)
    flight = None
    if method == "pairwise" and handle.comm.size > 1:
        flight = exchange_pairwise_begin(
            handle, condensed, op, site=f"{base_site}:begin", tag=tag
        )
    return GSExchange(
        handle, op, method, base_site, flight=flight, condensed=condensed
    )


def gs_op_finish(
    exchange: GSExchange, u: Optional[np.ndarray] = None
) -> np.ndarray:
    """Complete a split-phase gather-scatter; return the scattered result.

    ``u`` — when given — is the *fully populated* local array (same
    shape as at begin); it is re-condensed here, which is what makes the
    deferred-interior pattern work: begin sent the boundary values, and
    the interior values only need to exist by the time finish folds the
    local contribution.  When ``u`` is omitted the condense snapshotted
    at begin is used.

    The local condense+scatter compute charge is identical to
    :func:`gs_op`'s and is applied here, at finish, where the blocking
    path pays it too.
    """
    if exchange._done:
        raise ValueError("gs_op_finish called twice on the same exchange")
    exchange._done = True
    handle = exchange.handle
    op = exchange.op
    if u is not None:
        u = np.asarray(u)
        condensed = handle.condense(u, op)
        size = u.size
    else:
        condensed = exchange.condensed
        size = int(np.prod(handle.shape))
    if exchange.flight is not None:
        condensed = exchange_pairwise_finish(
            exchange.flight, condensed, site=f"{exchange.site}:finish"
        )
    elif handle.comm.size > 1:
        # Synchronous fallback for methods without a nonblocking form:
        # the whole blocking exchange runs now, at finish time.
        condensed = METHODS[exchange.method](
            handle, condensed, op, site=f"{exchange.site}:finish"
        )
    out = handle.scatter(condensed)
    # Same local gather/scatter charge as the blocking gs_op (the
    # deferred re-condense replaces, not adds to, the one at begin).
    itemsize = condensed.dtype.itemsize
    handle.comm.compute(
        flops=float(size),
        mem_bytes=2.0 * itemsize * (size + handle.n_unique),
    )
    return out


def gs_multiplicity(handle: GSHandle) -> np.ndarray:
    """Global multiplicity of every data entry (gs-add of ones).

    Nekbone uses the reciprocal as the assembly weight that makes
    repeated ``gs_op(add)`` idempotent on already-continuous data.
    """
    ones = np.ones(handle.shape, dtype=np.float64)
    return gs_op(handle, ones, op=SUM)
