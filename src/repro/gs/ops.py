"""``gs_op`` — the user-facing gather-scatter operation.

Mirrors gslib's ``gs_op_(u, op, handle)``: combine every entry of ``u``
that shares a global id — across local duplicates *and* across ranks —
with an associative operation, and write the combined value back into
every copy.  The cross-rank exchange runs through whichever of the
three algorithms the handle's auto-tuner selected (or an explicit
``method=`` override).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..mpi.datatypes import ReduceOp, SUM
from .allreduce_method import exchange_allreduce
from .crystal import exchange_crystal
from .handle import GSHandle
from .pairwise import exchange_pairwise

#: The three exchange strategies evaluated at setup (paper, Section VI).
METHODS: Dict[str, Callable] = {
    "pairwise": exchange_pairwise,
    "crystal": exchange_crystal,
    "allreduce": exchange_allreduce,
}

#: Paper-style display names (Fig. 7 rows).
METHOD_LABELS = {
    "pairwise": "pairwise exchange",
    "crystal": "crystal router",
    "allreduce": "allreduce",
}


def gs_op(
    handle: GSHandle,
    u: np.ndarray,
    op: ReduceOp = SUM,
    method: Optional[str] = None,
    site: Optional[str] = None,
) -> np.ndarray:
    """Gather-scatter ``u`` in place of gslib's ``gs_op_``.

    Returns a new array of the same shape where every set of entries
    sharing a global id holds their ``op``-combination.  Collective:
    every rank in the handle's communicator must call with the same
    ``op`` and ``method``.
    """
    method = method or handle.method or "pairwise"
    try:
        exchange = METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown gs method {method!r}; choose from {sorted(METHODS)}"
        ) from None
    u = np.asarray(u)
    condensed = handle.condense(u, op)
    if handle.comm.size > 1:
        if site is None:
            condensed = exchange(handle, condensed, op)
        else:
            condensed = exchange(handle, condensed, op, site=site)
    out = handle.scatter(condensed)
    # Local gather/scatter is a memory-bound indirected pass over the
    # data (read u + write condensed, read condensed + write out).
    # gslib pays it on every gs_op, and the paper's Fig. 7 timings
    # include it, so the virtual clock must too.
    itemsize = u.dtype.itemsize
    handle.comm.compute(
        flops=float(u.size),
        mem_bytes=2.0 * itemsize * (u.size + handle.n_unique),
    )
    return out


def gs_multiplicity(handle: GSHandle) -> np.ndarray:
    """Global multiplicity of every data entry (gs-add of ones).

    Nekbone uses the reciprocal as the assembly weight that makes
    repeated ``gs_op(add)`` idempotent on already-continuous data.
    """
    ones = np.ones(handle.shape, dtype=np.float64)
    return gs_op(handle, ones, op=SUM)
