"""``repro.bench`` — continuous performance tracking.

CMT-bone exists to *measure*: the paper's contribution is that the
mini-app's derivative kernel, surface extraction, and gather-scatter
exchange track CMT-nek's performance (Figs. 4-7).  This package gives
the reproduction the same discipline about itself: a registry of
canonical workload scenarios, a runner that executes them and emits
versioned ``BENCH_kernels.json`` / ``BENCH_solver.json`` /
``BENCH_comms.json`` result files, and a comparator that diffs a run
against committed baselines under ``benchmarks/baselines/`` with
per-metric tolerances — wired into CI as the ``perf-gate`` job and
exposed as ``python -m repro.cli bench [--compare] [--update-baselines]``.

Two metric kinds coexist deliberately (see docs/benchmarking.md):

* ``virtual`` — deterministic virtual-time model outputs (gs exchange
  times, overlap hidden-communication, fault-campaign makespans, LB
  imbalance).  Identical on every host, so the comparator gates them
  tightly; any drift is a real modelling/performance change.
* ``wall`` — real wall-clock of the numpy kernels and solver loops.
  Host-dependent, so they gate loosely, and only when the recorded
  baseline host matches (or gating is forced).
"""

from .compare import (
    ComparisonReport,
    MetricDelta,
    compare_dirs,
    compare_suites,
)
from .runner import (
    BASELINE_FILENAMES,
    RunOptions,
    collect_metadata,
    read_suites,
    run_scenario,
    run_suites,
    write_suites,
)
from .scenarios import Scenario, all_scenarios, get_scenario, select_scenarios
from .schema import (
    GROUPS,
    SCHEMA_VERSION,
    BenchSchemaError,
    Metric,
    ScenarioResult,
    SuiteResult,
)

__all__ = [
    "BASELINE_FILENAMES",
    "BenchSchemaError",
    "ComparisonReport",
    "GROUPS",
    "Metric",
    "MetricDelta",
    "RunOptions",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioResult",
    "SuiteResult",
    "all_scenarios",
    "collect_metadata",
    "compare_dirs",
    "compare_suites",
    "get_scenario",
    "read_suites",
    "run_scenario",
    "run_suites",
    "select_scenarios",
    "write_suites",
]
