"""The canonical workload scenarios tracked by the perf gate.

Each scenario is a zero-argument callable that performs one measurement
pass and returns a list of :class:`~repro.bench.schema.Metric` values.
The runner calls it ``repeats`` times: wall metrics are aggregated
(min-of-repeats gates, mean/max/std recorded), virtual and count
metrics must come back *identical* on every repeat — the virtual-time
model is deterministic by construction, and the runner enforces it.

The registry covers the paper's measurement axes:

* ``kernels`` — derivative-kernel wall-clock across the N = 5..25
  sweep (Fig. 5's x-axis), the basic/fused/einsum variant comparison
  (Section V), and the workspace-reuse optimization (alloc vs ``out=``
  paths, which must stay bitwise identical *and* faster).
* ``comms`` — the three-way gather-scatter method auto-tune (Fig. 7)
  and the split-phase overlap schedule's hidden-communication account.
* backend scenarios (``kernels/backend_deriv4``, ``comms/backend_gs``)
  — threads vs procs execution: wall speedup of the process backend on
  real kernels and exact virtual-time parity on the gs exchange.
* ``solver`` — Sod shock-tube step throughput, the solver-side
  workspace ablation, and the fault-recovery / load-balancing
  virtual-time campaigns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .schema import GROUPS, Metric

#: Machine preset used for every modelled/virtual measurement, so the
#: numbers are comparable across hosts (the paper's Vulcan stand-in is
#: calibrated separately; ``compton`` is the small-cluster preset).
VIRTUAL_MACHINE = "compton"


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark scenario."""

    id: str
    group: str
    fn: Callable[[], List[Metric]]
    #: Fast scenarios run in the PR perf gate; slow ones only in the
    #: nightly full sweep.
    fast: bool = True
    #: Default repeat count (the runner may override).
    repeats: int = 3
    params: Mapping[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, Scenario] = {}


def register(
    scenario_id: str,
    group: str,
    *,
    fast: bool = True,
    repeats: int = 3,
    **params: object,
) -> Callable[[Callable[[], List[Metric]]], Callable[[], List[Metric]]]:
    """Decorator: add a scenario function to the registry."""
    if group not in GROUPS:
        raise ValueError(f"group must be one of {GROUPS}, got {group!r}")

    def deco(fn: Callable[[], List[Metric]]) -> Callable[[], List[Metric]]:
        if scenario_id in _REGISTRY:
            raise ValueError(f"duplicate scenario id {scenario_id!r}")
        _REGISTRY[scenario_id] = Scenario(
            id=scenario_id,
            group=group,
            fn=fn,
            fast=fast,
            repeats=repeats,
            params=dict(params),
        )
        return fn

    return deco


def all_scenarios() -> List[Scenario]:
    return list(_REGISTRY.values())


def get_scenario(scenario_id: str) -> Scenario:
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario_id!r} "
            f"(known: {sorted(_REGISTRY)})"
        ) from None


def select_scenarios(
    groups: Optional[Sequence[str]] = None,
    fast_only: bool = False,
) -> List[Scenario]:
    picked = []
    for s in _REGISTRY.values():
        if groups is not None and s.group not in groups:
            continue
        if fast_only and not s.fast:
            continue
        picked.append(s)
    return picked


# ---------------------------------------------------------------------
# timing helpers
# ---------------------------------------------------------------------


def _wall(fn: Callable[[], object], iters: int, warmup: int = 1) -> float:
    """Best-of-``iters`` wall seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _machine():
    from ..perfmodel.machine import MachineModel

    return MachineModel.preset(VIRTUAL_MACHINE)


# ---------------------------------------------------------------------
# kernels — derivative kernel wall-clock + roofline model
# ---------------------------------------------------------------------


def _deriv_scenario(
    n: int, nel: int, variant: str, iters: int
) -> List[Metric]:
    from ..kernels import counters, derivative_matrix
    from ..kernels import derivatives as dk

    rng = np.random.default_rng(42 + n)
    u = rng.standard_normal((nel, n, n, n))
    dmat = derivative_matrix(n)
    out = (np.empty_like(u), np.empty_like(u), np.empty_like(u))
    wall = _wall(lambda: dk.grad(u, dmat, variant=variant, out=out), iters)
    model = counters.roofline_seconds(n, nel, _machine(), variant=variant)
    return [
        Metric("grad_wall_s", wall, kind="wall", unit="s"),
        Metric("grad_model_s", model, kind="virtual", unit="s"),
        Metric(
            "points",
            float(nel * n**3),
            kind="count",
            unit="gridpoints",
            better="higher",
        ),
    ]


def _register_deriv_sweep() -> None:
    # The paper's N = 5..25 sweep; per-rank element count scaled so the
    # working set stays roughly constant (~25k grid points).
    for n in (5, 10, 15, 20, 25):
        nel = max(1, 24576 // n**3)

        def fn(n: int = n, nel: int = nel) -> List[Metric]:
            return _deriv_scenario(n, nel, "fused", iters=5)

        register(
            f"kernels/deriv_n{n:02d}",
            "kernels",
            repeats=3,
            n=n,
            nel=nel,
            variant="fused",
        )(fn)


_register_deriv_sweep()


def _register_variants() -> None:
    # basic is a per-plane python loop — keep its batch small.
    for variant, nel, iters in (
        ("basic", 8, 2), ("fused", 64, 5), ("einsum", 64, 5)
    ):
        def fn(
            variant: str = variant, nel: int = nel, iters: int = iters
        ) -> List[Metric]:
            return _deriv_scenario(10, nel, variant, iters=iters)

        register(
            f"kernels/variant_{variant}",
            "kernels",
            repeats=3,
            n=10,
            nel=nel,
            variant=variant,
        )(fn)


_register_variants()


@register("kernels/workspace", "kernels", repeats=3, n=12, nel=48)
def _kernels_workspace() -> List[Metric]:
    """Allocating vs workspace-reuse gradient: speedup and bitwise parity.

    This is the optimization the baselines capture: the RK loop used to
    allocate three fresh ``(nel, N, N, N)`` arrays per gradient; with a
    :class:`~repro.kernels.workspace.Workspace` it reuses them.  The
    two paths must agree bitwise (gated as an exact count metric).
    """
    from ..kernels import Workspace, derivative_matrix
    from ..kernels import derivatives as dk

    n, nel, iters = 12, 48, 5
    rng = np.random.default_rng(7)
    u = rng.standard_normal((nel, n, n, n))
    dmat = derivative_matrix(n)
    work = Workspace()

    alloc_wall = _wall(lambda: dk.grad(u, dmat), iters)
    reuse_wall = _wall(
        lambda: dk.grad(u, dmat, out=dk.grad_workspace(work, u)), iters
    )
    ga = dk.grad(u, dmat)
    gr = dk.grad(u, dmat, out=dk.grad_workspace(work, u))
    bitwise = all(np.array_equal(a, r, equal_nan=True) for a, r in zip(ga, gr))
    return [
        Metric("alloc_wall_s", alloc_wall, kind="wall", unit="s"),
        Metric("reuse_wall_s", reuse_wall, kind="wall", unit="s"),
        Metric(
            "reuse_speedup_x",
            alloc_wall / reuse_wall,
            kind="wall",
            unit="x",
            better="higher",
            rel_tol=1.0,
        ),
        Metric(
            "bitwise_identical",
            float(bitwise),
            kind="count",
            unit="bool",
            better="higher",
        ),
    ]


@register("kernels/kir_deriv_sweep", "kernels", repeats=2, variant="auto")
def _kernels_kir_sweep() -> List[Metric]:
    """Autotuned generated kernels vs the hand-written fused GEMMs.

    Sweeps the paper's N = 5..25 operating points and times the full
    gradient under the ``fused`` reference and the ``auto`` variant
    (contraction-IR codegen + per-host autotuned schedule, see
    docs/kernel-ir.md).  The per-N speedup ratios are the gate: the
    tuned generated kernel must stay at least as fast as ``fused``
    (its candidate set *contains* the fused algorithm, so losing means
    the tuner picked a stale or wrong schedule).  Numerical agreement
    is checked normwise at 1e-10 and gated exactly as a count metric.
    """
    from ..kernels import derivative_matrix
    from ..kernels import derivatives as dk

    metrics: List[Metric] = []
    match = True
    for n in (5, 10, 15, 20, 25):
        nel = max(1, 24576 // n**3)
        rng = np.random.default_rng(1000 + n)
        u = rng.standard_normal((nel, n, n, n))
        dmat = derivative_matrix(n)
        out = (np.empty_like(u), np.empty_like(u), np.empty_like(u))
        fused_w = _wall(
            lambda: dk.grad(u, dmat, variant="fused", out=out), 3
        )
        gen_w = _wall(
            lambda: dk.grad(u, dmat, variant="auto", out=out), 3
        )
        for a, b in zip(
            dk.grad(u, dmat, variant="fused"),
            dk.grad(u, dmat, variant="auto"),
        ):
            if np.abs(b - a).max() > 1e-10 * np.abs(a).max():
                match = False
        metrics.extend([
            Metric(f"fused_wall_s_n{n:02d}", fused_w, kind="wall",
                   unit="s"),
            Metric(f"generated_wall_s_n{n:02d}", gen_w, kind="wall",
                   unit="s"),
            Metric(f"gen_vs_fused_x_n{n:02d}", fused_w / gen_w,
                   kind="wall", unit="x", better="higher", rel_tol=1.0),
        ])
    metrics.append(
        Metric("numerics_match", float(match), kind="count",
               unit="bool", better="higher")
    )
    return metrics


# ---------------------------------------------------------------------
# comms — gather-scatter method comparison + overlap accounting
# ---------------------------------------------------------------------


def _cmtbone_run(
    nranks: int,
    machine: Optional[str] = None,
    backend: str = "threads",
    **overrides: object,
):
    """One proxy-mode CMT-bone job; returns the per-rank result list."""
    from ..core.cmtbone import launch_cmtbone
    from ..core.config import CMTBoneConfig
    from ..perfmodel.machine import MachineModel

    kwargs: Dict[str, object] = dict(
        n=8,
        local_shape=(2, 2, 2),
        nsteps=6,
        work_mode="proxy",
        monitor_every=2,
    )
    kwargs.update(overrides)
    cfg = CMTBoneConfig(**kwargs)
    m = MachineModel.preset(machine) if machine else _machine()
    results, _rt = launch_cmtbone(
        cfg, nranks=nranks, machine=m, backend=backend
    )
    return results


@register("comms/gs_methods", "comms", repeats=2, nranks=8)
def _comms_gs_methods() -> List[Metric]:
    """Fig. 7's three-way auto-tune on a small job (virtual time)."""
    res = _cmtbone_run(8, gs_method=None, autotune_trials=2)[0]
    assert res.autotune is not None
    metrics = [
        Metric(
            f"{method}_avg_s",
            timing.avg,
            kind="virtual",
            unit="s",
        )
        for method, timing in sorted(res.autotune.items())
    ]
    metrics.append(
        Metric(
            "chosen_is_pairwise",
            float(res.chosen_method == "pairwise"),
            kind="count",
            unit="bool",
            better="higher",
        )
    )
    return metrics


@register("comms/overlap", "comms", repeats=2, nranks=8, machine="opteron6378")
def _comms_overlap() -> List[Metric]:
    """Blocking vs split-phase overlapped schedule (virtual time).

    Runs on the ``opteron6378`` preset: its network is slow enough
    relative to the update compute that the split-phase schedule has
    real message flight time to hide (on ``compton`` the messages land
    before the finish call and the accounts are all zero).
    """
    blocking = _cmtbone_run(
        8, machine="opteron6378", gs_method="pairwise", overlap=False
    )[0]
    overlap = _cmtbone_run(
        8, machine="opteron6378", gs_method="pairwise", overlap=True
    )[0]
    return [
        Metric("vtime_blocking_s", blocking.vtime_total, kind="virtual"),
        Metric("vtime_overlap_s", overlap.vtime_total, kind="virtual"),
        Metric(
            "hidden_comm_s",
            overlap.vtime_hidden_comm,
            kind="virtual",
            better="higher",
        ),
        Metric(
            "overlap_speedup_x",
            blocking.vtime_total / overlap.vtime_total,
            kind="virtual",
            unit="x",
            better="higher",
        ),
    ]


# ---------------------------------------------------------------------
# backends — threads vs procs execution (tentpole of the backend PR)
# ---------------------------------------------------------------------


def _backend_deriv_main(comm, n: int, nel: int, iters: int) -> float:
    """Per-rank real derivative work for the backend comparison."""
    from ..kernels import derivative_matrix
    from ..kernels import derivatives as dk

    rng = np.random.default_rng(1000 + comm.rank)
    u = rng.standard_normal((nel, n, n, n))
    dmat = derivative_matrix(n)
    out = (np.empty_like(u), np.empty_like(u), np.empty_like(u))
    for _ in range(iters):
        dk.grad(u, dmat, variant="fused", out=out)
    comm.barrier()
    return float(out[0][0, 0, 0, 0])


@register(
    "kernels/backend_deriv4",
    "kernels",
    repeats=2,
    nranks=4,
    n=12,
    nel=28,
    variant="fused",
)
def _kernels_backend_deriv() -> List[Metric]:
    """Threads vs procs backend on the derivative kernel at 4 ranks.

    The same real (GIL-heavy on threads) gradient workload runs once
    per backend; ``procs_speedup_x`` is the whole point of the process
    backend — on a multi-core host it approaches the core count, on a
    single-core host it hovers near (or below) 1.  Wall metrics are
    host-fingerprint-gated as usual; the count metric pins cross-backend
    result agreement.
    """
    from ..mpi import Runtime

    n, nel, iters, nranks = 12, 28, 6, 4
    walls: Dict[str, float] = {}
    checks: Dict[str, List[float]] = {}
    for backend in ("threads", "procs"):
        rt = Runtime(nranks=nranks, machine=_machine(), backend=backend)
        t0 = time.perf_counter()
        checks[backend] = rt.run(
            _backend_deriv_main, args=(n, nel, iters)
        )
        walls[backend] = time.perf_counter() - t0
    return [
        Metric("threads_wall_s", walls["threads"], kind="wall", unit="s"),
        Metric("procs_wall_s", walls["procs"], kind="wall", unit="s"),
        Metric(
            "procs_speedup_x",
            walls["threads"] / walls["procs"],
            kind="wall",
            unit="x",
            better="higher",
            rel_tol=1.0,
        ),
        Metric(
            "results_identical",
            float(checks["threads"] == checks["procs"]),
            kind="count",
            unit="bool",
            better="higher",
        ),
    ]


@register("comms/backend_gs", "comms", repeats=2, nranks=4)
def _comms_backend_gs() -> List[Metric]:
    """Virtual-time parity of the gs exchange across backends.

    The acceptance bar for any new backend: the modelled communication
    account of a CMT-bone job must be *identical* whether the ranks are
    threads or processes.  ``vtime_identical`` gates exact equality of
    every rank's (total, comm) pair; the per-backend virtual totals are
    additionally gated at the comparator's virtual tolerance.
    """
    vt: Dict[str, List[tuple]] = {}
    walls: Dict[str, float] = {}
    for backend in ("threads", "procs"):
        t0 = time.perf_counter()
        res = _cmtbone_run(4, gs_method="pairwise", backend=backend)
        walls[backend] = time.perf_counter() - t0
        vt[backend] = [(r.vtime_total, r.vtime_comm) for r in res]
    return [
        Metric(
            "vtime_threads_s",
            max(t for t, _ in vt["threads"]),
            kind="virtual",
            unit="s",
        ),
        Metric(
            "vtime_procs_s",
            max(t for t, _ in vt["procs"]),
            kind="virtual",
            unit="s",
        ),
        Metric(
            "vtime_identical",
            float(vt["threads"] == vt["procs"]),
            kind="count",
            unit="bool",
            better="higher",
        ),
        Metric("threads_wall_s", walls["threads"], kind="wall", unit="s"),
        Metric("procs_wall_s", walls["procs"], kind="wall", unit="s"),
    ]


@register("comms/backend_sockets", "comms", repeats=2, nranks=4)
def _comms_backend_sockets() -> List[Metric]:
    """Virtual-time parity of the sockets backend vs threads.

    Same acceptance bar the procs backend passed: running the CMT-bone
    job with every rank in its own OS process behind TCP sockets must
    leave the modelled communication account bit-for-bit unchanged.
    ``vtime_identical`` gates exact equality of every rank's
    (total, comm) pair; the wall metrics record what the socket mesh
    (rendezvous, per-peer connections, pickled frames) costs in real
    time next to the in-process threads run.
    """
    vt: Dict[str, List[tuple]] = {}
    walls: Dict[str, float] = {}
    for backend in ("threads", "sockets"):
        t0 = time.perf_counter()
        res = _cmtbone_run(4, gs_method="pairwise", backend=backend)
        walls[backend] = time.perf_counter() - t0
        vt[backend] = [(r.vtime_total, r.vtime_comm) for r in res]
    return [
        Metric(
            "vtime_threads_s",
            max(t for t, _ in vt["threads"]),
            kind="virtual",
            unit="s",
        ),
        Metric(
            "vtime_sockets_s",
            max(t for t, _ in vt["sockets"]),
            kind="virtual",
            unit="s",
        ),
        Metric(
            "vtime_identical",
            float(vt["threads"] == vt["sockets"]),
            kind="count",
            unit="bool",
            better="higher",
        ),
        Metric("threads_wall_s", walls["threads"], kind="wall", unit="s"),
        Metric("sockets_wall_s", walls["sockets"], kind="wall", unit="s"),
    ]


# ---------------------------------------------------------------------
# solver — Sod throughput, workspace ablation, fault/LB campaigns
# ---------------------------------------------------------------------


def _sod_main(nranks: int, nsteps: int, reuse_workspace: bool = True):
    """Run the Sod campaign; returns (final u of rank 0, virtual time)."""
    from ..cli import _sod_setup
    from ..mpi import Runtime

    setup = _sod_setup(
        nranks,
        n=6,
        nelx=16,
        gs_method="pairwise",
        reuse_workspace=reuse_workspace,
    )

    def main(comm):
        solver, state = setup(comm)
        final = solver.run(state, nsteps)
        return final.u.copy(), comm.time()

    rt = Runtime(nranks=nranks, machine=_machine())
    return rt.run(main)


@register(
    "solver/sod_throughput",
    "solver",
    repeats=3,
    nranks=2,
    n=6,
    nelx=16,
    nsteps=8,
)


def _solver_sod_throughput() -> List[Metric]:
    nsteps = 8
    t0 = time.perf_counter()
    results = _sod_main(2, nsteps)
    wall = time.perf_counter() - t0
    vtime = max(r[1] for r in results)
    return [
        Metric(
            "steps_per_s",
            nsteps / wall,
            kind="wall",
            unit="steps/s",
            better="higher",
        ),
        Metric("campaign_wall_s", wall, kind="wall", unit="s"),
        Metric("vtime_total_s", vtime, kind="virtual", unit="s"),
    ]


@register(
    "solver/workspace", "solver", repeats=3, nranks=2, n=6, nelx=16, nsteps=6
)


def _solver_workspace() -> List[Metric]:
    """RHS/RK workspace reuse on vs off: speedup and bitwise parity."""
    nsteps = 6

    t0 = time.perf_counter()
    with_ws = _sod_main(2, nsteps, reuse_workspace=True)
    reuse_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    without = _sod_main(2, nsteps, reuse_workspace=False)
    alloc_wall = time.perf_counter() - t0

    bitwise = all(
        np.array_equal(a[0], b[0], equal_nan=True)
        for a, b in zip(with_ws, without)
    )
    return [
        Metric("alloc_wall_s", alloc_wall, kind="wall", unit="s"),
        Metric("reuse_wall_s", reuse_wall, kind="wall", unit="s"),
        Metric(
            "reuse_speedup_x",
            alloc_wall / reuse_wall,
            kind="wall",
            unit="x",
            better="higher",
            rel_tol=1.0,
        ),
        Metric(
            "bitwise_identical",
            float(bitwise),
            kind="count",
            unit="bool",
            better="higher",
        ),
    ]


@register(
    "solver/fault_campaign",
    "solver",
    repeats=2,
    nranks=2,
    nsteps=10,
    crash_step=5,
    checkpoint_every=3,
)


def _solver_fault_campaign() -> List[Metric]:
    """Crash-and-recover campaign: virtual-time cost decomposition."""
    import tempfile

    from ..cli import _sod_setup
    from ..faults.plan import FaultPlan
    from ..solver.driver import run_with_recovery

    setup = _sod_setup(2, n=6, nelx=16, gs_method="pairwise")
    plan = FaultPlan.parse("crash:rank=1,step=5", seed=0)
    with tempfile.TemporaryDirectory() as ckpt:
        _, report = run_with_recovery(
            setup,
            nranks=2,
            nsteps=10,
            checkpoint_every=3,
            checkpoint_dir=ckpt,
            fault_plan=plan,
            machine=_machine(),
        )
    return [
        Metric(
            "campaign_vtime_s",
            report.total_virtual_seconds,
            kind="virtual",
        ),
        Metric("lost_work_s", report.lost_work_seconds, kind="virtual"),
        Metric(
            "restart_overhead_s",
            report.restart_overhead_seconds,
            kind="virtual",
        ),
        Metric(
            "restarts",
            float(report.restarts),
            kind="count",
            unit="restarts",
        ),
    ]


@register(
    "solver/lb_imbalance",
    "solver",
    fast=False,
    repeats=2,
    nranks=8,
    imbalance=0.4,
    nsteps=24,
)


def _solver_lb_imbalance() -> List[Metric]:
    """Load-balancer ablation under injected compute imbalance.

    At mini-app scale the rebalance migrations cost more virtual time
    than they recover, so the gated quantity is the one the subsystem
    exists to move: the steady-state max/mean cost imbalance across
    ranks (cf. benchmarks/bench_lb_ablation.py).  The "off" side runs
    ``lb_mode="manual"`` — cost monitor on, corrections off — so the
    imbalance metric has the same meaning on both sides.
    """

    def imbalance(results) -> float:
        costs = [r.lb_window_cost for r in results]
        mean = sum(costs) / len(costs)
        return max(costs) / mean if mean else 0.0

    common = dict(
        gs_method="pairwise",
        compute_imbalance=0.4,
        nsteps=24,
        monitor_every=4,
        lb_threshold=1.05,
        lb_min_interval=4,
    )
    off = _cmtbone_run(8, lb_mode="manual", **common)
    lb = _cmtbone_run(8, lb_mode="auto", **common)
    imb_off, imb_lb = imbalance(off), imbalance(lb)
    return [
        Metric(
            "cost_imbalance_off",
            imb_off,
            kind="virtual",
            unit="ratio",
        ),
        Metric(
            "cost_imbalance_lb",
            imb_lb,
            kind="virtual",
            unit="ratio",
        ),
        Metric(
            "imbalance_reduction_x",
            imb_off / imb_lb,
            kind="virtual",
            unit="x",
            better="higher",
        ),
        Metric(
            "vtime_lb_s",
            max(r.vtime_total for r in lb),
            kind="virtual",
        ),
        Metric(
            "rebalances",
            float(max(r.lb_rebalances for r in lb)),
            kind="count",
            unit="rebalances",
        ),
    ]


# ---------------------------------------------------------------------
# service: job-service throughput, latency, and setup-artifact cache
# ---------------------------------------------------------------------


def _service_specs(n_cmt: int, n_sod: int) -> list:
    from ..service import JobSpec

    specs = []
    for i in range(n_cmt):
        specs.append(JobSpec(
            kind="cmtbone", name=f"cmt{i}", nranks=2,
            machine=VIRTUAL_MACHINE,
            params={"n": 5, "nel": 8, "nsteps": 3},
        ))
    for i in range(n_sod):
        specs.append(JobSpec(
            kind="sod", name=f"sod{i}", nranks=2,
            machine=VIRTUAL_MACHINE,
            params={"n": 5, "nelx": 8, "nsteps": 3},
        ))
    return specs


@register(
    "service/campaign_throughput",
    "service",
    repeats=2,
    jobs=20,
    workers=2,
)


def _service_campaign_throughput() -> List[Metric]:
    """20 mixed jobs through the pool vs a fresh process per job.

    The sequential baseline forks a one-shot worker per job (cold
    cache), which is exactly the fixed cost the persistent pool
    amortises; the speedup gates the service's reason to exist.
    """
    from ..service import JobSpec, run_campaign
    from ..service.pool import WorkerPool

    specs = _service_specs(15, 5)
    report = run_campaign(specs, nworkers=2)
    if report.failed:
        raise RuntimeError(
            f"campaign failed: {report.failed[0].error}"
        )

    seq_specs = _service_specs(15, 5)
    t0 = time.perf_counter()
    for spec in seq_specs:
        with WorkerPool(nworkers=1) as pool:
            pool.dispatch(0, [spec])
            results = pool.collect(0, [spec])
        if results[0].status != "done":
            raise RuntimeError(f"sequential job failed: {results[0].error}")
    seq_wall = time.perf_counter() - t0

    return [
        Metric(
            "jobs_per_s",
            report.jobs_per_second,
            kind="wall",
            unit="jobs/s",
            better="higher",
        ),
        Metric("campaign_wall_s", report.wall_seconds, kind="wall"),
        Metric("sequential_wall_s", seq_wall, kind="wall"),
        Metric(
            "pool_speedup_x",
            seq_wall / report.wall_seconds,
            kind="wall",
            unit="x",
            better="higher",
            rel_tol=1.0,
        ),
        Metric("p50_latency_s", report.p50, kind="wall"),
        Metric("p99_latency_s", report.p99, kind="wall"),
        Metric(
            "failed_jobs",
            float(len(report.failed)),
            kind="count",
            unit="jobs",
        ),
    ]


@register(
    "service/artifact_cache",
    "service",
    repeats=2,
    jobs=6,
    workers=1,
)


def _service_artifact_cache() -> List[Metric]:
    """Deterministic cache accounting: one worker, six identical jobs.

    A single worker serialises the jobs, so exactly the first one pays
    the cold setup and the other five hit the cache — and a hit must be
    *bitwise* invisible in virtual time and physics digest.
    """
    from ..service import run_campaign

    report = run_campaign(_service_specs(6, 0), nworkers=1)
    if report.failed:
        raise RuntimeError(f"campaign failed: {report.failed[0].error}")
    digests = {r.digest for r in report.results}
    vtimes = {r.vtime_total for r in report.results}
    bitwise = len(digests) == 1 and len(vtimes) == 1
    return [
        Metric(
            "cache_hits",
            float(report.cache_hits),
            kind="count",
            unit="hits",
            better="higher",
        ),
        Metric(
            "cache_misses",
            float(report.cache_misses),
            kind="count",
            unit="misses",
        ),
        Metric(
            "hit_bitwise_identical",
            float(bitwise),
            kind="count",
            unit="bool",
            better="higher",
        ),
        Metric(
            "vtime_job_s",
            report.results[0].vtime_total,
            kind="virtual",
        ),
    ]


@register(
    "service/disk_cache",
    "service",
    repeats=2,
    jobs=4,
    workers=1,
)
def _service_disk_cache() -> List[Metric]:
    """Restart determinism of the disk-spilled artifact cache.

    Two campaigns over the same spill directory with fresh services
    (cold, then warm = a simulated restart): the warm run's first job
    must hit from disk, and every warm result must be bitwise
    identical to the cold run — same digest, same virtual time.
    """
    import tempfile

    from ..service import run_campaign

    with tempfile.TemporaryDirectory(prefix="repro-bench-art-") as d:
        cold = run_campaign(_service_specs(2, 0), nworkers=1,
                            artifact_dir=d)
        warm = run_campaign(_service_specs(2, 0), nworkers=1,
                            artifact_dir=d)
    for report in (cold, warm):
        if report.failed:
            raise RuntimeError(
                f"campaign failed: {report.failed[0].error}"
            )
    bitwise = (
        {r.digest for r in cold.results + warm.results}
        == {cold.results[0].digest}
        and {r.vtime_total for r in cold.results + warm.results}
        == {cold.results[0].vtime_total}
    )
    return [
        Metric(
            "cold_misses",
            float(cold.cache_misses),
            kind="count",
            unit="misses",
        ),
        Metric(
            "warm_disk_hits",
            float(warm.cache_disk_hits),
            kind="count",
            unit="hits",
            better="higher",
        ),
        Metric(
            "warm_hits",
            float(warm.cache_hits),
            kind="count",
            unit="hits",
            better="higher",
        ),
        Metric(
            "restart_bitwise_identical",
            float(bitwise),
            kind="count",
            unit="bool",
            better="higher",
        ),
        Metric(
            "vtime_job_s",
            warm.results[0].vtime_total,
            kind="virtual",
        ),
    ]


@register(
    "service/timeout_retry",
    "service",
    repeats=1,
    jobs=3,
    workers=1,
)
def _service_timeout_retry() -> List[Metric]:
    """Deterministic timeout/retry accounting through the service.

    One hung job (30 s sleep, 0.2 s budget, 2 retries) batched with
    two clean jobs on a single worker: every attempt of the hung job
    is killed at its deadline, its batchmates are re-admitted free as
    collateral, and the exact retry/timeout/re-admission counts gate
    the policy — any drift means charged budgets or lost jobs.
    """
    from ..service import JobSpec, run_campaign

    sleeper = JobSpec(
        kind="cmtbone", name="hung", nranks=2,
        machine=VIRTUAL_MACHINE,
        timeout_seconds=0.2, max_retries=2,
        params={"n": 5, "nel": 8, "nsteps": 3, "sleep_s": 30.0},
    )
    report = run_campaign([sleeper] + _service_specs(2, 0), nworkers=1)
    hung, ok1, ok2 = report.results
    if not (hung.status == "failed" and hung.timed_out):
        raise RuntimeError(
            f"hung job must time out, got {hung.status}: {hung.error}"
        )
    if not (ok1.ok and ok2.ok):
        raise RuntimeError("collateral jobs must eventually finish")
    return [
        Metric(
            "hung_retries",
            float(hung.retries),
            kind="count",
            unit="retries",
        ),
        Metric(
            "attempt_timeouts",
            float(report.queue_stats["timeouts"]),
            kind="count",
            unit="timeouts",
        ),
        Metric(
            "readmissions",
            float(report.queue_stats["readmitted"]),
            kind="count",
            unit="jobs",
        ),
        Metric(
            "collateral_retries_charged",
            float(ok1.retries + ok2.retries),
            kind="count",
            unit="retries",
        ),
        Metric(
            "timeout_overhead_wall_s",
            report.wall_seconds,
            kind="wall",
        ),
    ]


# ---------------------------------------------------------------------
# vscale — virtual scale-out engine (sampled execution + LogGP model)
# ---------------------------------------------------------------------


def _vscale_engine(nranks: int, sample: int, **overrides):
    from ..core.config import CMTBoneConfig
    from ..vscale import VirtualScaleEngine

    cfg = CMTBoneConfig(
        n=8,
        local_shape=(3, 3, 2),
        nsteps=2,
        neq=3,
        work_mode="proxy",
        **overrides,
    )
    return VirtualScaleEngine(
        cfg, nranks=nranks, machine=_machine(), sample=sample
    )


@register("vscale/model_agreement", "vscale", repeats=2, nranks=16)
def _vscale_model_agreement() -> List[Metric]:
    """Modeled vs executed step-time agreement at P=16, all methods.

    The engine's validation contract: at rank counts small enough to
    execute, the vectorized timeline must reproduce the executed
    virtual clock within each method's documented tolerance.  The raw
    relative errors sit at float-rounding level and would flake under
    the comparator's relative gates, so the gated metrics are the
    pass/fail bools plus the (exactly deterministic) modeled times.
    """
    engine = _vscale_engine(16, 16)
    metrics: List[Metric] = []
    ok = 0
    for method in ("pairwise", "crystal", "allreduce"):
        agreement = engine.validate(method)
        ok += int(agreement.ok)
        metrics.append(
            Metric(
                f"{method}_agrees",
                float(agreement.ok),
                kind="count",
                unit="bool",
                better="higher",
            )
        )
        metrics.append(
            Metric(
                f"{method}_modeled_step_s",
                engine.model(method, nranks=16).step_seconds,
                kind="virtual",
            )
        )
    metrics.append(
        Metric(
            "methods_agreeing",
            float(ok),
            kind="count",
            unit="methods",
            better="higher",
        )
    )
    return metrics


@register(
    "vscale/scale_sweep", "vscale", repeats=2, nranks=65536, sample=16
)
def _vscale_scale_sweep() -> List[Metric]:
    """The headline run: 65536 virtual ranks, all three gs methods.

    Gates both the modeled virtual step times (deterministic) and the
    engine's own wall cost — the whole point of the vectorized
    timelines is that a 10^4-10^5-rank what-if study stays interactive
    (the acceptance bar is well under 60 s for the sweep).
    """
    t0 = time.perf_counter()
    engine = _vscale_engine(65536, 16)
    metrics = [
        Metric(
            f"{method}_step_s",
            engine.model(method).step_seconds,
            kind="virtual",
        )
        for method in ("pairwise", "crystal", "allreduce")
    ]
    wall = time.perf_counter() - t0
    metrics.append(Metric("sweep_wall_s", wall, kind="wall"))
    metrics.append(
        Metric(
            "under_60s",
            float(wall < 60.0),
            kind="count",
            unit="bool",
            better="higher",
        )
    )
    return metrics


@register("vscale/fig7_crossover", "vscale", repeats=2, nranks=256)
def _vscale_fig7_crossover() -> List[Metric]:
    """Fig. 7 at its native P=256: pairwise must beat the other two.

    The paper's result — the auto-tuner picks pairwise exchange for
    CMT-bone at 256 ranks, the allreduce method being "too expensive"
    — reproduced from the analytic model alone on the full Fig. 7
    processor grid.
    """
    from ..core.config import CMTBoneConfig
    from ..vscale import VirtualScaleEngine

    engine = VirtualScaleEngine(
        CMTBoneConfig.fig7(),
        nranks=256,
        machine=_machine(),
        sample=8,
    )
    times = {
        m: engine.model(m).step_seconds
        for m in ("pairwise", "crystal", "allreduce")
    }
    metrics = [
        Metric(f"{m}_step_s", t, kind="virtual")
        for m, t in sorted(times.items())
    ]
    metrics.append(
        Metric(
            "pairwise_wins",
            float(min(times, key=times.get) == "pairwise"),
            kind="count",
            unit="bool",
            better="higher",
        )
    )
    return metrics
