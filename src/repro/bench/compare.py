"""Diff a benchmark run against committed baselines.

The comparator never re-runs anything: it takes two
:class:`~repro.bench.schema.SuiteResult` documents (current vs
baseline) and classifies every shared metric.

Tolerance policy (per metric ``kind``, overridable per metric via
``rel_tol`` in the baseline/current record):

* ``virtual`` — 1e-6 relative.  The virtual-time model is
  deterministic, so any drift beyond float noise is a genuine change
  in modelled performance and must be acknowledged by refreshing the
  baseline.
* ``count`` — 0 (exact).  Restart counts, rebalance counts, and
  bitwise-parity flags may never drift silently.
* ``wall`` — 1.0 relative (i.e. flag only a >2x slowdown).  Wall time
  is host- and load-dependent; the gate exists to catch catastrophic
  regressions (an accidentally quadratic loop), not 5% jitter.
  Additionally, wall metrics only *gate* when the current host
  fingerprint matches the baseline's — on foreign hosts they are
  reported informationally.

A change beyond tolerance in the *good* direction (``better``) is an
improvement, reported but passing: refresh the baseline with
``--update-baselines`` to ratchet it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence

from .runner import BASELINE_FILENAMES, host_fingerprint, read_suites
from .schema import GROUPS, Metric, SuiteResult

#: Default relative tolerance per metric kind (see module docstring).
DEFAULT_REL_TOL: Mapping[str, float] = {
    "virtual": 1e-6,
    "count": 0.0,
    "wall": 1.0,
}

#: Classification outcomes.
OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
INFO = "informational"   # off-host wall metric, not gated
MISSING = "missing"      # baseline scenario/metric absent from current


@dataclass
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    scenario: str
    metric: str
    kind: str
    baseline: float
    current: float
    #: Relative change *in the bad direction* (positive = worse).
    rel_change: float
    tol: float
    status: str

    def row(self) -> str:
        arrow = {
            OK: " ",
            IMPROVED: "+",
            REGRESSION: "!",
            INFO: "~",
            MISSING: "?",
        }[self.status]
        return (
            f" {arrow} {self.scenario}:{self.metric:<22s} "
            f"{self.baseline:12.6g} -> {self.current:12.6g}  "
            f"(worse by {self.rel_change:+8.2%}, tol {self.tol:g}, "
            f"{self.status})"
        )


@dataclass
class ComparisonReport:
    """All deltas of a comparison, plus bookkeeping."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: Scenario ids in the baseline with no counterpart in the run.
    missing_scenarios: List[str] = field(default_factory=list)
    #: Scenario ids in the run with no committed baseline yet.
    new_scenarios: List[str] = field(default_factory=list)
    #: Whether wall metrics were gated (host match or forced).
    wall_gated: bool = True
    #: Baseline groups with no BENCH file in the baseline directory.
    missing_groups: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == REGRESSION]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == IMPROVED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def merge(self, other: "ComparisonReport") -> None:
        self.deltas.extend(other.deltas)
        self.missing_scenarios.extend(other.missing_scenarios)
        self.new_scenarios.extend(other.new_scenarios)
        self.missing_groups.extend(other.missing_groups)
        self.wall_gated = self.wall_gated and other.wall_gated

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        shown = [
            d for d in self.deltas
            if verbose or d.status in (REGRESSION, IMPROVED, INFO)
        ]
        for d in shown:
            lines.append(d.row())
        if not self.wall_gated:
            lines.append(
                "  note: host fingerprint differs from baseline; wall "
                "metrics reported informationally, not gated"
            )
        for sid in self.missing_scenarios:
            lines.append(f" ? baseline scenario {sid} missing from run")
        for sid in self.new_scenarios:
            lines.append(f" + new scenario {sid} (no baseline yet)")
        for group in self.missing_groups:
            lines.append(
                f" ? no baseline file for group {group!r} "
                f"({BASELINE_FILENAMES[group]})"
            )
        n_reg = len(self.regressions)
        lines.append(
            f"compared {len(self.deltas)} metrics: "
            f"{n_reg} regression{'s' if n_reg != 1 else ''}, "
            f"{len(self.improvements)} improved"
        )
        return "\n".join(lines)


def _tolerance(current: Metric, baseline: Metric) -> float:
    # A per-metric override wins; baseline's takes precedence so the
    # committed policy governs, not the (possibly tampered) run.
    if baseline.rel_tol is not None:
        return baseline.rel_tol
    if current.rel_tol is not None:
        return current.rel_tol
    return DEFAULT_REL_TOL[baseline.kind]


def compare_metric(
    scenario_id: str,
    current: Metric,
    baseline: Metric,
    gate_wall: bool,
) -> MetricDelta:
    """Classify one metric pair."""
    tol = _tolerance(current, baseline)
    denom = abs(baseline.value) if baseline.value != 0.0 else 1.0
    # Positive rel_change always means "got worse".
    if baseline.better == "lower":
        rel_change = (current.value - baseline.value) / denom
    else:
        rel_change = (baseline.value - current.value) / denom
    if baseline.kind == "wall" and not gate_wall:
        status = INFO
    elif rel_change > tol:
        status = REGRESSION
    elif rel_change < -tol:
        status = IMPROVED
    else:
        status = OK
    return MetricDelta(
        scenario=scenario_id,
        metric=current.name,
        kind=baseline.kind,
        baseline=baseline.value,
        current=current.value,
        rel_change=rel_change,
        tol=tol,
        status=status,
    )


def compare_suites(
    current: SuiteResult,
    baseline: SuiteResult,
    gate_wall: Optional[bool] = None,
) -> ComparisonReport:
    """Compare one group's run against its baseline suite.

    ``gate_wall=None`` (auto) gates wall metrics only when the current
    host fingerprint equals the baseline's recorded fingerprint.
    """
    if current.group != baseline.group:
        raise ValueError(
            f"group mismatch: run is {current.group!r}, "
            f"baseline is {baseline.group!r}"
        )
    if gate_wall is None:
        base_host = (baseline.meta.get("host") or {}).get("fingerprint")
        gate_wall = base_host == host_fingerprint()
    report = ComparisonReport(wall_gated=bool(gate_wall))
    current_ids = set(current.scenario_ids())
    baseline_ids = set(baseline.scenario_ids())
    report.new_scenarios = sorted(current_ids - baseline_ids)
    report.missing_scenarios = sorted(baseline_ids - current_ids)
    for base_result in baseline.results:
        if base_result.scenario not in current_ids:
            continue
        cur_result = current.scenario(base_result.scenario)
        cur_names = {m.name for m in cur_result.metrics}
        for base_metric in base_result.metrics:
            if base_metric.name not in cur_names:
                report.deltas.append(
                    MetricDelta(
                        scenario=base_result.scenario,
                        metric=base_metric.name,
                        kind=base_metric.kind,
                        baseline=base_metric.value,
                        current=float("nan"),
                        rel_change=float("inf"),
                        tol=_tolerance(base_metric, base_metric),
                        status=REGRESSION,
                    )
                )
                continue
            report.deltas.append(
                compare_metric(
                    base_result.scenario,
                    cur_result.metric(base_metric.name),
                    base_metric,
                    gate_wall=bool(gate_wall),
                )
            )
    return report


def compare_dirs(
    current: Mapping[str, SuiteResult],
    baseline_dir: "str | Path",
    groups: Sequence[str] = GROUPS,
    gate_wall: Optional[bool] = None,
) -> ComparisonReport:
    """Compare a run's suites against the files in ``baseline_dir``.

    A baseline file missing for a group that *was* run is recorded but
    not fatal (warn-and-skip: the group simply has no baseline yet —
    commit one with ``--update-baselines``).
    """
    baseline_dir = Path(baseline_dir)
    baselines = read_suites(baseline_dir, groups=groups)
    report = ComparisonReport()
    for group in groups:
        if group not in current:
            continue
        if group not in baselines:
            report.missing_groups.append(group)
            continue
        report.merge(
            compare_suites(
                current[group], baselines[group], gate_wall=gate_wall
            )
        )
    return report
