"""Versioned record types for ``BENCH_*.json`` result files.

One suite file per scenario group (``kernels``, ``solver``, ``comms``),
each a :class:`SuiteResult`: a schema version, a metadata block (host
fingerprint, python/numpy versions, git commit, timestamp), and a list
of :class:`ScenarioResult` entries.  Every scenario carries its
parameters and a flat list of :class:`Metric` values so the comparator
can diff two files without knowing anything about how the numbers were
produced.

The JSON layout is part of the repo's public surface (committed
baselines live under ``benchmarks/baselines/``), so round-tripping is
strict: unknown schema versions, malformed metric kinds, and missing
required keys all raise :class:`BenchSchemaError` instead of being
silently coerced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Scenario groups; each maps to one ``BENCH_<group>.json`` file.
GROUPS = ("kernels", "solver", "comms", "service", "vscale")

#: Metric kinds.  ``wall`` is host-dependent wall-clock, ``virtual`` is
#: a deterministic virtual-time / model output, ``count`` is an exact
#: integer-valued quantity (restarts, rebalances, pass/fail flags).
KINDS = ("wall", "virtual", "count")

#: Direction of goodness for a metric.
BETTER = ("lower", "higher")


class BenchSchemaError(ValueError):
    """A BENCH_*.json document does not match the expected schema."""


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    try:
        return mapping[key]
    except KeyError:
        raise BenchSchemaError(
            f"{context}: missing required key {key!r}"
        ) from None


def _is_listlike(value: Any) -> bool:
    return isinstance(value, Sequence) and not isinstance(value, str)


@dataclass
class Metric:
    """A single measured quantity of a scenario.

    ``stats`` holds the per-repeat spread for wall metrics (mean / min /
    max / std over repeats); ``value`` is the representative number the
    comparator gates on (min-over-repeats for wall, the exact value for
    virtual and count metrics).  ``rel_tol`` optionally overrides the
    comparator's per-kind default tolerance.
    """

    name: str
    value: float
    kind: str = "wall"
    unit: str = "s"
    better: str = "lower"
    rel_tol: Optional[float] = None
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise BenchSchemaError(
                f"metric {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )
        if self.better not in BETTER:
            raise BenchSchemaError(
                f"metric {self.name!r}: better must be one of {BETTER}, "
                f"got {self.better!r}"
            )
        self.value = float(self.value)

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "value": self.value,
            "kind": self.kind,
            "unit": self.unit,
            "better": self.better,
        }
        if self.rel_tol is not None:
            doc["rel_tol"] = self.rel_tol
        if self.stats:
            doc["stats"] = dict(self.stats)
        return doc

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "Metric":
        name = _require(doc, "name", "metric")
        return cls(
            name=str(name),
            value=float(_require(doc, "value", f"metric {name!r}")),
            kind=str(doc.get("kind", "wall")),
            unit=str(doc.get("unit", "s")),
            better=str(doc.get("better", "lower")),
            rel_tol=(
                float(doc["rel_tol"])
                if doc.get("rel_tol") is not None
                else None
            ),
            stats={str(k): float(v) for k, v in doc.get("stats", {}).items()},
        )


@dataclass
class ScenarioResult:
    """All metrics of one scenario run (possibly aggregated over repeats)."""

    scenario: str
    group: str
    params: Dict[str, Any] = field(default_factory=dict)
    repeats: int = 1
    metrics: List[Metric] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise BenchSchemaError(
                f"scenario {self.scenario!r}: group must be one of {GROUPS}, "
                f"got {self.group!r}"
            )

    def metric(self, name: str) -> Metric:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(
            f"scenario {self.scenario!r} has no metric {name!r} "
            f"(has {[m.name for m in self.metrics]})"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "group": self.group,
            "params": dict(self.params),
            "repeats": self.repeats,
            "metrics": [m.to_json() for m in self.metrics],
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ScenarioResult":
        scenario = str(_require(doc, "scenario", "scenario result"))
        metrics_doc = doc.get("metrics", [])
        if not _is_listlike(metrics_doc):
            raise BenchSchemaError(
                f"scenario {scenario!r}: 'metrics' must be a list"
            )
        return cls(
            scenario=scenario,
            group=str(_require(doc, "group", f"scenario {scenario!r}")),
            params=dict(doc.get("params", {})),
            repeats=int(doc.get("repeats", 1)),
            metrics=[Metric.from_json(m) for m in metrics_doc],
        )


@dataclass
class SuiteResult:
    """One ``BENCH_<group>.json`` document."""

    group: str
    meta: Dict[str, Any] = field(default_factory=dict)
    results: List[ScenarioResult] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise BenchSchemaError(
                f"suite group must be one of {GROUPS}, got {self.group!r}"
            )

    def scenario(self, scenario_id: str) -> ScenarioResult:
        for r in self.results:
            if r.scenario == scenario_id:
                return r
        raise KeyError(f"suite {self.group!r} has no scenario {scenario_id!r}")

    def scenario_ids(self) -> List[str]:
        return [r.scenario for r in self.results]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "group": self.group,
            "meta": dict(self.meta),
            "results": [r.to_json() for r in self.results],
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "SuiteResult":
        version = _require(doc, "schema_version", "suite")
        if int(version) != SCHEMA_VERSION:
            raise BenchSchemaError(
                f"unsupported schema_version {version} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        results_doc = doc.get("results", [])
        if not _is_listlike(results_doc):
            raise BenchSchemaError("suite: 'results' must be a list")
        return cls(
            group=str(_require(doc, "group", "suite")),
            meta=dict(doc.get("meta", {})),
            results=[ScenarioResult.from_json(r) for r in results_doc],
            schema_version=int(version),
        )

    # -- file I/O ------------------------------------------------------

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def loads(cls, text: str) -> "SuiteResult":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BenchSchemaError(f"not valid JSON: {exc}") from exc
        if not isinstance(doc, Mapping):
            raise BenchSchemaError("top-level JSON value must be an object")
        return cls.from_json(doc)

    def write(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def read(cls, path: "str | Path") -> "SuiteResult":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise BenchSchemaError(f"cannot read {path}: {exc}") from exc
        try:
            return cls.loads(text)
        except BenchSchemaError as exc:
            raise BenchSchemaError(f"{path}: {exc}") from exc
