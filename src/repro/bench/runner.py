"""Execute registered scenarios and emit ``BENCH_*.json`` suites.

The runner is where the two metric kinds get their contracts enforced:

* wall metrics are re-measured on every repeat; the representative
  ``value`` is the **min** over repeats (least-noise estimator) and the
  mean/max/std spread is recorded under ``stats``;
* virtual and count metrics come from the deterministic virtual-time
  model, so the runner demands bit-equal values on every repeat and
  raises if a scenario ever disagrees with itself — that guarantee is
  what lets the comparator gate them at ~1e-6.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..autotune import host_fingerprint
from .scenarios import Scenario, select_scenarios
from .schema import (
    GROUPS,
    SCHEMA_VERSION,
    Metric,
    ScenarioResult,
    SuiteResult,
)

#: Output / baseline file name per scenario group.
BASELINE_FILENAMES: Dict[str, str] = {
    group: f"BENCH_{group}.json" for group in GROUPS
}


class BenchRunError(RuntimeError):
    """A scenario violated the runner's contracts (e.g. nondeterminism)."""


@dataclass
class RunOptions:
    """Knobs for one ``repro.cli bench`` invocation."""

    groups: Sequence[str] = GROUPS
    fast_only: bool = False
    #: Override every scenario's repeat count (None = per-scenario).
    repeats: Optional[int] = None
    progress: Optional[Callable[[str], None]] = None


# host_fingerprint is shared with the kernel autotune cache (both key
# wall measurements by the machine that produced them); it lives in
# repro.autotune and is re-exported here for the comparator.
__all__ = ["host_fingerprint"]


def _git_describe() -> Dict[str, object]:
    info: Dict[str, object] = {}
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        info["commit"] = head
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        info["dirty"] = bool(dirty)
    except (OSError, subprocess.SubprocessError):
        info["commit"] = None
        info["dirty"] = None
    return info


def collect_metadata() -> Dict[str, object]:
    """Provenance block stamped into every suite file."""
    return {
        "schema_version": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "fingerprint": host_fingerprint(),
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "git": _git_describe(),
    }


def _merge_repeats(
    scenario: Scenario, per_repeat: List[List[Metric]]
) -> List[Metric]:
    """Aggregate repeat measurements into one metric list."""
    names = [m.name for m in per_repeat[0]]
    for i, metrics in enumerate(per_repeat[1:], start=2):
        if [m.name for m in metrics] != names:
            raise BenchRunError(
                f"{scenario.id}: repeat {i} returned different metrics "
                f"({[m.name for m in metrics]} vs {names})"
            )
    merged: List[Metric] = []
    for j, name in enumerate(names):
        series = [metrics[j] for metrics in per_repeat]
        first = series[0]
        values = [m.value for m in series]
        if first.kind == "wall":
            merged.append(
                Metric(
                    name=name,
                    value=(
                        min(values) if first.better == "lower"
                        else max(values)
                    ),
                    kind=first.kind,
                    unit=first.unit,
                    better=first.better,
                    rel_tol=first.rel_tol,
                    stats={
                        "mean": float(np.mean(values)),
                        "min": float(np.min(values)),
                        "max": float(np.max(values)),
                        "std": float(np.std(values)),
                        "repeats": float(len(values)),
                    },
                )
            )
        else:
            # Virtual/count metrics are model outputs: the simulated
            # clock is deterministic, so every repeat must agree
            # exactly.  A mismatch is a bug, not noise.
            if any(v != values[0] for v in values[1:]):
                raise BenchRunError(
                    f"{scenario.id}: {first.kind} metric {name!r} is not "
                    f"deterministic across repeats: {values}"
                )
            merged.append(first)
    return merged


def run_scenario(
    scenario: Scenario, repeats: Optional[int] = None
) -> ScenarioResult:
    """Run one scenario ``repeats`` times and aggregate."""
    nrep = repeats if repeats is not None else scenario.repeats
    if nrep < 1:
        raise ValueError(f"repeats must be >= 1, got {nrep}")
    per_repeat = [list(scenario.fn()) for _ in range(nrep)]
    for metrics in per_repeat:
        if not metrics:
            raise BenchRunError(f"{scenario.id}: returned no metrics")
    return ScenarioResult(
        scenario=scenario.id,
        group=scenario.group,
        params=dict(scenario.params),
        repeats=nrep,
        metrics=_merge_repeats(scenario, per_repeat),
    )


def run_suites(options: Optional[RunOptions] = None) -> Dict[str, SuiteResult]:
    """Run the selected scenarios, grouped into per-group suites."""
    opts = options or RunOptions()
    unknown = set(opts.groups) - set(GROUPS)
    if unknown:
        raise ValueError(f"unknown groups {sorted(unknown)}; have {GROUPS}")
    meta = collect_metadata()
    meta["fast_only"] = opts.fast_only
    suites: Dict[str, SuiteResult] = {}
    for scenario in select_scenarios(opts.groups, fast_only=opts.fast_only):
        if opts.progress is not None:
            opts.progress(f"running {scenario.id} ...")
        result = run_scenario(scenario, repeats=opts.repeats)
        suite = suites.get(scenario.group)
        if suite is None:
            suite = suites[scenario.group] = SuiteResult(
                group=scenario.group, meta=dict(meta), results=[]
            )
        suite.results.append(result)
    return suites


def write_suites(
    suites: Dict[str, SuiteResult], out_dir: "str | Path"
) -> List[Path]:
    """Write one ``BENCH_<group>.json`` per suite; returns the paths."""
    out_dir = Path(out_dir)
    paths = []
    for group in GROUPS:
        if group in suites:
            paths.append(
                suites[group].write(out_dir / BASELINE_FILENAMES[group])
            )
    return paths


def read_suites(
    directory: "str | Path", groups: Sequence[str] = GROUPS
) -> Dict[str, SuiteResult]:
    """Load the ``BENCH_*.json`` files present under ``directory``."""
    directory = Path(directory)
    suites: Dict[str, SuiteResult] = {}
    for group in groups:
        path = directory / BASELINE_FILENAMES[group]
        if path.exists():
            suites[group] = SuiteResult.read(path)
    return suites
