"""Persistent per-host autotuning of generated kernel schedules.

Mirrors the gather-scatter setup-time tuner (``repro.gs.autotune``,
paper Section VI) at the kernel tier: for a concrete ``(program, N,
Nel)`` problem, time every applicable schedule from
:data:`repro.kir.passes.SCHEDULES` and remember the winner.

Because kernel timings depend only on the machine (not the run), the
winner table is persisted to a small JSON file keyed by a host
fingerprint, so the measurement cost is paid once per host::

    {
      "version": 1,
      "hosts": {
        "<node>/<machine>/<system>": {
          "dudr:n10:nel64:numpy": {
            "schedule": "gemm",
            "timings": {"gemm": 1.2e-4, "plane": 9.8e-4, ...},
            "checked": ["gemm", "plane", ...]
          }
        }
      }
    }

The file location is ``$REPRO_CACHE_DIR/kernel-autotune.json`` when
the environment variable is set (tests and CI point it at a temp
directory), else ``~/.cache/repro/kernel-autotune.json``.  Writes are
atomic (tmp file + ``os.replace``) and *merged*: the persist path
re-reads the file under an advisory ``<cache>.lock`` file lock and
folds the new entry into the current disk state
(:func:`merge_entry`), so two processes tuning different programs
concurrently cannot overwrite each other's entries (last-writer-wins
lost updates).  A missing, corrupt, or wrong-version file degrades to
an empty cache with a warning rather than an error.
:data:`CACHE_STATS` counts hits, misses, and ``races_merged`` — the
number of persist cycles that found (and kept) a concurrent writer's
entries — so both a warm second run and a survived write race are
observable.

Candidates are screened for correctness before they are timed: each
schedule's output must match the reference schedule to ``allclose``
with ``rtol=1e-10`` (schedules in
:data:`repro.kir.passes.ORDER_PRESERVING` are additionally
bitwise-identical to their hand-written counterparts by construction,
which the test suite asserts).
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # advisory file locking (POSIX); degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

import numpy as np

from ..autotune import best_time, host_fingerprint
from .ir import BATCH_AXIS, Program
from .lower import DEFAULT_LOWERING, LoweredKernel, lowered_kernel
from .passes import ORDER_PRESERVING, applicable_schedules

CACHE_VERSION = 1
CACHE_FILENAME = "kernel-autotune.json"

#: Normwise relative tolerance for the candidate correctness screen
#: (``max|got - ref| <= SCREEN_RTOL * max|ref|`` — elementwise rtol is
#: meaningless at near-zero entries of a reassociated contraction).
SCREEN_RTOL = 1e-10


def _screen_close(got: np.ndarray, ref: np.ndarray) -> bool:
    scale = float(np.max(np.abs(ref))) if ref.size else 0.0
    if scale == 0.0:
        return not np.any(got)
    return float(np.max(np.abs(got - ref))) <= SCREEN_RTOL * scale


@dataclass
class CacheStats:
    """Process-wide cache telemetry (reset per test)."""

    hits: int = 0
    misses: int = 0
    load_errors: int = 0
    #: Persist cycles that found (and preserved) entries written to
    #: disk by a concurrent tuner since this process last read the
    #: file — each count is a lost-update race that merge-under-lock
    #: turned into a merge instead (see :func:`merge_entry`).
    races_merged: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.load_errors = 0
        self.races_merged = 0


CACHE_STATS = CacheStats()


def default_cache_path() -> str:
    """Resolve the autotune cache file path (env-overridable)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.path.join(root, CACHE_FILENAME)


def cache_key(
    program: str, n: int, nel: int, lowering: str = DEFAULT_LOWERING
) -> str:
    return f"{program}:n{n}:nel{nel}:{lowering}"


def load_cache(path: str) -> Dict[str, Dict[str, dict]]:
    """Read the host table; tolerate missing/corrupt/stale files."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as exc:
        CACHE_STATS.load_errors += 1
        warnings.warn(
            f"kernel autotune cache {path!r} unreadable ({exc}); "
            "retuning from scratch",
            RuntimeWarning,
            stacklevel=2,
        )
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        CACHE_STATS.load_errors += 1
        warnings.warn(
            f"kernel autotune cache {path!r} has unsupported layout; "
            "retuning from scratch",
            RuntimeWarning,
            stacklevel=2,
        )
        return {}
    hosts = data.get("hosts")
    return hosts if isinstance(hosts, dict) else {}


def save_cache(path: str, hosts: Dict[str, Dict[str, dict]]) -> None:
    """Atomically persist the host table (tmp + rename)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    payload = {"version": CACHE_VERSION, "hosts": hosts}
    fd, tmp = tempfile.mkstemp(
        prefix=CACHE_FILENAME + ".", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def _cache_lock(path: str):
    """Advisory exclusive lock serialising read-merge-write cycles.

    The lock lives in a sibling ``<cache>.lock`` file so lockers never
    contend with the atomic ``os.replace`` of the cache file itself.
    On platforms without :mod:`fcntl` the lock degrades to a no-op and
    only the merge-before-replace in :func:`merge_entry` protects
    concurrent writers (best effort).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    with open(path + ".lock", "w") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def merge_entry(
    path: str,
    host: str,
    key: str,
    entry: dict,
    known: Optional[Dict[str, Dict[str, dict]]] = None,
) -> None:
    """Fold one tuned entry into the on-disk cache without losing races.

    A bare load→modify→:func:`save_cache` between two processes tuning
    *different* programs is a lost-update race: the last writer's
    ``os.replace`` discards the other's entry.  This helper re-reads
    the file under an advisory lock and merges into the *current* disk
    state, so concurrent tuners interleave instead of clobbering.

    ``known`` is the caller's earlier snapshot of the file (what it
    believed was on disk before measuring); any key present on disk now
    but absent from ``known`` was written concurrently, and detecting
    one bumps ``CACHE_STATS.races_merged``.
    """
    with _cache_lock(path):
        hosts = load_cache(path)
        if known is not None:
            for h, entries in hosts.items():
                seen = known.get(h, {})
                if any(k not in seen for k in entries):
                    CACHE_STATS.races_merged += 1
                    break
        hosts.setdefault(host, {})[key] = entry
        save_cache(path, hosts)


@dataclass(frozen=True)
class TuneResult:
    """Outcome of tuning one ``(program, n, nel)`` problem."""

    program: str
    n: int
    nel: int
    lowering: str
    schedule: str
    #: schedule -> best seconds per call (empty when served from cache
    #: with no re-measurement).
    timings: Dict[str, float] = field(default_factory=dict)
    #: schedules that passed the correctness screen.
    checked: Tuple[str, ...] = ()
    from_cache: bool = False


def _synth_inputs(prog: Program, nel: int, seed: int) -> List[np.ndarray]:
    """Random float64 inputs matching the program's declared shapes."""
    rng = np.random.default_rng(seed)
    arrays: List[np.ndarray] = []
    for t in prog.inputs:
        shape = tuple(nel if d is None else d for d in t.dims)
        arrays.append(rng.standard_normal(shape))
    return arrays


def _as_tuple(result) -> Tuple[np.ndarray, ...]:
    return result if isinstance(result, tuple) else (result,)


def tune_program(
    prog: Program,
    nel: int,
    lowering: str = DEFAULT_LOWERING,
    cache_path: Optional[str] = None,
    use_cache: bool = True,
    repeats: int = 2,
    trials: int = 3,
    seed: int = 20260807,
    candidates: Optional[Sequence[str]] = None,
) -> TuneResult:
    """Pick the fastest correct schedule for ``prog`` at size ``nel``.

    With ``use_cache`` (the default), a valid persisted entry for this
    host and problem short-circuits the measurement entirely and bumps
    ``CACHE_STATS.hits``; otherwise the candidates are screened, timed
    with :func:`repro.autotune.best_time`, and the winner is written
    back to the cache file.
    """
    n = prog.params.get("n", 0)
    path = cache_path if cache_path is not None else default_cache_path()
    names = (
        list(candidates)
        if candidates is not None
        else applicable_schedules(prog)
    )
    if not names:
        raise ValueError(f"{prog.name}: no applicable schedules")
    key = cache_key(prog.name, n, nel, lowering)
    host = host_fingerprint()
    hosts = load_cache(path) if use_cache else {}
    entry = hosts.get(host, {}).get(key)
    if use_cache and isinstance(entry, dict):
        sched = entry.get("schedule")
        if sched in names:
            CACHE_STATS.hits += 1
            timings = entry.get("timings")
            return TuneResult(
                program=prog.name,
                n=n,
                nel=nel,
                lowering=lowering,
                schedule=sched,
                timings=dict(timings) if isinstance(timings, dict) else {},
                checked=tuple(entry.get("checked", ())),
                from_cache=True,
            )
    CACHE_STATS.misses += 1

    inputs = _synth_inputs(prog, nel, seed)
    kernels: Dict[str, LoweredKernel] = {
        name: lowered_kernel(prog, name, lowering) for name in names
    }
    # Correctness screen against the first order-preserving candidate
    # (falls back to the first candidate overall).
    ref_name = next(
        (s for s in names if s in ORDER_PRESERVING), names[0]
    )
    reference = _as_tuple(kernels[ref_name].fn(*inputs))
    checked: List[str] = []
    for name in names:
        got = _as_tuple(kernels[name].fn(*inputs))
        ok = all(
            _screen_close(g, r) for g, r in zip(got, reference)
        )
        if ok:
            checked.append(name)
        else:
            warnings.warn(
                f"{prog.name} schedule {name!r} failed the correctness "
                "screen; excluded from tuning",
                RuntimeWarning,
                stacklevel=2,
            )
    if not checked:
        raise RuntimeError(
            f"{prog.name}: every candidate schedule failed the screen"
        )

    timings: Dict[str, float] = {}
    for name in checked:
        fn = kernels[name].fn
        timings[name] = best_time(
            lambda: fn(*inputs), repeats=repeats, trials=trials
        )
    winner = min(timings, key=lambda s: timings[s])
    result = TuneResult(
        program=prog.name,
        n=n,
        nel=nel,
        lowering=lowering,
        schedule=winner,
        timings=timings,
        checked=tuple(checked),
        from_cache=False,
    )
    if use_cache:
        try:
            merge_entry(
                path,
                host,
                key,
                {
                    "schedule": winner,
                    "timings": timings,
                    "checked": checked,
                },
                known=hosts,
            )
        except OSError as exc:
            warnings.warn(
                f"could not persist autotune cache to {path!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return result


def batch_axis_extent(prog: Program, arrays: Sequence[np.ndarray]) -> int:
    """Element count of the streamed operand (for cache keys)."""
    for t, a in zip(prog.inputs, arrays):
        if BATCH_AXIS in t.axes:
            return int(a.shape[0])
    raise ValueError(f"{prog.name}: no streamed input")
