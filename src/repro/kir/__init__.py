"""Kernel IR: contraction programs, rewrite passes, numpy codegen.

The tensor-product kernels of CMT-bone (derivative evaluation, the
spectral interpolation pair behind over-integration dealiasing) are
all instances of one pattern: a small stationary operator matrix
contracted along one axis of a streamed ``(nel, N, N, N)`` tensor.
This package represents that pattern explicitly —

* :mod:`repro.kir.ir` — the contraction IR (tensors, ``Contract`` /
  ``Add`` / ``Scale`` / ``Permute`` ops, validated ``Program``s) plus
  the program builders for ``dudr``/``duds``/``dudt``, ``grad`` and
  the dealias interpolations, and IR-derived flop/byte counts;
* :mod:`repro.kir.passes` — rewrite passes (GEMM batching, unroll by
  plane, middle-axis transposition, contraction-chain reassociation)
  composed into named schedules;
* :mod:`repro.kir.lower` — lowering of scheduled programs to
  executable numpy source (``compile``/``exec``, cached) with a
  documented seam for future cffi/numba backends;
* :mod:`repro.kir.autotune` — per-host persistent schedule selection;
* :mod:`repro.kir.library` — the ``(program, N, Nel, variant)`` ->
  callable dispatch tier used by :mod:`repro.kernels`.

See ``docs/kernel-ir.md`` for the grammar and the pass pipeline.
"""

from .autotune import (
    CACHE_STATS,
    TuneResult,
    cache_key,
    default_cache_path,
    load_cache,
    merge_entry,
    save_cache,
    tune_program,
)
from .ir import (
    BATCH_AXIS,
    Add,
    Contract,
    Permute,
    Program,
    PROGRAMS,
    Scale,
    Tensor,
    build_program,
    direction_program,
    program_flops,
    program_mem_bytes,
    tensor,
)
from .library import (
    DEFAULT_SCHEDULE,
    KernelLibrary,
    LIBRARY_VARIANTS,
    default_library,
    reset_default_library,
)
from .lower import (
    DEFAULT_LOWERING,
    LOWERINGS,
    LoweredKernel,
    NumpyLowering,
    compiled_kernel_count,
    lower,
    lowered_kernel,
)
from .passes import (
    ORDER_PRESERVING,
    SCHEDULES,
    Scheduled,
    applicable_schedules,
    schedule,
)

__all__ = [
    "BATCH_AXIS",
    "Add",
    "CACHE_STATS",
    "Contract",
    "DEFAULT_LOWERING",
    "DEFAULT_SCHEDULE",
    "KernelLibrary",
    "LIBRARY_VARIANTS",
    "LOWERINGS",
    "LoweredKernel",
    "NumpyLowering",
    "ORDER_PRESERVING",
    "PROGRAMS",
    "Permute",
    "Program",
    "SCHEDULES",
    "Scale",
    "Scheduled",
    "Tensor",
    "TuneResult",
    "applicable_schedules",
    "build_program",
    "cache_key",
    "compiled_kernel_count",
    "default_cache_path",
    "default_library",
    "direction_program",
    "load_cache",
    "lower",
    "merge_entry",
    "lowered_kernel",
    "program_flops",
    "program_mem_bytes",
    "reset_default_library",
    "save_cache",
    "schedule",
    "tensor",
    "tune_program",
]
