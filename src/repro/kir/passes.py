"""Rewrite passes: from contraction programs to loop schedules.

A :class:`~repro.kir.ir.Program` says *what* to compute; a schedule
says *how*.  Passes are pure functions ``Scheduled -> Scheduled`` (or
``Program -> Program`` for algebraic rewrites) composed into named
pipelines — the same dialect-and-rewrite structure xdsl uses for its
stencil lowering, shrunk to the four ops this mini-app needs.

The passes
----------

``to_gemm_form``
    Recognize each :class:`~repro.kir.ir.Contract` as a *stationary
    operator applied along one axis* of a streamed tensor and batch it
    into GEMM normal form: leading axes fuse into the matmul batch
    dimension, trailing axes fuse into the column block (this is the
    loop/axis *fusion* the paper performs by hand on ``dudr``/``dudt``
    — and its partial failure on ``duds`` falls out as the batch group
    simply stopping at the contracted axis).

``unroll_by_plane``
    The inverse knob: peel batched axes back into explicit Python
    loops until each op is a single small 2-D product per plane — the
    paper's "basic implementation".  Lowering this schedule reproduces
    the hand-written ``basic`` variants statement for statement (and
    bitwise).

``transpose_middle``
    Rewrite a middle-axis contraction (the ``duds`` obstruction) into
    permute -> last-axis GEMM -> permute, trading two data movements
    for a fully fused product — the alternative the Nekbone-on-GPU
    literature tunes over.

``reassociate``
    Reorder an independent chain of axis applications (the dealias
    interpolation applies the transfer matrix along r, then s, then
    t; any order is algebraically valid).  Changes float association,
    so reassociated candidates are screened numerically, not bitwise.

Pipelines are registered in :data:`SCHEDULES`; a schedule that does
not apply to a program (e.g. ``tbatch`` on ``dudt``, which has no
middle-axis contraction) raises :class:`NotApplicable` and the tuner
skips it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple, Union

from .ir import (
    BATCH_AXIS,
    Add,
    Contract,
    Op,
    Permute,
    Program,
    Scale,
    Tensor,
)


class NotApplicable(ValueError):
    """The requested schedule does not apply to this program."""


# ---------------------------------------------------------------------
# scheduled form
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class AxisApply:
    """GEMM-normal form of one stationary-operator contraction.

    ``out = W applied along axis ``axis`` of ``t`` — with a schedule:
    the first ``lead_loops`` axes of ``t`` (and correspondingly of
    ``out``) run as explicit Python loops, as do the last
    ``trail_loops`` axes; everything in between is fused into one
    batched matmul by the lowering.
    """

    out: Tensor
    t: Tensor
    w: Tensor
    axis: int
    #: Position of the contracted axis within ``w.axes`` (0 or 1).
    w_sum_pos: int
    lead_loops: int = 0
    trail_loops: int = 0

    @property
    def right_apply(self) -> bool:
        """True when the contracted axis is the last axis of ``t``."""
        return self.axis == self.t.ndim - 1

    def reads(self) -> Tuple[Tensor, ...]:
        return (self.t, self.w)


SchedOp = Union[AxisApply, Permute, Add, Scale, Contract]


@dataclass(frozen=True)
class Scheduled:
    """A program plus the schedule chosen for it."""

    program: Program
    schedule: str
    ops: Tuple[SchedOp, ...]

    def describe(self) -> str:
        lines = [f"schedule {self.schedule} of {self.program.name}:"]
        for op in self.ops:
            if isinstance(op, AxisApply):
                form = "right" if op.right_apply else "left"
                lines.append(
                    f"  {op.out.name} = apply[{form}, axis={op.axis}, "
                    f"loops={op.lead_loops}+{op.trail_loops}]"
                    f"({op.w.name}, {op.t.name})"
                )
            elif isinstance(op, Contract):
                lines.append(
                    f"  {op.out.name} = einsum[{op.spec}]"
                    f"({op.a.name}, {op.b.name})"
                )
            elif isinstance(op, Permute):
                lines.append(
                    f"  {op.out.name} = permute({op.a.name}, {op.perm})"
                )
            elif isinstance(op, Add):
                lines.append(f"  {op.out.name} = {op.a.name} + {op.b.name}")
            else:
                lines.append(
                    f"  {op.out.name} = {op.alpha!r} * {op.a.name}"
                )
        return "\n".join(lines)


def _classify(op: Contract) -> AxisApply:
    """Recognize a Contract as a stationary axis application."""
    if len(op.sum_axes) != 1:
        raise NotApplicable(
            f"{op.out.name}: multi-axis contraction not in apply form"
        )
    sum_ax = op.sum_axes[0]
    streamed, stationary = op.b, op.a
    if BATCH_AXIS in op.a.axes and BATCH_AXIS not in op.b.axes:
        streamed, stationary = op.a, op.b
    elif not (BATCH_AXIS in op.b.axes and BATCH_AXIS not in op.a.axes):
        raise NotApplicable(
            f"{op.out.name}: exactly one operand must carry the "
            f"{BATCH_AXIS!r} axis"
        )
    if stationary.ndim != 2:
        raise NotApplicable(
            f"{op.out.name}: stationary operand {stationary.name!r} "
            "is not a matrix"
        )
    w_sum_pos = stationary.axes.index(sum_ax)
    row_ax = stationary.axes[1 - w_sum_pos]
    axis = streamed.axes.index(sum_ax)
    if axis == 0:
        raise NotApplicable(
            f"{op.out.name}: cannot contract the batch axis"
        )
    expect = list(streamed.axes)
    expect[axis] = row_ax
    if tuple(expect) != op.out.axes:
        raise NotApplicable(
            f"{op.out.name}: output axes {op.out.axes} are not the "
            f"in-place replacement of {streamed.axes}"
        )
    return AxisApply(
        out=op.out, t=streamed, w=stationary, axis=axis,
        w_sum_pos=w_sum_pos,
    )


# ---------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------


def to_gemm_form(s: Scheduled) -> Scheduled:
    """Batch every contraction into fully-fused GEMM normal form."""
    ops: List[SchedOp] = []
    for op in s.ops:
        ops.append(_classify(op) if isinstance(op, Contract) else op)
    return replace(s, ops=tuple(ops))


def unroll_by_plane(s: Scheduled) -> Scheduled:
    """Peel batched axes into loops until each product is 2-D.

    Left applications keep the ``(contracted, next)`` plane and loop
    everything else — leading axes before the contracted slot, then
    trailing axes beyond the plane (``dudr`` loops ``e`` and ``k``,
    operating on the (r, s) plane, exactly like the hand-written
    basic variant).  Right applications loop leading axes until the
    trailing ``(row, contracted)`` plane remains.
    """
    ops: List[SchedOp] = []
    for op in s.ops:
        if not isinstance(op, AxisApply):
            ops.append(op)
            continue
        if op.right_apply:
            lead, trail = op.t.ndim - 2, 0
        else:
            lead = op.axis
            trail = op.t.ndim - op.axis - 2
        ops.append(replace(op, lead_loops=lead, trail_loops=trail))
    return replace(s, ops=tuple(ops))


def transpose_middle(s: Scheduled) -> Scheduled:
    """Middle-axis contraction -> permute, last-axis GEMM, permute.

    Raises :class:`NotApplicable` when no op has a middle-axis
    contraction to rewrite (the pass would be the identity, which a
    tuner candidate must not silently be).
    """
    ops: List[SchedOp] = []
    rewrote = False
    for op in s.ops:
        if not isinstance(op, AxisApply) or op.right_apply:
            ops.append(op)
            continue
        if op.axis == op.t.ndim - 1 or op.t.ndim < 3:
            ops.append(op)
            continue
        rewrote = True
        # t with the contracted axis rotated to the end.
        perm_axes = (
            op.t.axes[:op.axis] + op.t.axes[op.axis + 1:]
            + (op.t.axes[op.axis],)
        )
        perm_dims = tuple(
            op.t.dims[op.t.axes.index(ax)] for ax in perm_axes
        )
        tp = Tensor(f"{op.out.name}__tp", perm_axes, perm_dims)
        ops.append(Permute(out=tp, a=op.t))
        row_ax = op.w.axes[1 - op.w_sum_pos]
        res_axes = perm_axes[:-1] + (row_ax,)
        res_dims = perm_dims[:-1] + (
            op.w.dims[1 - op.w_sum_pos],
        )
        res = Tensor(f"{op.out.name}__tr", res_axes, res_dims)
        ops.append(
            AxisApply(
                out=res, t=tp, w=op.w, axis=tp.ndim - 1,
                w_sum_pos=op.w_sum_pos,
            )
        )
        ops.append(Permute(out=op.out, a=res))
    if not rewrote:
        raise NotApplicable(
            f"{s.program.name}: no middle-axis contraction to transpose"
        )
    return replace(s, ops=tuple(ops))


def reassociate(prog: Program, order: Sequence[int]) -> Program:
    """Reorder an axis-application chain (algebraic rewrite).

    The body must be a pure Contract chain — op ``i+1`` consumes op
    ``i``'s result — where every op applies a stationary matrix along
    a *distinct* axis slot, as the interp programs do.  The rewritten
    chain applies the same operators in ``order``; intermediate
    shapes are recomputed.  Association of the floating-point sums
    changes, so results match only to roundoff.
    """
    body = prog.body
    if sorted(order) != list(range(len(body))):
        raise ValueError(f"order {order!r} is not a permutation")
    if list(order) == list(range(len(body))):
        raise NotApplicable(f"{prog.name}: identity reassociation")
    if len(body) < 2 or not all(isinstance(o, Contract) for o in body):
        raise NotApplicable(
            f"{prog.name}: body is not a contraction chain"
        )
    chain: List[AxisApply] = [_classify(o) for o in body]  # type: ignore[arg-type]
    for prev, nxt in zip(body[:-1], body[1:]):
        assert isinstance(nxt, Contract)
        if nxt.b.name != prev.out.name and nxt.a.name != prev.out.name:
            raise NotApplicable(
                f"{prog.name}: op {nxt.out.name} does not consume the "
                "previous result"
            )
    slots = [a.axis for a in chain]
    if len(set(slots)) != len(slots):
        raise NotApplicable(
            f"{prog.name}: chain applies to a repeated axis slot"
        )
    running = chain[0].t
    new_body: List[Op] = []
    for step, idx in enumerate(order):
        a = chain[idx]
        row_ax = a.w.axes[1 - a.w_sum_pos]
        row_dim = a.w.dims[1 - a.w_sum_pos]
        sum_ax = a.w.axes[a.w_sum_pos]
        axes = list(running.axes)
        dims = list(running.dims)
        # Relabel the contracted slot of the running tensor to the
        # operator's column subscript, then replace it with the row.
        in_t = Tensor(
            running.name,
            tuple(
                sum_ax if p == a.axis else ax
                for p, ax in enumerate(axes)
            ),
            tuple(dims),
        )
        axes[a.axis] = row_ax
        dims[a.axis] = row_dim
        last = step == len(order) - 1
        out_name = (
            prog.outputs[0].name if last else f"q{step + 1}"
        )
        out_t = Tensor(out_name, tuple(axes), tuple(dims))
        new_body.append(
            Contract(out=out_t, a=a.w, b=in_t, sum_axes=(sum_ax,))
        )
        running = out_t
    if running.dims != prog.outputs[0].dims:
        raise NotApplicable(
            f"{prog.name}: reassociation changed the output shape"
        )
    return Program(
        name=prog.name,
        inputs=prog.inputs,
        outputs=(running,),
        body=tuple(new_body),
        params=dict(prog.params),
    )


# ---------------------------------------------------------------------
# pipelines
# ---------------------------------------------------------------------


def _pipe_gemm(prog: Program) -> Scheduled:
    return to_gemm_form(
        Scheduled(program=prog, schedule="gemm", ops=prog.body)
    )


def _pipe_plane(prog: Program) -> Scheduled:
    s = to_gemm_form(
        Scheduled(program=prog, schedule="plane", ops=prog.body)
    )
    return unroll_by_plane(s)


def _pipe_einsum(prog: Program) -> Scheduled:
    # Contractions lower directly to np.einsum; no scheduling.
    return Scheduled(program=prog, schedule="einsum", ops=prog.body)


def _pipe_tbatch(prog: Program) -> Scheduled:
    s = to_gemm_form(
        Scheduled(program=prog, schedule="tbatch", ops=prog.body)
    )
    return transpose_middle(s)


def _pipe_gemm_rev(prog: Program) -> Scheduled:
    rev = reassociate(prog, list(range(len(prog.body)))[::-1])
    return to_gemm_form(
        Scheduled(program=rev, schedule="gemm_rev", ops=rev.body)
    )


#: Named schedule pipelines, in default candidate order.  ``gemm``
#: first: it is the reference-quality fully-fused lowering and the
#: static default for ``variant="generated"``.
SCHEDULES: Dict[str, Callable[[Program], Scheduled]] = {
    "gemm": _pipe_gemm,
    "plane": _pipe_plane,
    "einsum": _pipe_einsum,
    "tbatch": _pipe_tbatch,
    "gemm_rev": _pipe_gemm_rev,
}

#: Schedules whose lowering preserves the exact contraction order and
#: association of the reference implementation (bitwise-reproducible
#: against the hand-written variants); the rest are only guaranteed
#: to roundoff and are numerically screened by the autotuner.
ORDER_PRESERVING = ("gemm", "plane", "einsum")


def schedule(prog: Program, name: str) -> Scheduled:
    """Run the named pipeline over a program."""
    try:
        pipe = SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r} (known: {sorted(SCHEDULES)})"
        ) from None
    return pipe(prog)


def applicable_schedules(prog: Program) -> Tuple[str, ...]:
    """The schedule names that apply to ``prog``, in candidate order."""
    names = []
    for name, pipe in SCHEDULES.items():
        try:
            pipe(prog)
        except NotApplicable:
            continue
        names.append(name)
    return tuple(names)
